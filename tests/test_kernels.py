"""Parity and structure tests for the fused portfolio kernel.

The contract: one fused sweep over the YET must reproduce the
``SequentialEngine`` oracle's YLTs for every layer, across lookup
layouts (dense, sparse, mixed), degenerate terms, empty trials, and
randomised portfolios (Hypothesis).
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engines import SequentialEngine
from repro.core.kernels import (
    DEFAULT_BLOCK_OCCURRENCES,
    MIN_TAIL_GROUP,
    PortfolioKernel,
)
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import YET_SCHEMA, EltTable, YetTable
from repro.core.terms import LayerTerms
from repro.data.columnar import ColumnTable
from repro.errors import ConfigurationError

RTOL, ATOL = 1e-9, 1e-6


def assert_kernel_matches_oracle(portfolio, yet, dense_max_entries=4_000_000,
                                 block_occurrences=None):
    kernel = PortfolioKernel.from_portfolio(
        portfolio, dense_max_entries=dense_max_entries
    )
    final = kernel.run(yet.trials, yet.event_ids, yet.n_trials,
                       block_occurrences=block_occurrences)
    oracle = SequentialEngine().run(portfolio, yet)
    for row, lid in enumerate(kernel.layer_ids):
        np.testing.assert_allclose(
            final[row], oracle.ylt_by_layer[lid].losses, rtol=RTOL, atol=ATOL,
            err_msg=f"layer {lid} (kernel row {row}) diverged from oracle",
        )
    return kernel


def make_yet(trials, event_ids, n_trials):
    trials = np.asarray(trials, dtype=np.int64)
    table = ColumnTable.from_arrays(
        YET_SCHEMA,
        trial=trials,
        seq=np.zeros(trials.size, dtype=np.int32),
        event_id=np.asarray(event_ids, dtype=np.int64),
    )
    return YetTable(table, n_trials)


class TestParityAgainstOracle:
    def test_dense_portfolio(self, small_portfolio_workload):
        k = assert_kernel_matches_oracle(
            small_portfolio_workload.portfolio, small_portfolio_workload.yet
        )
        assert k.n_dense == k.n_layers and k.n_sparse == 0

    def test_sparse_portfolio(self, small_portfolio_workload):
        k = assert_kernel_matches_oracle(
            small_portfolio_workload.portfolio, small_portfolio_workload.yet,
            dense_max_entries=1,
        )
        assert k.n_sparse == k.n_layers and k.n_dense == 0

    def test_mixed_dense_and_sparse_layers(self):
        """One compact-id layer (dense) + one huge-id layer (sparse)."""
        compact = EltTable.from_arrays([1, 2, 3], [100.0, 200.0, 300.0])
        huge = EltTable.from_arrays([2, 10**9], [50.0, 75.0], contract_id=1)
        pf = Portfolio([
            Layer(0, [compact], LayerTerms(occ_retention=20.0)),
            Layer(7, [huge], LayerTerms(occ_limit=60.0)),
        ])
        yet = make_yet([0, 0, 1, 2, 2], [1, 2, 10**9, 3, 5], n_trials=4)
        k = assert_kernel_matches_oracle(pf, yet)
        assert k.n_dense == 1 and k.n_sparse == 1
        # Rows are dense-first; ids map back through layer_ids/row_of.
        assert k.layer_ids == (0, 7)
        assert k.row_of(7) == 1

    @pytest.mark.parametrize("terms", [
        LayerTerms(),                                          # pass-through
        LayerTerms(occ_retention=0.0, occ_limit=np.inf),       # degenerate: none bind
        LayerTerms(occ_retention=1e12),                        # nothing attaches
        LayerTerms(occ_limit=1.0),                             # everything capped
        LayerTerms(agg_retention=1e15),                        # aggregate wipes out
        LayerTerms(agg_limit=10.0),                            # tiny annual cap
        LayerTerms(participation=0.1),
        LayerTerms(occ_retention=5e5, occ_limit=2e6,
                   agg_retention=1e6, agg_limit=1e8, participation=0.5),
    ])
    @pytest.mark.parametrize("dense_max", [4_000_000, 1])
    def test_degenerate_terms(self, tiny_workload, terms, dense_max):
        layer = Layer(0, tiny_workload.portfolio.layers[0].elts, terms)
        assert_kernel_matches_oracle(
            Portfolio([layer]), tiny_workload.yet, dense_max_entries=dense_max
        )

    def test_empty_trials_stay_zero(self):
        """A YET with occurrence-free trials (including an all-empty YET)."""
        elt = EltTable.from_arrays([1, 2], [100.0, 200.0])
        pf = Portfolio([Layer(0, [elt], LayerTerms())])
        sparse_yet = make_yet([1, 1, 3], [1, 2, 1], n_trials=5)
        assert_kernel_matches_oracle(pf, sparse_yet)

        empty_yet = make_yet([], [], n_trials=4)
        kernel = pf.kernel()
        out = kernel.run(empty_yet.trials, empty_yet.event_ids, 4)
        assert out.shape == (1, 4)
        np.testing.assert_array_equal(out, 0.0)

    @pytest.mark.parametrize("block", [1, 7, 64, DEFAULT_BLOCK_OCCURRENCES])
    def test_block_size_does_not_change_results(self, tiny_workload, block):
        assert_kernel_matches_oracle(
            tiny_workload.portfolio, tiny_workload.yet, block_occurrences=block
        )


class TestKernelStructure:
    def test_chunked_accumulation_matches_single_sweep(self, tiny_workload):
        """The out-of-core pattern: sweep per chunk into one matrix."""
        kernel = tiny_workload.portfolio.kernel()
        yet = tiny_workload.yet
        whole = kernel.sweep(yet.trials, yet.event_ids, yet.n_trials)
        acc = np.zeros_like(whole)
        for start in range(0, yet.n_occurrences, 97):
            stop = min(start + 97, yet.n_occurrences)
            kernel.sweep(yet.trials[start:stop], yet.event_ids[start:stop],
                         yet.n_trials, out=acc)
        np.testing.assert_allclose(acc, whole, rtol=1e-12)

    def test_unsorted_trials_fall_back_to_block_sort(self, tiny_workload):
        """sweep() accepts unsorted (trial, event) streams — the shuffled
        stream must produce the same annual matrix as the sorted one."""
        kernel = tiny_workload.portfolio.kernel()
        yet = tiny_workload.yet
        ref = kernel.sweep(yet.trials, yet.event_ids, yet.n_trials)
        rng = np.random.default_rng(5)
        perm = rng.permutation(yet.n_occurrences)
        shuffled = kernel.sweep(yet.trials[perm], yet.event_ids[perm],
                                yet.n_trials)
        np.testing.assert_allclose(shuffled, ref, rtol=RTOL, atol=ATOL)

    def test_kernel_pickles_whole(self, small_portfolio_workload):
        """The multicore transport: one pickle ships the whole kernel."""
        kernel = small_portfolio_workload.portfolio.kernel()
        clone = pickle.loads(pickle.dumps(kernel))
        yet = small_portfolio_workload.yet
        np.testing.assert_array_equal(
            clone.run(yet.trials, yet.event_ids, yet.n_trials),
            kernel.run(yet.trials, yet.event_ids, yet.n_trials),
        )

    def test_gather_block_shares_one_pass(self, tiny_workload):
        kernel = tiny_workload.portfolio.kernel()
        ev = tiny_workload.yet.event_ids[:50]
        block = kernel.gather_block(ev)
        assert block.shape == (kernel.n_layers, 50)
        for row in range(kernel.n_layers):
            np.testing.assert_array_equal(block[row], kernel.gather_layer(row, ev))

    def test_gather_layer_matches_loss_lookup(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        kernel = tiny_workload.portfolio.kernel()
        ev = tiny_workload.yet.event_ids
        np.testing.assert_array_equal(
            kernel.gather_layer(kernel.row_of(layer.layer_id), ev),
            layer.lookup()(ev),
        )

    def test_unknown_layer_rejected(self, tiny_workload):
        with pytest.raises(ConfigurationError):
            tiny_workload.portfolio.kernel().row_of(999)

    def test_mismatched_out_rejected(self, tiny_workload):
        kernel = tiny_workload.portfolio.kernel()
        yet = tiny_workload.yet
        with pytest.raises(ConfigurationError):
            kernel.sweep(yet.trials, yet.event_ids, yet.n_trials,
                         out=np.zeros((kernel.n_layers, yet.n_trials + 1)))

    def test_mismatched_arrays_rejected(self, tiny_workload):
        kernel = tiny_workload.portfolio.kernel()
        with pytest.raises(ConfigurationError):
            kernel.sweep(np.array([0, 1]), np.array([5]), 4)


@st.composite
def random_portfolio(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n_trials = draw(st.integers(1, 50))
    catalog_events = draw(st.integers(2, 60))
    epk = draw(st.floats(0.1, 10.0))
    n_layers = draw(st.integers(1, 4))
    # Per-layer dense/sparse layout is driven by a huge outlier id.
    layers = []
    for li in range(n_layers):
        elt_rows = draw(st.integers(1, catalog_events))
        ids = rng.choice(catalog_events, size=elt_rows, replace=False)
        ids.sort()
        losses = rng.lognormal(10, 1.5, elt_rows)
        if draw(st.booleans()):
            ids = np.append(ids, 10**8 + li)  # force this layer sparse
            losses = np.append(losses, float(rng.lognormal(10, 1.5)))
        terms = LayerTerms(
            occ_retention=draw(st.floats(0.0, 1e5)),
            occ_limit=draw(st.one_of(st.just(np.inf), st.floats(1e3, 1e6))),
            agg_retention=draw(st.floats(0.0, 1e6)),
            agg_limit=draw(st.one_of(st.just(np.inf), st.floats(1e3, 1e8))),
            participation=draw(st.floats(0.05, 1.0)),
        )
        layers.append(Layer(li, [EltTable.from_arrays(ids, losses,
                                                      contract_id=li)], terms))
    yet = YetTable.simulate(
        np.arange(catalog_events, dtype=np.int64),
        np.full(catalog_events, 1.0),
        n_trials,
        rng,
        mean_events_per_trial=epk,
    )
    return Portfolio(layers), yet


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(wl=random_portfolio())
def test_fused_kernel_matches_oracle_on_random_portfolios(wl):
    portfolio, yet = wl
    assert_kernel_matches_oracle(portfolio, yet)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(wl=random_portfolio(), block=st.integers(1, 64))
def test_fused_kernel_block_invariance_on_random_portfolios(wl, block):
    portfolio, yet = wl
    kernel = portfolio.kernel()
    ref = kernel.run(yet.trials, yet.event_ids, yet.n_trials)
    alt = kernel.run(yet.trials, yet.event_ids, yet.n_trials,
                     block_occurrences=block)
    np.testing.assert_allclose(alt, ref, rtol=RTOL, atol=ATOL)


# ---------------------------------------------------------------------------
# sublinear tail-group path vs the exact lane path (satellite)
# ---------------------------------------------------------------------------

def direct_tail_kernel(occ_lo, occ_cap, table):
    """A same-book dense stack built directly.

    :class:`LayerTerms` rejects ``occ_limit <= 0``, but the sweep must
    still price degenerate ``lo == hi`` rows correctly, so the parity
    suite constructs the kernel without going through layers.
    """
    occ_lo = np.asarray(occ_lo, dtype=np.float64)
    occ_cap = np.asarray(occ_cap, dtype=np.float64)
    n = occ_lo.size
    return PortfolioKernel(
        layer_ids=tuple(range(n)),
        occ_retention=occ_lo,
        occ_limit=occ_cap,
        agg_retention=np.zeros(n),
        agg_limit=np.full(n, np.inf),
        participation=np.ones(n),
        dense_stack=np.asarray(table, dtype=np.float64)[None, :].copy(),
        sparse_ids=np.empty(0, dtype=np.int64),
        sparse_values=np.empty(0, dtype=np.float64),
        sparse_offsets=np.zeros(1, dtype=np.int64),
        dense_source=np.zeros(n, dtype=np.int64),
        sparse_source=np.empty(0, dtype=np.int64),
    )


@st.composite
def tail_stack(draw):
    """Random tail-attaching stack over one shared book, plus a YET."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n_trials = draw(st.integers(1, 30))
    width = draw(st.integers(2, 40))
    n_layers = draw(st.integers(MIN_TAIL_GROUP, 40))
    table = rng.lognormal(10, 1.5, width)
    if draw(st.booleans()):
        # zero-loss events in the book (whole trials may price to zero)
        table[rng.choice(width, size=max(width // 2, 1), replace=False)] = 0.0
    lo = rng.uniform(0.0, 3e4, n_layers)
    lo[rng.random(n_layers) < 0.2] = 0.0
    cap = rng.uniform(0.0, 5e4, n_layers)
    cap[rng.random(n_layers) < 0.25] = 0.0       # degenerate lo == hi rows
    cap[rng.random(n_layers) < 0.2] = np.inf     # uncapped rows
    if draw(st.booleans()):
        lo[0] = np.inf                            # infinite-retention row
    n_occ = draw(st.integers(0, 400))
    trials = np.sort(rng.integers(0, n_trials, n_occ)).astype(np.int64)
    # ids past the table width gather to zero (uncovered events)
    events = rng.integers(0, width + 3, n_occ).astype(np.int64)
    return lo, cap, table, trials, events, n_trials


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ts=tail_stack())
def test_sublinear_group_path_matches_lane_path(ts):
    lo, cap, table, trials, events, n_trials = ts
    kernel = direct_tail_kernel(lo, cap, table)
    assert kernel.tail_group_rows == lo.size  # one shared book, one group
    ref = kernel.run(trials, events, n_trials, sublinear=False)
    sub = kernel.run(trials, events, n_trials)
    np.testing.assert_allclose(sub, ref, rtol=RTOL, atol=ATOL)


class TestSublinearTailGroups:
    def test_degenerate_lo_equals_hi_rows_price_to_zero(self):
        # occ_limit == 0 clips everything to the retention point: the
        # layer retains nothing, on both the lane and the group path.
        n = MIN_TAIL_GROUP
        kernel = direct_tail_kernel(
            np.linspace(0.0, 1e4, n), np.zeros(n), [0.0, 100.0, 250.0]
        )
        trials = np.repeat(np.arange(4, dtype=np.int64), 10)
        events = np.tile(np.arange(1, 3, dtype=np.int64), 20)
        sub = kernel.run(trials, events, 4)
        ref = kernel.run(trials, events, 4, sublinear=False)
        # (the lane path's shifted-clip identity leaves ~1e-12 residue
        # on lo == hi rows; "zero" means within library tolerance)
        np.testing.assert_allclose(ref, 0.0, atol=ATOL)
        np.testing.assert_allclose(sub, 0.0, atol=ATOL)
        np.testing.assert_allclose(sub, ref, rtol=RTOL, atol=ATOL)

    def test_all_zero_loss_trials(self):
        # Every gathered loss is zero (zeroed book): the histogram path
        # must produce exact zeros, not -0.0 residue or NaN from its
        # cap x tail term on inf-capped rows.
        n = MIN_TAIL_GROUP
        cap = np.full(n, np.inf)
        cap[: n // 2] = 1e4
        kernel = direct_tail_kernel(np.linspace(0.0, 100.0, n), cap,
                                    np.zeros(5))
        trials = np.repeat(np.arange(3, dtype=np.int64), 8)
        events = np.tile(np.arange(4, dtype=np.int64), 6)
        sub = kernel.run(trials, events, 3)
        np.testing.assert_array_equal(sub, 0.0)

    def test_sparse_store_groups_match_lane_path(self, tiny_workload):
        # Same-book stacks dedupe to one CSR segment under
        # dense_max_entries=1; the group path prices them too.
        elts = tiny_workload.portfolio.layers[0].elts
        layers = [
            Layer(i, elts, LayerTerms(occ_retention=5e3 + 250.0 * i,
                                      occ_limit=2e5))
            for i in range(MIN_TAIL_GROUP + 4)
        ]
        kernel = PortfolioKernel.from_layers(layers, dense_max_entries=1)
        assert kernel.n_sparse == kernel.n_layers
        assert kernel.tail_group_rows == kernel.n_layers
        yet = tiny_workload.yet
        ref = kernel.run(yet.trials, yet.event_ids, yet.n_trials,
                         sublinear=False)
        sub = kernel.run(yet.trials, yet.event_ids, yet.n_trials)
        np.testing.assert_allclose(sub, ref, rtol=RTOL, atol=ATOL)

    def test_mixed_group_and_lane_rows(self, tiny_workload):
        # A stack with one shared-book tail group plus an odd-book row:
        # the group prices sublinearly, the leftover row goes through
        # the exact lane fallback, and the union matches the all-lane
        # sweep row for row.
        elts = tiny_workload.portfolio.layers[0].elts
        other = EltTable.from_arrays([1, 2, 3], [111.0, 222.0, 333.0],
                                     contract_id=9)
        layers = [
            Layer(i, elts, LayerTerms(occ_retention=1e4 + 500.0 * i,
                                      occ_limit=5e5))
            for i in range(MIN_TAIL_GROUP)
        ]
        layers.append(Layer(99, [other], LayerTerms(occ_retention=50.0)))
        kernel = PortfolioKernel.from_layers(layers)
        assert 0 < kernel.tail_group_rows < kernel.n_layers
        yet = tiny_workload.yet
        ref = kernel.run(yet.trials, yet.event_ids, yet.n_trials,
                         sublinear=False)
        sub = kernel.run(yet.trials, yet.event_ids, yet.n_trials)
        np.testing.assert_allclose(sub, ref, rtol=RTOL, atol=ATOL)

    def test_shift_mask_is_cached_per_count_key(self, tiny_workload):
        # Satellite: repeated fixed-shape sweeps reuse the memoised mask.
        kernel = tiny_workload.portfolio.kernel()
        yet = tiny_workload.yet
        kernel.run(yet.trials, yet.event_ids, yet.n_trials)
        cached = dict(kernel._mask_cache)
        assert cached, "first sweep must populate the mask cache"
        kernel.run(yet.trials, yet.event_ids, yet.n_trials)
        assert set(kernel._mask_cache) == set(cached)
        for key, mask in cached.items():
            assert kernel._mask_cache[key] is mask, "mask must be reused"
