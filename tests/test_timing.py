"""Tests for timing utilities."""

import pytest

from repro.errors import AnalysisError
from repro.util.timing import Stopwatch, ThroughputMeter, format_seconds


class TestFormatSeconds:
    @pytest.mark.parametrize("value, expect", [
        (2e-9, "ns"), (3e-6, "us"), (4e-3, "ms"), (2.0, "s"),
        (300.0, "min"), (10_000.0, "h"),
    ])
    def test_units(self, value, expect):
        assert expect in format_seconds(value)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            format_seconds(-1.0)


class TestStopwatch:
    def test_context_manager_measures(self):
        with Stopwatch() as sw:
            sum(range(10_000))
        assert sw.elapsed > 0

    def test_split_records(self):
        with Stopwatch() as sw:
            sum(range(100))
            sw.split("phase1")
        assert "phase1" in sw.splits
        assert 0 < sw.splits["phase1"] <= sw.elapsed

    def test_stop_before_start_rejected(self):
        with pytest.raises(AnalysisError):
            Stopwatch().stop()

    def test_split_before_start_rejected(self):
        with pytest.raises(AnalysisError):
            Stopwatch().split("x")

    def test_elapsed_zero_before_start(self):
        assert Stopwatch().elapsed == 0.0


class TestThroughputMeter:
    def test_rate(self):
        m = ThroughputMeter(unit="trials")
        m.record(1000, 2.0)
        m.record(500, 1.0)
        assert m.rate == pytest.approx(500.0)

    def test_seconds_for_extrapolation(self):
        m = ThroughputMeter()
        m.record(100, 1.0)
        assert m.seconds_for(1_000_000) == pytest.approx(10_000.0)

    def test_no_observations_rejected(self):
        with pytest.raises(AnalysisError):
            _ = ThroughputMeter().rate

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            ThroughputMeter().record(-1, 1.0)

    def test_describe_contains_unit(self):
        m = ThroughputMeter(unit="rows")
        m.record(10, 1.0)
        assert "rows" in m.describe()
