"""Tests for the hierarchical RNG streams."""

import numpy as np
import pytest

from repro.util.rng import RngHierarchy, spawn_generator, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("catalog") == stable_hash64("catalog")

    def test_distinct_inputs_differ(self):
        assert stable_hash64("catalog") != stable_hash64("exposure")

    def test_64_bit_range(self):
        h = stable_hash64("x" * 1000)
        assert 0 <= h < 2**64

    def test_empty_string_ok(self):
        assert isinstance(stable_hash64(""), int)


class TestSpawnGenerator:
    def test_same_path_same_stream(self):
        a = spawn_generator(7, "a/b").normal(size=5)
        b = spawn_generator(7, "a/b").normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_independent(self):
        a = spawn_generator(7, "a").normal(size=100)
        b = spawn_generator(7, "b").normal(size=100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn_generator(7, "a").normal(size=10)
        b = spawn_generator(8, "a").normal(size=10)
        assert not np.array_equal(a, b)


class TestRngHierarchy:
    def test_generator_reproducible(self):
        assert RngHierarchy(1).generator("x").random() == \
            RngHierarchy(1).generator("x").random()

    def test_child_prefixing(self):
        root = RngHierarchy(1)
        child = root.child("stage1")
        # child's "x" equals root's "stage1/x"
        a = child.generator("x").random()
        b = root.generator("stage1/x").random()
        assert a == b

    def test_child_stream_differs_from_root_stream(self):
        root = RngHierarchy(1)
        assert root.generator("x").random() != root.child("c").generator("x").random()

    def test_order_insensitivity(self):
        """Consuming stream A must not perturb stream B."""
        h1 = RngHierarchy(42)
        _ = h1.generator("a").normal(size=1000)
        b_after = h1.generator("b").normal(size=5)
        b_fresh = RngHierarchy(42).generator("b").normal(size=5)
        np.testing.assert_array_equal(b_after, b_fresh)

    def test_seed_for_stable(self):
        assert RngHierarchy(3).seed_for("p") == RngHierarchy(3).seed_for("p")

    def test_generators_vector_form(self):
        gens = RngHierarchy(3).generators(["a", "b"])
        assert len(gens) == 2
        assert gens[0].random() != gens[1].random()

    @pytest.mark.parametrize("seed", [0, 1, 2**31, 2**63 - 1])
    def test_extreme_seeds(self, seed):
        RngHierarchy(seed).generator("x").random()
