"""Tests for YLT combination, the enterprise roll-up, reporting, pricing."""

import numpy as np
import pytest

from repro.core.tables import YltTable
from repro.dfa.combine import combine_ylts
from repro.dfa.correlation import GaussianCopula
from repro.dfa.erm import BusinessUnit, Enterprise
from repro.dfa.metrics import RiskMetrics, tail_value_at_risk
from repro.dfa.pricing import RealTimePricer
from repro.dfa.reporting import regulator_report
from repro.errors import AnalysisError

RNG = lambda s: np.random.default_rng(s)


def make_ylts(k=3, n=10_000, seed=0):
    rng = RNG(seed)
    return [YltTable(rng.lognormal(10, 1, n)) for _ in range(k)]


class TestCombine:
    def test_trial_aligned_is_elementwise_sum(self):
        ylts = make_ylts(2)
        out = combine_ylts(ylts, "trial_aligned")
        np.testing.assert_allclose(out.losses, ylts[0].losses + ylts[1].losses)

    def test_mean_invariant_across_methods(self):
        ylts = make_ylts(3)
        expect = sum(y.mean() for y in ylts)
        for method, kwargs in [
            ("trial_aligned", {}),
            ("independent", dict(rng=RNG(1))),
            ("comonotonic", {}),
            ("copula", dict(correlation=GaussianCopula.uniform(3, 0.4).correlation,
                            rng=RNG(2))),
        ]:
            got = combine_ylts(ylts, method, **kwargs).mean()
            assert got == pytest.approx(expect, rel=1e-9), method

    def test_comonotonic_has_fattest_tail(self):
        ylts = make_ylts(3)
        q = 0.99
        tv_como = tail_value_at_risk(combine_ylts(ylts, "comonotonic"), q)
        tv_ind = tail_value_at_risk(
            combine_ylts(ylts, "independent", rng=RNG(3)), q
        )
        assert tv_como > tv_ind

    def test_copula_between_independent_and_comonotonic(self):
        ylts = make_ylts(3)
        q = 0.99
        tv_ind = tail_value_at_risk(combine_ylts(ylts, "independent", rng=RNG(4)), q)
        tv_cop = tail_value_at_risk(combine_ylts(
            ylts, "copula",
            correlation=GaussianCopula.uniform(3, 0.5).correlation, rng=RNG(5)
        ), q)
        tv_como = tail_value_at_risk(combine_ylts(ylts, "comonotonic"), q)
        assert tv_ind <= tv_cop <= tv_como

    def test_missing_rng_rejected(self):
        with pytest.raises(AnalysisError):
            combine_ylts(make_ylts(2), "independent")

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            combine_ylts(make_ylts(2), "psychic")

    def test_mismatched_trials_rejected(self):
        with pytest.raises(AnalysisError):
            combine_ylts([YltTable(np.ones(5)), YltTable(np.ones(6))])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            combine_ylts([])


class TestEnterprise:
    def make_enterprise(self):
        ylts = make_ylts(3, seed=7)
        units = [BusinessUnit(f"bu{i}", y) for i, y in enumerate(ylts)]
        return Enterprise(units)

    def test_combined_mean(self):
        ent = self.make_enterprise()
        expect = sum(u.ylt.mean() for u in ent.units)
        assert ent.combined_ylt().mean() == pytest.approx(expect)

    def test_diversification_benefit_in_range(self):
        ent = self.make_enterprise()
        b = ent.diversification_benefit(q=0.99)
        assert 0.0 <= b < 1.0

    def test_comonotonic_kills_diversification(self):
        ent = self.make_enterprise()
        b = ent.diversification_benefit(q=0.99, method="comonotonic")
        assert b == pytest.approx(0.0, abs=0.02)

    def test_metrics_coherent(self):
        self.make_enterprise().metrics().check_coherence()

    def test_duplicate_names_rejected(self):
        y = YltTable(np.ones(10))
        with pytest.raises(AnalysisError):
            Enterprise([BusinessUnit("a", y), BusinessUnit("a", y)])

    def test_mismatched_trials_rejected(self):
        with pytest.raises(AnalysisError):
            Enterprise([
                BusinessUnit("a", YltTable(np.ones(5))),
                BusinessUnit("b", YltTable(np.ones(6))),
            ])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            Enterprise([])


class TestReporting:
    def test_report_contains_ladders(self):
        m = RiskMetrics.from_ylt(YltTable(np.arange(1.0, 1001.0)))
        text = regulator_report(m, title="Test book")
        assert "Test book" in text
        assert "250y" in text
        assert "TVaR" in text
        assert "99.0%" in text

    def test_report_numbers_formatted(self):
        m = RiskMetrics.from_ylt(YltTable(np.full(100, 1_234_567.0)))
        assert "1,234,567" in regulator_report(m)


class TestRealTimePricer:
    def test_quote_structure(self, tiny_workload):
        pricer = RealTimePricer(tiny_workload.yet)
        quote = pricer.quote(tiny_workload.portfolio.layers[0])
        assert quote.expected_loss > 0
        assert quote.premium >= quote.expected_loss
        assert quote.latency_seconds > 0
        assert quote.trials_per_second > 0

    def test_premium_decomposition(self, tiny_workload):
        pricer = RealTimePricer(tiny_workload.yet)
        q = pricer.quote(tiny_workload.portfolio.layers[0])
        assert q.premium == pytest.approx(
            q.expected_loss + q.volatility_load + q.tail_load
        )

    def test_rate_on_line_uses_occ_limit(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        pricer = RealTimePricer(tiny_workload.yet)
        q = pricer.quote(layer)
        assert q.rate_on_line == pytest.approx(q.premium / layer.terms.occ_limit)

    def test_zero_loadings_price_is_pure_premium(self, tiny_workload):
        pricer = RealTimePricer(tiny_workload.yet, volatility_loading=0.0,
                                tail_loading=0.0)
        q = pricer.quote(tiny_workload.portfolio.layers[0])
        assert q.premium == pytest.approx(q.expected_loss)

    def test_quote_sweep(self, tiny_workload):
        pricer = RealTimePricer(tiny_workload.yet)
        quotes = pricer.quote_sweep(list(tiny_workload.portfolio.layers))
        assert len(quotes) == tiny_workload.portfolio.n_layers

    def test_negative_loading_rejected(self, tiny_workload):
        with pytest.raises(AnalysisError):
            RealTimePricer(tiny_workload.yet, volatility_loading=-0.1)

    def test_engine_choice(self, tiny_workload):
        pricer = RealTimePricer(tiny_workload.yet, engine="device")
        q = pricer.quote(tiny_workload.portfolio.layers[0])
        ref = RealTimePricer(tiny_workload.yet).quote(
            tiny_workload.portfolio.layers[0]
        )
        assert q.expected_loss == pytest.approx(ref.expected_loss)
