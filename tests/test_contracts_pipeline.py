"""Tests for contract assignment and the stage-1 pipeline."""

import numpy as np
import pytest

from repro.catmod.catalog import generate_catalog
from repro.catmod.contracts import Contract, assign_contracts
from repro.catmod.exposure import generate_exposure
from repro.catmod.financial import PolicyTerms
from repro.catmod.geography import Region
from repro.catmod.perils import standard_perils
from repro.catmod.pipeline import CatModPipeline
from repro.errors import ConfigurationError

REGION = Region(25.0, 33.0, -98.0, -80.0)


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(0)
    perils = standard_perils()
    catalog = generate_catalog(perils, REGION, 120, np.random.default_rng(1))
    exposure = generate_exposure(REGION, 400, np.random.default_rng(2))
    contracts = assign_contracts(exposure, 6, np.random.default_rng(3))
    return perils, catalog, exposure, contracts


class TestAssignContracts:
    def test_partition_covers_all_sites(self, world):
        _, _, exposure, contracts = world
        all_sites = np.concatenate([c.site_indices for c in contracts])
        assert sorted(all_sites.tolist()) == list(range(exposure.n_sites))

    def test_disjoint(self, world):
        _, _, _, contracts = world
        all_sites = np.concatenate([c.site_indices for c in contracts])
        assert np.unique(all_sites).size == all_sites.size

    def test_sizes_uneven(self, world):
        _, _, _, contracts = world
        sizes = [c.site_indices.size for c in contracts]
        assert max(sizes) > min(sizes)

    def test_too_many_contracts_rejected(self, world):
        _, _, exposure, _ = world
        with pytest.raises(ConfigurationError):
            assign_contracts(exposure, exposure.n_sites + 1,
                             np.random.default_rng(0))

    def test_contract_validation(self):
        with pytest.raises(ConfigurationError):
            Contract(-1, np.array([0]), PolicyTerms())
        with pytest.raises(ConfigurationError):
            Contract(0, np.array([], dtype=np.int64), PolicyTerms())


class TestCatModPipeline:
    def test_produces_one_elt_per_contract(self, world):
        perils, catalog, exposure, contracts = world
        elts, stats = CatModPipeline(perils).run(catalog, exposure, contracts)
        assert len(elts) == len(contracts)
        assert [e.contract_id for e in elts] == [c.contract_id for c in contracts]

    def test_stats_pairs(self, world):
        perils, catalog, exposure, contracts = world
        _, stats = CatModPipeline(perils).run(catalog, exposure, contracts)
        assert stats.event_site_pairs == catalog.n_events * exposure.n_sites
        assert stats.seconds > 0
        assert stats.pairs_per_second > 0

    def test_deterministic(self, world):
        perils, catalog, exposure, contracts = world
        a, _ = CatModPipeline(perils).run(catalog, exposure, contracts)
        b, _ = CatModPipeline(perils).run(catalog, exposure, contracts)
        for ea, eb in zip(a, b):
            assert ea.table.equals(eb.table)

    def test_batch_size_does_not_change_results(self, world):
        perils, catalog, exposure, contracts = world
        a, _ = CatModPipeline(perils).run(catalog, exposure, contracts,
                                          batch_events=7)
        b, _ = CatModPipeline(perils).run(catalog, exposure, contracts,
                                          batch_events=64)
        for ea, eb in zip(a, b):
            assert ea.table.equals(eb.table)

    def test_event_ids_reference_catalogue(self, world):
        perils, catalog, exposure, contracts = world
        elts, _ = CatModPipeline(perils).run(catalog, exposure, contracts)
        valid = set(catalog.event_ids.tolist())
        for elt in elts:
            if elt.mean_losses.sum() > 0:
                assert set(elt.event_ids.tolist()) <= valid

    def test_losses_non_negative_with_sigma(self, world):
        perils, catalog, exposure, contracts = world
        elts, _ = CatModPipeline(perils).run(catalog, exposure, contracts)
        for elt in elts:
            assert (elt.mean_losses >= 0).all()
            assert (elt.sigmas >= 0).all()

    def test_min_loss_threshold_prunes(self, world):
        perils, catalog, exposure, contracts = world
        loose, _ = CatModPipeline(perils, min_mean_loss=1.0).run(
            catalog, exposure, contracts)
        strict, _ = CatModPipeline(perils, min_mean_loss=1e6).run(
            catalog, exposure, contracts)
        assert sum(e.n_events for e in strict) <= sum(e.n_events for e in loose)

    def test_stronger_deductible_lowers_losses(self, world):
        perils, catalog, exposure, _ = world
        rng = np.random.default_rng(3)
        weak = assign_contracts(exposure, 6, np.random.default_rng(3),
                                terms=PolicyTerms(deductible_fraction=0.0))
        strong = assign_contracts(exposure, 6, np.random.default_rng(3),
                                  terms=PolicyTerms(deductible_fraction=0.2))
        elts_w, _ = CatModPipeline(perils).run(catalog, exposure, weak)
        elts_s, _ = CatModPipeline(perils).run(catalog, exposure, strong)
        total_w = sum(e.mean_losses.sum() for e in elts_w)
        total_s = sum(e.mean_losses.sum() for e in elts_s)
        assert total_s < total_w

    def test_bad_args_rejected(self, world):
        perils, catalog, exposure, contracts = world
        pipe = CatModPipeline(perils)
        with pytest.raises(ConfigurationError):
            pipe.run(catalog, exposure, contracts, batch_events=0)
        with pytest.raises(ConfigurationError):
            pipe.run(catalog, exposure, [])
        with pytest.raises(ConfigurationError):
            CatModPipeline({})

    def test_contracts_must_cover_exposure(self, world):
        perils, catalog, exposure, contracts = world
        with pytest.raises(ConfigurationError):
            CatModPipeline(perils).run(catalog, exposure, contracts[:2])
