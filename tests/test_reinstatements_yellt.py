"""Tests for reinstatement provisions and YELLT materialisation."""

import numpy as np
import pytest

from repro.core.reinstatements import (
    apply_reinstatement_limit,
    reinstatement_premiums,
)
from repro.core.simulation import AggregateAnalysis
from repro.core.tables import YELT_SCHEMA, YeltTable, YetTable
from repro.core.yellt import (
    ELL_SCHEMA,
    YelltTable,
    materialize_yellt,
    yellt_to_yelt,
)
from repro.data.columnar import ColumnTable
from repro.errors import ConfigurationError


def make_yelt(trials, events, losses, n_trials=None):
    table = ColumnTable.from_arrays(
        YELT_SCHEMA, trial=trials, event_id=events, loss=losses
    )
    return YeltTable(table, n_trials or (max(trials) + 1 if trials else 1))


class TestReinstatementLimit:
    def test_capacity_consumed_in_order(self):
        # capacity = (1+1) * 100 = 200; losses 150, 100, 50 in one year
        yelt = make_yelt([0, 0, 0], [1, 2, 3], [150.0, 100.0, 50.0])
        out = apply_reinstatement_limit(yelt, occ_limit=100.0,
                                        n_reinstatements=1)
        np.testing.assert_allclose(out.table["loss"], [150.0, 50.0, 0.0])

    def test_unlimited_years_untouched(self):
        yelt = make_yelt([0, 1], [1, 1], [50.0, 60.0])
        out = apply_reinstatement_limit(yelt, occ_limit=100.0,
                                        n_reinstatements=5)
        np.testing.assert_allclose(out.table["loss"], [50.0, 60.0])

    def test_zero_reinstatements_single_fill(self):
        yelt = make_yelt([0, 0], [1, 2], [80.0, 80.0])
        out = apply_reinstatement_limit(yelt, occ_limit=100.0,
                                        n_reinstatements=0)
        np.testing.assert_allclose(out.table["loss"], [80.0, 20.0])

    def test_independent_across_trials(self):
        yelt = make_yelt([0, 0, 1, 1], [1, 2, 1, 2],
                         [150.0, 150.0, 150.0, 150.0])
        out = apply_reinstatement_limit(yelt, occ_limit=100.0,
                                        n_reinstatements=1)
        np.testing.assert_allclose(out.table["loss"],
                                   [150.0, 50.0, 150.0, 50.0])

    def test_annual_total_never_exceeds_capacity(self):
        rng = np.random.default_rng(0)
        n = 500
        trials = np.sort(rng.integers(0, 40, n))
        yelt = make_yelt(trials.tolist(),
                         rng.integers(0, 100, n).tolist(),
                         rng.lognormal(4, 1, n).tolist(), n_trials=40)
        out = apply_reinstatement_limit(yelt, occ_limit=50.0,
                                        n_reinstatements=2)
        annual = out.to_ylt().losses
        assert (annual <= 3 * 50.0 + 1e-9).all()

    def test_never_increases_any_row(self):
        rng = np.random.default_rng(1)
        n = 300
        trials = np.sort(rng.integers(0, 30, n))
        losses = rng.lognormal(3, 1, n)
        yelt = make_yelt(trials.tolist(),
                         rng.integers(0, 50, n).tolist(),
                         losses.tolist(), n_trials=30)
        out = apply_reinstatement_limit(yelt, occ_limit=20.0,
                                        n_reinstatements=3)
        assert (out.table["loss"] <= yelt.table["loss"] + 1e-12).all()

    def test_empty_yelt(self):
        yelt = YeltTable(ColumnTable(YELT_SCHEMA), n_trials=5)
        out = apply_reinstatement_limit(yelt, 10.0, 1)
        assert out.n_rows == 0

    def test_unsorted_rejected(self):
        table = ColumnTable.from_arrays(
            YELT_SCHEMA, trial=[1, 0], event_id=[1, 1], loss=[1.0, 1.0]
        )
        yelt = YeltTable(table, 2)
        with pytest.raises(ConfigurationError):
            apply_reinstatement_limit(yelt, 10.0, 1)

    @pytest.mark.parametrize("kwargs", [
        dict(occ_limit=0.0, n_reinstatements=1),
        dict(occ_limit=float("inf"), n_reinstatements=1),
        dict(occ_limit=10.0, n_reinstatements=-1),
    ])
    def test_bad_args_rejected(self, kwargs):
        yelt = make_yelt([0], [1], [1.0])
        with pytest.raises(ConfigurationError):
            apply_reinstatement_limit(yelt, **kwargs)


class TestReinstatementPremiums:
    def test_pro_rata(self):
        original = make_yelt([0, 1], [1, 1], [150.0, 20.0], n_trials=2)
        limited = apply_reinstatement_limit(original, occ_limit=100.0,
                                            n_reinstatements=1)
        premiums = reinstatement_premiums(original, limited, occ_limit=100.0,
                                          rate_on_line=0.1,
                                          n_reinstatements=1)
        # trial 0 consumed 50 beyond the first limit -> 0.5 reinstatement
        # at 0.1 * 100 premium per full reinstatement
        np.testing.assert_allclose(premiums, [5.0, 0.0])

    def test_capped_at_n_reinstatements(self):
        original = make_yelt([0, 0, 0], [1, 2, 3], [100.0, 100.0, 100.0],
                             n_trials=1)
        limited = apply_reinstatement_limit(original, occ_limit=100.0,
                                            n_reinstatements=1)
        premiums = reinstatement_premiums(original, limited, 100.0, 0.2, 1)
        # capacity 200 fully used; exactly one reinstatement bought
        np.testing.assert_allclose(premiums, [0.2 * 100.0])

    def test_mismatched_trials_rejected(self):
        a = make_yelt([0], [1], [1.0], n_trials=1)
        b = make_yelt([0], [1], [1.0], n_trials=2)
        with pytest.raises(ConfigurationError):
            reinstatement_premiums(a, b, 10.0, 0.1, 1)


class TestYellt:
    def make_ell(self):
        return ColumnTable.from_arrays(
            ELL_SCHEMA,
            event_id=[1, 1, 2, 5, 5, 5],
            location_id=[10, 11, 10, 20, 21, 22],
            loss=[5.0, 7.0, 3.0, 1.0, 2.0, 4.0],
        )

    def make_yet(self):
        from repro.core.tables import YET_SCHEMA

        table = ColumnTable.from_arrays(
            YET_SCHEMA,
            trial=[0, 0, 2],
            seq=[0, 1, 0],
            event_id=[1, 5, 1],
        )
        return YetTable(table, n_trials=3)

    def test_materialise_row_count(self):
        yellt = materialize_yellt(self.make_yet(), self.make_ell())
        # occurrences: e1 (2 locs), e5 (3 locs), e1 (2 locs) = 7 rows
        assert yellt.n_rows == 7

    def test_losses_joined_correctly(self):
        yellt = materialize_yellt(self.make_yet(), self.make_ell())
        assert yellt.total_loss() == pytest.approx(2 * (5 + 7) + (1 + 2 + 4))

    def test_events_without_locations_skipped(self):
        from repro.core.tables import YET_SCHEMA

        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0], seq=[0], event_id=[99]
        )
        yet = YetTable(table, n_trials=1)
        yellt = materialize_yellt(yet, self.make_ell())
        assert yellt.n_rows == 0

    def test_marginalisation_conserves_loss(self):
        yellt = materialize_yellt(self.make_yet(), self.make_ell())
        yelt = yellt_to_yelt(yellt)
        assert yelt.total_loss() == pytest.approx(yellt.total_loss())

    def test_marginalisation_row_ratio_is_locations_per_event(self):
        yellt = materialize_yellt(self.make_yet(), self.make_ell())
        yelt = yellt_to_yelt(yellt)
        assert yelt.n_rows == 3  # one row per occurrence
        assert yellt.n_rows / yelt.n_rows == pytest.approx(7 / 3)

    def test_max_rows_guard(self):
        with pytest.raises(ConfigurationError, match="max_rows"):
            materialize_yellt(self.make_yet(), self.make_ell(), max_rows=3)

    def test_wrong_schema_rejected(self):
        not_an_ell = ColumnTable.from_arrays(
            YELT_SCHEMA, trial=[0], event_id=[1], loss=[1.0]
        )
        with pytest.raises(ConfigurationError):
            materialize_yellt(self.make_yet(), not_an_ell)

    def test_empty_yellt_marginalises(self):
        from repro.core.yellt import YELLT_SCHEMA

        yellt = YelltTable(ColumnTable(YELLT_SCHEMA), n_trials=2)
        assert yellt_to_yelt(yellt).n_rows == 0

    def test_scaled_ratio_near_configured_locations(self):
        """Statistical version: locations/event drives the ratio (§II)."""
        rng = np.random.default_rng(0)
        n_events, locs_per_event = 50, 12
        ell = ColumnTable.from_arrays(
            ELL_SCHEMA,
            event_id=np.repeat(np.arange(n_events), locs_per_event),
            location_id=np.tile(np.arange(locs_per_event), n_events),
            loss=rng.lognormal(3, 1, n_events * locs_per_event),
        )
        ids = np.arange(n_events, dtype=np.int64)
        yet = YetTable.simulate(ids, np.full(n_events, 1.0), 200, rng,
                                mean_events_per_trial=8.0)
        yellt = materialize_yellt(yet, ell)
        yelt = yellt_to_yelt(yellt)
        # consecutive same-event occurrences in a trial merge into one
        # YELT row, inflating the ratio slightly above locs_per_event
        ratio = yellt.n_rows / yelt.n_rows
        assert locs_per_event <= ratio < locs_per_event * 1.1
