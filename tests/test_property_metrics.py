"""Property-based tests for risk metrics and EP curves."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analytics.ep_curves import EpCurve
from repro.core.tables import YltTable
from repro.dfa.metrics import RiskMetrics, tail_value_at_risk, value_at_risk

# Subnormals are excluded: scaling a denormal like 5e-324 underflows to
# zero, which changes quantile *tie-breaking* (not just rounding) and
# breaks exact-order properties like positive homogeneity.
loss_samples = hnp.arrays(
    np.float64,
    st.integers(4, 400),
    elements=st.floats(0.0, 1e12, allow_nan=False, allow_infinity=False,
                       allow_subnormal=False),
)


class TestMetricProperties:
    @settings(max_examples=60)
    @given(losses=loss_samples)
    def test_full_metric_coherence(self, losses):
        RiskMetrics.from_ylt(YltTable(losses)).check_coherence()

    @settings(max_examples=60)
    @given(losses=loss_samples,
           q=st.floats(0.0, 0.999, allow_nan=False))
    def test_tvar_dominates_var(self, losses, q):
        ylt = YltTable(losses)
        var = value_at_risk(ylt, q)
        tol = 1e-6 + 1e-9 * abs(var)
        assert tail_value_at_risk(ylt, q) >= var - tol

    @settings(max_examples=60)
    @given(losses=loss_samples)
    def test_var_bounded_by_sample(self, losses):
        ylt = YltTable(losses)
        for q in (0.5, 0.9, 0.99):
            v = value_at_risk(ylt, q)
            assert losses.min() - 1e-9 <= v <= losses.max() + 1e-9

    @settings(max_examples=60)
    @given(losses=loss_samples, shift=st.floats(0.0, 1e9, allow_nan=False))
    def test_translation_equivariance(self, losses, shift):
        """VaR(X + c) = VaR(X) + c — quantiles translate."""
        a = value_at_risk(YltTable(losses), 0.9)
        b = value_at_risk(YltTable(losses + shift), 0.9)
        np.testing.assert_allclose(b, a + shift, rtol=1e-9, atol=1e-3)

    @settings(max_examples=60)
    @given(losses=loss_samples, scale=st.floats(0.01, 1e3, allow_nan=False))
    def test_positive_homogeneity(self, losses, scale):
        """TVaR(cX) = c TVaR(X) for c > 0."""
        a = tail_value_at_risk(YltTable(losses), 0.9)
        b = tail_value_at_risk(YltTable(losses * scale), 0.9)
        np.testing.assert_allclose(b, a * scale, rtol=1e-9, atol=1e-6)

    @settings(max_examples=40)
    @given(a=loss_samples)
    def test_comonotonic_additivity_of_var(self, a):
        """VaR is additive for comonotone risks: sorting both identically."""
        x = np.sort(a)
        combined = YltTable(x + x)
        v_comb = value_at_risk(combined, 0.9)
        v_single = value_at_risk(YltTable(x), 0.9)
        np.testing.assert_allclose(v_comb, 2 * v_single, rtol=1e-9, atol=1e-6)


class TestEpCurveProperties:
    @settings(max_examples=60)
    @given(losses=loss_samples)
    def test_probability_bounds(self, losses):
        curve = EpCurve(losses)
        probs = curve.probability_of_exceeding(np.linspace(0, losses.max(), 20))
        assert ((probs >= 0) & (probs <= 1)).all()

    @settings(max_examples=60)
    @given(losses=loss_samples)
    def test_monotone_nonincreasing(self, losses):
        curve = EpCurve(losses)
        xs = np.sort(np.unique(np.concatenate([losses, losses * 1.1 + 1])))
        probs = curve.probability_of_exceeding(xs)
        assert (np.diff(probs) <= 1e-12).all()

    @settings(max_examples=60)
    @given(losses=loss_samples)
    def test_pointwise_dominance_of_scaled_curve(self, losses):
        base = EpCurve(losses)
        bigger = EpCurve(losses * 2.0 + 1.0)
        assert bigger.dominates(base)
