"""Tests for co-TVaR capital allocation."""

import numpy as np
import pytest

from repro.core.tables import YltTable
from repro.dfa.allocation import allocation_report_rows, co_tvar_allocation
from repro.dfa.metrics import tail_value_at_risk
from repro.errors import AnalysisError


def make_units(k=4, n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return {f"bu{i}": YltTable(rng.lognormal(10, 1, n)) for i in range(k)}


class TestCoTvar:
    def test_full_allocation_property(self):
        """Allocations sum exactly to the enterprise TVaR."""
        units = make_units()
        q = 0.99
        alloc = co_tvar_allocation(units, q)
        total = YltTable(np.sum([u.losses for u in units.values()], axis=0))
        assert sum(alloc.values()) == pytest.approx(
            tail_value_at_risk(total, q), rel=1e-9
        )

    def test_allocation_never_exceeds_standalone(self):
        """Diversifying units are charged at most their standalone TVaR
        (in expectation; allow small MC slack)."""
        units = make_units(seed=1)
        q = 0.99
        alloc = co_tvar_allocation(units, q)
        for name, ylt in units.items():
            standalone = tail_value_at_risk(ylt, q)
            assert alloc[name] <= standalone * 1.02

    def test_comonotone_unit_charged_fully(self):
        """A unit perfectly correlated with the total gets ~its standalone
        TVaR; an independent one gets ~its mean."""
        rng = np.random.default_rng(2)
        driver = np.sort(rng.lognormal(12, 1.2, 50_000))  # dominant risk
        locked = YltTable(driver * 0.5)                     # comonotone rider
        indep = YltTable(rng.permutation(driver) * 0.001)   # small independent
        units = {"driver": YltTable(driver), "locked": locked, "indep": indep}
        alloc = co_tvar_allocation(units, 0.99)
        assert alloc["locked"] == pytest.approx(
            tail_value_at_risk(locked, 0.99), rel=0.05
        )
        assert alloc["indep"] == pytest.approx(indep.mean(), rel=0.2)

    def test_single_unit_allocation_is_tvar(self):
        units = make_units(k=1)
        alloc = co_tvar_allocation(units, 0.95)
        assert alloc["bu0"] == pytest.approx(
            tail_value_at_risk(units["bu0"], 0.95), rel=1e-9
        )

    def test_q_zero_allocates_means(self):
        units = make_units(k=2)
        alloc = co_tvar_allocation(units, 0.0)
        for name, ylt in units.items():
            assert alloc[name] == pytest.approx(ylt.mean(), rel=1e-9)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            co_tvar_allocation({}, 0.9)
        with pytest.raises(AnalysisError):
            co_tvar_allocation(make_units(k=1), 1.0)
        bad = {"a": YltTable(np.ones(10)), "b": YltTable(np.ones(20))}
        with pytest.raises(AnalysisError):
            co_tvar_allocation(bad, 0.9)


class TestReportRows:
    def test_rows_shape(self):
        rows = allocation_report_rows(make_units(k=3), 0.99)
        assert len(rows) == 3
        assert all(len(r) == 4 for r in rows)
