"""Smoke tests for the experiment runners (tiny scales).

The E1-E11 runners are the source of EXPERIMENTS.md; these tests keep
them importable, runnable, and shape-stable without bench-scale cost.
The tier-2 bench modules that feed ``run_tier2.py`` get the same
treatment where they carry machinery of their own (E15's transport
comparison), so the bench cannot rot between perf runs.
"""

import sys
from pathlib import Path

import pytest

from repro.bench import experiments

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


class TestRunners:
    def test_e01_table_sizes(self):
        report = experiments.run_e01_table_sizes(n_trials=100)
        text = report.render()
        assert "5.00e+16" in text
        assert any("1000" in str(cell) for row in report.rows for cell in row)

    def test_e03_speedup_shape(self):
        report = experiments.run_e03_speedup(trials_list=(50,), repeats=1)
        assert len(report.rows) == 1
        # the speedup columns end with 'x'
        assert report.rows[0][-1].endswith("x")

    def test_e05_chunking(self):
        report = experiments.run_e05_chunking(
            n_trials=500, chunk_sizes=(50_000, None)
        )
        placements = {row[2] for row in report.rows}
        assert "constant" in placements and "global" in placements

    def test_e06_scan_vs_random(self):
        report = experiments.run_e06_scan_vs_random(
            n_occurrences=2_000, elt_rows=1_000
        )
        assert "faster" in report.notes[0]

    def test_e07_mapreduce(self):
        report = experiments.run_e07_mapreduce(n_trials=300, n_splits=4,
                                               workers=(1, 2))
        assert len(report.rows) == 2
        assert any("verified" in n for n in report.notes)

    def test_e08_stage1(self):
        report = experiments.run_e08_stage1_pipeline(
            n_events=60, n_sites=300, n_contracts=4
        )
        assert any("procs" in str(row[0]) for row in report.rows)

    def test_e09_burst(self):
        report = experiments.run_e09_burst_elasticity(measure_trials=500)
        assert any("burst factor" in n for n in report.notes)
        assert len(report.rows) == 4

    def test_e10_dfa(self):
        report = experiments.run_e10_dfa_metrics(n_trials=1_000)
        assert any("warehouse" in n for n in report.notes)
        # 4 combination columns per metric row
        assert all(len(row) == 5 for row in report.rows)

    def test_e11_ablations(self):
        report = experiments.run_e11_ablations(n_trials=300)
        sweeps = {row[0] for row in report.rows}
        assert sweeps == {"events/trial", "ELTs/layer"}

    @pytest.mark.slow
    def test_e04_million_trials_scaled(self):
        report = experiments.run_e04_million_trials(
            full_trials=20_000, events_per_trial=50.0,
            block_trials=10_000, throughput_trials=2_000,
        )
        assert len(report.rows) == 3


class TestBenchE15Smoke:
    """Tiny-shape run of the shm data-plane bench (tier-1 guard)."""

    def test_e15_measures_and_round_trips(self):
        sys.path.insert(0, str(BENCH_DIR))
        try:
            import bench_e15_shm_data_plane as e15
        finally:
            sys.path.remove(str(BENCH_DIR))
        from repro.hpc import shm

        if not shm.shm_available():
            record = e15.measure(ship_sizes=("small",),
                                 batch_sizes=("small",), n_batches=1)
            assert record["shm_available"] is False
            return
        tiny = dict(n_layers=2, n_trials=60, mean_events_per_trial=10.0,
                    elts_per_layer=1, elt_rows=50, catalog_events=200)
        row = e15.measure_batch_row("tiny", tiny, n_batches=1)
        # shape-stability: the keys run_tier2 prints and gates on
        for key in ("kernel_mb", "pickle_batch_seconds", "shm_batch_seconds",
                    "batch_speedup", "reships_on_repeat", "slab_generations"):
            assert key in row
        assert row["reships_on_repeat"] == 0
        ship = e15.measure_ship_row(
            "tiny", dict(n_trials=50, mean_events_per_trial=10.0), repeats=1
        )
        assert ship["handle_bytes"] < 1024
        assert ship["shm_reship_seconds"] < ship["pickle_ship_seconds"] * 10


class TestBenchE16Smoke:
    """Tiny-shape run of the session-reuse bench (tier-1 guard)."""

    def test_e16_measures_and_round_trips(self):
        sys.path.insert(0, str(BENCH_DIR))
        try:
            import bench_e16_session_reuse as e16
        finally:
            sys.path.remove(str(BENCH_DIR))

        tiny = dict(n_layers=2, n_trials=60, mean_events_per_trial=10.0,
                    elts_per_layer=1, elt_rows=50, catalog_events=200)
        row = e16.measure_row("tiny", tiny, repeats=1, n_quotes=2)
        # shape-stability: the keys run_tier2 prints and gates on
        for key in ("baseline_seconds", "session_seconds", "speedup",
                    "session_payload_ships", "baseline_constructions"):
            assert key in row
        # the session invariant holds even at toy scale
        assert row["session_payload_ships"] <= 1
        assert row["baseline_seconds"] > 0 and row["session_seconds"] > 0


class TestBenchE17Smoke:
    """Tiny-shape run of the fault-recovery bench (tier-1 guard)."""

    def test_e17_measures_and_round_trips(self):
        sys.path.insert(0, str(BENCH_DIR))
        try:
            import bench_e17_fault_recovery as e17
        finally:
            sys.path.remove(str(BENCH_DIR))

        tiny = dict(n_layers=2, n_trials=60, mean_events_per_trial=10.0,
                    elts_per_layer=1, elt_rows=50, catalog_events=200)
        row = e17.measure_row("tiny", tiny, repeats=1)
        # shape-stability: the keys run_tier2 prints and gates on
        for key in ("clean_seconds", "faulted_seconds",
                    "recovery_overhead_seconds", "degraded_seconds",
                    "degraded_slowdown", "bit_identical_after_recovery",
                    "bit_identical_degraded", "worker_deaths", "retries",
                    "executor_cycles", "fault_reports",
                    "health_after_fault"):
            assert key in row
        # the recovery contract holds even at toy scale
        assert row["bit_identical_after_recovery"] is True
        assert row["bit_identical_degraded"] is True
        assert row["worker_deaths"] >= 1
        assert row["fault_reports"][0]["pending"] == 0


class TestBenchE18Smoke:
    """Tiny-shape run of the sublinear tail-group bench (tier-1 guard)."""

    def test_e18_measures_and_round_trips(self):
        sys.path.insert(0, str(BENCH_DIR))
        try:
            import bench_e18_sublinear_tail as e18
        finally:
            sys.path.remove(str(BENCH_DIR))

        tiny = dict(n_trials=80, mean_events_per_trial=12.0, n_elts=1,
                    elt_rows=60, catalog_events=300)
        record = e18.measure(lane_counts=(16,), device_lane_counts=(16,),
                             repeats=1, **tiny)
        # shape-stability: the keys run_tier2 prints and gates on
        (row,) = record["rows"]
        for key in ("n_layers", "lane_seconds", "group_seconds", "speedup",
                    "group_lanes_per_s", "max_abs_err", "tail_group_rows"):
            assert key in row
        # parity held (measure() asserts it before timing) and the whole
        # same-book stack qualified for the group path
        assert row["max_abs_err"] <= e18.PARITY_ATOL
        assert row["tail_group_rows"] == 16
        (dev,) = record["device_rows"]
        for key in ("n_batches", "stack_uploads", "yet_uploads",
                    "n_chunks_total", "per_layer_uploads_would_be"):
            assert key in dev
        # the placement invariant holds even at toy scale
        assert dev["stack_uploads"] == dev["n_batches"]
        assert dev["yet_uploads"] == dev["n_chunks_total"]


class TestBenchE19Smoke:
    """Tiny-shape run of the open-loop saturation bench (tier-1 guard)."""

    def test_e19_measures_and_round_trips(self):
        sys.path.insert(0, str(BENCH_DIR))
        try:
            import bench_e19_open_loop as e19
        finally:
            sys.path.remove(str(BENCH_DIR))

        tiny = dict(n_trials=80, mean_events_per_trial=12.0, n_elts=1,
                    elt_rows=60, catalog_events=300)
        record = e19.measure(multiples=(0.25, 2.0), duration_seconds=0.2,
                             **tiny)
        assert record["capacity_rps"] > 0
        # shape-stability: the keys run_tier2 prints and gates on
        for row in record["rows"]:
            for key in ("name", "mix", "engine", "offered_rate",
                        "achieved_offer_rate", "offered", "served", "shed",
                        "shed_rate", "served_rate", "p50_ms", "p95_ms",
                        "p99_ms", "queue_depth_max", "cache_hits",
                        "rate_multiple"):
                assert key in row, f"{row.get('name')} missing {key}"
        # every row's numbers came from the telemetry plane, so the
        # accounting identity holds at any scale
        for row in record["rows"]:
            assert row["served"] + row["shed"] == row["offered"]
            assert row["latency_count"] == row["served"]
        # sub-knee never sheds, even at toy scale
        below = next(r for r in record["rows"] if r["name"] == "quotes@0.25x")
        assert below["shed"] == 0

    def test_loadgen_rejects_bad_specs(self):
        sys.path.insert(0, str(BENCH_DIR))
        try:
            import loadgen
        finally:
            sys.path.remove(str(BENCH_DIR))

        with pytest.raises(ValueError):
            loadgen.RunSpec(name="bad", mix="nope")
        with pytest.raises(ValueError):
            loadgen.RunSpec(name="bad", rate=0.0)
        with pytest.raises(ValueError):
            loadgen.build_request_pool("nope", [])
