"""Smoke tests for the experiment runners (tiny scales).

The E1-E11 runners are the source of EXPERIMENTS.md; these tests keep
them importable, runnable, and shape-stable without bench-scale cost.
"""

import pytest

from repro.bench import experiments


class TestRunners:
    def test_e01_table_sizes(self):
        report = experiments.run_e01_table_sizes(n_trials=100)
        text = report.render()
        assert "5.00e+16" in text
        assert any("1000" in str(cell) for row in report.rows for cell in row)

    def test_e03_speedup_shape(self):
        report = experiments.run_e03_speedup(trials_list=(50,), repeats=1)
        assert len(report.rows) == 1
        # the speedup columns end with 'x'
        assert report.rows[0][-1].endswith("x")

    def test_e05_chunking(self):
        report = experiments.run_e05_chunking(
            n_trials=500, chunk_sizes=(50_000, None)
        )
        placements = {row[2] for row in report.rows}
        assert "constant" in placements and "global" in placements

    def test_e06_scan_vs_random(self):
        report = experiments.run_e06_scan_vs_random(
            n_occurrences=2_000, elt_rows=1_000
        )
        assert "faster" in report.notes[0]

    def test_e07_mapreduce(self):
        report = experiments.run_e07_mapreduce(n_trials=300, n_splits=4,
                                               workers=(1, 2))
        assert len(report.rows) == 2
        assert any("verified" in n for n in report.notes)

    def test_e08_stage1(self):
        report = experiments.run_e08_stage1_pipeline(
            n_events=60, n_sites=300, n_contracts=4
        )
        assert any("procs" in str(row[0]) for row in report.rows)

    def test_e09_burst(self):
        report = experiments.run_e09_burst_elasticity(measure_trials=500)
        assert any("burst factor" in n for n in report.notes)
        assert len(report.rows) == 4

    def test_e10_dfa(self):
        report = experiments.run_e10_dfa_metrics(n_trials=1_000)
        assert any("warehouse" in n for n in report.notes)
        # 4 combination columns per metric row
        assert all(len(row) == 5 for row in report.rows)

    def test_e11_ablations(self):
        report = experiments.run_e11_ablations(n_trials=300)
        sweeps = {row[0] for row in report.rows}
        assert sweeps == {"events/trial", "ELTs/layer"}

    @pytest.mark.slow
    def test_e04_million_trials_scaled(self):
        report = experiments.run_e04_million_trials(
            full_trials=20_000, events_per_trial=50.0,
            block_trials=10_000, throughput_trials=2_000,
        )
        assert len(report.rows) == 3
