"""The telemetry plane: registry semantics, spans, events, and the
instrumented subsystems' use of them.

Covers the rules of record in :mod:`repro.obs`: counter monotonicity,
histogram bucket math, prometheus round-trips, span nesting under the
micro-batcher's broker thread, registry thread-safety under concurrent
quote traffic, the chaos contract (fault injection must surface as
degradation/recovery events), and the tier-1 overhead guard holding the
instrumented sweep to within 5% of ``telemetry=False``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench.workloads import build_layer_workload
from repro.errors import ExecutionError
from repro.hpc import TaskPolicy, WorkPool
from repro.hpc import faults
from repro.hpc.faults import FaultPlan, FaultSpec
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    Telemetry,
    as_telemetry,
    parse_prometheus_text,
    prometheus_name,
)
from repro.serve import BatchPolicy, CachePolicy, PricingService
from repro.session import RiskSession

TINY = dict(n_trials=120, mean_events_per_trial=12.0, n_elts=1,
            elt_rows=60, catalog_events=400, seed=11)


def _square(x):
    return x * x


# ---------------------------------------------------------------------------
# registry primitives
# ---------------------------------------------------------------------------

class TestCounter:
    def test_monotone(self):
        c = MetricsRegistry().counter("t.count")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("t.count")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0

    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("t.x") is reg.counter("t.x")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("t.x")
        with pytest.raises(ValueError):
            reg.gauge("t.x")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("t.level")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0

    def test_track_max_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("t.depth", track_max=True)
        g.set(7)
        g.set(2)
        assert g.value == 2.0 and g.max_value == 7.0
        snap = reg.snapshot()
        assert snap["t.depth"] == 2.0 and snap["t.depth.max"] == 7.0


class TestHistogram:
    def test_bucket_math(self):
        h = MetricsRegistry().histogram("t.lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        buckets = h.bucket_counts()
        # le semantics: inclusive upper bounds, cumulative counts
        assert buckets[1.0] == 2          # 0.5, 1.0
        assert buckets[2.0] == 3          # + 1.5
        assert buckets[4.0] == 4          # + 3.0
        assert buckets[float("inf")] == 5  # + 100.0 overflow
        assert h.count == 5
        assert h.sum == pytest.approx(106.0)
        assert h.max_value == 100.0

    def test_quantiles_interpolate_and_clamp(self):
        h = MetricsRegistry().histogram("t.lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            h.observe(0.5)
        # all mass in the first bucket: interpolation stays inside it
        assert 0.0 < h.quantile(0.5) <= 1.0
        h.observe(1.2)
        # the p100 escapes into (1, 2] but can never exceed observed max
        assert h.quantile(1.0) <= 1.2
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        h = MetricsRegistry().histogram("t.lat")
        assert h.quantile(0.99) == 0.0

    def test_snapshot_expands_summary_keys(self):
        reg = MetricsRegistry()
        reg.histogram("t.lat").observe(0.01)
        snap = reg.snapshot()
        for suffix in (".count", ".sum", ".max", ".p50", ".p95", ".p99"):
            assert "t.lat" + suffix in snap


class TestDisabledRegistry:
    def test_noop_handles_absorb_updates(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("t.x")
        c.inc(5)
        reg.gauge("t.g").set(3)
        reg.histogram("t.h").observe(1.0)
        assert c.value == 0.0
        assert reg.snapshot() == {}
        assert reg.samples() == {}

    def test_as_telemetry_coercion(self):
        tel = Telemetry()
        assert as_telemetry(tel) is tel
        assert as_telemetry(None).enabled is True
        assert as_telemetry(True).enabled is True
        assert as_telemetry(False).enabled is False
        with pytest.raises(TypeError):
            as_telemetry("yes")

    def test_disabled_telemetry_spans_and_events(self):
        tel = Telemetry(enabled=False)
        with tel.span("t.block") as span:
            span.annotate(rows=1)
        assert tel.event("t.kind", a=1) is None
        assert tel.snapshot()["metrics"] == {}
        assert tel.snapshot()["spans"] == []


class TestPrometheus:
    def test_name_mangling(self):
        assert (prometheus_name("serve.request.seconds")
                == "repro_serve_request_seconds")

    def test_round_trip_exact(self):
        reg = MetricsRegistry()
        reg.counter("t.requests").inc(3)
        reg.gauge("t.depth", track_max=True).set(2.5)
        h = reg.histogram("t.lat", buckets=DEFAULT_LATENCY_BUCKETS)
        for v in (0.0001, 0.003, 0.2, 42.0):
            h.observe(v)
        assert parse_prometheus_text(reg.to_prometheus_text()) == reg.samples()

    def test_bucket_series_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        samples = reg.samples()
        assert samples['repro_t_lat_bucket{le="0.1"}'] == 1.0
        assert samples['repro_t_lat_bucket{le="1"}'] == 2.0
        assert samples['repro_t_lat_bucket{le="+Inf"}'] == 2.0
        assert samples["repro_t_lat_count"] == 2.0


# ---------------------------------------------------------------------------
# spans and events
# ---------------------------------------------------------------------------

class TestTracing:
    def test_nesting_and_completion_order(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        inner_rec, outer_rec = tel.tracer.records()
        assert inner_rec.name == "inner"          # children finish first
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None
        assert outer_rec.wall_seconds >= inner_rec.wall_seconds >= 0.0

    def test_threads_get_separate_stacks(self):
        tel = Telemetry()
        inner_parent = []

        def other_thread():
            with tel.span("b"):
                pass

        with tel.span("a"):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        b_rec = tel.tracer.records("b")[0]
        assert b_rec.parent_id is None            # not parented across threads

    def test_span_feeds_histogram(self):
        tel = Telemetry()
        with tel.span("work"):
            time.sleep(0.001)
        snap = tel.snapshot()["metrics"]
        assert snap["span.work.seconds.count"] == 1.0
        assert snap["span.work.seconds.sum"] > 0.0

    def test_bounded_buffer_rotates(self):
        tel = Telemetry(max_spans=4)
        for i in range(10):
            with tel.span("s"):
                pass
        assert len(tel.tracer.records()) == 4


class TestEvents:
    def test_emit_and_tail(self):
        tel = Telemetry()
        tel.event("t.alpha", n=1)
        tel.event("t.beta")
        tel.event("t.alpha", n=2)
        alphas = tel.events.tail(kind="t.alpha")
        assert [e.fields["n"] for e in alphas] == [1, 2]
        assert [e.kind for e in tel.events.tail(2)] == ["t.beta", "t.alpha"]

    def test_counter_outlives_rotation(self):
        tel = Telemetry(max_events=2)
        for _ in range(5):
            tel.event("t.kind")
        assert len(tel.events) == 2
        assert tel.snapshot()["metrics"]["events.t.kind"] == 5.0


# ---------------------------------------------------------------------------
# instrumented subsystems
# ---------------------------------------------------------------------------

def _tiny_service(**overrides):
    wl = build_layer_workload(**TINY)
    kwargs = dict(
        batch=BatchPolicy(max_batch=8, window_seconds=0.001, auto_flush=True),
        cache=CachePolicy(max_entries=0),
    )
    kwargs.update(overrides)
    return wl, PricingService(wl.yet, **kwargs)


class TestServeSpans:
    def test_batch_span_parents_stack_dispatch_merge(self):
        """The broker thread's batch span must parent its stage spans."""
        wl, svc = _tiny_service()
        with svc:
            svc.quote(wl.portfolio.layers[0])
            batch = svc.telemetry.tracer.records("serve.batch")[-1]
            for stage in ("serve.stack", "serve.dispatch", "serve.merge"):
                rec = svc.telemetry.tracer.records(stage)[-1]
                assert rec.parent_id == batch.span_id, stage
                assert rec.thread == batch.thread
            # completion order: children land before their parent
            order = [r.name for r in svc.telemetry.tracer.records()
                     if r.name.startswith("serve.")]
            assert order.index("serve.merge") < order.index("serve.batch")

    def test_registry_thread_safe_under_concurrent_quotes(self):
        """≥8 threads quoting through one service: counts stay exact."""
        n_threads, per_thread = 8, 4
        wl, svc = _tiny_service()
        layers = wl.portfolio.layers
        errors = []

        def worker(i):
            try:
                for j in range(per_thread):
                    svc.quote(layers[(i + j) % len(layers)])
            except Exception as exc:          # pragma: no cover - must not fire
                errors.append(exc)

        with svc:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snap = svc.telemetry.snapshot()["metrics"]
        assert not errors
        total = n_threads * per_thread
        assert snap["serve.requests"] == total
        assert snap["serve.request.seconds.count"] == total
        assert snap["serve.batched_requests"] == total
        assert parse_prometheus_text(svc.telemetry.to_prometheus_text()) \
            == svc.telemetry.samples()

    def test_stats_view_matches_registry(self):
        wl, svc = _tiny_service()
        with svc:
            svc.quote(wl.portfolio.layers[0])
            snap = svc.stats.snapshot()
            metrics = svc.telemetry.snapshot()["metrics"]
        assert snap["serve.requests"] == metrics["serve.requests"] == 1
        assert svc.stats.requests == 1


class TestSessionTelemetry:
    def test_session_scrape_covers_request_path(self):
        wl = build_layer_workload(**TINY)
        with RiskSession(wl.yet, wl.portfolio) as session:
            session.aggregate(engine="vectorized")
            session.quote(wl.portfolio.layers[0])
            snap = session.telemetry.snapshot()
        m = snap["metrics"]
        assert m["session.aggregates"] == 1.0
        assert m["session.quotes"] == 1.0
        assert m["engine.vectorized.runs"] >= 1.0
        assert session.stats.snapshot()["session.aggregates"] == 1.0
        span_names = {s["name"] for s in snap["spans"]}
        assert "session.sweep" in span_names

    def test_plan_decision_event(self):
        wl = build_layer_workload(**TINY)
        with RiskSession(wl.yet, wl.portfolio) as session:
            session.plan()
            decisions = session.telemetry.events.tail(kind="plan.decision")
        assert decisions
        assert "engine" in decisions[0].fields
        assert "alternatives" in decisions[0].fields

    def test_telemetry_off_still_prices_correctly(self):
        wl = build_layer_workload(**TINY)
        with RiskSession(wl.yet, wl.portfolio, telemetry=False) as session:
            on = session.aggregate(engine="vectorized")
            assert session.telemetry.snapshot()["metrics"] == {}
        with RiskSession(wl.yet, wl.portfolio) as session:
            off = session.aggregate(engine="vectorized")
        import numpy as np
        np.testing.assert_allclose(on.portfolio_ylt.losses,
                                   off.portfolio_ylt.losses)


@pytest.mark.chaos
class TestChaosEvents:
    """Fault injection must surface in the event log, not just counters."""

    @pytest.fixture(autouse=True)
    def _no_leftover_plan(self):
        yield
        faults.clear()

    def test_injection_emits_fault_and_degradation_events(self):
        plan_specs = [FaultSpec("kill", i) for i in range(24)]
        policy = TaskPolicy(max_retries=0, backoff_seconds=0.0)
        with WorkPool(n_workers=2, degrade_after=2) as pool:
            with faults.inject(FaultPlan(plan_specs)):
                for _ in range(2):
                    with pytest.raises(ExecutionError):
                        pool.map(_square, [1, 2, 3], policy=policy)
            assert pool.health.degraded
            kinds = [e.kind for e in pool.telemetry.events.tail()]
            assert "fault.injected" in kinds
            assert "pool.degraded" in kinds
            assert "pool.recovered" not in kinds
            metrics = pool.telemetry.snapshot()["metrics"]
            assert metrics["events.fault.injected"] >= 1.0
            assert metrics["pool.degraded"] == 1.0        # the gauge
            # recovery is an event too
            pool.reset_health()
            assert not pool.health.degraded
            kinds = [e.kind for e in pool.telemetry.events.tail()]
            assert "pool.recovered" in kinds
            assert pool.telemetry.snapshot()["metrics"]["pool.degraded"] == 0.0

    def test_kill_recovery_keeps_health_view_consistent(self):
        with WorkPool(n_workers=2, seed=3) as pool:
            with faults.inject(FaultPlan.kill_task(2)):
                got = pool.map(_square, list(range(8)),
                               policy=TaskPolicy(max_retries=2,
                                                 backoff_seconds=0.0))
            assert got == [i * i for i in range(8)]
            snap = pool.health.snapshot()
            metrics = pool.telemetry.snapshot()["metrics"]
            assert snap["pool.worker_deaths"] == metrics["pool.worker_deaths"]
            assert snap["pool.worker_deaths"] >= 1


# ---------------------------------------------------------------------------
# the overhead guard
# ---------------------------------------------------------------------------

def _best_sweep_seconds(telemetry: bool, wl, repeats: int = 25) -> float:
    with RiskSession(wl.yet, wl.portfolio, telemetry=telemetry) as session:
        session.aggregate(engine="vectorized")       # warm every cache
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            session.aggregate(engine="vectorized")
            best = min(best, time.perf_counter() - t0)
    return best


def test_overhead_guard_instrumented_within_5pct():
    """The tentpole's cost ceiling: a telemetry-on sweep stays within 5%
    of telemetry-off.  Min-of-N timings with a few re-measure attempts
    damp scheduler noise — a genuine regression fails all attempts."""
    wl = build_layer_workload(n_trials=600, mean_events_per_trial=40.0,
                              n_elts=1, elt_rows=120, catalog_events=1_500,
                              seed=5)
    ratio = float("inf")
    for _ in range(4):
        off = _best_sweep_seconds(False, wl)
        on = _best_sweep_seconds(True, wl)
        ratio = min(ratio, on / off if off > 0 else float("inf"))
        if ratio <= 1.05:
            break
    assert ratio <= 1.05, (
        f"instrumented sweep is {ratio:.3f}x the telemetry=off sweep "
        "(bar: 1.05x)"
    )
