"""The serving layer: batcher parity, cache behaviour, admission control.

The central invariant: a quote that rode a coalesced multi-request sweep
must equal the same layer priced alone through a direct
``PortfolioKernel.run`` — batching changes wall time, never answers.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.ep_curves import aep_curve
from repro.core.kernels import PortfolioKernel
from repro.core.layer import Layer
from repro.core.tables import EltTable, YetTable
from repro.core.terms import LayerTerms
from repro.dfa.metrics import tail_value_at_risk
from repro.errors import AdmissionError, ConfigurationError
from repro.serve import (
    AdmissionController,
    BatchPolicy,
    CachePolicy,
    InlineDispatcher,
    PooledDispatcher,
    PricingService,
    ResultCache,
    layer_digest,
    make_dispatcher,
)


def direct_layer_pricing(layer, yet):
    """One layer priced alone through the fused kernel (the oracle)."""
    kernel = PortfolioKernel.from_layers([layer], layer_ids=[0])
    return kernel.run(yet.trials, yet.event_ids, yet.n_trials)[0]


def fresh_yet(n_trials=300, catalog_events=600, seed=5, epk=30.0):
    ids = np.arange(catalog_events, dtype=np.int64)
    rates = np.full(catalog_events, 1.0 / catalog_events)
    return YetTable.simulate(ids, rates, n_trials,
                             np.random.default_rng(seed),
                             mean_events_per_trial=epk)


@functools.lru_cache(maxsize=1)
def _hypothesis_rig():
    """One shared (YET, ELTs, id counter) across Hypothesis examples —
    a module fixture would trip the function-scoped-fixture health check."""
    from repro.bench.workloads import build_elt

    rng = np.random.default_rng(77)
    elts = tuple(build_elt(150, 500, rng, contract_id=i) for i in range(2))
    return fresh_yet(n_trials=200, catalog_events=500, seed=7, epk=25.0), \
        elts, itertools.count().__next__


# ---------------------------------------------------------------------------
# batcher parity
# ---------------------------------------------------------------------------

class TestBatcherParity:
    def test_batched_quotes_match_direct_pricing(self, small_portfolio_workload):
        wl = small_portfolio_workload
        layers = list(wl.portfolio)
        with PricingService(wl.yet) as svc:
            quotes = svc.quote_many(layers)
            # scraped off the public telemetry plane (stats attribute
            # access still works but is the deprecated surface)
            metrics = svc.telemetry.snapshot()["metrics"]
            assert metrics["serve.batches"] == 1, \
                "all requests must share one sweep"
            for layer, q in zip(layers, quotes):
                losses = direct_layer_pricing(layer, wl.yet)
                np.testing.assert_allclose(q.expected_loss, losses.mean(),
                                           rtol=1e-9, atol=1e-6)

    def test_quote_decomposition_and_latency_fields(self, tiny_workload):
        with PricingService(tiny_workload.yet) as svc:
            q = svc.quote(tiny_workload.portfolio.layers[0])
        assert q.premium == pytest.approx(
            q.expected_loss + q.volatility_load + q.tail_load
        )
        assert q.latency_seconds > 0
        assert q.trials_per_second > 0

    def test_duplicate_requests_collapse_to_one_kernel_row(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        with PricingService(tiny_workload.yet, cache=CachePolicy(0)) as svc:
            quotes = svc.quote_many([layer, layer, layer])
        assert svc.stats.batches == 1
        assert svc.stats.kernel_rows == 1, "identical layers share one row"
        assert quotes[0].premium == quotes[1].premium == quotes[2].premium

    def test_many_quotes_one_book_routes_sublinear(self, tiny_workload):
        # The quote_many shape the sublinear tail-group path exists for:
        # >=16 distinct tail-attaching layers over one shared book form
        # one same-lookup group in the stacked kernel, and the service
        # counts the batch as sublinear-qualified.
        wl = tiny_workload
        elts = wl.portfolio.layers[0].elts
        layers = [
            Layer(i, elts, LayerTerms(occ_retention=1e4 + 500.0 * i,
                                      occ_limit=5e5))
            for i in range(20)
        ]
        with PricingService(wl.yet, cache=CachePolicy(0)) as svc:
            quotes = svc.quote_many(layers)
            assert svc.stats.batches == 1
            assert svc.stats.sublinear_batches == 1
            assert svc.stats.sublinear_rows >= 16
        for layer, q in zip(layers[:3], quotes[:3]):
            losses = direct_layer_pricing(layer, wl.yet)
            np.testing.assert_allclose(q.expected_loss, losses.mean(),
                                       rtol=1e-9, atol=1e-6)

    def test_mixed_metrics_one_sweep(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        with PricingService(tiny_workload.yet) as svc:
            t_quote = svc.submit(layer, "quote")
            t_ylt = svc.submit(layer, "ylt")
            t_ep = svc.submit(layer, "ep_curve")
            svc.drain()
            quote, ylt, ep = (t.result(5) for t in (t_quote, t_ylt, t_ep))
        assert svc.stats.batches == 1
        np.testing.assert_allclose(
            ylt.losses, direct_layer_pricing(layer, tiny_workload.yet)
        )
        ref = aep_curve(ylt)
        assert ep.loss_at_return_period(50.0) == pytest.approx(
            ref.loss_at_return_period(50.0)
        )
        assert quote.expected_loss == pytest.approx(ylt.mean())

    @settings(max_examples=25, deadline=None)
    @given(
        occ_retention=st.floats(0.0, 3e6, allow_nan=False),
        occ_limit=st.floats(1e5, 1e9, allow_nan=False),
        agg_retention=st.floats(0.0, 5e6, allow_nan=False),
        agg_limit=st.floats(1e5, 1e10, allow_nan=False),
        participation=st.floats(0.05, 1.0, allow_nan=False,
                                exclude_min=True),
    )
    def test_random_terms_parity(self, occ_retention, occ_limit,
                                 agg_retention, agg_limit, participation):
        """Hypothesis-random terms: batched == direct, bit for bit-ish."""
        yet, elts, counter = _hypothesis_rig()
        terms = LayerTerms(
            occ_retention=occ_retention, occ_limit=occ_limit,
            agg_retention=agg_retention, agg_limit=agg_limit,
            participation=participation,
        )
        ad_hoc = Layer(counter(), elts, terms)
        fixed = Layer(counter(), elts, LayerTerms(occ_retention=1e5))
        with PricingService(yet, cache=CachePolicy(0)) as svc:
            q_batch = svc.quote_many([ad_hoc, fixed])[0]
        direct = direct_layer_pricing(ad_hoc, yet)
        np.testing.assert_allclose(q_batch.expected_loss, direct.mean(),
                                   rtol=1e-9, atol=1e-6)
        tol_std = float(direct.std(ddof=1)) if direct.size > 1 else 0.0
        np.testing.assert_allclose(
            q_batch.volatility_load, 0.25 * tol_std, rtol=1e-9, atol=1e-6
        )


# ---------------------------------------------------------------------------
# dispatchers
# ---------------------------------------------------------------------------

class TestDispatchers:
    def test_pooled_matches_inline(self, small_portfolio_workload):
        wl = small_portfolio_workload
        layers = list(wl.portfolio)
        with PricingService(wl.yet, engine=PooledDispatcher(n_workers=2)) as pooled:
            pooled.warmup()
            qp = pooled.quote_many(layers)
        with PricingService(wl.yet) as inline:
            qi = inline.quote_many(layers)
        for a, b in zip(qp, qi):
            assert a.premium == pytest.approx(b.premium, rel=1e-9)

    def test_make_dispatcher_aliases(self):
        assert isinstance(make_dispatcher("vectorized"), InlineDispatcher)
        assert isinstance(make_dispatcher("inline"), InlineDispatcher)
        pooled = make_dispatcher("multicore")
        assert isinstance(pooled, PooledDispatcher)
        pooled.close()
        with pytest.raises(ConfigurationError):
            make_dispatcher("warp-drive")

    def test_dispatcher_instance_passes_through(self):
        d = InlineDispatcher()
        assert make_dispatcher(d) is d

    def test_ensure_started_actually_spawns_workers(self):
        from repro.hpc.pool import WorkPool

        with WorkPool(2) as pool:
            pool.ensure_started()
            assert pool._executor is not None
            assert len(pool._executor._processes) >= 1, (
                "warm-up must fork real workers, not just build the "
                "executor object"
            )


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

class TestCache:
    def test_hit_on_equal_content_distinct_objects(self, tiny_workload):
        base = tiny_workload.portfolio.layers[0]
        twin = Layer(base.layer_id, base.elts, base.terms)
        with PricingService(tiny_workload.yet) as svc:
            first = svc.quote(base)
            again = svc.quote(twin)
        # telemetry is the scrape surface; cache bytes ride along
        metrics = svc.telemetry.snapshot()["metrics"]
        assert metrics["serve.cache.hits"] == 1
        assert metrics["serve.batches"] == 1, "the hit must not trigger a sweep"
        assert metrics["serve.cache.hit_bytes"] > 0
        assert svc.stats.cache_hits == 1        # legacy view stays coherent
        assert again.premium == first.premium
        # latency fields are re-stamped per request, not served stale
        assert again.latency_seconds != first.latency_seconds

    def test_lru_eviction(self, small_portfolio_workload):
        wl = small_portfolio_workload
        layers = list(wl.portfolio)[:3]
        with PricingService(wl.yet, cache=CachePolicy(max_entries=2)) as svc:
            for layer in layers:
                svc.quote(layer)          # fills: 0,1 then evicts 0 for 2
            assert len(svc.cache) == 2
            assert svc.cache.stats.evictions == 1
            svc.quote(layers[0])          # evicted -> a fresh sweep
        assert svc.cache.stats.hits == 0
        assert svc.stats.batches == 4

    def test_invalidation_on_resimulate(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        with PricingService(tiny_workload.yet) as svc:
            before = svc.quote(layer)
            dropped = svc.resimulate(fresh_yet(n_trials=tiny_workload.yet.n_trials))
            assert dropped == 1
            after = svc.quote(layer)
        assert svc.stats.cache_hits == 0
        assert after.expected_loss != before.expected_loss

    def test_digest_is_content_addressed(self, tiny_workload):
        base = tiny_workload.portfolio.layers[0]
        twin = Layer(99, base.elts, base.terms)   # layer_id is NOT content
        assert layer_digest(base) == layer_digest(twin)
        reterm = Layer(base.layer_id, base.elts,
                       LayerTerms(occ_retention=base.terms.occ_retention + 1.0))
        assert layer_digest(base) != layer_digest(reterm)

    def test_zero_entry_policy_disables_cache(self):
        cache = ResultCache(CachePolicy(max_entries=0))
        cache.put(("a", "b", "quote"), 1)
        assert len(cache) == 0
        assert cache.get(("a", "b", "quote")) is None

    def test_shared_cache_respects_loadings(self, tiny_workload):
        """Two services sharing one cache but configured with different
        premium loadings must never serve each other's quotes."""
        shared = ResultCache()
        layer = tiny_workload.portfolio.layers[0]
        with PricingService(tiny_workload.yet, cache=shared) as loaded:
            q_loaded = loaded.quote(layer)
        with PricingService(tiny_workload.yet, cache=shared,
                            volatility_loading=0.0,
                            tail_loading=0.0) as pure:
            q_pure = pure.quote(layer)
        assert q_pure.premium == pytest.approx(q_pure.expected_loss)
        assert q_loaded.premium > q_pure.premium
        # the loading-free ylt/ep_curve payloads DO share
        with PricingService(tiny_workload.yet, cache=shared) as again:
            again.ylt(layer)
            assert shared.stats.hits == 0
        with PricingService(tiny_workload.yet, cache=shared,
                            volatility_loading=0.0) as other:
            other.ylt(layer)
            assert shared.stats.hits == 1

    def test_byte_budget_evicts_bulky_payloads(self, small_portfolio_workload):
        """EP curves are ~n_trials floats: a byte budget of about two of
        them must keep the cache at two entries regardless of max_entries."""
        wl = small_portfolio_workload
        budget = 2 * wl.yet.n_trials * 8 + 16
        with PricingService(
            wl.yet,
            cache=CachePolicy(max_entries=100, max_bytes=budget),
        ) as svc:
            for layer in wl.portfolio.layers:        # 3 distinct curves
                svc.ep_curve(layer)
        assert len(svc.cache) <= 2
        assert svc.cache.stats.evictions > 0
        assert svc.cache.nbytes <= budget

    def test_cached_quote_reports_sweep_throughput(self, tiny_workload):
        with PricingService(tiny_workload.yet) as svc:
            fresh = svc.quote(tiny_workload.portfolio.layers[0])
            hit = svc.quote(tiny_workload.portfolio.layers[0])
        assert svc.stats.cache_hits == 1
        assert hit.trials_per_second == fresh.trials_per_second, (
            "a cache hit must report the producing sweep's throughput, "
            "not the cache lookup's"
        )

    def test_cached_ylt_is_mutation_safe(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        with PricingService(tiny_workload.yet) as svc:
            first = svc.ylt(layer)
            first.losses *= 0.0   # a caller scaling its own copy
            second = svc.ylt(layer)
        assert second.losses.sum() > 0.0, "cache must not see the mutation"


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_sheds_under_synthetic_burst(self, small_portfolio_workload):
        """A burst against a pathologically slow calibration must shed."""
        wl = small_portfolio_workload
        layers = list(wl.portfolio)
        svc = PricingService(wl.yet, slo_seconds=0.05,
                             cache=CachePolicy(0))
        # Calibrate as if a sweep lane took a millisecond: the modelled
        # backlog blows through the 50 ms SLO almost immediately.
        svc.admission.observe(lanes=1_000.0, seconds=1_000.0)
        shed = 0
        for _ in range(8):
            for layer in layers:
                try:
                    svc.submit(layer)
                except AdmissionError:
                    shed += 1
        assert shed > 0
        metrics = svc.telemetry.snapshot()["metrics"]
        assert metrics["serve.shed"] == shed
        # every shed also left a structured event with its reason
        shed_events = svc.telemetry.events.tail(kind="serve.shed")
        assert shed_events and "reason" in shed_events[-1].fields
        svc.drain()
        svc.close()

    def test_accepts_after_recalibration(self, tiny_workload):
        svc = PricingService(tiny_workload.yet, slo_seconds=30.0)
        q = svc.quote(tiny_workload.portfolio.layers[0])
        assert q.premium > 0
        # the real sweep recalibrated the controller upward
        assert svc.admission.lanes_per_second > 0
        assert svc.stats.shed == 0
        svc.close()

    def test_queue_cap_is_hard(self, tiny_workload):
        svc = PricingService(tiny_workload.yet, max_pending=2)
        layer = tiny_workload.portfolio.layers[0]
        svc.submit(layer, "quote")
        svc.submit(layer, "ylt")
        with pytest.raises(AdmissionError):
            svc.submit(layer, "ep_curve")
        svc.drain()
        svc.close()

    def test_decision_fields(self):
        ctl = AdmissionController(slo_seconds=1.0, lanes_per_second=100.0)
        ok = ctl.decide(n_pending=0, lanes_per_request=10.0)
        assert ok.accepted and ok.estimated_seconds <= 1.0
        full = ctl.decide(n_pending=10_000, lanes_per_request=10.0)
        assert not full.accepted
        assert full.retry_after_seconds > 0
        slow = ctl.decide(n_pending=50, lanes_per_request=10.0)
        assert not slow.accepted and "SLO" in slow.reason

    def test_observe_recalibrates_ewma(self):
        ctl = AdmissionController(lanes_per_second=100.0, smoothing=0.5)
        ctl.observe(lanes=1000.0, seconds=1.0)   # first: replaces seed
        assert ctl.lanes_per_second == pytest.approx(1000.0)
        ctl.observe(lanes=2000.0, seconds=1.0)   # then: EWMA
        assert ctl.lanes_per_second == pytest.approx(1500.0)

    def test_pooled_calibration_is_per_processor(self):
        """A batch measured on N workers must calibrate a per-proc rate:
        storing the aggregate wall rate and multiplying by N again at
        decide() time would make pooled estimates N times optimistic."""
        ctl = AdmissionController(slo_seconds=10.0)
        ctl.observe(lanes=8000.0, seconds=1.0, n_procs=8)
        assert ctl.lanes_per_second == pytest.approx(1000.0)
        est = ctl.decide(n_pending=0, lanes_per_request=8000.0,
                         n_procs=8).estimated_seconds
        assert est == pytest.approx(1.0, rel=1e-6)


# ---------------------------------------------------------------------------
# async / threaded coalescing
# ---------------------------------------------------------------------------

class TestThreadedCoalescing:
    def test_concurrent_submitters_share_sweeps(self, small_portfolio_workload):
        wl = small_portfolio_workload
        layers = list(wl.portfolio)
        with PricingService(
            wl.yet,
            batch=BatchPolicy(max_batch=64, window_seconds=0.05,
                              auto_flush=True),
            cache=CachePolicy(0),
        ) as svc:
            results = {}
            barrier = threading.Barrier(4)

            def submitter(tid):
                barrier.wait()
                tickets = [svc.submit(layer) for layer in layers]
                results[tid] = [t.result(timeout=10.0) for t in tickets]

            threads = [threading.Thread(target=submitter, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert svc.stats.batched_requests == 4 * len(layers)
        assert svc.stats.batches < 4 * len(layers), \
            "concurrent requests must coalesce into fewer sweeps"
        assert svc.stats.coalescing_factor > 1.0
        ref = {l.layer_id: direct_layer_pricing(l, wl.yet).mean()
               for l in layers}
        for quotes in results.values():
            for layer, q in zip(layers, quotes):
                assert q.expected_loss == pytest.approx(ref[layer.layer_id])

    def test_slow_flush_past_deadline_keeps_results(self, tiny_workload):
        """A drain deadline must not discard work that completed late:
        the check runs before starting a batch, never after finishing."""
        import time as _time

        svc = PricingService(tiny_workload.yet, cache=CachePolicy(0))
        slow = _SlowDispatcher(0.05)
        svc.dispatcher = slow
        ticket = svc.submit(tiny_workload.portfolio.layers[0])
        svc.drain(timeout=0.01)   # batch runs inline past the deadline
        assert ticket.done()
        assert ticket.result(timeout=1).premium > 0
        svc.close()

    def test_drain_deadline_refuses_to_start_late_work(self, tiny_workload):
        svc = PricingService(tiny_workload.yet, cache=CachePolicy(0))
        svc.submit(tiny_workload.portfolio.layers[0])
        with pytest.raises(TimeoutError):
            svc.drain(timeout=-1.0)   # already expired: nothing starts
        assert svc.stats.batches == 0
        svc.drain()
        svc.close()

    def test_flush_error_propagates_to_every_ticket(self, tiny_workload):
        from repro.errors import ExecutionError

        svc = PricingService(tiny_workload.yet)
        svc.dispatcher = _ExplodingDispatcher()
        layer = tiny_workload.portfolio.layers[0]
        t1 = svc.submit(layer, "quote")
        t2 = svc.submit(layer, "ylt")
        svc.flush()
        for t in (t1, t2):
            # terminal execution failures surface typed, with the raw
            # dispatcher exception preserved in the failure chain
            with pytest.raises(ExecutionError, match="boom") as exc_info:
                t.result(timeout=5)
            assert any(isinstance(f, RuntimeError)
                       for f in exc_info.value.failures)
        svc.close()


class _ExplodingDispatcher(InlineDispatcher):
    def run(self, kernel, yet, policy=None):
        raise RuntimeError("boom")


class _SlowDispatcher(InlineDispatcher):
    def __init__(self, delay: float) -> None:
        super().__init__()
        self.delay = delay

    def run(self, kernel, yet, policy=None):
        time.sleep(self.delay)
        return super().run(kernel, yet, policy=policy)


# ---------------------------------------------------------------------------
# enablers: ephemeral kernels + fingerprints
# ---------------------------------------------------------------------------

class TestRealTimePricerSweep:
    def test_default_sweep_is_one_fused_pass(self, small_portfolio_workload):
        from repro.dfa.pricing import RealTimePricer

        wl = small_portfolio_workload
        with RealTimePricer(wl.yet) as pricer:
            quotes = pricer.quote_sweep(list(wl.portfolio))
            assert pricer.service.stats.sweeps == 1
            assert len(quotes) == wl.portfolio.n_layers

    def test_explicit_engine_sweep_stays_on_that_engine(self, tiny_workload):
        """engine='device' is the cross-engine validation hook: the sweep
        must actually run the device engine, not the inline service."""
        from repro.core.engines import DeviceEngine
        from repro.dfa.pricing import RealTimePricer

        engine = DeviceEngine()
        with RealTimePricer(tiny_workload.yet, engine=engine) as pricer:
            quotes = pricer.quote_sweep(list(tiny_workload.portfolio))
            assert pricer._service is None, "service must stay unbuilt"
        with RealTimePricer(tiny_workload.yet) as ref:
            expected = ref.quote_sweep(list(tiny_workload.portfolio))
        for q, e in zip(quotes, expected):
            assert q.premium == pytest.approx(e.premium, rel=1e-9)


class TestEnablers:
    def test_from_layers_matches_from_portfolio(self, small_portfolio_workload):
        wl = small_portfolio_workload
        by_portfolio = PortfolioKernel.from_portfolio(wl.portfolio)
        loose = PortfolioKernel.from_layers(list(wl.portfolio))
        assert loose.layer_ids == by_portfolio.layer_ids
        np.testing.assert_array_equal(loose.dense_stack,
                                      by_portfolio.dense_stack)
        full_a = loose.run(wl.yet.trials, wl.yet.event_ids, wl.yet.n_trials)
        full_b = by_portfolio.run(wl.yet.trials, wl.yet.event_ids,
                                  wl.yet.n_trials)
        np.testing.assert_array_equal(full_a, full_b)

    def test_from_layers_synthetic_ids_allow_collisions(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        other = Layer(layer.layer_id, layer.elts,
                      LayerTerms(occ_retention=0.0))
        kernel = PortfolioKernel.from_layers([layer, other],
                                             layer_ids=[0, 1])
        assert sorted(kernel.layer_ids) == [0, 1]
        assert kernel.n_layers == 2

    def test_from_layers_validation(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        with pytest.raises(ConfigurationError):
            PortfolioKernel.from_layers([])
        with pytest.raises(ConfigurationError):
            PortfolioKernel.from_layers([layer], layer_ids=[0, 1])

    def test_infinite_retention_prices_to_zero(self, tiny_workload):
        """inf occ_retention must yield a zero YLT, not NaN (the shifted
        clip's inf - inf correction), matching the scalar oracle."""
        layer = tiny_workload.portfolio.layers[0]
        frozen = Layer(7, layer.elts,
                       LayerTerms(occ_retention=float("inf")))
        kernel = PortfolioKernel.from_layers([layer, frozen],
                                             layer_ids=[0, 1])
        final = kernel.run(tiny_workload.yet.trials,
                           tiny_workload.yet.event_ids,
                           tiny_workload.yet.n_trials)
        row = kernel.row_of(1)
        assert np.isfinite(final).all()
        np.testing.assert_array_equal(final[row], 0.0)
        live = kernel.row_of(0)
        np.testing.assert_allclose(
            final[live], direct_layer_pricing(layer, tiny_workload.yet)
        )

    def test_extreme_retention_keeps_sequential_parity(self):
        """Retention at 1e12 with losses a hair above it: the shifted
        clip's cancellation would eat ~5 digits, so such rows must fall
        back to exact subtract-then-clip and match the scalar oracle."""
        r = 1.23456789e12
        rng = np.random.default_rng(11)
        n_events = 400
        losses = r + rng.uniform(0.0, 10.0, size=n_events)
        elt = EltTable.from_arrays(np.arange(n_events, dtype=np.int64), losses)
        layer = Layer(0, [elt], LayerTerms(occ_retention=r))
        yet = fresh_yet(n_trials=50, catalog_events=n_events, seed=13,
                        epk=40.0)
        kernel = PortfolioKernel.from_layers([layer], layer_ids=[0])
        fused = kernel.run(yet.trials, yet.event_ids, yet.n_trials)[0]
        oracle = np.zeros(yet.n_trials)
        o = yet.trial_offsets
        for t in range(yet.n_trials):
            ev = yet.event_ids[o[t]:o[t + 1]]
            oracle[t] = layer.terms.trial_loss_scalar(losses[ev])
        np.testing.assert_allclose(fused, oracle, rtol=1e-9, atol=1e-6)

    def test_clustered_trial_keeps_parity_at_high_retention(self):
        """A trial holding far more occurrences than the mean must not
        slip a high-retention row through the shifted-clip gate: the
        mask keys on the sweep's exact max trial count."""
        r = 1e8
        n_events = 64
        losses = r + np.linspace(0.0, 5.0, n_events)
        elt = EltTable.from_arrays(np.arange(n_events, dtype=np.int64), losses)
        layer = Layer(0, [elt], LayerTerms(occ_retention=r))
        # mean ~3 occurrences/trial, one clustered trial with 1000
        n_trials = 300
        rng = np.random.default_rng(21)
        reg_trials = np.repeat(np.arange(1, n_trials, dtype=np.int64), 3)
        clustered = np.zeros(1000, dtype=np.int64)
        trials = np.concatenate([clustered, reg_trials])
        events = rng.integers(0, n_events, size=trials.size)
        order = np.argsort(trials, kind="stable")
        trials, events = trials[order], events[order].astype(np.int64)
        kernel = PortfolioKernel.from_layers([layer], layer_ids=[0])
        fused = kernel.run(trials, events, n_trials)[0]
        oracle = np.zeros(n_trials)
        for t, e in zip(trials, events):
            oracle[t] += layer.terms.occurrence_scalar(float(losses[e]))
        np.testing.assert_allclose(fused, oracle, rtol=1e-9, atol=1e-6)

    def test_pricer_close_is_terminal(self, tiny_workload):
        from repro.dfa.pricing import RealTimePricer

        pricer = RealTimePricer(tiny_workload.yet)
        pricer.quote(tiny_workload.portfolio.layers[0])
        pricer.close()
        with pytest.raises(ConfigurationError):
            pricer.quote(tiny_workload.portfolio.layers[0])
        # terminal even when the lazy service was never built: a later
        # quote must not silently spawn a fresh service/pool
        fresh = RealTimePricer(tiny_workload.yet, engine="multicore")
        fresh.close()
        with pytest.raises(ConfigurationError):
            fresh.quote(tiny_workload.portfolio.layers[0])

    def test_yet_fingerprint_is_content_addressed(self):
        a = fresh_yet(seed=5)
        b = fresh_yet(seed=5)
        c = fresh_yet(seed=6)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_batch_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(window_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            CachePolicy(max_entries=-1)
