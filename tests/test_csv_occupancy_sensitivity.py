"""Tests for CSV interchange, the occupancy model, and term sensitivities."""

import numpy as np
import pytest

from repro.analytics.sensitivity import term_sensitivities
from repro.core.tables import ELT_SCHEMA, YLT_SCHEMA
from repro.data.columnar import ColumnTable
from repro.data.csv_io import (
    read_csv,
    table_from_csv_text,
    table_to_csv_text,
    write_csv,
)
from repro.data.schema import Schema
from repro.errors import AnalysisError, ConfigurationError, SchemaError, StorageError
from repro.hpc.device import DeviceProperties
from repro.hpc.occupancy import OccupancyLimits, occupancy


class TestCsvIo:
    def make_elt_table(self):
        return ColumnTable.from_arrays(
            ELT_SCHEMA,
            event_id=[3, 1, 7],
            mean_loss=[100.5, 200.25, 0.125],
            sigma=[10.0, 0.0, 5.5],
        )

    def test_text_roundtrip_exact(self):
        t = self.make_elt_table()
        back = table_from_csv_text(table_to_csv_text(t), ELT_SCHEMA)
        assert back.equals(t)  # exact, including float repr round-trip

    def test_file_roundtrip(self, tmp_path):
        t = self.make_elt_table()
        write_csv(t, tmp_path / "elt.csv")
        assert read_csv(tmp_path / "elt.csv", ELT_SCHEMA).equals(t)

    def test_header_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            table_from_csv_text("a,b\n1,2\n", ELT_SCHEMA)

    def test_ragged_row_rejected(self):
        text = "event_id,mean_loss,sigma\n1,2.0\n"
        with pytest.raises(StorageError, match="line 2"):
            table_from_csv_text(text, ELT_SCHEMA)

    def test_unparseable_value_rejected(self):
        text = "event_id,mean_loss,sigma\n1,abc,0.0\n"
        with pytest.raises(StorageError, match="mean_loss"):
            table_from_csv_text(text, ELT_SCHEMA)

    def test_empty_input_rejected(self):
        with pytest.raises(StorageError):
            table_from_csv_text("", ELT_SCHEMA)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            read_csv(tmp_path / "nope.csv", ELT_SCHEMA)

    def test_empty_table_roundtrip(self):
        t = ColumnTable(YLT_SCHEMA)
        back = table_from_csv_text(table_to_csv_text(t), YLT_SCHEMA)
        assert back.n_rows == 0

    def test_large_values_roundtrip(self):
        t = ColumnTable.from_arrays(
            YLT_SCHEMA, trial=[2**62], loss=[1.7976931348623157e308]
        )
        back = table_from_csv_text(table_to_csv_text(t), YLT_SCHEMA)
        assert back.equals(t)


class TestOccupancy:
    PROPS = DeviceProperties()  # Fermi defaults: 48 KiB shared per block

    def test_block_slot_limited(self):
        # tiny blocks, no shared memory: the 8-block slot limit binds
        res = occupancy(self.PROPS, threads_per_block=64,
                        shared_bytes_per_block=0)
        assert res.blocks_per_sm == 8
        assert res.limiter == "blocks"

    def test_thread_limited(self):
        res = occupancy(self.PROPS, threads_per_block=1024,
                        shared_bytes_per_block=0)
        assert res.blocks_per_sm == 1
        assert res.limiter == "threads"

    def test_shared_memory_limited(self):
        # 20 KiB/block of 48 KiB -> 2 resident blocks
        res = occupancy(self.PROPS, threads_per_block=128,
                        shared_bytes_per_block=20 * 1024)
        assert res.blocks_per_sm == 2
        assert res.limiter == "shared"

    def test_occupancy_fraction(self):
        res = occupancy(self.PROPS, threads_per_block=192,
                        shared_bytes_per_block=0)
        assert res.occupancy_fraction == pytest.approx(8 * 192 / 1536)

    def test_more_shared_memory_lowers_occupancy(self):
        lean = occupancy(self.PROPS, 128, 1024)
        greedy = occupancy(self.PROPS, 128, 24 * 1024)
        assert greedy.blocks_per_sm < lean.blocks_per_sm

    def test_oversized_block_rejected(self):
        with pytest.raises(ConfigurationError):
            occupancy(self.PROPS, threads_per_block=128,
                      shared_bytes_per_block=100 * 1024)
        with pytest.raises(ConfigurationError):
            occupancy(self.PROPS, threads_per_block=5000,
                      shared_bytes_per_block=0)

    def test_custom_limits(self):
        limits = OccupancyLimits(max_blocks_per_sm=4, max_threads_per_sm=512)
        res = occupancy(self.PROPS, 128, 0, limits)
        assert res.blocks_per_sm == 4


class TestSensitivities:
    def test_signs_are_economic(self, tiny_workload):
        """Raising the attachment cheapens the layer; raising the limit
        (if binding) or the share enriches it."""
        layer = tiny_workload.portfolio.layers[0]
        sens = term_sensitivities(layer, tiny_workload.yet)
        assert sens["occ_retention"] <= 0.0
        assert sens["agg_retention"] <= 0.0
        assert sens["occ_limit"] >= 0.0
        # participation scales the layer linearly: slope == EAL / share
        from repro.core.simulation import AggregateAnalysis

        eal = AggregateAnalysis(
            tiny_workload.portfolio, tiny_workload.yet
        ).run("vectorized").ylt_by_layer[layer.layer_id].mean()
        expect = eal / layer.terms.participation
        assert sens["participation"] == pytest.approx(expect, rel=1e-6)

    def test_unlimited_terms_skipped(self, tiny_workload):
        from repro.core.layer import Layer
        from repro.core.terms import LayerTerms

        layer = Layer(5, tiny_workload.portfolio.layers[0].elts, LayerTerms())
        sens = term_sensitivities(layer, tiny_workload.yet)
        assert sens["occ_limit"] == 0.0  # inf: no invented cap
        assert sens["agg_limit"] == 0.0

    def test_unknown_term_rejected(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        with pytest.raises(AnalysisError):
            term_sensitivities(layer, tiny_workload.yet, terms=("magic",))

    def test_bad_bump_rejected(self, tiny_workload):
        layer = tiny_workload.portfolio.layers[0]
        with pytest.raises(AnalysisError):
            term_sensitivities(layer, tiny_workload.yet, bump_fraction=0.0)

    def test_custom_statistic(self, tiny_workload):
        from repro.dfa.metrics import value_at_risk

        layer = tiny_workload.portfolio.layers[0]
        sens = term_sensitivities(
            layer, tiny_workload.yet,
            statistic=lambda ylt: value_at_risk(ylt, 0.9),
            terms=("occ_retention",),
        )
        assert "occ_retention" in sens
