"""Tests for layer financial terms and the event-loss lookup."""

import math

import numpy as np
import pytest

from repro.core.lookup import LossLookup
from repro.core.tables import EltTable
from repro.core.terms import LayerTerms
from repro.errors import ConfigurationError


class TestLayerTermsValidation:
    def test_defaults_are_identity_like(self):
        t = LayerTerms()
        assert t.occurrence_scalar(100.0) == 100.0
        assert t.aggregate_scalar(100.0) == 100.0

    @pytest.mark.parametrize("kwargs", [
        dict(occ_retention=-1), dict(agg_retention=-1),
        dict(occ_limit=0), dict(agg_limit=0),
        dict(participation=0.0), dict(participation=1.2),
        dict(occ_retention=math.nan),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LayerTerms(**kwargs)


class TestOccurrenceTerms:
    T = LayerTerms(occ_retention=100.0, occ_limit=500.0)

    def test_below_retention_zero(self):
        assert self.T.occurrence_scalar(50.0) == 0.0

    def test_mid_range_linear(self):
        assert self.T.occurrence_scalar(300.0) == 200.0

    def test_capped_at_limit(self):
        assert self.T.occurrence_scalar(10_000.0) == 500.0

    def test_vector_matches_scalar(self):
        losses = np.array([0.0, 50.0, 100.0, 300.0, 700.0, 1e6])
        vec = self.T.apply_occurrence(losses)
        scal = [self.T.occurrence_scalar(x) for x in losses]
        np.testing.assert_allclose(vec, scal)

    def test_does_not_mutate_input(self):
        losses = np.array([200.0])
        self.T.apply_occurrence(losses)
        assert losses[0] == 200.0


class TestAggregateTerms:
    T = LayerTerms(agg_retention=1000.0, agg_limit=5000.0, participation=0.5)

    def test_below_retention(self):
        assert self.T.aggregate_scalar(500.0) == 0.0

    def test_participation_applied_after_caps(self):
        # (10_000 - 1000) -> capped at 5000 -> x0.5
        assert self.T.aggregate_scalar(10_000.0) == 2500.0

    def test_vector_matches_scalar(self):
        annual = np.array([0.0, 1000.0, 3000.0, 10_000.0])
        np.testing.assert_allclose(
            self.T.apply_aggregate(annual),
            [self.T.aggregate_scalar(x) for x in annual],
        )


class TestTrialOracle:
    def test_full_trial_arithmetic(self):
        t = LayerTerms(occ_retention=10.0, occ_limit=100.0,
                       agg_retention=50.0, agg_limit=120.0, participation=0.8)
        # events: 5 (below ret), 60 -> 50, 500 -> 100; sum=150
        # aggregate: min(max(150-50,0),120)=100; x0.8 = 80
        assert t.trial_loss_scalar([5.0, 60.0, 500.0]) == pytest.approx(80.0)

    def test_empty_trial(self):
        t = LayerTerms(agg_retention=10.0)
        assert t.trial_loss_scalar([]) == 0.0


class TestLossLookup:
    def test_dense_layout_chosen_for_compact_ids(self):
        lk = LossLookup.from_arrays([0, 1, 2], [1.0, 2.0, 3.0])
        assert lk.kind == "dense"

    def test_sparse_layout_for_huge_ids(self):
        lk = LossLookup.from_arrays([10**12], [1.0])
        assert lk.kind == "sparse"

    def test_dense_max_entries_override(self):
        lk = LossLookup.from_arrays([0, 999], [1.0, 2.0], dense_max_entries=10)
        assert lk.kind == "sparse"

    @pytest.mark.parametrize("dense_max", [10**6, 1])
    def test_lookup_values(self, dense_max):
        lk = LossLookup.from_arrays([5, 10, 20], [1.0, 2.0, 3.0],
                                    dense_max_entries=dense_max)
        out = lk(np.array([10, 5, 20, 5]))
        np.testing.assert_allclose(out, [2.0, 1.0, 3.0, 1.0])

    @pytest.mark.parametrize("dense_max", [10**6, 1])
    def test_unknown_ids_map_to_zero(self, dense_max):
        lk = LossLookup.from_arrays([5, 10], [1.0, 2.0],
                                    dense_max_entries=dense_max)
        out = lk(np.array([0, 7, 11, 10**9]))
        np.testing.assert_allclose(out, [0.0, 0.0, 0.0, 0.0])

    def test_dense_and_sparse_agree(self):
        rng = np.random.default_rng(0)
        ids = np.sort(rng.choice(10_000, 500, replace=False))
        vals = rng.random(500)
        dense = LossLookup.from_arrays(ids, vals)
        sparse = LossLookup.from_arrays(ids, vals, dense_max_entries=1)
        queries = rng.integers(0, 12_000, 2000)
        np.testing.assert_allclose(dense(queries), sparse(queries))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            LossLookup.from_arrays([1, 1], [1.0, 2.0])

    def test_negative_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            LossLookup.from_arrays([-1], [1.0])

    def test_from_elt(self):
        elt = EltTable.from_arrays([2, 4], [7.0, 9.0])
        lk = LossLookup.from_elt(elt)
        assert lk.get_scalar(4) == 9.0

    def test_from_elts_sums_overlaps(self):
        a = EltTable.from_arrays([1, 2], [10.0, 20.0])
        b = EltTable.from_arrays([2, 3], [5.0, 7.0])
        lk = LossLookup.from_elts([a, b])
        np.testing.assert_allclose(lk(np.array([1, 2, 3])), [10.0, 25.0, 7.0])

    def test_from_elts_weights(self):
        a = EltTable.from_arrays([1], [10.0])
        b = EltTable.from_arrays([1], [10.0])
        lk = LossLookup.from_elts([a, b], weights=[1.0, 0.5])
        assert lk.get_scalar(1) == 15.0

    def test_from_elts_weight_count_mismatch(self):
        a = EltTable.from_arrays([1], [10.0])
        with pytest.raises(ConfigurationError):
            LossLookup.from_elts([a], weights=[1.0, 2.0])

    def test_as_dict(self):
        lk = LossLookup.from_arrays([3, 9], [1.5, 2.5])
        assert lk.as_dict() == {3: 1.5, 9: 2.5}

    def test_nbytes_positive(self):
        lk = LossLookup.from_arrays([0, 100], [1.0, 2.0])
        assert lk.nbytes == 101 * 8  # dense table


class TestGatherInto:
    @pytest.mark.parametrize("dense_max", [10**6, 1])
    def test_matches_call(self, dense_max):
        rng = np.random.default_rng(3)
        ids = np.sort(rng.choice(5_000, 300, replace=False))
        lk = LossLookup.from_arrays(ids, rng.random(300),
                                    dense_max_entries=dense_max)
        queries = rng.integers(0, 7_000, 1_000)
        out = np.empty(queries.size, dtype=np.float64)
        result = lk.gather_into(queries, out)
        assert result is out
        np.testing.assert_array_equal(out, lk(queries))

    @pytest.mark.parametrize("dense_max", [10**6, 1])
    def test_buffer_reused_across_blocks(self, dense_max):
        """The fused sweep's pattern: one buffer, many gather calls."""
        lk = LossLookup.from_arrays([2, 5], [10.0, 20.0],
                                    dense_max_entries=dense_max)
        buf = np.full(3, -1.0)
        lk.gather_into(np.array([5, 9, 2]), buf)
        np.testing.assert_allclose(buf, [20.0, 0.0, 10.0])
        lk.gather_into(np.array([2, 2, 7]), buf)
        np.testing.assert_allclose(buf, [10.0, 10.0, 0.0])

    @pytest.mark.parametrize("dense_max", [10**6, 1])
    def test_row_view_of_matrix_as_out(self, dense_max):
        """gather_into must accept row views of an (L, block) matrix."""
        lk = LossLookup.from_arrays([1, 3], [1.0, 3.0],
                                    dense_max_entries=dense_max)
        block = np.zeros((2, 4))
        lk.gather_into(np.array([3, 1, 0, 3]), block[1])
        np.testing.assert_allclose(block[0], 0.0)
        np.testing.assert_allclose(block[1], [3.0, 1.0, 0.0, 3.0])
