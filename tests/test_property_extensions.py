"""Property-based tests for the extension modules.

Reinstatement idempotence and monotonicity, compression round-trips on
adversarial tables, CSV round-trips, co-TVaR full allocation.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.reinstatements import apply_reinstatement_limit
from repro.core.tables import YELT_SCHEMA, YeltTable, YltTable
from repro.data.columnar import ColumnTable
from repro.data.compression import pack_table_compressed, unpack_table_compressed
from repro.data.csv_io import table_from_csv_text, table_to_csv_text
from repro.data.schema import Schema
from repro.dfa.allocation import co_tvar_allocation
from repro.dfa.metrics import tail_value_at_risk


@st.composite
def yelts(draw):
    n_trials = draw(st.integers(1, 20))
    n_rows = draw(st.integers(0, 120))
    trials = np.sort(draw(hnp.arrays(
        np.int64, n_rows, elements=st.integers(0, n_trials - 1)
    )))
    events = draw(hnp.arrays(np.int64, n_rows, elements=st.integers(0, 50)))
    losses = draw(hnp.arrays(
        np.float64, n_rows,
        elements=st.floats(0.0, 1e6, allow_nan=False),
    ))
    table = ColumnTable.from_arrays(
        YELT_SCHEMA, trial=trials, event_id=events, loss=losses
    )
    return YeltTable(table, n_trials)


class TestReinstatementProperties:
    @settings(max_examples=50)
    @given(yelt=yelts(), occ_limit=st.floats(1.0, 1e5),
           n=st.integers(0, 4))
    def test_idempotent(self, yelt, occ_limit, n):
        once = apply_reinstatement_limit(yelt, occ_limit, n)
        twice = apply_reinstatement_limit(once, occ_limit, n)
        np.testing.assert_allclose(
            twice.table["loss"], once.table["loss"], rtol=1e-12, atol=1e-9
        )

    @settings(max_examples=50)
    @given(yelt=yelts(), occ_limit=st.floats(1.0, 1e5),
           n=st.integers(0, 4))
    def test_annual_cap_and_row_bounds(self, yelt, occ_limit, n):
        out = apply_reinstatement_limit(yelt, occ_limit, n)
        assert (out.table["loss"] <= yelt.table["loss"] + 1e-9).all()
        assert (out.table["loss"] >= -1e-12).all()
        annual = out.to_ylt().losses
        assert (annual <= (1 + n) * occ_limit * (1 + 1e-12) + 1e-6).all()

    @settings(max_examples=50)
    @given(yelt=yelts(), occ_limit=st.floats(1.0, 1e5),
           n_small=st.integers(0, 2), n_extra=st.integers(1, 3))
    def test_monotone_in_reinstatements(self, yelt, occ_limit, n_small, n_extra):
        """More reinstatements never reduce any year's recovery."""
        small = apply_reinstatement_limit(yelt, occ_limit, n_small)
        big = apply_reinstatement_limit(yelt, occ_limit, n_small + n_extra)
        assert (big.to_ylt().losses >= small.to_ylt().losses - 1e-9).all()


MIXED = Schema([("a", np.int64), ("b", np.int32), ("c", np.float64)])


@st.composite
def mixed_tables(draw):
    n = draw(st.integers(0, 100))
    return ColumnTable.from_arrays(
        MIXED,
        a=draw(hnp.arrays(np.int64, n, elements=st.integers(-2**40, 2**40))),
        b=draw(hnp.arrays(np.int32, n, elements=st.integers(-2**20, 2**20))),
        c=draw(hnp.arrays(np.float64, n,
                          elements=st.floats(-1e12, 1e12, allow_nan=False))),
    )


class TestCompressionProperties:
    @settings(max_examples=50)
    @given(t=mixed_tables())
    def test_lossless_roundtrip(self, t):
        assert unpack_table_compressed(pack_table_compressed(t)).equals(t)


class TestCsvProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(t=mixed_tables())
    def test_roundtrip(self, t):
        back = table_from_csv_text(table_to_csv_text(t), MIXED)
        assert back.equals(t)


class TestAllocationProperties:
    @settings(max_examples=30)
    @given(
        k=st.integers(1, 5),
        n=st.integers(8, 200),
        seed=st.integers(0, 2**31 - 1),
        q=st.floats(0.0, 0.95),
    )
    def test_full_allocation(self, k, n, seed, q):
        rng = np.random.default_rng(seed)
        units = {f"u{i}": YltTable(rng.lognormal(5, 1, n)) for i in range(k)}
        alloc = co_tvar_allocation(units, q)
        total = YltTable(np.sum([u.losses for u in units.values()], axis=0))
        expect = tail_value_at_risk(total, q)
        np.testing.assert_allclose(sum(alloc.values()), expect, rtol=1e-9)
