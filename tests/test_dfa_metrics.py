"""Tests for PML / VaR / TVaR metrics."""

import numpy as np
import pytest

from repro.core.tables import YltTable
from repro.dfa.metrics import (
    RiskMetrics,
    probable_maximum_loss,
    tail_value_at_risk,
    value_at_risk,
)

LOSSES = np.arange(1.0, 1001.0)  # 1..1000
YLT = YltTable(LOSSES)


class TestPointMetrics:
    def test_var_is_quantile(self):
        assert value_at_risk(YLT, 0.99) == pytest.approx(np.quantile(LOSSES, 0.99))

    def test_tvar_dominates_var(self):
        for q in (0.5, 0.9, 0.99, 0.995):
            assert tail_value_at_risk(YLT, q) >= value_at_risk(YLT, q)

    def test_pml_is_return_period_var(self):
        assert probable_maximum_loss(YLT, 100.0) == \
            pytest.approx(value_at_risk(YLT, 0.99))

    def test_accepts_raw_arrays(self):
        assert value_at_risk(LOSSES, 0.5) == value_at_risk(YLT, 0.5)

    def test_pml_monotone_in_return_period(self):
        pmls = [probable_maximum_loss(YLT, t) for t in (10, 50, 250, 1000)]
        assert pmls == sorted(pmls)


class TestRiskMetrics:
    def test_from_ylt_complete(self):
        m = RiskMetrics.from_ylt(YLT)
        assert m.n_trials == 1000
        assert m.mean == pytest.approx(500.5)
        assert set(m.pml) == {10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0}
        assert set(m.var) == {0.9, 0.95, 0.99, 0.995, 0.999}

    def test_coherence_check_passes(self):
        RiskMetrics.from_ylt(YLT).check_coherence()

    def test_custom_ladders(self):
        m = RiskMetrics.from_ylt(YLT, return_periods=(20.0,), tail_levels=(0.8,))
        assert set(m.pml) == {20.0}
        assert set(m.tvar) == {0.8}

    def test_degenerate_constant_ylt(self):
        m = RiskMetrics.from_ylt(YltTable(np.full(100, 7.0)))
        assert m.std == 0.0
        assert m.pml[100.0] == 7.0
        m.check_coherence()

    def test_standard_error_scales(self):
        rng = np.random.default_rng(0)
        small = RiskMetrics.from_ylt(YltTable(rng.random(100)))
        large = RiskMetrics.from_ylt(YltTable(rng.random(100_000)))
        assert large.standard_error < small.standard_error
