"""Tests for schedulers, the pipeline cost model, and the work pool."""

import pytest

from repro.errors import AnalysisError, ClusterError, ConfigurationError
from repro.hpc.cost_model import PipelineCostModel, StageSpec
from repro.hpc.pool import WorkPool, available_parallelism
from repro.hpc.scheduler import DynamicScheduler, StaticScheduler


class TestStaticScheduler:
    def test_contiguous_blocks(self):
        a = StaticScheduler().assign([1.0] * 10, 3)
        assert a.tasks_by_worker == ((0, 1, 2, 3), (4, 5, 6), (7, 8, 9))

    def test_all_tasks_assigned_once(self):
        a = StaticScheduler().assign([1.0] * 17, 4)
        flat = [t for ts in a.tasks_by_worker for t in ts]
        assert sorted(flat) == list(range(17))

    def test_makespan_balanced_uniform(self):
        a = StaticScheduler().assign([1.0] * 100, 4)
        assert a.makespan == pytest.approx(25.0)
        assert a.imbalance == pytest.approx(1.0)

    def test_skew_hurts_static(self):
        tasks = [10.0] + [1.0] * 9
        a = StaticScheduler().assign(tasks, 2)
        assert a.imbalance > 1.3

    def test_zero_workers_rejected(self):
        with pytest.raises(ClusterError):
            StaticScheduler().assign([1.0], 0)

    def test_more_workers_than_tasks(self):
        a = StaticScheduler().assign([1.0, 2.0], 5)
        assert sum(len(t) for t in a.tasks_by_worker) == 2


class TestDynamicScheduler:
    def test_lpt_beats_static_on_skew(self):
        tasks = [10.0] + [1.0] * 9
        static = StaticScheduler().assign(tasks, 2)
        dynamic = DynamicScheduler().assign(tasks, 2)
        assert dynamic.makespan <= static.makespan

    def test_all_tasks_assigned(self):
        a = DynamicScheduler().assign([3.0, 1.0, 4.0, 1.0, 5.0], 2)
        flat = sorted(t for ts in a.tasks_by_worker for t in ts)
        assert flat == list(range(5))

    def test_makespan_lower_bounds(self):
        tasks = [5.0, 4.0, 3.0, 2.0]
        a = DynamicScheduler().assign(tasks, 2)
        assert a.makespan >= max(tasks)
        assert a.makespan >= sum(tasks) / 2

    def test_empty_tasks(self):
        a = DynamicScheduler().assign([], 3)
        assert a.makespan == 0.0


class TestStageSpec:
    def test_runtime_amdahl(self):
        s = StageSpec("s", work_items=100.0, throughput_per_proc=1.0,
                      parallel_fraction=1.0)
        assert s.runtime_seconds(1) == pytest.approx(100.0)
        assert s.runtime_seconds(4) == pytest.approx(25.0)

    def test_serial_fraction_floors_runtime(self):
        s = StageSpec("s", 100.0, 1.0, parallel_fraction=0.5)
        assert s.runtime_seconds(10**6) >= 50.0

    def test_comm_overhead_grows(self):
        s = StageSpec("s", 100.0, 1.0, comm_overhead_per_proc_s=1.0)
        assert s.runtime_seconds(64) > s.runtime_seconds(64) - 1  # exists
        assert s.runtime_seconds(2**16) > s.runtime_seconds(2**4)

    @pytest.mark.parametrize("kwargs", [
        dict(work_items=-1, throughput_per_proc=1),
        dict(work_items=1, throughput_per_proc=0),
        dict(work_items=1, throughput_per_proc=1, parallel_fraction=0.0),
        dict(work_items=1, throughput_per_proc=1, parallel_fraction=1.5),
        dict(work_items=1, throughput_per_proc=1, comm_overhead_per_proc_s=-1),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            StageSpec("s", **kwargs)


class TestPipelineCostModel:
    def model(self):
        return PipelineCostModel([
            StageSpec("fast", 100.0, 10.0),
            StageSpec("slow", 1e9, 1e3, comm_overhead_per_proc_s=0.01),
        ])

    def test_single_proc_meets_loose_deadline(self):
        req = self.model().procs_for_deadline("fast", 1000.0)
        assert req.n_procs == 1 and req.feasible

    def test_tight_deadline_needs_more_procs(self):
        req = self.model().procs_for_deadline("slow", 3600.0)
        assert req.feasible
        assert req.n_procs > 100
        assert req.runtime_seconds <= 3600.0

    def test_minimality(self):
        """One fewer processor must miss the deadline."""
        model = self.model()
        req = model.procs_for_deadline("slow", 3600.0)
        spec = model.stage("slow")
        assert spec.runtime_seconds(req.n_procs - 1) > 3600.0

    def test_infeasible_deadline_reported(self):
        model = PipelineCostModel([
            StageSpec("hopeless", 1e12, 1.0, parallel_fraction=0.5)
        ])
        req = model.procs_for_deadline("hopeless", 1.0)
        assert not req.feasible

    def test_unknown_stage_rejected(self):
        with pytest.raises(AnalysisError):
            self.model().procs_for_deadline("nope", 1.0)

    def test_bad_deadline_rejected(self):
        with pytest.raises(AnalysisError):
            self.model().procs_for_deadline("fast", 0.0)

    def test_burst_profile(self):
        reqs = self.model().burst_profile({"fast": 100.0, "slow": 3600.0})
        by_name = {r.stage: r.n_procs for r in reqs}
        assert by_name["fast"] == 1
        assert by_name["slow"] > by_name["fast"]

    def test_burst_unknown_stage_rejected(self):
        with pytest.raises(AnalysisError):
            self.model().burst_profile({"nope": 1.0})

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineCostModel([StageSpec("a", 1, 1), StageSpec("a", 1, 1)])

    def test_empty_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineCostModel([])


def _square(x):
    return x * x


def _scale(shared, x):
    return shared * x


def _die(x):  # pragma: no cover - runs in a worker process
    import os
    os._exit(13)


class TestWorkPool:
    def test_available_parallelism_positive(self):
        assert available_parallelism() >= 1

    def test_serial_map(self):
        pool = WorkPool(n_workers=1)
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_starmap(self):
        pool = WorkPool(n_workers=1)
        assert pool.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_order_preserved(self):
        pool = WorkPool(n_workers=1)
        assert pool.map(_square, list(range(20))) == [i * i for i in range(20)]

    def test_default_workers(self):
        assert WorkPool().n_workers == available_parallelism()

    def test_single_item_short_circuits(self):
        # even with many workers, one item runs inline
        pool = WorkPool(n_workers=8)
        assert pool.map(_square, [5]) == [25]

    def test_starmap_shared_serial(self):
        pool = WorkPool(n_workers=1)
        assert pool.starmap_shared(_scale, 10, [(1,), (2,), (3,)]) == [10, 20, 30]

    def test_parallel_paths_share_one_closeable_executor(self):
        with WorkPool(n_workers=2) as pool:
            assert pool._executor is None  # lazy
            assert pool.starmap(pow, [(2, 3), (3, 2), (2, 2)]) == [8, 9, 4]
            first = pool._executor
            assert first is not None
            # starmap_shared installs its shared object: executor cycles
            # once, then repeat calls with the same object reuse it.
            shared = 100
            assert pool.starmap_shared(_scale, shared, [(1,), (2,), (3,)]) == \
                [100, 200, 300]
            second = pool._executor
            assert pool.starmap_shared(_scale, shared, [(4,), (5,), (6,)]) == \
                [400, 500, 600]
            assert pool._executor is second
        assert pool._executor is None  # context manager closed it

    def test_broken_executor_recovers_on_next_call(self):
        """A dead worker costs one call, not the pool's lifetime.

        A task that kills its worker on *every* attempt exhausts the
        supervision retries and surfaces as a typed ExecutionError (the
        raw BrokenProcessPool rides along in the failure chain); the
        pool itself stays usable for the next call.
        """
        from repro.errors import ExecutionError
        from repro.hpc.pool import TaskPolicy

        policy = TaskPolicy(max_retries=1, backoff_seconds=0.0)
        with WorkPool(n_workers=2) as pool:
            with pytest.raises(ExecutionError) as exc_info:
                pool.map(_die, [1, 2, 3], policy=policy)
            assert exc_info.value.failures
            assert pool.health.worker_deaths >= 1
            assert pool.health.call_failures == 1
            assert pool.map(_square, [2, 3], policy=policy) == [4, 9]
            assert pool.health.consecutive_failures == 0
