"""Tests for EP curves, convergence diagnostics, and engine comparison."""

import numpy as np
import pytest

from repro.analytics.comparison import assert_engines_equivalent
from repro.analytics.convergence import ConvergenceDiagnostics
from repro.analytics.ep_curves import EpCurve, aep_curve, oep_curve
from repro.core.simulation import AggregateAnalysis
from repro.core.tables import YeltTable, YltTable
from repro.data.columnar import ColumnTable
from repro.errors import AnalysisError


class TestEpCurve:
    CURVE = EpCurve(np.arange(1.0, 101.0))

    def test_probability_of_exceeding(self):
        assert self.CURVE.probability_of_exceeding(50.0) == pytest.approx(0.5)
        assert self.CURVE.probability_of_exceeding(1000.0) == 0.0
        assert self.CURVE.probability_of_exceeding(0.0) == 1.0

    def test_monotone_nonincreasing(self):
        thresholds = np.linspace(0, 120, 50)
        probs = self.CURVE.probability_of_exceeding(thresholds)
        assert (np.diff(probs) <= 1e-12).all()

    def test_loss_at_probability_inverse(self):
        loss = self.CURVE.loss_at_probability(0.1)
        assert self.CURVE.probability_of_exceeding(loss - 1e-9) >= 0.1 - 1e-9

    def test_loss_at_return_period(self):
        assert self.CURVE.loss_at_return_period(10.0) == \
            pytest.approx(self.CURVE.loss_at_probability(0.1))

    def test_as_points_shapes(self):
        losses, probs = self.CURVE.as_points(20)
        assert losses.shape == (20,) and probs.shape == (20,)
        assert (np.diff(losses) >= 0).all()
        assert (np.diff(probs) <= 0).all()

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            EpCurve([])
        with pytest.raises(AnalysisError):
            self.CURVE.loss_at_probability(0.0)
        with pytest.raises(AnalysisError):
            self.CURVE.loss_at_return_period(0.5)
        with pytest.raises(AnalysisError):
            self.CURVE.as_points(1)


class TestOepAep:
    def make_yelt(self):
        from repro.core.tables import YELT_SCHEMA

        table = ColumnTable.from_arrays(
            YELT_SCHEMA,
            trial=[0, 0, 1, 3],
            event_id=[1, 2, 1, 5],
            loss=[10.0, 30.0, 5.0, 100.0],
        )
        return YeltTable(table, n_trials=4)

    def test_oep_uses_trial_maxima(self):
        curve = oep_curve(self.make_yelt())
        # maxima per trial: [30, 5, 0, 100]
        assert curve.loss_at_return_period(4.0) == pytest.approx(
            np.quantile([30.0, 5.0, 0.0, 100.0], 0.75)
        )

    def test_aep_uses_trial_sums(self):
        curve = aep_curve(self.make_yelt().to_ylt())
        assert curve.probability_of_exceeding(39.0) == pytest.approx(0.5)

    def test_aep_dominates_oep(self):
        yelt = self.make_yelt()
        assert aep_curve(yelt.to_ylt()).dominates(oep_curve(yelt))

    def test_aep_dominates_oep_on_real_workload(self, tiny_workload):
        res = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet).run(
            "vectorized", emit_yelt=True
        )
        lid = tiny_workload.portfolio.layers[0].layer_id
        yelt = res.yelt_by_layer[lid]
        assert aep_curve(yelt.to_ylt()).dominates(oep_curve(yelt))

    def test_dominates_requires_same_trials(self):
        a = EpCurve(np.ones(5))
        b = EpCurve(np.ones(6))
        with pytest.raises(AnalysisError):
            a.dominates(b)


class TestConvergence:
    def make_diag(self, n=10_000):
        rng = np.random.default_rng(0)
        return ConvergenceDiagnostics(YltTable(rng.lognormal(10, 1, n)))

    def test_curve_error_decays(self):
        pts = self.make_diag().curve(n_points=8)
        assert pts[-1].standard_error < pts[0].standard_error
        assert pts[-1].n_trials == 10_000

    def test_relative_error_target(self):
        diag = self.make_diag()
        n = diag.trials_for_relative_error(0.01)
        assert n > 0
        # CLT: quadrupling precision needs 16x trials
        n_fine = diag.trials_for_relative_error(0.0025)
        assert n_fine == pytest.approx(16 * n, rel=0.01)

    def test_tail_stability_positive(self):
        assert self.make_diag().tail_stability(q=0.95) > 0

    def test_tail_stability_improves_with_n(self):
        small = self.make_diag(512).tail_stability(0.9, n_blocks=4)
        large = self.make_diag(65_536).tail_stability(0.9, n_blocks=4)
        assert large < small

    def test_too_few_trials_rejected(self):
        with pytest.raises(AnalysisError):
            ConvergenceDiagnostics(YltTable(np.ones(3)))

    def test_bad_args_rejected(self):
        diag = self.make_diag(100)
        with pytest.raises(AnalysisError):
            diag.curve(n_points=1)
        with pytest.raises(AnalysisError):
            diag.trials_for_relative_error(0.0)
        with pytest.raises(AnalysisError):
            diag.tail_stability(n_blocks=1)


class TestComparison:
    def test_detects_disagreement(self, tiny_workload):
        """A layer whose terms differ must trip the equivalence check when
        compared against doctored outputs."""
        # sanity: the real engines agree
        assert_engines_equivalent(
            tiny_workload.portfolio, tiny_workload.yet,
            ["sequential", "vectorized"],
        )
