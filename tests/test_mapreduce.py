"""Tests for the MapReduce engine over the simulated DFS."""

import numpy as np
import pytest

from repro.data.columnar import ColumnTable
from repro.data.dfs import SimDfs
from repro.data.mapreduce import JobResult, MapReduceJob, MapReduceRuntime, lpt_makespan
from repro.data.schema import Schema
from repro.errors import MapReduceError

S = Schema([("k", np.int64), ("v", np.float64)])


def wordcount_style_setup(n=100, rows_per_block=13, n_keys=7):
    dfs = SimDfs(n_datanodes=4)
    rng = np.random.default_rng(5)
    table = ColumnTable.from_arrays(
        S, k=rng.integers(0, n_keys, n), v=np.ones(n)
    )
    dfs.write_table("in", table, rows_per_block=rows_per_block)
    return dfs, table


def count_mapper(split_index, block):
    for k in block["k"].tolist():
        yield int(k), 1.0


def sum_reducer(key, values):
    yield key, float(sum(values))


class TestJobSpec:
    def test_bad_reducer_count_rejected(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(mapper=count_mapper, reducer=sum_reducer, n_reducers=0)


class TestExecution:
    def test_counts_correct(self):
        dfs, table = wordcount_style_setup()
        job = MapReduceJob(mapper=count_mapper, reducer=sum_reducer, n_reducers=3)
        result = MapReduceRuntime(dfs).run(job, "in")
        got = dict(result.pairs)
        expect = {int(k): float(c) for k, c in
                  zip(*np.unique(table["k"], return_counts=True))}
        assert got == expect

    def test_output_independent_of_reducer_count(self):
        dfs, _ = wordcount_style_setup()
        results = []
        for n_reducers in (1, 2, 5):
            job = MapReduceJob(mapper=count_mapper, reducer=sum_reducer,
                               n_reducers=n_reducers)
            results.append(sorted(MapReduceRuntime(dfs).run(job, "in").pairs))
        assert results[0] == results[1] == results[2]

    def test_output_independent_of_block_size(self):
        outs = []
        for rows_per_block in (5, 17, 100):
            dfs, _ = wordcount_style_setup(rows_per_block=rows_per_block)
            job = MapReduceJob(mapper=count_mapper, reducer=sum_reducer)
            outs.append(sorted(MapReduceRuntime(dfs).run(job, "in").pairs))
        assert outs[0] == outs[1] == outs[2]

    def test_combiner_reduces_shuffle(self):
        dfs, _ = wordcount_style_setup(n=500, rows_per_block=50)
        base = MapReduceJob(mapper=count_mapper, reducer=sum_reducer)
        combined = MapReduceJob(mapper=count_mapper, reducer=sum_reducer,
                                combiner=sum_reducer)
        r_base = MapReduceRuntime(dfs).run(base, "in")
        r_comb = MapReduceRuntime(dfs).run(combined, "in")
        assert sorted(r_base.pairs) == sorted(r_comb.pairs)
        assert r_comb.counters["shuffle_bytes"] < r_base.counters["shuffle_bytes"]

    def test_counters(self):
        dfs, table = wordcount_style_setup(n=64, rows_per_block=16)
        job = MapReduceJob(mapper=count_mapper, reducer=sum_reducer)
        r = MapReduceRuntime(dfs).run(job, "in")
        assert r.counters["map_input_records"] == 64
        assert r.counters["map_output_records"] == 64
        assert r.counters["reduce_input_groups"] == len(set(table["k"].tolist()))
        assert len(r.map_task_seconds) == 4  # 64/16 blocks

    def test_bad_partitioner_detected(self):
        dfs, _ = wordcount_style_setup()
        job = MapReduceJob(mapper=count_mapper, reducer=sum_reducer,
                           n_reducers=2, partitioner=lambda k, n: 99)
        with pytest.raises(MapReduceError):
            MapReduceRuntime(dfs).run(job, "in")

    def test_output_written_to_dfs(self):
        dfs, table = wordcount_style_setup()
        job = MapReduceJob(mapper=count_mapper, reducer=sum_reducer)
        MapReduceRuntime(dfs).run(job, "in", output_path="out")
        out = dfs.read_table("out")
        got = dict(zip(out["key"].tolist(), out["value"].tolist()))
        expect = {int(k): float(c) for k, c in
                  zip(*np.unique(table["k"], return_counts=True))}
        assert got == expect

    def test_as_dict_duplicate_keys_rejected(self):
        r = JobResult(pairs=[(1, 2.0), (1, 3.0)])
        with pytest.raises(MapReduceError):
            r.as_dict()


class TestMakespan:
    def test_single_worker_is_sum(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 1) == pytest.approx(6.0)

    def test_many_workers_is_max(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 10) == pytest.approx(3.0)

    def test_monotone_in_workers(self):
        tasks = [5.0, 4.0, 3.0, 2.0, 1.0, 1.0]
        spans = [lpt_makespan(tasks, w) for w in (1, 2, 3, 6)]
        assert spans == sorted(spans, reverse=True)

    def test_zero_workers_rejected(self):
        with pytest.raises(MapReduceError):
            lpt_makespan([1.0], 0)

    def test_empty_tasks(self):
        assert lpt_makespan([], 4) == 0.0

    def test_job_makespan_is_map_plus_reduce(self):
        r = JobResult(pairs=[], map_task_seconds=[2.0, 2.0],
                      reduce_task_seconds=[1.0])
        assert r.makespan(2) == pytest.approx(2.0 + 1.0)
