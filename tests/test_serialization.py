"""Tests for packed-table serialisation."""

import numpy as np
import pytest

from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.data.serialization import pack_table, unpack_table
from repro.errors import StorageError

S = Schema([("a", np.int64), ("b", np.float64), ("c", np.int16)])


def make(n=10):
    rng = np.random.default_rng(3)
    return ColumnTable.from_arrays(
        S, a=rng.integers(0, 100, n), b=rng.random(n), c=rng.integers(0, 5, n)
    )


class TestRoundtrip:
    def test_roundtrip_exact(self):
        t = make()
        assert unpack_table(pack_table(t)).equals(t)

    def test_empty_table(self):
        t = ColumnTable(S)
        assert unpack_table(pack_table(t)).n_rows == 0

    def test_roundtrip_preserves_schema(self):
        out = unpack_table(pack_table(make()))
        assert out.schema == S

    def test_self_describing(self):
        """No external schema needed to decode (the MapReduce property)."""
        data = pack_table(make(5))
        out = unpack_table(data)
        assert out.n_rows == 5


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(StorageError):
            unpack_table(b"XXXX" + b"\x00" * 20)

    def test_truncated_header(self):
        data = pack_table(make())
        with pytest.raises(StorageError):
            unpack_table(data[:10])

    def test_truncated_payload(self):
        data = pack_table(make())
        with pytest.raises(StorageError):
            unpack_table(data[:-4])

    def test_trailing_garbage(self):
        data = pack_table(make())
        with pytest.raises(StorageError):
            unpack_table(data + b"zz")

    def test_empty_bytes(self):
        with pytest.raises(StorageError):
            unpack_table(b"")
