"""Tests for secondary-uncertainty sampling."""

import numpy as np
import pytest

from repro.core.lookup import LossLookup
from repro.core.simulation import AggregateAnalysis
from repro.core.tables import EltTable
from repro.core.uncertainty import (
    SecondaryUncertainty,
    sample_occurrence_losses,
    sampled_aggregate_analysis,
)
from repro.errors import ConfigurationError


def make_uncertainty(means, sigmas, ids=None):
    ids = np.arange(len(means)) if ids is None else np.asarray(ids)
    return SecondaryUncertainty(
        LossLookup.from_arrays(ids, np.asarray(means, dtype=float)),
        LossLookup.from_arrays(ids, np.asarray(sigmas, dtype=float)),
    )


class TestSampling:
    def test_zero_sigma_is_deterministic(self):
        unc = make_uncertainty([100.0, 200.0], [0.0, 0.0])
        out = sample_occurrence_losses(
            np.array([0, 1, 0]), unc, np.random.default_rng(0)
        )
        np.testing.assert_allclose(out, [100.0, 200.0, 100.0])

    def test_unknown_events_zero(self):
        unc = make_uncertainty([100.0], [10.0])
        out = sample_occurrence_losses(
            np.array([99]), unc, np.random.default_rng(0)
        )
        assert out[0] == 0.0

    def test_moment_matching(self):
        """Sample mean and std converge to the ELT's (mean, sigma)."""
        unc = make_uncertainty([1000.0], [400.0])
        rng = np.random.default_rng(1)
        out = sample_occurrence_losses(np.zeros(200_000, dtype=np.int64),
                                       unc, rng)
        assert out.mean() == pytest.approx(1000.0, rel=0.01)
        assert out.std() == pytest.approx(400.0, rel=0.03)

    def test_samples_positive(self):
        unc = make_uncertainty([50.0], [200.0])  # heavy cv
        out = sample_occurrence_losses(np.zeros(10_000, dtype=np.int64),
                                       unc, np.random.default_rng(2))
        assert (out > 0).all()

    def test_deterministic_under_seed(self):
        unc = make_uncertainty([10.0, 20.0], [2.0, 4.0])
        ids = np.array([0, 1, 1, 0])
        a = sample_occurrence_losses(ids, unc, np.random.default_rng(3))
        b = sample_occurrence_losses(ids, unc, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestFromElts:
    def test_means_add_sigmas_quadrature(self):
        a = EltTable.from_arrays([1], [100.0], [30.0])
        b = EltTable.from_arrays([1], [200.0], [40.0])
        unc = SecondaryUncertainty.from_elts([a, b])
        assert unc.mean_lookup.get_scalar(1) == 300.0
        assert unc.sigma_lookup.get_scalar(1) == pytest.approx(50.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SecondaryUncertainty.from_elts([])

    def test_non_elt_rejected(self):
        with pytest.raises(ConfigurationError):
            SecondaryUncertainty.from_elts(["x"])


class TestSampledAnalysis:
    def test_mean_converges_with_passthrough_terms(self, tiny_workload):
        """With identity terms the sampled-mode mean is unbiased for the
        expected-mode mean (linearity — no Jensen effect)."""
        from repro.core.layer import Layer
        from repro.core.portfolio import Portfolio
        from repro.core.terms import LayerTerms

        passthrough = Portfolio([
            Layer(0, tiny_workload.portfolio.layers[0].elts, LayerTerms())
        ])
        expected = AggregateAnalysis(passthrough, tiny_workload.yet).run(
            "vectorized"
        )
        rng = np.random.default_rng(5)
        acc = 0.0
        n_runs = 40
        for _ in range(n_runs):
            ylts = sampled_aggregate_analysis(
                passthrough, tiny_workload.yet, rng
            )
            acc += sum(y.losses.sum() for y in ylts.values())
        sampled_mean = acc / n_runs
        expected_total = expected.portfolio_ylt.losses.sum()
        assert sampled_mean == pytest.approx(expected_total, rel=0.05)

    def test_jensen_gap_with_convex_retention(self, tiny_workload):
        """Through a high retention, sampling *raises* the expected
        retained loss (E[max(X-r,0)] >= max(E[X]-r,0)): the economic
        reason sampled mode matters for excess layers."""
        expected = AggregateAnalysis(
            tiny_workload.portfolio, tiny_workload.yet
        ).run("vectorized")
        rng = np.random.default_rng(6)
        acc = 0.0
        n_runs = 20
        for _ in range(n_runs):
            ylts = sampled_aggregate_analysis(
                tiny_workload.portfolio, tiny_workload.yet, rng
            )
            acc += sum(y.losses.sum() for y in ylts.values())
        sampled_mean = acc / n_runs
        expected_total = sum(
            y.losses.sum() for y in expected.ylt_by_layer.values()
        )
        assert sampled_mean >= expected_total * 0.98

    def test_sampling_adds_dispersion(self, tiny_workload):
        """With wide sigmas, sampled-mode annual losses vary more."""
        expected = AggregateAnalysis(
            tiny_workload.portfolio, tiny_workload.yet
        ).run("vectorized")
        ylts = sampled_aggregate_analysis(
            tiny_workload.portfolio, tiny_workload.yet,
            np.random.default_rng(6),
        )
        lid = tiny_workload.portfolio.layers[0].layer_id
        assert ylts[lid].n_trials == expected.portfolio_ylt.n_trials

    def test_reproducible(self, tiny_workload):
        a = sampled_aggregate_analysis(
            tiny_workload.portfolio, tiny_workload.yet,
            np.random.default_rng(7),
        )
        b = sampled_aggregate_analysis(
            tiny_workload.portfolio, tiny_workload.yet,
            np.random.default_rng(7),
        )
        for lid in a:
            np.testing.assert_array_equal(a[lid].losses, b[lid].losses)
