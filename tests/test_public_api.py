"""The public import surface: everything advertised must resolve.

A release-gating test: every name in each package's ``__all__`` must be
importable and be the object its module defines — no stale exports, no
circular-import landmines hiding until a user's first import.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.data",
    "repro.hpc",
    "repro.catmod",
    "repro.core",
    "repro.core.engines",
    "repro.dfa",
    "repro.analytics",
    "repro.bench",
    "repro.serve",
    "repro.session",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} must declare __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} is exported but missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_quickstart_docstring_code_path():
    """The README/package-docstring quickstart must actually run."""
    import repro

    wl = repro.bench.companion_study_workload(n_trials=200)
    with repro.RiskSession(wl.yet, wl.portfolio) as session:
        result = session.aggregate()
        assert result.details["plan"].explain()
        quotes = session.quote_many(list(wl.portfolio))
        assert len(quotes) == wl.portfolio.n_layers
    report = repro.regulator_report(
        repro.RiskMetrics.from_ylt(result.portfolio_ylt)
    )
    assert "Probable Maximum Loss" in report


def test_engine_registry_matches_docs():
    import repro

    assert repro.available_engines() == [
        "device", "distributed", "mapreduce", "multicore", "sequential",
        "vectorized",
    ]


def test_errors_hierarchy():
    from repro import errors

    for name in ("ConfigurationError", "SchemaError", "CapacityError",
                 "DeviceError", "ClusterError", "StorageError",
                 "MapReduceError", "EngineError", "AnalysisError",
                 "AdmissionError"):
        exc_type = getattr(errors, name)
        assert issubclass(exc_type, errors.ReproError)


def test_serve_names_exported_from_root():
    """The serving layer's facade and configs ride the root namespace."""
    import repro

    assert repro.PricingService is repro.serve.PricingService
    assert repro.BatchPolicy is repro.serve.BatchPolicy
    assert repro.CachePolicy is repro.serve.CachePolicy


def test_pricing_quote_importable_from_both_homes():
    """PricingQuote moved to a leaf module; the classic import must hold."""
    from repro.dfa.pricing import PricingQuote as via_pricing
    from repro.dfa.quote import PricingQuote as via_quote

    assert via_pricing is via_quote


def test_session_surface_locked():
    """The session layer's public names ride the root namespace."""
    import repro

    assert repro.RiskSession is repro.session.RiskSession
    assert repro.ExecutionPlan is repro.session.ExecutionPlan
    assert repro.EngineSpec is repro.core.engines.EngineSpec
    # the registry surface the planner is built on
    from repro.core.engines import available_engines, engine_spec

    for name in available_engines():
        assert engine_spec(name).name == name


def test_legacy_entry_points_resolve_deprecation_free(tiny_workload):
    """The classic constructors are veneers now, but must keep working
    without a whisper of a deprecation."""
    import warnings

    import repro

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = repro.AggregateAnalysis(
            tiny_workload.portfolio, tiny_workload.yet
        ).run("vectorized")
        assert result.engine == "vectorized"
        with repro.PricingService(tiny_workload.yet) as svc:
            assert svc.quote(tiny_workload.portfolio.layers[0]).premium > 0
        with repro.RealTimePricer(tiny_workload.yet) as pricer:
            assert pricer.quote(tiny_workload.portfolio.layers[0]).premium > 0
        assert repro.get_engine("vectorized").name == "vectorized"
