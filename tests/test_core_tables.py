"""Tests for the pipeline table types (ELT, YET, YELT, YLT, YELLT model)."""

import numpy as np
import pytest

from repro.core.tables import (
    ELT_SCHEMA,
    YELT_SCHEMA,
    YLT_SCHEMA,
    EltTable,
    YeltTable,
    YelltModel,
    YetTable,
    YltTable,
)
from repro.data.columnar import ColumnTable
from repro.errors import ConfigurationError


class TestEltTable:
    def test_from_arrays(self):
        elt = EltTable.from_arrays([3, 1, 2], [10.0, 20.0, 30.0], contract_id=5)
        assert elt.n_events == 3
        assert elt.contract_id == 5
        assert elt.max_event_id == 3

    def test_default_sigma_zero(self):
        elt = EltTable.from_arrays([1], [5.0])
        assert elt.sigmas[0] == 0.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            EltTable.from_arrays([1, 1], [1.0, 2.0])

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            EltTable.from_arrays([-1], [1.0])

    def test_negative_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            EltTable.from_arrays([1], [-1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            EltTable.from_arrays([], [])

    def test_wrong_schema_rejected(self):
        bad = ColumnTable.from_arrays(YLT_SCHEMA, trial=[0], loss=[1.0])
        with pytest.raises(ConfigurationError):
            EltTable(bad)

    def test_expected_annual_loss_with_rates(self):
        elt = EltTable.from_arrays([1, 2], [100.0, 200.0])
        eal = elt.expected_annual_loss({1: 0.1, 2: 0.5})
        assert eal == pytest.approx(0.1 * 100 + 0.5 * 200)


class TestYetSimulate:
    def simulate(self, n_trials=1000, epk=20.0, seed=0):
        ids = np.arange(50, dtype=np.int64)
        rates = np.full(50, 0.4)
        return YetTable.simulate(ids, rates, n_trials,
                                 np.random.default_rng(seed),
                                 mean_events_per_trial=epk)

    def test_mean_events_near_target(self):
        yet = self.simulate(n_trials=5000, epk=20.0)
        assert yet.mean_events_per_trial() == pytest.approx(20.0, rel=0.05)

    def test_default_rate_driven_frequency(self):
        ids = np.arange(10, dtype=np.int64)
        rates = np.full(10, 0.5)  # total 5/yr
        yet = YetTable.simulate(ids, rates, 4000, np.random.default_rng(0))
        assert yet.mean_events_per_trial() == pytest.approx(5.0, rel=0.1)

    def test_sorted_by_trial(self):
        yet = self.simulate()
        assert (np.diff(yet.trials) >= 0).all()

    def test_seq_resets_per_trial(self):
        yet = self.simulate(n_trials=100, epk=5.0)
        o = yet.trial_offsets
        for t in range(100):
            seqs = yet.table["seq"][o[t]:o[t + 1]]
            np.testing.assert_array_equal(seqs, np.arange(len(seqs)))

    def test_offsets_cover(self):
        yet = self.simulate()
        o = yet.trial_offsets
        assert o[0] == 0 and o[-1] == yet.n_occurrences
        assert (np.diff(o) >= 0).all()

    def test_sampling_follows_rates(self):
        ids = np.array([0, 1], dtype=np.int64)
        rates = np.array([0.9, 0.1])
        yet = YetTable.simulate(ids, rates, 2000, np.random.default_rng(1),
                                mean_events_per_trial=10)
        frac0 = (yet.event_ids == 0).mean()
        assert frac0 == pytest.approx(0.9, abs=0.02)

    def test_deterministic(self):
        a = self.simulate(seed=7)
        b = self.simulate(seed=7)
        assert a.table.equals(b.table)

    def test_slice_trials_renumbers(self):
        yet = self.simulate(n_trials=100, epk=5.0)
        sub = yet.slice_trials(40, 60)
        assert sub.n_trials == 20
        assert sub.trials.min() >= 0
        assert sub.trials.max() < 20

    def test_slice_trials_preserves_occurrences(self):
        yet = self.simulate(n_trials=100, epk=5.0)
        total = sum(
            yet.slice_trials(a, b).n_occurrences
            for a, b in [(0, 30), (30, 80), (80, 100)]
        )
        assert total == yet.n_occurrences

    def test_bad_slice_rejected(self):
        yet = self.simulate(n_trials=10)
        with pytest.raises(ConfigurationError):
            yet.slice_trials(5, 3)

    def test_validation_rejects_unsorted(self):
        table = ColumnTable.from_arrays(
            yet_schema(), trial=[1, 0], seq=[0, 0], event_id=[1, 2]
        )
        with pytest.raises(ConfigurationError):
            YetTable(table, 2)

    def test_validation_rejects_out_of_range_trial(self):
        table = ColumnTable.from_arrays(
            yet_schema(), trial=[5], seq=[0], event_id=[1]
        )
        with pytest.raises(ConfigurationError):
            YetTable(table, 3)


def yet_schema():
    from repro.core.tables import YET_SCHEMA
    return YET_SCHEMA


class TestYeltTable:
    def make(self):
        table = ColumnTable.from_arrays(
            YELT_SCHEMA,
            trial=[0, 0, 2],
            event_id=[7, 8, 7],
            loss=[10.0, 5.0, 3.0],
        )
        return YeltTable(table, n_trials=4)

    def test_to_ylt_aggregates_and_pads(self):
        ylt = self.make().to_ylt()
        np.testing.assert_allclose(ylt.losses, [15.0, 0.0, 3.0, 0.0])

    def test_loss_conservation(self):
        yelt = self.make()
        assert yelt.to_ylt().losses.sum() == pytest.approx(yelt.total_loss())

    def test_trial_range_validated(self):
        table = ColumnTable.from_arrays(
            YELT_SCHEMA, trial=[9], event_id=[1], loss=[1.0]
        )
        with pytest.raises(ConfigurationError):
            YeltTable(table, n_trials=4)


class TestYltTable:
    def test_mean_and_nbytes(self):
        ylt = YltTable(np.array([1.0, 3.0]))
        assert ylt.mean() == 2.0
        assert ylt.nbytes == 16

    def test_add_alignment(self):
        a = YltTable(np.array([1.0, 2.0]))
        b = YltTable(np.array([10.0, 20.0]))
        np.testing.assert_allclose(a.add(b).losses, [11.0, 22.0])

    def test_add_mismatched_rejected(self):
        with pytest.raises(ConfigurationError):
            YltTable(np.ones(2)).add(YltTable(np.ones(3)))

    def test_sum_of_list(self):
        out = YltTable.sum([YltTable(np.ones(3))] * 4)
        np.testing.assert_allclose(out.losses, [4.0, 4.0, 4.0])

    def test_negative_losses_rejected(self):
        with pytest.raises(ConfigurationError):
            YltTable(np.array([-1.0]))

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            YltTable(np.array([np.nan]))

    def test_table_roundtrip(self):
        ylt = YltTable(np.array([0.0, 5.0, 0.0]))
        back = YltTable.from_table(ylt.to_table(), 3)
        assert back.allclose(ylt)

    def test_from_sparse_table_pads_missing(self):
        table = ColumnTable.from_arrays(YLT_SCHEMA, trial=[1], loss=[9.0])
        ylt = YltTable.from_table(table, 3)
        np.testing.assert_allclose(ylt.losses, [0.0, 9.0, 0.0])

    def test_zeros(self):
        assert YltTable.zeros(5).losses.sum() == 0.0


class TestYelltModel:
    def test_paper_scale_reaches_5e16(self):
        assert YelltModel.paper_scale().yellt_entries() == pytest.approx(5e16)

    def test_ratio_yellt_to_yelt_is_locations(self):
        m = YelltModel.paper_scale()
        assert m.ratios()["yellt_over_yelt"] == pytest.approx(1000.0)

    def test_ratio_yelt_to_ylt_is_events_per_trial(self):
        m = YelltModel.paper_scale()
        assert m.ratios()["yelt_over_ylt"] == pytest.approx(1000.0)

    def test_bytes_accounting(self):
        m = YelltModel(1, 1, 1, 1)
        assert m.bytes_at(100, row_bytes=8) == 800

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            YelltModel(0, 1, 1, 1)
        with pytest.raises(ConfigurationError):
            YelltModel(1, 1, 1, 1, mean_events_per_trial=0)
