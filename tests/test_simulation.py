"""Tests for the AggregateAnalysis orchestrator."""

import pytest

from repro.core.engines import VectorizedEngine
from repro.core.simulation import AggregateAnalysis
from repro.errors import EngineError


class TestAggregateAnalysis:
    def test_run_by_name(self, tiny_workload):
        res = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet).run(
            "vectorized"
        )
        assert res.engine == "vectorized"
        assert res.portfolio_ylt.n_trials == tiny_workload.yet.n_trials

    def test_run_with_instance(self, tiny_workload):
        res = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet).run(
            VectorizedEngine()
        )
        assert res.engine == "vectorized"

    def test_kwargs_with_instance_rejected(self, tiny_workload):
        analysis = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet)
        with pytest.raises(EngineError):
            analysis.run(VectorizedEngine(), n_workers=2)

    def test_engine_kwargs_forwarded(self, tiny_workload):
        analysis = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet)
        res = analysis.run("distributed", n_nodes=2)
        assert res.details["n_nodes"] == 2

    def test_run_all(self, tiny_workload):
        analysis = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet)
        results = analysis.run_all(["sequential", "vectorized"])
        assert set(results) == {"sequential", "vectorized"}

    def test_run_closes_engines_it_constructs(self, tiny_workload, monkeypatch):
        """Registry-constructed engines (worker pools and the like) must be
        torn down by run(); caller-provided instances must be left open."""
        from repro.core import simulation as sim
        from repro.core.engines import MulticoreEngine

        closed = []
        real = sim.get_engine

        def tracking(name, **kwargs):
            engine = real(name, **kwargs)
            orig = engine.close
            engine.close = lambda: (closed.append(name), orig())
            return engine

        monkeypatch.setattr(sim, "get_engine", tracking)
        analysis = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet)
        analysis.run("multicore")
        assert closed == ["multicore"]

        mine = MulticoreEngine(n_workers=1)
        analysis.run(mine)
        assert closed == ["multicore"]  # caller-owned engine untouched
        mine.close()

    def test_expected_annual_loss_positive(self, tiny_workload):
        res = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet).run()
        assert res.expected_annual_loss() > 0

    def test_layer_expected_losses_sum_to_portfolio(self, small_portfolio_workload):
        res = AggregateAnalysis(
            small_portfolio_workload.portfolio, small_portfolio_workload.yet
        ).run()
        total = sum(res.layer_expected_losses().values())
        assert total == pytest.approx(res.expected_annual_loss())

    def test_trials_per_second(self, tiny_workload):
        res = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet).run()
        assert res.trials_per_second() > 0

    def test_yelt_rows_zero_when_not_emitted(self, tiny_workload):
        res = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet).run()
        assert res.yelt_rows() == 0

    def test_invalid_inputs_rejected(self, tiny_workload):
        with pytest.raises(EngineError):
            AggregateAnalysis("nope", tiny_workload.yet)
        with pytest.raises(EngineError):
            AggregateAnalysis(tiny_workload.portfolio, "nope")
