"""Shared fixtures: deterministic small workloads and RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import build_layer_workload, build_portfolio_workload
from repro.util.rng import RngHierarchy


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def hier() -> RngHierarchy:
    return RngHierarchy(12345)


@pytest.fixture(scope="session")
def tiny_workload():
    """1 layer, 2 small ELTs, 200 trials — fast enough for every engine."""
    return build_layer_workload(
        n_trials=200, mean_events_per_trial=25.0, n_elts=2,
        elt_rows=150, catalog_events=500, seed=99,
    )


@pytest.fixture(scope="session")
def small_portfolio_workload():
    """3 layers x 2 ELTs, 300 trials — multi-layer coverage."""
    return build_portfolio_workload(
        n_layers=3, n_trials=300, mean_events_per_trial=30.0,
        elts_per_layer=2, elt_rows=120, catalog_events=600, seed=101,
    )


@pytest.fixture(scope="session", autouse=True)
def no_leaked_shm_segments():
    """The whole suite must unlink every shared-memory segment it created.

    Arenas and slabs are owned by engines, dispatchers, services, and
    sessions; a test that forgets to close one would leave its segment
    in /dev/shm past process exit on a crash.  The atexit safety net
    hides such leaks from users, so this fixture is where they get
    caught.  (The ``risk_session`` factory below closes its sessions for
    exactly this reason.)
    """
    yield
    from repro.hpc import shm

    leaked = shm.active_segment_names()
    assert not leaked, (
        f"shared-memory segments leaked by the suite: {sorted(leaked)}"
    )


@pytest.fixture()
def risk_session():
    """Factory for RiskSessions that are guaranteed closed at test end.

    Usage: ``session = risk_session(yet, portfolio, n_workers=2)``.  The
    teardown close is idempotent, so tests exercising explicit ``close()``
    / context-manager paths can still use the factory.
    """
    from repro.session import RiskSession

    sessions = []

    def make(yet, portfolio=None, **kwargs) -> RiskSession:
        session = RiskSession(yet, portfolio, **kwargs)
        sessions.append(session)
        return session

    yield make
    for session in sessions:
        session.close()
