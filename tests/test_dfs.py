"""Tests for the simulated distributed file system."""

import numpy as np
import pytest

from repro.data.columnar import ColumnTable
from repro.data.dfs import SimDfs
from repro.data.schema import Schema
from repro.errors import ConfigurationError, StorageError

S = Schema([("k", np.int64), ("v", np.float64)])


def make_table(n=100):
    return ColumnTable.from_arrays(
        S, k=np.arange(n), v=np.arange(n, dtype=np.float64)
    )


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        dict(n_datanodes=0), dict(block_bytes=0), dict(replication=0),
    ])
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimDfs(**{"n_datanodes": 4, "block_bytes": 64, "replication": 2, **kwargs})

    def test_replication_capped_at_nodes(self):
        dfs = SimDfs(n_datanodes=2, replication=5)
        assert dfs.replication == 2


class TestByteFiles:
    def test_write_read_roundtrip(self):
        dfs = SimDfs(n_datanodes=4, block_bytes=10, replication=2)
        data = bytes(range(256)) * 3
        dfs.write("f", data)
        assert dfs.read("f") == data

    def test_blocks_split_at_block_size(self):
        dfs = SimDfs(n_datanodes=3, block_bytes=10, replication=1)
        dfs.write("f", b"x" * 25)
        blocks = dfs.file_blocks("f")
        assert [b.length for b in blocks] == [10, 10, 5]

    def test_empty_file(self):
        dfs = SimDfs(n_datanodes=2)
        dfs.write("f", b"")
        assert dfs.read("f") == b""

    def test_duplicate_path_rejected(self):
        dfs = SimDfs(n_datanodes=2)
        dfs.write("f", b"a")
        with pytest.raises(StorageError):
            dfs.write("f", b"b")

    def test_missing_file_rejected(self):
        with pytest.raises(StorageError):
            SimDfs(n_datanodes=2).read("nope")

    def test_delete_frees_blocks(self):
        dfs = SimDfs(n_datanodes=2, block_bytes=4, replication=2)
        dfs.write("f", b"x" * 16)
        assert dfs.total_stored_bytes() == 32  # 16 bytes x 2 replicas
        dfs.delete("f")
        assert dfs.total_stored_bytes() == 0
        assert not dfs.exists("f")

    def test_list_files(self):
        dfs = SimDfs(n_datanodes=2)
        dfs.write("b", b"1")
        dfs.write("a", b"2")
        assert dfs.list_files() == ["a", "b"]


class TestTableFiles:
    def test_roundtrip(self):
        dfs = SimDfs(n_datanodes=4)
        t = make_table(50)
        dfs.write_table("t", t, rows_per_block=7)
        assert dfs.read_table("t").equals(t)

    def test_blocks_decode_independently(self):
        dfs = SimDfs(n_datanodes=4)
        t = make_table(30)
        dfs.write_table("t", t, rows_per_block=10)
        parts = dfs.read_table_blocks("t")
        assert [p.n_rows for p in parts] == [10, 10, 10]
        assert ColumnTable.concat(parts).equals(t)

    def test_empty_table_single_block(self):
        dfs = SimDfs(n_datanodes=2)
        dfs.write_table("t", ColumnTable(S), rows_per_block=10)
        assert dfs.read_table("t").n_rows == 0


class TestReplicationAndFailure:
    def test_replication_factor_met(self):
        dfs = SimDfs(n_datanodes=5, replication=3)
        dfs.write("f", b"payload")
        for b in dfs.file_blocks("f"):
            assert dfs.replication_of(b.block_id) == 3

    def test_read_survives_single_failure(self):
        dfs = SimDfs(n_datanodes=4, replication=2, block_bytes=4)
        data = b"abcdefgh"
        dfs.write("f", data)
        dfs.kill_node(0)
        assert dfs.read("f") == data

    def test_re_replication_restores_factor(self):
        dfs = SimDfs(n_datanodes=5, replication=3, block_bytes=4)
        dfs.write("f", b"0123456789abcdef")
        dfs.kill_node(1)
        created = dfs.re_replicate()
        assert created > 0
        for b in dfs.file_blocks("f"):
            assert dfs.replication_of(b.block_id) == 3

    def test_data_intact_after_recovery(self):
        dfs = SimDfs(n_datanodes=5, replication=2, block_bytes=8)
        data = bytes(range(200))
        dfs.write("f", data)
        dfs.kill_node(2)
        dfs.re_replicate()
        assert dfs.read("f") == data

    def test_all_replicas_lost_raises(self):
        dfs = SimDfs(n_datanodes=2, replication=1)
        dfs.write("f", b"x")
        # kill both nodes: whichever held the block, it is now gone
        dfs.kill_node(0)
        dfs.kill_node(1)
        with pytest.raises(StorageError):
            dfs.read("f")

    def test_restart_node(self):
        dfs = SimDfs(n_datanodes=2, replication=2)
        dfs.kill_node(0)
        assert dfs.n_live_nodes == 1
        dfs.restart_node(0)
        assert dfs.n_live_nodes == 2

    def test_kill_unknown_node_rejected(self):
        with pytest.raises(StorageError):
            SimDfs(n_datanodes=2).kill_node(17)

    def test_cannot_place_replicas_when_too_few_live(self):
        dfs = SimDfs(n_datanodes=2, replication=2)
        dfs.kill_node(0)
        with pytest.raises(StorageError):
            dfs.write("f", b"x")


class TestPlacement:
    def test_blocks_spread_across_nodes(self):
        dfs = SimDfs(n_datanodes=4, replication=1, block_bytes=4)
        dfs.write("f", b"x" * 64)  # 16 blocks over 4 nodes
        used = [n.used_bytes for n in dfs._nodes.values()]
        assert min(used) > 0, "round-robin placement must touch every node"
