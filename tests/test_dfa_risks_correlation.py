"""Tests for the non-cat risk generators and the Gaussian copula."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.core.tables import YltTable
from repro.dfa.correlation import GaussianCopula
from repro.dfa.risks import (
    counterparty_risk,
    interest_rate_risk,
    investment_risk,
    market_cycle_risk,
    operational_risk,
    reserve_risk,
)
from repro.errors import AnalysisError, ConfigurationError

N = 20_000
RNG = lambda s: np.random.default_rng(s)

ALL_GENERATORS = [
    investment_risk, reserve_risk, interest_rate_risk,
    market_cycle_risk, counterparty_risk, operational_risk,
]


class TestRiskGenerators:
    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_shape_and_non_negative(self, gen):
        src = gen(N, RNG(0))
        assert src.n_trials == N
        assert (src.ylt.losses >= 0).all()

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_deterministic(self, gen):
        a = gen(N, RNG(1)).ylt.losses
        b = gen(N, RNG(1)).ylt.losses
        np.testing.assert_array_equal(a, b)

    def test_names_distinct(self):
        names = [g(100, RNG(0)).name for g in ALL_GENERATORS]
        assert len(set(names)) == len(names)

    def test_investment_loss_frequency(self):
        """Loss years are roughly P[return < 0] = Phi(-mu/sigma)."""
        src = investment_risk(N, RNG(2), mu=0.05, sigma=0.12)
        expect = sps.norm.cdf(-0.05 / 0.12)
        assert (src.ylt.losses > 0).mean() == pytest.approx(expect, abs=0.02)

    def test_counterparty_default_prob(self):
        src = counterparty_risk(N, RNG(3), default_prob=0.02)
        assert (src.ylt.losses > 0).mean() == pytest.approx(0.02, abs=0.005)

    def test_operational_poisson_frequency(self):
        src = operational_risk(N, RNG(4), annual_rate=0.5)
        # P[at least one event] = 1 - exp(-0.5)
        assert (src.ylt.losses > 0).mean() == pytest.approx(
            1 - np.exp(-0.5), abs=0.02
        )

    def test_market_cycle_soft_prob(self):
        src = market_cycle_risk(N, RNG(5), soft_prob=0.3)
        assert (src.ylt.losses > 0).mean() == pytest.approx(0.3, abs=0.02)

    def test_scaling_with_exposure(self):
        small = investment_risk(N, RNG(6), assets=1e8).ylt.mean()
        large = investment_risk(N, RNG(6), assets=1e9).ylt.mean()
        assert large == pytest.approx(10 * small, rel=1e-9)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            investment_risk(100, RNG(0), assets=-1)
        with pytest.raises(ConfigurationError):
            counterparty_risk(100, RNG(0), default_prob=1.5)


class TestGaussianCopula:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianCopula(np.array([[1.0, 0.5]]))  # not square
        with pytest.raises(ConfigurationError):
            GaussianCopula(np.array([[1.0, 0.9], [0.1, 1.0]]))  # asymmetric
        with pytest.raises(ConfigurationError):
            GaussianCopula(np.array([[2.0, 0.0], [0.0, 1.0]]))  # diag != 1
        with pytest.raises(ConfigurationError):
            GaussianCopula(np.array([[1.0, 2.0], [2.0, 1.0]]))  # not PSD

    def test_uniform_factory(self):
        c = GaussianCopula.uniform(4, 0.5)
        assert c.k == 4
        assert c.correlation[0, 1] == 0.5

    def test_uniform_infeasible_rho_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianCopula.uniform(3, -0.9)

    def test_reorder_preserves_marginals(self):
        rng = RNG(7)
        ylts = [YltTable(rng.lognormal(10, 1, 5000)) for _ in range(3)]
        copula = GaussianCopula.uniform(3, 0.6)
        out = copula.reorder(ylts, RNG(8))
        for a, b in zip(ylts, out):
            np.testing.assert_allclose(np.sort(a.losses), np.sort(b.losses))

    def test_induced_rank_correlation(self):
        rng = RNG(9)
        ylts = [YltTable(rng.lognormal(10, 1, 20_000)) for _ in range(2)]
        copula = GaussianCopula(np.array([[1.0, 0.7], [0.7, 1.0]]))
        out = copula.reorder(ylts, RNG(10))
        rho, _ = sps.spearmanr(out[0].losses, out[1].losses)
        # Gaussian copula: spearman ~ (6/pi) asin(rho/2) ~ 0.683 for rho=0.7
        assert rho == pytest.approx(0.683, abs=0.03)

    def test_zero_correlation_near_independent(self):
        rng = RNG(11)
        ylts = [YltTable(rng.lognormal(10, 1, 20_000)) for _ in range(2)]
        out = GaussianCopula.uniform(2, 0.0).reorder(ylts, RNG(12))
        rho, _ = sps.spearmanr(out[0].losses, out[1].losses)
        assert abs(rho) < 0.03

    def test_perfect_correlation_supported(self):
        """rho=1 is PSD-singular; the eigen factor must handle it."""
        rng = RNG(13)
        ylts = [YltTable(rng.lognormal(10, 1, 5000)) for _ in range(2)]
        out = GaussianCopula.uniform(2, 1.0).reorder(ylts, RNG(14))
        rho, _ = sps.spearmanr(out[0].losses, out[1].losses)
        assert rho > 0.999

    def test_marginal_count_mismatch_rejected(self):
        copula = GaussianCopula.uniform(3, 0.2)
        with pytest.raises(AnalysisError):
            copula.reorder([YltTable(np.ones(10))], RNG(0))

    def test_trial_count_mismatch_rejected(self):
        copula = GaussianCopula.uniform(2, 0.2)
        with pytest.raises(AnalysisError):
            copula.reorder([YltTable(np.ones(10)), YltTable(np.ones(20))], RNG(0))
