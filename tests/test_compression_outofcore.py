"""Tests for columnar compression and the out-of-core engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.engines.outofcore import OutOfCoreEngine
from repro.core.simulation import AggregateAnalysis
from repro.data.columnar import ColumnTable
from repro.data.compression import (
    compression_ratio,
    decode_column,
    encode_column,
    pack_table_compressed,
    unpack_table_compressed,
)
from repro.data.schema import Schema
from repro.data.store import ChunkStore
from repro.errors import EngineError, StorageError


class TestColumnCodecs:
    def test_sorted_ints_roundtrip(self):
        values = np.arange(1000, dtype=np.int64)
        codec, payload = encode_column(values)
        assert codec == "delta-varint"
        out = decode_column(codec, payload, values.dtype, values.size)
        np.testing.assert_array_equal(out, values)

    def test_sorted_ints_compress_well(self):
        values = np.arange(10_000, dtype=np.int64)
        _, payload = encode_column(values)
        assert len(payload) < values.nbytes / 5

    def test_negative_ints_roundtrip(self):
        values = np.array([-5, 3, -1000, 0, 7], dtype=np.int64)
        codec, payload = encode_column(values)
        out = decode_column(codec, payload, values.dtype, values.size)
        np.testing.assert_array_equal(out, values)

    def test_floats_raw(self):
        values = np.random.default_rng(0).random(100)
        codec, payload = encode_column(values)
        assert codec == "raw"
        out = decode_column(codec, payload, values.dtype, values.size)
        np.testing.assert_array_equal(out, values)

    def test_unknown_codec_rejected(self):
        with pytest.raises(StorageError):
            decode_column("brotli", b"", np.dtype("f8"), 0)

    def test_truncated_varint_rejected(self):
        values = np.arange(10, dtype=np.int64)
        codec, payload = encode_column(values)
        with pytest.raises(StorageError):
            decode_column(codec, payload[:-1], values.dtype, values.size)

    @settings(max_examples=40)
    @given(values=hnp.arrays(np.int64, st.integers(0, 200),
                             elements=st.integers(-2**40, 2**40)))
    def test_int_roundtrip_property(self, values):
        codec, payload = encode_column(values)
        out = decode_column(codec, payload, values.dtype, values.size)
        np.testing.assert_array_equal(out, values)


class TestCompressedTables:
    S = Schema([("trial", np.int64), ("seq", np.int32),
                ("event_id", np.int64), ("loss", np.float64)])

    def make_yet_like(self, n=5000):
        rng = np.random.default_rng(0)
        counts = rng.poisson(10, 500)
        trial = np.repeat(np.arange(500), counts)[:n]
        n = trial.size
        return ColumnTable.from_arrays(
            self.S,
            trial=trial,
            seq=np.arange(n) % 13,
            event_id=rng.integers(0, 10_000, n),
            loss=rng.lognormal(10, 1, n),
        )

    def test_roundtrip(self):
        t = self.make_yet_like()
        assert unpack_table_compressed(pack_table_compressed(t)).equals(t)

    def test_yet_compresses_meaningfully(self):
        """Sorted trial + sawtooth seq: the ratio must beat 1.5x overall."""
        t = self.make_yet_like()
        assert compression_ratio(t) > 1.5

    def test_empty_table(self):
        t = ColumnTable(self.S)
        assert unpack_table_compressed(pack_table_compressed(t)).n_rows == 0

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            unpack_table_compressed(b"nope" + b"\x00" * 16)

    def test_truncated_rejected(self):
        data = pack_table_compressed(self.make_yet_like(100))
        with pytest.raises(StorageError):
            unpack_table_compressed(data[:-10])


class TestOutOfCoreEngine:
    def test_matches_vectorized(self, tiny_workload, tmp_path):
        store = ChunkStore(tmp_path)
        store.write_table("yet", tiny_workload.yet.table, rows_per_chunk=97)
        engine = OutOfCoreEngine()
        res = engine.run_from_store(
            tiny_workload.portfolio, store, "yet", tiny_workload.yet.n_trials
        )
        ref = AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet
                                ).run("vectorized")
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)
        assert res.details["chunks_read"] > 1
        assert res.details["rows_read"] == tiny_workload.yet.n_occurrences

    def test_chunk_size_invariance(self, tiny_workload, tmp_path):
        results = []
        for i, rows in enumerate((31, 97, 10_000)):
            store = ChunkStore(tmp_path / str(i))
            store.write_table("yet", tiny_workload.yet.table,
                              rows_per_chunk=rows)
            res = OutOfCoreEngine().run_from_store(
                tiny_workload.portfolio, store, "yet",
                tiny_workload.yet.n_trials,
            )
            results.append(res.portfolio_ylt)
        assert results[0].allclose(results[1])
        assert results[1].allclose(results[2])

    def test_bad_n_trials_rejected(self, tiny_workload, tmp_path):
        store = ChunkStore(tmp_path)
        store.write_table("yet", tiny_workload.yet.table, rows_per_chunk=100)
        with pytest.raises(EngineError):
            OutOfCoreEngine().run_from_store(
                tiny_workload.portfolio, store, "yet", 0
            )

    def test_wrong_table_rejected(self, tiny_workload, tmp_path):
        store = ChunkStore(tmp_path)
        wrong = ColumnTable.from_arrays(
            Schema([("x", np.int64)]), x=np.arange(10)
        )
        store.write_table("notyet", wrong, rows_per_chunk=5)
        with pytest.raises(EngineError):
            OutOfCoreEngine().run_from_store(
                tiny_workload.portfolio, store, "notyet", 10
            )

    def test_out_of_range_trials_rejected(self, tiny_workload, tmp_path):
        store = ChunkStore(tmp_path)
        store.write_table("yet", tiny_workload.yet.table, rows_per_chunk=100)
        with pytest.raises(EngineError):
            OutOfCoreEngine().run_from_store(
                tiny_workload.portfolio, store, "yet", 2  # too few trials
            )
