"""Tests for layers and portfolios."""

import numpy as np
import pytest

from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import EltTable
from repro.core.terms import LayerTerms
from repro.errors import ConfigurationError


def elt(ids, losses, cid=0):
    return EltTable.from_arrays(ids, losses, contract_id=cid)


class TestLayer:
    def test_basic_properties(self):
        layer = Layer(3, [elt([1], [2.0]), elt([2, 3], [4.0, 5.0])], LayerTerms())
        assert layer.layer_id == 3
        assert layer.n_elts == 2
        assert layer.n_events == 3

    def test_lookup_merges_elts(self):
        layer = Layer(0, [elt([1], [10.0]), elt([1, 2], [5.0, 7.0])], LayerTerms())
        lk = layer.lookup()
        np.testing.assert_allclose(lk(np.array([1, 2])), [15.0, 7.0])

    def test_lookup_cached(self):
        layer = Layer(0, [elt([1], [1.0])], LayerTerms())
        assert layer.lookup() is layer.lookup()

    def test_invalidate_lookup(self):
        layer = Layer(0, [elt([1], [1.0])], LayerTerms())
        first = layer.lookup()
        layer.invalidate_lookup()
        assert layer.lookup() is not first

    def test_lookup_cache_not_thrashed_by_alternating_settings(self):
        """Two engines with different dense thresholds share one layer:
        alternating requests must hit the per-setting cache, not rebuild."""
        layer = Layer(0, [elt([1, 900], [1.0, 2.0])], LayerTerms())
        dense = layer.lookup(dense_max_entries=4_000_000)
        sparse = layer.lookup(dense_max_entries=10)
        assert dense.kind == "dense" and sparse.kind == "sparse"
        # Alternation returns the identical cached objects every time.
        for _ in range(3):
            assert layer.lookup(dense_max_entries=4_000_000) is dense
            assert layer.lookup(dense_max_entries=10) is sparse
        layer.invalidate_lookup()
        assert layer.lookup(dense_max_entries=10) is not sparse

    def test_weights(self):
        layer = Layer(0, [elt([1], [10.0])], LayerTerms(), weights=[0.5])
        assert layer.lookup().get_scalar(1) == 5.0

    def test_no_elts_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer(0, [], LayerTerms())

    def test_non_elt_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer(0, ["nope"], LayerTerms())

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer(-1, [elt([1], [1.0])], LayerTerms())

    def test_bad_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer(0, [elt([1], [1.0])], LayerTerms(), weights=[0.0])
        with pytest.raises(ConfigurationError):
            Layer(0, [elt([1], [1.0])], LayerTerms(), weights=[1.0, 2.0])


class TestPortfolio:
    def make_layers(self, n=3):
        return [Layer(i, [elt([i + 1], [float(i + 1)], cid=i)], LayerTerms())
                for i in range(n)]

    def test_properties(self):
        pf = Portfolio(self.make_layers(3))
        assert pf.n_layers == 3
        assert pf.layer_ids == (0, 1, 2)
        assert pf.n_elts == 3
        assert len(pf) == 3

    def test_layer_by_id(self):
        pf = Portfolio(self.make_layers(3))
        assert pf.layer(1).layer_id == 1
        with pytest.raises(ConfigurationError):
            pf.layer(99)

    def test_iteration_order(self):
        pf = Portfolio(self.make_layers(4))
        assert [l.layer_id for l in pf] == [0, 1, 2, 3]

    def test_duplicate_ids_rejected(self):
        layers = self.make_layers(2)
        dup = Layer(0, [elt([9], [1.0])], LayerTerms())
        with pytest.raises(ConfigurationError):
            Portfolio([layers[0], dup])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Portfolio([])

    def test_non_layer_rejected(self):
        with pytest.raises(ConfigurationError):
            Portfolio(["nope"])

    def test_kernel_cached_per_setting(self):
        pf = Portfolio(self.make_layers(2))
        k_big = pf.kernel(dense_max_entries=4_000_000)
        k_tiny = pf.kernel(dense_max_entries=1)
        assert pf.kernel(dense_max_entries=4_000_000) is k_big
        assert pf.kernel(dense_max_entries=1) is k_tiny
        assert k_big.n_dense == 2 and k_tiny.n_sparse == 2

    def test_invalidate_kernels(self):
        pf = Portfolio(self.make_layers(2))
        first = pf.kernel()
        first_lookup = pf.layers[0].lookup()
        pf.invalidate_kernels()
        assert pf.kernel() is not first
        assert pf.layers[0].lookup() is not first_lookup

    def test_layer_invalidation_rebuilds_kernel(self):
        """The documented ELT-mutation flow — layer.invalidate_lookup() —
        must not leave engines serving a stale fused kernel."""
        pf = Portfolio(self.make_layers(2))
        stale = pf.kernel()
        # Mutate layer 0's ELT loss in place, then invalidate as documented.
        pf.layers[0].elts[0].table["mean_loss"][0] = 123.0
        pf.layers[0].invalidate_lookup()
        fresh = pf.kernel()
        assert fresh is not stale
        assert fresh.gather_layer(fresh.row_of(0), np.array([1]))[0] == 123.0
