"""Tests for layers and portfolios."""

import numpy as np
import pytest

from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import EltTable
from repro.core.terms import LayerTerms
from repro.errors import ConfigurationError


def elt(ids, losses, cid=0):
    return EltTable.from_arrays(ids, losses, contract_id=cid)


class TestLayer:
    def test_basic_properties(self):
        layer = Layer(3, [elt([1], [2.0]), elt([2, 3], [4.0, 5.0])], LayerTerms())
        assert layer.layer_id == 3
        assert layer.n_elts == 2
        assert layer.n_events == 3

    def test_lookup_merges_elts(self):
        layer = Layer(0, [elt([1], [10.0]), elt([1, 2], [5.0, 7.0])], LayerTerms())
        lk = layer.lookup()
        np.testing.assert_allclose(lk(np.array([1, 2])), [15.0, 7.0])

    def test_lookup_cached(self):
        layer = Layer(0, [elt([1], [1.0])], LayerTerms())
        assert layer.lookup() is layer.lookup()

    def test_invalidate_lookup(self):
        layer = Layer(0, [elt([1], [1.0])], LayerTerms())
        first = layer.lookup()
        layer.invalidate_lookup()
        assert layer.lookup() is not first

    def test_weights(self):
        layer = Layer(0, [elt([1], [10.0])], LayerTerms(), weights=[0.5])
        assert layer.lookup().get_scalar(1) == 5.0

    def test_no_elts_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer(0, [], LayerTerms())

    def test_non_elt_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer(0, ["nope"], LayerTerms())

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer(-1, [elt([1], [1.0])], LayerTerms())

    def test_bad_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer(0, [elt([1], [1.0])], LayerTerms(), weights=[0.0])
        with pytest.raises(ConfigurationError):
            Layer(0, [elt([1], [1.0])], LayerTerms(), weights=[1.0, 2.0])


class TestPortfolio:
    def make_layers(self, n=3):
        return [Layer(i, [elt([i + 1], [float(i + 1)], cid=i)], LayerTerms())
                for i in range(n)]

    def test_properties(self):
        pf = Portfolio(self.make_layers(3))
        assert pf.n_layers == 3
        assert pf.layer_ids == (0, 1, 2)
        assert pf.n_elts == 3
        assert len(pf) == 3

    def test_layer_by_id(self):
        pf = Portfolio(self.make_layers(3))
        assert pf.layer(1).layer_id == 1
        with pytest.raises(ConfigurationError):
            pf.layer(99)

    def test_iteration_order(self):
        pf = Portfolio(self.make_layers(4))
        assert [l.layer_id for l in pf] == [0, 1, 2, 3]

    def test_duplicate_ids_rejected(self):
        layers = self.make_layers(2)
        dup = Layer(0, [elt([9], [1.0])], LayerTerms())
        with pytest.raises(ConfigurationError):
            Portfolio([layers[0], dup])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Portfolio([])

    def test_non_layer_rejected(self):
        with pytest.raises(ConfigurationError):
            Portfolio(["nope"])
