"""Property-based cross-engine equivalence on randomised workloads.

Hypothesis drives the workload *shape* (trial counts, event frequencies,
ELT sizes, terms); for every generated configuration all engines must
produce the sequential oracle's YLT.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytics.comparison import assert_engines_equivalent
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import EltTable, YetTable
from repro.core.terms import LayerTerms


@st.composite
def workload(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n_trials = draw(st.integers(1, 60))
    catalog_events = draw(st.integers(2, 80))
    epk = draw(st.floats(0.1, 12.0))
    n_elts = draw(st.integers(1, 3))
    elt_rows = draw(st.integers(1, catalog_events))

    elts = []
    for i in range(n_elts):
        ids = rng.choice(catalog_events, size=elt_rows, replace=False)
        ids.sort()
        losses = rng.lognormal(10, 1.5, elt_rows)
        elts.append(EltTable.from_arrays(ids, losses, contract_id=i))

    terms = LayerTerms(
        occ_retention=draw(st.floats(0.0, 1e5)),
        occ_limit=draw(st.one_of(st.just(np.inf), st.floats(1e3, 1e6))),
        agg_retention=draw(st.floats(0.0, 1e6)),
        agg_limit=draw(st.one_of(st.just(np.inf), st.floats(1e3, 1e8))),
        participation=draw(st.floats(0.05, 1.0)),
    )
    yet = YetTable.simulate(
        np.arange(catalog_events, dtype=np.int64),
        np.full(catalog_events, 1.0),
        n_trials,
        rng,
        mean_events_per_trial=epk,
    )
    return Portfolio([Layer(0, elts, terms)]), yet


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(wl=workload())
def test_all_engines_agree_on_random_workloads(wl):
    portfolio, yet = wl
    assert_engines_equivalent(
        portfolio, yet,
        ["sequential", "vectorized", "device", "multicore", "mapreduce",
         "distributed"],
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(wl=workload())
def test_portfolio_ylt_is_layer_sum(wl):
    portfolio, yet = wl
    from repro.core.simulation import AggregateAnalysis

    res = AggregateAnalysis(portfolio, yet).run("vectorized")
    total = np.sum([y.losses for y in res.ylt_by_layer.values()], axis=0)
    np.testing.assert_allclose(res.portfolio_ylt.losses, total, rtol=1e-12)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(wl=workload())
def test_yelt_rollup_consistency(wl):
    """YELT → YLT → aggregate terms equals the engine's YLT."""
    portfolio, yet = wl
    from repro.core.engines import VectorizedEngine

    res = VectorizedEngine().run(portfolio, yet, emit_yelt=True)
    for layer in portfolio:
        yelt = res.yelt_by_layer[layer.layer_id]
        rebuilt = layer.terms.apply_aggregate(yelt.to_ylt().losses)
        np.testing.assert_allclose(
            rebuilt, res.ylt_by_layer[layer.layer_id].losses,
            rtol=1e-9, atol=1e-6,
        )
