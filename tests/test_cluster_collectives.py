"""Tests for the simulated cluster and its collectives."""

import numpy as np
import pytest

from repro.errors import ClusterError
from repro.hpc.cluster import NetworkModel, SimCluster
from repro.hpc.collectives import Collectives


class TestNetworkModel:
    def test_transfer_time_alpha_beta(self):
        net = NetworkModel(latency_s=1e-3, bandwidth_bytes_per_s=1e6)
        assert net.transfer_seconds(0) == pytest.approx(1e-3)
        assert net.transfer_seconds(10**6) == pytest.approx(1e-3 + 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ClusterError):
            NetworkModel().transfer_seconds(-1)


class TestSimCluster:
    def test_node_count(self):
        assert SimCluster(5).n_nodes == 5

    def test_zero_nodes_rejected(self):
        with pytest.raises(ClusterError):
            SimCluster(0)

    def test_unknown_rank_rejected(self):
        with pytest.raises(ClusterError):
            SimCluster(2).node(7)

    def test_run_spmd_collects_results(self):
        cluster = SimCluster(4)
        out = cluster.run(lambda node: node.rank ** 2)
        assert out == [0, 1, 4, 9]

    def test_run_subset_of_ranks(self):
        cluster = SimCluster(4)
        assert cluster.run(lambda n: n.rank, ranks=[1, 3]) == [1, 3]

    def test_node_memory_isolated(self):
        cluster = SimCluster(2)
        cluster.node(0).memory.alloc("x", 10, np.float64)
        assert "x" not in cluster.node(1).memory


class TestCollectives:
    def setup_method(self):
        self.cluster = SimCluster(4)
        self.co = Collectives(self.cluster)

    def test_bcast_replicates(self):
        payload = np.arange(10)
        self.co.bcast("w", payload)
        for node in self.cluster.nodes:
            np.testing.assert_array_equal(node.store["w"], payload)

    def test_bcast_charges_log_rounds(self):
        payload = np.zeros(1000)
        self.co.bcast("w", payload)
        # 4 nodes -> 2 rounds of payload-size messages
        assert self.cluster.comm_bytes == 2 * payload.nbytes

    def test_scatter_and_gather_roundtrip(self):
        parts = [np.full(3, r) for r in range(4)]
        self.co.scatter("p", parts)
        gathered = self.co.gather("p")
        for r, arr in enumerate(gathered):
            np.testing.assert_array_equal(arr, parts[r])

    def test_scatter_wrong_count_rejected(self):
        with pytest.raises(ClusterError):
            self.co.scatter("p", [1, 2])

    def test_gather_missing_value_rejected(self):
        with pytest.raises(ClusterError):
            self.co.gather("never_set")

    def test_reduce_sum(self):
        self.co.scatter("v", [np.full(2, float(r)) for r in range(4)])
        total = self.co.reduce("v")
        np.testing.assert_array_equal(total, [6.0, 6.0])

    def test_reduce_custom_op(self):
        self.co.scatter("v", [np.array([r]) for r in range(4)])
        out = self.co.reduce("v", op=np.maximum)
        assert out[0] == 3

    def test_allreduce_lands_everywhere(self):
        self.co.scatter("v", [np.array([1.0])] * 4)
        result = self.co.allreduce("v")
        assert result[0] == 4.0
        for node in self.cluster.nodes:
            assert node.store["v"][0] == 4.0

    def test_invalid_root_rejected(self):
        with pytest.raises(ClusterError):
            self.co.bcast("x", 1, root=9)

    def test_barrier_advances_clock(self):
        before = self.cluster.comm_seconds
        self.co.barrier()
        assert self.cluster.comm_seconds > before

    def test_single_node_cluster_collectives(self):
        co = Collectives(SimCluster(1))
        co.bcast("x", np.ones(3))
        co.scatter("y", [np.ones(2)])
        assert co.reduce("y")[0] == 1.0
