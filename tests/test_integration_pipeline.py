"""End-to-end integration: stage 1 → stage 2 → stage 3.

Runs the complete §II pipeline on synthetic data: catastrophe modelling
produces ELTs, aggregate analysis produces YLTs on several engines, DFA
combines risks and derives the regulator metrics.
"""

import numpy as np
import pytest

from repro.analytics.comparison import assert_engines_equivalent
from repro.analytics.convergence import ConvergenceDiagnostics
from repro.analytics.ep_curves import aep_curve, oep_curve
from repro.bench.workloads import dfa_workload
from repro.catmod import (
    CatModPipeline,
    assign_contracts,
    generate_catalog,
    generate_exposure,
    standard_perils,
)
from repro.catmod.geography import Region
from repro.core import AggregateAnalysis, Layer, LayerTerms, Portfolio, YetTable
from repro.dfa import (
    BusinessUnit,
    Enterprise,
    RealTimePricer,
    RiskMetrics,
    combine_ylts,
    regulator_report,
)
from repro.util.rng import RngHierarchy


@pytest.fixture(scope="module")
def full_pipeline():
    """Stage 1 + YET simulation, shared by the integration tests."""
    rng = RngHierarchy(2012)
    region = Region(25.0, 33.0, -98.0, -80.0)
    perils = standard_perils()
    catalog = generate_catalog(perils, region, 300, rng.generator("catalog"))
    exposure = generate_exposure(region, 800, rng.generator("exposure"))
    contracts = assign_contracts(exposure, 10, rng.generator("contracts"))
    elts, stats = CatModPipeline(perils).run(catalog, exposure, contracts)
    yet = YetTable.simulate(
        catalog.event_ids, catalog.rates, n_trials=400,
        rng=rng.generator("yet"), mean_events_per_trial=30.0,
    )
    terms = LayerTerms(occ_retention=2e5, occ_limit=5e7,
                       agg_retention=5e5, agg_limit=5e8, participation=0.85)
    layers = [
        Layer(i, [elts[2 * i], elts[2 * i + 1]], terms) for i in range(5)
    ]
    return Portfolio(layers), yet, elts, stats


class TestStage1ToStage2:
    def test_elts_feed_engines(self, full_pipeline):
        portfolio, yet, _, _ = full_pipeline
        res = AggregateAnalysis(portfolio, yet).run("vectorized")
        assert res.portfolio_ylt.n_trials == 400
        assert res.expected_annual_loss() > 0

    def test_engines_agree_on_catmod_output(self, full_pipeline):
        portfolio, yet, _, _ = full_pipeline
        assert_engines_equivalent(
            portfolio, yet,
            ["sequential", "vectorized", "device", "multicore", "mapreduce",
             "distributed"],
        )

    def test_stage1_throughput_recorded(self, full_pipeline):
        _, _, _, stats = full_pipeline
        assert stats.pairs_per_second > 0
        assert stats.event_site_pairs == 300 * 800


class TestStage2ToStage3:
    def test_metrics_ladder(self, full_pipeline):
        portfolio, yet, _, _ = full_pipeline
        res = AggregateAnalysis(portfolio, yet).run("vectorized")
        metrics = RiskMetrics.from_ylt(res.portfolio_ylt)
        metrics.check_coherence()
        report = regulator_report(metrics)
        assert "Probable Maximum Loss" in report

    def test_ep_curves(self, full_pipeline):
        portfolio, yet, _, _ = full_pipeline
        res = AggregateAnalysis(portfolio, yet).run("vectorized", emit_yelt=True)
        for lid, yelt in res.yelt_by_layer.items():
            assert aep_curve(yelt.to_ylt()).dominates(oep_curve(yelt))

    def test_dfa_combination(self, full_pipeline):
        portfolio, yet, _, _ = full_pipeline
        cat_ylt = AggregateAnalysis(portfolio, yet).run("vectorized").portfolio_ylt
        sources = dfa_workload(cat_ylt, seed=3)
        assert len(sources) == 6  # the six §II risk names
        names = {s.name for s in sources}
        assert names == {"investment", "reserve", "interest_rate",
                         "market_cycle", "counterparty", "operational"}
        combined = combine_ylts([cat_ylt] + [s.ylt for s in sources])
        assert combined.mean() > cat_ylt.mean()

    def test_enterprise_rollup(self, full_pipeline):
        portfolio, yet, _, _ = full_pipeline
        cat_ylt = AggregateAnalysis(portfolio, yet).run("vectorized").portfolio_ylt
        units = [BusinessUnit("cat", cat_ylt)] + [
            BusinessUnit(s.name, s.ylt) for s in dfa_workload(cat_ylt, seed=3)
        ]
        ent = Enterprise(units)
        assert ent.economic_capital(0.99) > 0
        assert 0.0 <= ent.diversification_benefit(0.99) < 1.0

    def test_realtime_pricing_workflow(self, full_pipeline):
        portfolio, yet, _, _ = full_pipeline
        pricer = RealTimePricer(yet)
        base_layer = portfolio.layers[0]
        alternatives = [
            Layer(99, base_layer.elts,
                  LayerTerms(occ_retention=r, occ_limit=5e7))
            for r in (1e5, 5e5, 1e6)
        ]
        quotes = pricer.quote_sweep(alternatives)
        # premium decreases as the attachment rises
        premiums = [q.premium for q in quotes]
        assert premiums == sorted(premiums, reverse=True)

    def test_convergence_diagnostics(self, full_pipeline):
        portfolio, yet, _, _ = full_pipeline
        ylt = AggregateAnalysis(portfolio, yet).run("vectorized").portfolio_ylt
        diag = ConvergenceDiagnostics(ylt)
        pts = diag.curve(6)
        assert pts[-1].standard_error <= pts[0].standard_error


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        """The same root seed regenerates the identical portfolio YLT."""
        outputs = []
        for _ in range(2):
            rng = RngHierarchy(777)
            region = Region(25.0, 30.0, -95.0, -85.0)
            perils = standard_perils()
            catalog = generate_catalog(perils, region, 100, rng.generator("cat"))
            exposure = generate_exposure(region, 200, rng.generator("exp"))
            contracts = assign_contracts(exposure, 4, rng.generator("con"))
            elts, _ = CatModPipeline(perils).run(catalog, exposure, contracts)
            yet = YetTable.simulate(
                catalog.event_ids, catalog.rates, 100,
                rng.generator("yet"), mean_events_per_trial=10.0,
            )
            pf = Portfolio([Layer(0, elts, LayerTerms(occ_retention=1e5))])
            res = AggregateAnalysis(pf, yet).run("vectorized")
            outputs.append(res.portfolio_ylt.losses)
        np.testing.assert_array_equal(outputs[0], outputs[1])
