"""Tests for the B+-tree index."""

import numpy as np
import pytest

from repro.data.btree import BPlusTree
from repro.errors import ConfigurationError, StorageError


class TestBasics:
    def test_insert_get(self):
        t = BPlusTree(order=4)
        t.insert(5, "five")
        assert t.get(5) == "five"

    def test_missing_key_raises(self):
        t = BPlusTree(order=4)
        t.insert(1, "x")
        with pytest.raises(StorageError):
            t.get(2)

    def test_overwrite_does_not_grow(self):
        t = BPlusTree(order=4)
        t.insert(1, "a")
        t.insert(1, "b")
        assert len(t) == 1
        assert t.get(1) == "b"

    def test_contains(self):
        t = BPlusTree(order=4)
        t.insert(3, None)
        assert t.contains(3) and not t.contains(4)

    def test_order_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(order=2)


class TestScaling:
    @pytest.mark.parametrize("order", [3, 4, 16, 64])
    def test_thousand_keys_all_orders(self, order):
        t = BPlusTree(order=order)
        keys = np.random.default_rng(0).permutation(1000)
        for k in keys:
            t.insert(int(k), int(k) * 2)
        assert len(t) == 1000
        for k in (0, 17, 500, 999):
            assert t.get(k) == k * 2

    def test_height_grows_logarithmically(self):
        t = BPlusTree(order=4)
        for i in range(1000):
            t.insert(i, i)
        # order-4 tree of 1000 keys: height must stay small
        assert t.height <= 8

    def test_node_visits_counted(self):
        t = BPlusTree(order=4)
        for i in range(100):
            t.insert(i, i)
        before = t.node_visits
        t.get(50)
        assert t.node_visits > before


class TestOrderedAccess:
    def make_tree(self, n=200, order=5):
        t = BPlusTree(order=order)
        for k in np.random.default_rng(1).permutation(n):
            t.insert(int(k), int(k))
        return t

    def test_items_sorted(self):
        t = self.make_tree()
        keys = [k for k, _ in t.items()]
        assert keys == sorted(keys)
        assert len(keys) == 200

    def test_range_scan_inclusive(self):
        t = self.make_tree()
        got = [k for k, _ in t.range_scan(10, 20)]
        assert got == list(range(10, 21))

    def test_range_scan_empty_range(self):
        t = self.make_tree()
        assert list(t.range_scan(1000, 2000)) == []

    def test_range_scan_values(self):
        t = self.make_tree()
        assert [v for _, v in t.range_scan(5, 7)] == [5, 6, 7]
