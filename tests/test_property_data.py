"""Property-based tests on the data substrate.

Serialisation round-trips, group-by conservation, B+-tree vs dict
equivalence, DFS write/read identity, MapReduce partition-invariance.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.btree import BPlusTree
from repro.data.columnar import ColumnTable
from repro.data.dfs import SimDfs
from repro.data.schema import Schema
from repro.data.serialization import pack_table, unpack_table

S = Schema([("k", np.int64), ("v", np.float64)])

keys = hnp.arrays(np.int64, st.integers(0, 100),
                  elements=st.integers(-1000, 1000))
values = st.integers(0, 100).flatmap(
    lambda n: hnp.arrays(np.float64, n,
                         elements=st.floats(-1e9, 1e9, allow_nan=False))
)


@st.composite
def tables(draw):
    n = draw(st.integers(0, 100))
    k = draw(hnp.arrays(np.int64, n, elements=st.integers(-100, 100)))
    v = draw(hnp.arrays(np.float64, n,
                        elements=st.floats(-1e6, 1e6, allow_nan=False)))
    return ColumnTable.from_arrays(S, k=k, v=v)


class TestSerializationProperties:
    @settings(max_examples=50)
    @given(t=tables())
    def test_pack_unpack_identity(self, t):
        assert unpack_table(pack_table(t)).equals(t)


class TestGroupbyProperties:
    @settings(max_examples=50)
    @given(t=tables())
    def test_conserves_sum(self, t):
        g = t.groupby_sum("k", "v")
        np.testing.assert_allclose(g["v"].sum(), t["v"].sum(), rtol=1e-9,
                                   atol=1e-6)

    @settings(max_examples=50)
    @given(t=tables())
    def test_matches_dict_reference(self, t):
        g = t.groupby_sum("k", "v")
        expect = {}
        for k, v in zip(t["k"].tolist(), t["v"].tolist()):
            expect[k] = expect.get(k, 0.0) + v
        got = dict(zip(g["k"].tolist(), g["v"].tolist()))
        assert set(got) == set(expect)
        for k in expect:
            np.testing.assert_allclose(got[k], expect[k], rtol=1e-9, atol=1e-6)


class TestBTreeProperties:
    @settings(max_examples=40)
    @given(entries=st.lists(st.tuples(st.integers(-10_000, 10_000),
                                      st.integers()), max_size=300),
           order=st.integers(3, 32))
    def test_matches_dict(self, entries, order):
        tree = BPlusTree(order=order)
        reference = {}
        for k, v in entries:
            tree.insert(k, v)
            reference[k] = v
        assert len(tree) == len(reference)
        for k, v in reference.items():
            assert tree.get(k) == v
        assert [k for k, _ in tree.items()] == sorted(reference)

    @settings(max_examples=20)
    @given(ks=st.lists(st.integers(0, 1000), min_size=1, max_size=200,
                       unique=True),
           lo=st.integers(0, 1000), hi=st.integers(0, 1000))
    def test_range_scan_matches_filter(self, ks, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        tree = BPlusTree(order=5)
        for k in ks:
            tree.insert(k, k)
        got = [k for k, _ in tree.range_scan(lo, hi)]
        assert got == sorted(k for k in ks if lo <= k <= hi)


class TestDfsProperties:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.binary(max_size=2000),
           block_bytes=st.integers(1, 257),
           n_nodes=st.integers(1, 6),
           replication=st.integers(1, 3))
    def test_write_read_identity(self, data, block_bytes, n_nodes, replication):
        dfs = SimDfs(n_datanodes=n_nodes, block_bytes=block_bytes,
                     replication=replication)
        dfs.write("f", data)
        assert dfs.read("f") == data

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.binary(min_size=1, max_size=2000),
           kill=st.integers(0, 3))
    def test_single_failure_tolerated_with_replication_2(self, data, kill):
        dfs = SimDfs(n_datanodes=4, block_bytes=64, replication=2)
        dfs.write("f", data)
        dfs.kill_node(kill)
        assert dfs.read("f") == data
        dfs.re_replicate()
        for b in dfs.file_blocks("f"):
            assert dfs.replication_of(b.block_id) == 2
