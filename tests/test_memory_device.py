"""Tests for memory spaces, the transfer ledger, and the simulated GPU."""

import numpy as np
import pytest

from repro.core.engines import DeviceEngine, VectorizedEngine
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import EltTable
from repro.core.terms import LayerTerms
from repro.errors import CapacityError, DeviceError
from repro.hpc.device import DeviceProperties, SimulatedGpu
from repro.hpc.kernel import Kernel
from repro.hpc.memory import MemorySpace, TransferLedger


class TestMemorySpace:
    def test_alloc_and_get(self):
        sp = MemorySpace("global", 1024)
        arr = sp.alloc("x", 10, np.float64)
        assert arr.nbytes == 80
        assert sp.get("x") is arr

    def test_capacity_enforced(self):
        sp = MemorySpace("shared", 64)
        with pytest.raises(CapacityError):
            sp.alloc("big", 100, np.float64)

    def test_capacity_counts_live_allocations(self):
        sp = MemorySpace("s", 160)
        sp.alloc("a", 10, np.float64)
        with pytest.raises(CapacityError):
            sp.alloc("b", 11, np.float64)
        sp.free("a")
        sp.alloc("b", 11, np.float64)  # fits after free

    def test_duplicate_name_rejected(self):
        sp = MemorySpace("s", 1024)
        sp.alloc("x", 1, np.float64)
        with pytest.raises(DeviceError):
            sp.alloc("x", 1, np.float64)

    def test_free_unknown_rejected(self):
        with pytest.raises(DeviceError):
            MemorySpace("s", 64).free("nope")

    def test_put_copies_by_default(self):
        sp = MemorySpace("s", 1024)
        src = np.ones(4)
        stored = sp.put("x", src)
        src[0] = 99.0
        assert stored[0] == 1.0

    def test_peak_tracking(self):
        sp = MemorySpace("s", 1024)
        sp.alloc("a", 64, np.int8)
        sp.free("a")
        sp.alloc("b", 8, np.int8)
        assert sp.peak_bytes == 64

    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            MemorySpace("s", 0)


class TestTransferLedger:
    def test_accounting(self):
        led = TransferLedger()
        led.record_h2d(100)
        led.record_d2h(50)
        led.record_h2d(10)
        assert led.h2d_bytes == 110
        assert led.d2h_bytes == 50
        assert led.h2d_transfers == 2
        assert led.total_bytes == 160


class TestSimulatedGpu:
    def test_upload_download_roundtrip(self):
        gpu = SimulatedGpu()
        data = np.arange(100, dtype=np.float64)
        gpu.upload("x", data)
        out = gpu.download("x")
        np.testing.assert_array_equal(out, data)
        assert gpu.transfers.h2d_bytes == data.nbytes
        assert gpu.transfers.d2h_bytes == data.nbytes

    def test_download_is_a_copy(self):
        gpu = SimulatedGpu()
        gpu.upload("x", np.zeros(4))
        out = gpu.download("x")
        out[0] = 7.0
        assert gpu.download("x")[0] == 0.0

    def test_constant_capacity_is_64k(self):
        gpu = SimulatedGpu()
        gpu.upload_constant("small", np.zeros(8000))  # 64_000 B fits
        with pytest.raises(CapacityError):
            gpu.upload_constant("big", np.zeros(200))  # 1600 B more does not

    def test_fits_constant(self):
        gpu = SimulatedGpu()
        assert gpu.fits_constant(64 * 1024)
        assert not gpu.fits_constant(64 * 1024 + 1)

    def test_global_capacity_enforced(self):
        gpu = SimulatedGpu(DeviceProperties(global_mem_bytes=1024))
        with pytest.raises(CapacityError):
            gpu.upload("big", np.zeros(1000, dtype=np.float64))

    def test_reset_clears_everything(self):
        gpu = SimulatedGpu()
        gpu.upload("x", np.zeros(8))
        gpu.upload_constant("c", np.zeros(8))
        gpu.reset()
        assert gpu.global_mem.used_bytes == 0
        assert gpu.constant_mem.used_bytes == 0

    def test_launch_requires_buffer_names(self):
        gpu = SimulatedGpu()
        k = Kernel("noop", lambda ctx, x: None)
        with pytest.raises(DeviceError):
            gpu.launch(k, 10, x=np.zeros(10))  # raw array, not a name

    def test_launch_unknown_buffer_rejected(self):
        gpu = SimulatedGpu()
        k = Kernel("noop", lambda ctx, x: None)
        with pytest.raises(DeviceError):
            gpu.launch(k, 10, x="missing")

    def test_constant_view_is_read_only(self):
        gpu = SimulatedGpu()
        gpu.upload_constant("c", np.arange(4, dtype=np.float64))
        seen = {}

        def body(ctx):
            table = ctx.constant["c"]
            seen["value"] = float(table[2])
            with pytest.raises(ValueError):
                table[0] = 99.0

        gpu.launch(Kernel("reader", body), 1, rows_per_block=1)
        assert seen["value"] == 2.0


class TestKernelLaunch:
    def test_grid_covers_rows(self):
        gpu = SimulatedGpu()
        gpu.upload("x", np.ones(1000))
        gpu.alloc("y", 1000, np.float64)

        def body(ctx, x, y):
            y[ctx.rows()] = x[ctx.rows()] * 3.0

        stats = gpu.launch(Kernel("triple", body), 1000, rows_per_block=128,
                           x="x", y="y")
        assert stats.n_blocks == 8
        assert stats.n_rows == 1000
        np.testing.assert_array_equal(gpu.download("y"), np.full(1000, 3.0))

    def test_shared_memory_capacity_enforced_per_block(self):
        gpu = SimulatedGpu()

        def body(ctx):
            ctx.shared.alloc("acc", 10_000, np.float64)  # 80 KB > 48 KB

        with pytest.raises(CapacityError):
            gpu.launch(Kernel("hog", body), 10, rows_per_block=10)

    def test_shared_memory_freed_between_blocks(self):
        gpu = SimulatedGpu()

        def body(ctx):
            # 40 KiB per block: would blow the limit if not freed between
            # blocks.
            ctx.shared.alloc("acc", 5000, np.float64)

        stats = gpu.launch(Kernel("per_block", body), 100, rows_per_block=10)
        assert stats.n_blocks == 10
        assert stats.shared_peak_bytes == 40_000

    def test_empty_launch(self):
        gpu = SimulatedGpu()
        stats = gpu.launch(Kernel("noop", lambda ctx: None), 0, rows_per_block=10)
        assert stats.n_blocks == 0

    def test_bad_rows_per_block_rejected(self):
        gpu = SimulatedGpu()
        with pytest.raises(DeviceError):
            gpu.launch(Kernel("noop", lambda ctx: None), 10, rows_per_block=0)

    def test_launch_log_accumulates(self):
        gpu = SimulatedGpu()
        k = Kernel("noop", lambda ctx: None)
        gpu.launch(k, 10, rows_per_block=5)
        gpu.launch(k, 20, rows_per_block=5)
        assert len(gpu.launch_log) == 2


class TestStackedDevicePlacement:
    """Tentpole: the device engine ships ONE stacked dense upload per
    resident batch (row offsets resolved in-kernel) and packs the
    constant bank greedily by hit-frequency x size."""

    def test_exactly_one_dense_stack_upload_per_batch(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        # use_constant=False forces every merged lookup onto the global
        # stack: 3 layers, one batch, ONE dense_stack upload.
        res = DeviceEngine(use_constant=False).run(wl.portfolio, wl.yet)
        assert res.details["n_batches"] == 1
        assert res.details["stack_uploads"] == 1
        # and one stacked YET upload per chunk, not one per layer
        assert res.details["yet_uploads"] == res.details["n_chunks_total"]

    def test_stack_uploads_track_batches_when_coresidency_splits(
            self, small_portfolio_workload):
        pf, yet = (small_portfolio_workload.portfolio,
                   small_portfolio_workload.yet)
        lookup_bytes = pf.layers[0].lookup().nbytes
        gpu = SimulatedGpu(DeviceProperties(
            global_mem_bytes=3 * (lookup_bytes + yet.n_trials * 8)
        ))
        res = DeviceEngine(gpu=gpu, use_constant=False).run(pf, yet)
        assert res.details["n_batches"] > 1
        assert res.details["stack_uploads"] == res.details["n_batches"]
        assert res.details["yet_uploads"] == res.details["n_chunks_total"]
        ref = VectorizedEngine().run(pf, yet)
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)

    def test_greedy_packer_prefers_hot_bytes(self, tiny_workload):
        # Two merged books: a small table read by ten rows (score
        # 10 x 64 B = 640) and a big table read by one row (score
        # 1 x 256 B = 256).  With room for only one, first-come order
        # would give the big table (row 10 uploads last); the greedy
        # packer must give the constant bank to the hot small table.
        small_elt = EltTable.from_arrays(
            np.arange(1, 8, dtype=np.int64), np.full(7, 100.0)
        )
        big_elt = EltTable.from_arrays(
            np.array([1, 31], dtype=np.int64), np.array([50.0, 75.0]),
            contract_id=1,
        )
        layers = [Layer(i, [small_elt],
                        LayerTerms(occ_retention=10.0 * i))
                  for i in range(10)]
        layers.append(Layer(10, [big_elt], LayerTerms()))
        pf = Portfolio(layers)
        gpu = SimulatedGpu(DeviceProperties(constant_mem_bytes=300))
        res = DeviceEngine(gpu=gpu).run(pf, tiny_workload.yet)
        assert res.details["n_batches"] == 1
        for lid in range(10):
            assert res.details["layers"][lid]["lookup_in_constant"]
        assert not res.details["layers"][10]["lookup_in_constant"]
        # the spilled big table still ships as the stacked upload
        assert res.details["stack_uploads"] == 1
        ref = VectorizedEngine().run(pf, tiny_workload.yet)
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)
