"""Chaos suite: deterministic fault injection against the supervised pool.

Every test here drives :mod:`repro.hpc.faults` through the real
execution stack — pool, engine, dispatcher, pricing service — and
asserts the recovery contract: answers bit-identical to a fault-free
run, :class:`~repro.hpc.pool.PoolHealth` recording what happened, and
plans fully consumed (a scheduled fault that never fired is a test that
proved nothing).

The ``chaos`` marker keeps the set addressable (``-m chaos`` /
``-m "not chaos"``); the tests themselves are tier-1 fast — tiny
workloads, zero/near-zero backoff.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engines.multicore import MulticoreEngine
from repro.errors import ConfigurationError, ExecutionError
from repro.hpc import faults, shm
from repro.hpc.faults import FaultPlan, FaultSpec, PoisonedPayloadError
from repro.hpc.pool import TaskPolicy, WorkPool
from repro.serve.dispatch import PooledDispatcher
from repro.serve.service import PricingService

pytestmark = pytest.mark.chaos

#: Fast supervision for tests: retries without real backoff sleeps.
FAST = TaskPolicy(max_retries=2, backoff_seconds=0.0)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """A test must never leak its fault plan into the next one."""
    yield
    faults.clear()


def _square(x):
    return x * x


def _scale(shared, x):
    return shared * x


# ---------------------------------------------------------------------------
# plan construction and the env gate
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("explode", 0)

    def test_negative_seq_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("kill", -1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("delay", 0, delay_seconds=-0.1)

    def test_duplicate_seq_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([FaultSpec("kill", 3), FaultSpec("poison", 3)])

    def test_take_consumes_exactly_once(self):
        plan = FaultPlan.kill_task(2)
        assert plan.take(0) is None
        spec = plan.take(2)
        assert spec is not None and spec.kind == "kill"
        assert plan.take(2) is None  # consumed
        assert plan.exhausted
        assert [e.kind for e in plan.events] == ["kill"]

    def test_from_env_grammar(self):
        plan = FaultPlan.from_env("kill@3, delay@7:0.05 ,poison@2")
        specs = {s.task_seq: s for s in plan._pending.values()}
        assert specs[3].kind == "kill"
        assert specs[7].kind == "delay"
        assert specs[7].delay_seconds == pytest.approx(0.05)
        assert specs[2].kind == "poison"

    def test_from_env_empty_is_none(self):
        assert FaultPlan.from_env("") is None
        assert FaultPlan.from_env("   ") is None

    def test_from_env_bad_item_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env("kill@three")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env("frob@1")

    def test_env_variable_gates_activation(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "poison@0")
        faults.clear()  # forget the earlier env probe
        plan = faults.active_plan()
        assert plan is not None and plan.n_pending == 1
        faults.clear()
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.active_plan() is None

    def test_report_is_json_ready(self):
        plan = FaultPlan.delay_task(1, 0.5, seed=7)
        plan.take(1)
        report = plan.report()
        assert report["seed"] == 7
        assert report["pending"] == 0
        assert report["events"][0]["kind"] == "delay"


# ---------------------------------------------------------------------------
# recovery through the raw pool
# ---------------------------------------------------------------------------

class TestPoolRecovery:
    def test_kill_recovers_bit_identical(self):
        with WorkPool(n_workers=2, seed=3) as pool:
            with faults.inject(FaultPlan.kill_task(2)) as plan:
                got = pool.map(_square, list(range(8)), policy=FAST)
            assert got == [i * i for i in range(8)]
            assert plan.exhausted
            assert pool.health.worker_deaths >= 1
            assert pool.health.retries >= 1
            assert pool.health.executor_cycles >= 1
            assert not pool.health.degraded
            assert pool.health.consecutive_failures == 0

    def test_deadline_miss_recovers(self):
        policy = TaskPolicy(deadline_seconds=0.2, max_retries=2,
                            backoff_seconds=0.0)
        with WorkPool(n_workers=2) as pool:
            with faults.inject(FaultPlan.delay_task(1, 5.0)) as plan:
                got = pool.map(_square, [1, 2, 3, 4], policy=policy)
            assert got == [1, 4, 9, 16]
            assert plan.exhausted
            assert pool.health.timeouts >= 1

    def test_poison_retried_by_default_policy(self):
        with WorkPool(n_workers=2) as pool:
            with faults.inject(FaultPlan.poison_task(0)) as plan:
                got = pool.starmap_shared(_scale, 10,
                                          [(1,), (2,), (3,)], policy=FAST)
            assert got == [10, 20, 30]
            assert plan.exhausted
            assert pool.health.task_faults == 1

    def test_poison_not_retryable_propagates(self):
        policy = TaskPolicy(max_retries=2, backoff_seconds=0.0, retryable=())
        with WorkPool(n_workers=2) as pool:
            with faults.inject(FaultPlan.poison_task(0)):
                with pytest.raises(PoisonedPayloadError):
                    pool.map(_square, [1, 2, 3], policy=policy)

    def test_orphan_is_reclaimable(self):
        with WorkPool(n_workers=2) as pool:
            with faults.inject(FaultPlan([FaultSpec("orphan", 0)])) as plan:
                got = pool.map(_square, [1, 2, 3], policy=FAST)
            assert got == [1, 4, 9]  # the task itself ran clean
            if shm.shm_available():
                assert len(plan.orphaned) == 1
                name = plan.orphaned[0]
                assert name in shm.active_segment_names()
                assert plan.reclaim_orphans() == 1
                assert name not in shm.active_segment_names()

    def test_exhausted_retries_raise_execution_error(self):
        # Kill every attempt: 3 tasks x (1 + max_retries) attempts.
        plan = FaultPlan([FaultSpec("kill", i) for i in range(12)])
        policy = TaskPolicy(max_retries=1, backoff_seconds=0.0)
        with WorkPool(n_workers=2) as pool:
            with faults.inject(plan):
                with pytest.raises(ExecutionError) as exc_info:
                    pool.map(_square, [1, 2, 3], policy=policy)
            err = exc_info.value
            assert err.attempts == 2
            assert err.failures  # the chain rode along
            assert any("BrokenProcessPool" in entry or "Broken" in entry
                       for entry in err.failure_chain)
            assert pool.health.call_failures == 1
            assert pool.health.consecutive_failures == 1
            # one terminal failure is not degradation (degrade_after=3)
            assert not pool.health.degraded
            # and the pool still works afterwards
            faults.clear()
            assert pool.map(_square, [4, 5], policy=FAST) == [16, 25]

    def test_degrades_after_consecutive_terminal_failures(self):
        plan_specs = [FaultSpec("kill", i) for i in range(24)]
        policy = TaskPolicy(max_retries=0, backoff_seconds=0.0)
        with WorkPool(n_workers=2, degrade_after=2) as pool:
            with faults.inject(FaultPlan(plan_specs)):
                for _ in range(2):
                    with pytest.raises(ExecutionError):
                        pool.map(_square, [1, 2, 3], policy=policy)
            assert pool.health.degraded
            assert pool.health.consecutive_failures == 2
            # degraded mode: serial inline, correct answers, no workers
            got = pool.map(_square, [1, 2, 3])
            assert got == [1, 4, 9]
            assert pool.health.degraded_calls == 1
            assert not pool.started
            # ensure_started is a no-op while degraded
            pool.ensure_started()
            assert not pool.started
            # operator path back
            pool.reset_health()
            assert not pool.health.degraded
            assert pool.map(_square, [2], policy=FAST) == [4]

    def test_success_resets_consecutive_failures(self):
        policy = TaskPolicy(max_retries=0, backoff_seconds=0.0)
        with WorkPool(n_workers=2, degrade_after=2) as pool:
            with faults.inject(FaultPlan([FaultSpec("kill", i)
                                          for i in range(6)])):
                with pytest.raises(ExecutionError):
                    pool.map(_square, [1, 2, 3], policy=policy)
            assert pool.health.consecutive_failures == 1
            assert pool.map(_square, [1, 2, 3], policy=FAST) == [1, 4, 9]
            assert pool.health.consecutive_failures == 0
            assert not pool.health.degraded


# ---------------------------------------------------------------------------
# recovery through the engine and session layers
# ---------------------------------------------------------------------------

class TestEngineChaos:
    def test_multicore_run_bit_identical_under_kill(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        with MulticoreEngine(n_workers=2) as engine:
            baseline = engine.run(wl.portfolio, wl.yet)
            with faults.inject(FaultPlan.kill_task(1)) as plan:
                recovered = engine.run(wl.portfolio, wl.yet)
            assert plan.exhausted
            np.testing.assert_array_equal(
                baseline.portfolio_ylt.losses, recovered.portfolio_ylt.losses)
            for lid in baseline.ylt_by_layer:
                np.testing.assert_array_equal(
                    baseline.ylt_by_layer[lid].losses,
                    recovered.ylt_by_layer[lid].losses)
            assert engine.pool.health.worker_deaths >= 1
            assert recovered.details["degraded"] is False

    def test_degraded_engine_matches_pooled_bitwise(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        with MulticoreEngine(n_workers=2) as engine:
            pooled = engine.run(wl.portfolio, wl.yet)
            engine.pool.health.degraded = True
            inline = engine.run(wl.portfolio, wl.yet)
            assert inline.details["degraded"] is True
            assert inline.details["transport"] == "inline"
            assert inline.details["n_workers"] == 1
            np.testing.assert_array_equal(
                pooled.portfolio_ylt.losses, inline.portfolio_ylt.losses)

    def test_session_surfaces_health_and_replans(
            self, small_portfolio_workload, risk_session):
        wl = small_portfolio_workload
        session = risk_session(wl.yet, wl.portfolio, n_workers=2)
        assert session.pool_health is None  # nothing pooled yet
        session.warmup("pooled")
        health = session.pool_health
        assert health is not None and not health.degraded
        baseline = session.aggregate(engine="multicore")
        health.degraded = True
        plan = session.plan("aggregate")
        est = {e.engine: e for e in plan.estimates}["multicore"]
        assert est.n_procs == 1
        assert est.startup_seconds == 0.0
        assert "serial fallback" in est.note
        assert "serial fallback" in plan.explain()
        degraded = session.aggregate(engine="multicore")
        assert degraded.details["degraded"] is True
        np.testing.assert_array_equal(
            baseline.portfolio_ylt.losses, degraded.portfolio_ylt.losses)


# ---------------------------------------------------------------------------
# recovery through the serving path
# ---------------------------------------------------------------------------

class TestServingChaos:
    def test_worker_death_mid_batch_quotes_unchanged(
            self, small_portfolio_workload):
        """A killed worker inside a pooled quote batch is invisible in
        the quotes: supervision resubmits the lost trial blocks and the
        batch prices bit-identical to a fault-free pooled service (and
        to within float tolerance of the inline one)."""
        wl = small_portfolio_workload
        layers = list(wl.portfolio)

        inline_svc = PricingService(wl.yet)
        clean_svc = PricingService(
            wl.yet, engine=PooledDispatcher(n_workers=2))
        chaos_svc = PricingService(
            wl.yet, engine=PooledDispatcher(n_workers=2))
        try:
            inline_q = inline_svc.quote_many(layers)
            clean_q = clean_svc.quote_many(layers)
            chaos_svc.warmup()
            with faults.inject(FaultPlan.kill_task(1)) as plan:
                chaos_q = chaos_svc.quote_many(layers)
            assert plan.exhausted
            health = chaos_svc.pool_health
            assert health is not None
            assert health.worker_deaths >= 1
            assert health.retries >= 1
            assert not health.degraded
            for clean, chaos, inline in zip(clean_q, chaos_q, inline_q):
                # bit-identical to the fault-free pooled run ...
                assert chaos.expected_loss == clean.expected_loss
                assert chaos.premium == clean.premium
                # ... and equal to the inline substrate within tolerance
                assert chaos.premium == pytest.approx(inline.premium,
                                                      rel=1e-9)
        finally:
            inline_svc.close()
            clean_svc.close()
            chaos_svc.close()

    def test_degraded_service_quotes_bit_identical(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        layers = list(wl.portfolio)
        pooled_svc = PricingService(
            wl.yet, engine=PooledDispatcher(n_workers=2))
        degraded_dispatcher = PooledDispatcher(n_workers=2)
        degraded_dispatcher.pool.health.degraded = True
        degraded_svc = PricingService(wl.yet, engine=degraded_dispatcher)
        try:
            assert degraded_dispatcher.n_procs == 1
            assert degraded_dispatcher.transport_active == "inline"
            pooled_q = pooled_svc.quote_many(layers)
            degraded_q = degraded_svc.quote_many(layers)
            assert degraded_dispatcher.pool.health.degraded_calls >= 1
            for a, b in zip(pooled_q, degraded_q):
                assert a.expected_loss == b.expected_loss
                assert a.premium == b.premium
        finally:
            pooled_svc.close()
            degraded_svc.close()

    def test_terminal_serving_failure_is_typed(self, small_portfolio_workload):
        wl = small_portfolio_workload
        layers = list(wl.portfolio)[:2]
        svc = PricingService(
            wl.yet, engine=PooledDispatcher(n_workers=2))
        try:
            svc.dispatcher.pool.policy = TaskPolicy(max_retries=0,
                                                    backoff_seconds=0.0)
            plan = FaultPlan([FaultSpec("kill", i) for i in range(8)])
            with faults.inject(plan):
                with pytest.raises(ExecutionError) as exc_info:
                    svc.quote_many(layers)
            assert exc_info.value.failures
            assert svc.pool_health.call_failures == 1
            # the service survives: the next batch prices normally
            faults.clear()
            quotes = svc.quote_many(layers)
            assert len(quotes) == 2
        finally:
            svc.close()
