"""Tests for the empirical-statistics primitives."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.util.stats_utils import (
    empirical_quantile,
    exceedance_probability,
    loss_at_probability,
    return_period_loss,
    standard_error_of_mean,
    tail_expectation,
)

SAMPLE = np.arange(1.0, 101.0)  # 1..100


class TestEmpiricalQuantile:
    def test_median(self):
        assert empirical_quantile(SAMPLE, 0.5) == pytest.approx(50.5)

    def test_extremes(self):
        assert empirical_quantile(SAMPLE, 0.0) == 1.0
        assert empirical_quantile(SAMPLE, 1.0) == 100.0

    def test_bad_level_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_quantile(SAMPLE, 1.5)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_quantile([], 0.5)

    def test_nan_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_quantile([1.0, np.nan], 0.5)


class TestExceedance:
    def test_strict_inequality(self):
        # exactly half the sample is > 50 (51..100)
        assert exceedance_probability(SAMPLE, 50.0) == 0.5

    def test_above_max_is_zero(self):
        assert exceedance_probability(SAMPLE, 1000.0) == 0.0

    def test_below_min_is_one(self):
        assert exceedance_probability(SAMPLE, 0.0) == 1.0


class TestTailExpectation:
    def test_tail_mean(self):
        # top 10% of 1..100 is 91..100 but ties at the quantile are
        # included; VaR(0.9)=90.1 -> tail = mean(91..100)
        assert tail_expectation(SAMPLE, 0.9) == pytest.approx(95.5)

    def test_dominates_quantile(self):
        for q in (0.5, 0.9, 0.99):
            assert tail_expectation(SAMPLE, q) >= empirical_quantile(SAMPLE, q)

    def test_q_one_returns_max(self):
        assert tail_expectation(SAMPLE, 1.0) == 100.0


class TestReturnPeriod:
    def test_hundred_year(self):
        assert return_period_loss(SAMPLE, 100.0) == \
            pytest.approx(empirical_quantile(SAMPLE, 0.99))

    def test_monotone_in_period(self):
        assert return_period_loss(SAMPLE, 250.0) >= return_period_loss(SAMPLE, 10.0)

    def test_subannual_rejected(self):
        with pytest.raises(AnalysisError):
            return_period_loss(SAMPLE, 1.0)


class TestLossAtProbability:
    def test_inverse_relationship(self):
        loss = loss_at_probability(SAMPLE, 0.01)
        assert loss == pytest.approx(return_period_loss(SAMPLE, 100.0))

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5])
    def test_bad_probability_rejected(self, bad):
        with pytest.raises(AnalysisError):
            loss_at_probability(SAMPLE, bad)


class TestStandardError:
    def test_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = standard_error_of_mean(rng.normal(size=100))
        large = standard_error_of_mean(rng.normal(size=10_000))
        assert large < small

    def test_single_observation_rejected(self):
        with pytest.raises(AnalysisError):
            standard_error_of_mean([1.0])
