"""Tests for the device chunk planner."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hpc.chunking import ChunkPlanner
from repro.hpc.device import DeviceProperties

PROPS = DeviceProperties(
    global_mem_bytes=1024 * 1024,      # 1 MiB toy device
    shared_mem_per_block_bytes=1024,   # 1 KiB shared
    constant_mem_bytes=4096,           # 4 KiB constant
)


class TestPlan:
    def planner(self, frac=1.0):
        return ChunkPlanner(PROPS, global_budget_fraction=frac)

    def test_single_chunk_when_it_fits(self):
        plan = self.planner().plan(n_rows=1000, row_bytes=16, lookup_bytes=100)
        assert plan.n_chunks == 1
        assert plan.rows_per_chunk == 1000
        assert plan.lookup_in_constant

    def test_chunking_kicks_in_when_too_big(self):
        # 1M rows x 16B = 16 MiB > 1 MiB device
        plan = self.planner().plan(n_rows=1_000_000, row_bytes=16, lookup_bytes=0)
        assert plan.n_chunks > 1
        assert plan.rows_per_chunk * 16 <= PROPS.global_mem_bytes

    def test_plan_covers_all_rows(self):
        plan = self.planner().plan(n_rows=999_999, row_bytes=16, lookup_bytes=0)
        assert plan.rows_per_chunk * plan.n_chunks >= 999_999
        assert plan.rows_per_chunk * (plan.n_chunks - 1) < 999_999

    def test_lookup_spills_to_global_when_big(self):
        plan = self.planner().plan(n_rows=100, row_bytes=16, lookup_bytes=10_000)
        assert not plan.lookup_in_constant
        assert plan.resident_bytes >= 10_000

    def test_global_lookup_reduces_row_budget(self):
        with_lookup = self.planner().plan(
            n_rows=10**9, row_bytes=16, lookup_bytes=500_000
        )
        without = self.planner().plan(n_rows=10**9, row_bytes=16, lookup_bytes=0)
        assert with_lookup.rows_per_chunk < without.rows_per_chunk

    def test_budget_fraction_respected(self):
        full = ChunkPlanner(PROPS, 1.0).plan(10**9, 16, 0)
        half = ChunkPlanner(PROPS, 0.5).plan(10**9, 16, 0)
        assert half.rows_per_chunk == full.rows_per_chunk // 2

    def test_rows_per_block_bounded_by_shared(self):
        plan = self.planner().plan(n_rows=10_000, row_bytes=16, lookup_bytes=0,
                                   shared_bytes_per_row=8)
        assert plan.rows_per_block <= PROPS.shared_mem_per_block_bytes // 8

    def test_max_rows_per_chunk_override(self):
        plan = self.planner().plan(n_rows=10_000, row_bytes=16, lookup_bytes=0,
                                   max_rows_per_chunk=100)
        assert plan.rows_per_chunk == 100
        assert plan.n_chunks == 100

    def test_oversized_lookup_rejected(self):
        with pytest.raises(CapacityError):
            self.planner().plan(n_rows=10, row_bytes=16,
                                lookup_bytes=2 * 1024 * 1024)

    def test_zero_rows_plan(self):
        plan = self.planner().plan(n_rows=0, row_bytes=16, lookup_bytes=0)
        assert plan.n_chunks == 0

    @pytest.mark.parametrize("kwargs", [
        dict(n_rows=-1, row_bytes=16, lookup_bytes=0),
        dict(n_rows=10, row_bytes=0, lookup_bytes=0),
        dict(n_rows=10, row_bytes=16, lookup_bytes=-1),
        dict(n_rows=10, row_bytes=16, lookup_bytes=0, shared_bytes_per_row=0),
        dict(n_rows=10, row_bytes=16, lookup_bytes=0, max_rows_per_chunk=0),
    ])
    def test_bad_args_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            self.planner().plan(**kwargs)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            ChunkPlanner(PROPS, 0.0)
