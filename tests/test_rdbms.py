"""Tests for the traditional row-store baseline."""

import numpy as np
import pytest

from repro.data.columnar import ColumnTable
from repro.data.rdbms import RowStore
from repro.data.schema import Schema
from repro.errors import ConfigurationError, StorageError

S = Schema([("event_id", np.int64), ("loss", np.float64)])


def make_store(n=100, page_rows=16):
    store = RowStore(S, key="event_id", page_rows=page_rows)
    table = ColumnTable.from_arrays(
        S, event_id=np.arange(n), loss=np.arange(n, dtype=np.float64) * 1.5
    )
    store.bulk_load(table)
    return store, table


class TestConstruction:
    def test_missing_key_column_rejected(self):
        with pytest.raises(ConfigurationError):
            RowStore(S, key="nope")

    def test_float_key_rejected(self):
        with pytest.raises(ConfigurationError):
            RowStore(S, key="loss")

    def test_bad_page_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            RowStore(S, key="event_id", page_rows=0)


class TestInsert:
    def test_insert_and_get(self):
        store = RowStore(S, key="event_id")
        store.insert_row(event_id=7, loss=2.5)
        assert store.get(7) == {"event_id": 7, "loss": 2.5}

    def test_duplicate_key_rejected(self):
        store = RowStore(S, key="event_id")
        store.insert_row(event_id=1, loss=0.0)
        with pytest.raises(StorageError):
            store.insert_row(event_id=1, loss=1.0)

    def test_missing_field_rejected(self):
        store = RowStore(S, key="event_id")
        with pytest.raises(StorageError):
            store.insert_row(event_id=1)

    def test_bulk_load_schema_mismatch(self):
        store = RowStore(S, key="event_id")
        other = ColumnTable.from_arrays(Schema([("event_id", np.int64)]), event_id=[1])
        with pytest.raises(StorageError):
            store.bulk_load(other)


class TestAccess:
    def test_get_field(self):
        store, _ = make_store()
        assert store.get_field(10, "loss") == 15.0

    def test_get_many_order_preserved(self):
        store, _ = make_store()
        out = store.get_many([5, 1, 3], "loss")
        np.testing.assert_allclose(out, [7.5, 1.5, 4.5])

    def test_page_reads_counted_per_probe(self):
        store, _ = make_store()
        store.stats.reset()
        store.get_many(list(range(50)), "loss")
        assert store.stats.page_reads == 50  # one page read per probe

    def test_missing_key(self):
        store, _ = make_store()
        with pytest.raises(StorageError):
            store.get(10_000)


class TestScan:
    def test_full_scan_reads_each_page_once(self):
        store, _ = make_store(n=100, page_rows=16)
        store.stats.reset()
        rows = sum(len(p) for p in store.full_scan())
        assert rows == 100
        assert store.stats.page_reads == store.n_pages == 7

    def test_roundtrip_to_column_table(self):
        store, table = make_store()
        out = store.to_column_table()
        assert out.sort_by("event_id").equals(table)

    def test_empty_store_roundtrip(self):
        store = RowStore(S, key="event_id")
        assert store.to_column_table().n_rows == 0

    def test_len(self):
        store, _ = make_store(37)
        assert len(store) == 37
