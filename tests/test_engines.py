"""Tests for the six aggregate-analysis engines.

The central invariant: every engine reproduces the sequential oracle's
YLT exactly (to fp tolerance), whatever its execution substrate.
"""

import numpy as np
import pytest

from repro.analytics.comparison import assert_engines_equivalent, compare_engines
from repro.core.engines import (
    DeviceEngine,
    DistributedEngine,
    MapReduceEngine,
    MulticoreEngine,
    SequentialEngine,
    VectorizedEngine,
    available_engines,
    get_engine,
)
from repro.core.simulation import AggregateAnalysis
from repro.core.tables import EltTable, YetTable
from repro.core.terms import LayerTerms
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.data.columnar import ColumnTable
from repro.errors import EngineError
from repro.hpc.device import DeviceProperties, SimulatedGpu

ALL_ENGINES = ["sequential", "vectorized", "device", "multicore",
               "mapreduce", "distributed"]


class TestRegistry:
    def test_available(self):
        assert set(available_engines()) == set(ALL_ENGINES)

    def test_get_engine(self):
        assert get_engine("vectorized").name == "vectorized"

    def test_unknown_rejected(self):
        with pytest.raises(EngineError):
            get_engine("quantum")

    def test_kwargs_forwarded(self):
        eng = get_engine("distributed", n_nodes=3)
        assert eng.cluster.n_nodes == 3


class TestEquivalence:
    def test_all_engines_match_oracle(self, tiny_workload):
        assert_engines_equivalent(
            tiny_workload.portfolio, tiny_workload.yet, ALL_ENGINES
        )

    def test_multi_layer_portfolio(self, small_portfolio_workload):
        assert_engines_equivalent(
            small_portfolio_workload.portfolio, small_portfolio_workload.yet,
            ALL_ENGINES,
        )

    def test_compare_engines_reports_diffs(self, tiny_workload):
        report = compare_engines(
            tiny_workload.portfolio, tiny_workload.yet, ["vectorized"]
        )
        assert report["vectorized"]["max_abs_diff"] < 1e-6

    @pytest.mark.parametrize("terms", [
        LayerTerms(),                                              # pass-through
        LayerTerms(occ_retention=1e12),                            # nothing attaches
        LayerTerms(occ_limit=1.0),                                 # everything capped
        LayerTerms(agg_retention=1e15),                            # aggregate wipes out
        LayerTerms(agg_limit=10.0),                                # tiny annual cap
        LayerTerms(participation=0.1),
        LayerTerms(occ_retention=5e5, occ_limit=2e6,
                   agg_retention=1e6, agg_limit=1e8, participation=0.5),
    ])
    def test_equivalence_across_terms_extremes(self, tiny_workload, terms):
        layer = Layer(0, tiny_workload.portfolio.layers[0].elts, terms)
        assert_engines_equivalent(Portfolio([layer]), tiny_workload.yet,
                                  ALL_ENGINES)

    def test_yet_with_empty_trials(self):
        """Trials with zero occurrences must appear as zero-loss years."""
        elt = EltTable.from_arrays([1, 2], [100.0, 200.0])
        from repro.core.tables import YET_SCHEMA

        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[1, 1, 3], seq=[0, 1, 0], event_id=[1, 2, 1]
        )
        yet = YetTable(table, n_trials=5)
        pf = Portfolio([Layer(0, [elt], LayerTerms())])
        assert_engines_equivalent(pf, yet, ALL_ENGINES)
        res = AggregateAnalysis(pf, yet).run("vectorized")
        np.testing.assert_allclose(
            res.portfolio_ylt.losses, [0.0, 300.0, 0.0, 100.0, 0.0]
        )


class TestSequential:
    def test_known_answer(self):
        elt = EltTable.from_arrays([1, 2], [100.0, 50.0])
        from repro.core.tables import YET_SCHEMA

        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0, 0, 1], seq=[0, 1, 0], event_id=[1, 2, 2]
        )
        yet = YetTable(table, n_trials=2)
        terms = LayerTerms(occ_retention=25.0, agg_retention=10.0,
                           participation=0.5)
        pf = Portfolio([Layer(0, [elt], terms)])
        res = SequentialEngine().run(pf, yet)
        # trial0: (100-25)+(50-25)=100; agg: (100-10)*0.5=45
        # trial1: 25; agg: 15*0.5=7.5
        np.testing.assert_allclose(res.portfolio_ylt.losses, [45.0, 7.5])

    def test_emit_yelt_counts_covered_occurrences(self, tiny_workload):
        res = SequentialEngine().run(
            tiny_workload.portfolio, tiny_workload.yet, emit_yelt=True
        )
        lid = tiny_workload.portfolio.layers[0].layer_id
        yelt = res.yelt_by_layer[lid]
        lookup = tiny_workload.portfolio.layers[0].lookup()
        covered = (lookup(tiny_workload.yet.event_ids) > 0).sum()
        assert yelt.n_rows == covered


class TestVectorized:
    def test_yelt_to_ylt_consistency(self, tiny_workload):
        """Pre-aggregate YELT rolled up + aggregate terms == engine YLT."""
        layer = tiny_workload.portfolio.layers[0]
        res = VectorizedEngine().run(
            tiny_workload.portfolio, tiny_workload.yet, emit_yelt=True
        )
        yelt = res.yelt_by_layer[layer.layer_id]
        rebuilt = layer.terms.apply_aggregate(yelt.to_ylt().losses)
        np.testing.assert_allclose(
            rebuilt, res.ylt_by_layer[layer.layer_id].losses, rtol=1e-12
        )

    def test_sequential_and_vectorized_yelts_match(self, tiny_workload):
        seq = SequentialEngine().run(tiny_workload.portfolio, tiny_workload.yet,
                                     emit_yelt=True)
        vec = VectorizedEngine().run(tiny_workload.portfolio, tiny_workload.yet,
                                     emit_yelt=True)
        lid = tiny_workload.portfolio.layers[0].layer_id
        assert seq.yelt_by_layer[lid].table.equals(
            vec.yelt_by_layer[lid].table, rtol=1e-12, atol=1e-9
        )


class TestDeviceEngine:
    def test_chunked_equals_unchunked(self, tiny_workload):
        whole = DeviceEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        chunked = DeviceEngine(max_rows_per_chunk=97).run(
            tiny_workload.portfolio, tiny_workload.yet
        )
        assert whole.portfolio_ylt.allclose(chunked.portfolio_ylt)

    def test_ablation_flags_do_not_change_results(self, tiny_workload):
        base = DeviceEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        for flags in (dict(use_constant=False), dict(use_shared=False),
                      dict(use_constant=False, use_shared=False)):
            alt = DeviceEngine(**flags).run(
                tiny_workload.portfolio, tiny_workload.yet
            )
            assert base.portfolio_ylt.allclose(alt.portfolio_ylt)

    def test_transfers_accounted(self, tiny_workload):
        engine = DeviceEngine()
        res = engine.run(tiny_workload.portfolio, tiny_workload.yet)
        # YET uploaded once per layer (trial + event arrays) plus lookups.
        assert res.details["h2d_bytes"] >= tiny_workload.yet.n_occurrences * 16
        assert res.details["d2h_bytes"] >= tiny_workload.yet.n_trials * 8

    def test_small_lookup_lands_in_constant(self, tiny_workload):
        res = DeviceEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        lid = tiny_workload.portfolio.layers[0].layer_id
        # tiny workload: 500-event catalogue -> 4 KB dense table fits 64 KB
        assert res.details["layers"][lid]["lookup_in_constant"]

    def test_big_lookup_spills_to_global(self, tiny_workload):
        gpu = SimulatedGpu(DeviceProperties(constant_mem_bytes=128))
        res = DeviceEngine(gpu=gpu).run(tiny_workload.portfolio, tiny_workload.yet)
        lid = tiny_workload.portfolio.layers[0].layer_id
        assert not res.details["layers"][lid]["lookup_in_constant"]
        ref = VectorizedEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)

    def test_sparse_lookup_path(self, tiny_workload):
        engine = DeviceEngine(dense_max_entries=1)  # force sparse
        res = engine.run(tiny_workload.portfolio, tiny_workload.yet)
        ref = VectorizedEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)
        lid = tiny_workload.portfolio.layers[0].layer_id
        assert res.details["layers"][lid]["lookup_kind"] == "sparse"

    def test_portfolio_too_big_to_coreside_splits_into_batches(
            self, small_portfolio_workload):
        """A global space that cannot host all layers at once must fall
        back to multiple resident batches, not fail mid-upload."""
        pf, yet = (small_portfolio_workload.portfolio,
                   small_portfolio_workload.yet)
        lookup_bytes = pf.layers[0].lookup().nbytes
        # Room for roughly one layer's lookup + annual + a small chunk.
        gpu = SimulatedGpu(DeviceProperties(
            global_mem_bytes=3 * (lookup_bytes + yet.n_trials * 8)
        ))
        res = DeviceEngine(gpu=gpu).run(pf, yet)
        assert res.details["n_batches"] > 1
        ref = VectorizedEngine().run(pf, yet)
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)


class TestMulticore:
    @pytest.mark.parametrize("n_workers", [1, 2, 5])
    def test_worker_count_invariant(self, tiny_workload, n_workers):
        res = MulticoreEngine(n_workers=n_workers).run(
            tiny_workload.portfolio, tiny_workload.yet
        )
        ref = VectorizedEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)

    def test_more_workers_than_trials(self):
        elt = EltTable.from_arrays([1], [10.0])
        from repro.core.tables import YET_SCHEMA

        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0, 1], seq=[0, 0], event_id=[1, 1]
        )
        yet = YetTable(table, n_trials=2)
        pf = Portfolio([Layer(0, [elt], LayerTerms())])
        res = MulticoreEngine(n_workers=16).run(pf, yet)
        np.testing.assert_allclose(res.portfolio_ylt.losses, [10.0, 10.0])

    def test_emit_yelt_unsupported(self, tiny_workload):
        with pytest.raises(EngineError):
            MulticoreEngine().run(tiny_workload.portfolio, tiny_workload.yet,
                                  emit_yelt=True)

    def test_pool_is_lazy(self):
        """Constructing the engine must not spawn a pool."""
        engine = MulticoreEngine(n_workers=4)
        assert engine._pool is None
        assert engine.pool.n_workers == 4
        assert engine._pool is not None
        engine.close()

    def test_close_idempotent_and_reusable(self, tiny_workload):
        engine = MulticoreEngine(n_workers=2)
        res = engine.run(tiny_workload.portfolio, tiny_workload.yet)
        engine.close()
        engine.close()  # idempotent
        assert engine._pool is None
        # The engine stays usable: a fresh pool is built on demand.
        again = engine.run(tiny_workload.portfolio, tiny_workload.yet)
        assert res.portfolio_ylt.allclose(again.portfolio_ylt)
        engine.close()

    def test_context_manager_closes(self, tiny_workload):
        with MulticoreEngine(n_workers=2) as engine:
            engine.run(tiny_workload.portfolio, tiny_workload.yet)
            assert engine._pool is not None
        assert engine._pool is None


class TestMapReduceEngine:
    @pytest.mark.parametrize("n_splits", [1, 4, 13])
    def test_split_count_invariant(self, tiny_workload, n_splits):
        res = MapReduceEngine(n_splits=n_splits).run(
            tiny_workload.portfolio, tiny_workload.yet
        )
        ref = VectorizedEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)

    def test_job_results_recorded(self, tiny_workload):
        engine = MapReduceEngine(n_splits=4)
        engine.run(tiny_workload.portfolio, tiny_workload.yet)
        assert set(engine.last_jobs) == set(tiny_workload.portfolio.layer_ids)
        job = next(iter(engine.last_jobs.values()))
        assert len(job.map_task_seconds) == 4

    def test_emit_yelt_unsupported(self, tiny_workload):
        with pytest.raises(EngineError):
            MapReduceEngine().run(tiny_workload.portfolio, tiny_workload.yet,
                                  emit_yelt=True)


class TestDistributedEngine:
    @pytest.mark.parametrize("n_nodes", [1, 3, 8])
    def test_node_count_invariant(self, tiny_workload, n_nodes):
        res = DistributedEngine(n_nodes=n_nodes).run(
            tiny_workload.portfolio, tiny_workload.yet
        )
        ref = VectorizedEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)

    def test_comm_accounted(self, tiny_workload):
        res = DistributedEngine(n_nodes=4).run(
            tiny_workload.portfolio, tiny_workload.yet
        )
        assert res.details["comm_bytes"] > 0
        assert res.details["comm_seconds_model"] > 0

    def test_emit_yelt_unsupported(self, tiny_workload):
        with pytest.raises(EngineError):
            DistributedEngine().run(tiny_workload.portfolio, tiny_workload.yet,
                                    emit_yelt=True)
