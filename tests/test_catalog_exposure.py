"""Tests for catalogue and exposure generation."""

import numpy as np
import pytest

from repro.catmod.catalog import EventCatalog, generate_catalog
from repro.catmod.exposure import ConstructionClass, generate_exposure
from repro.catmod.geography import Region
from repro.catmod.perils import PerilKind, standard_perils
from repro.errors import ConfigurationError

REGION = Region(25.0, 33.0, -98.0, -80.0)


class TestGenerateCatalog:
    def make(self, n=500, seed=0):
        return generate_catalog(standard_perils(), REGION, n,
                                np.random.default_rng(seed))

    def test_row_count_and_unique_ids(self):
        cat = self.make(500)
        assert cat.n_events == 500
        assert np.unique(cat.event_ids).size == 500

    def test_total_rate_matches_book(self):
        book = standard_perils()
        cat = self.make(1000)
        expect = sum(p.annual_rate for p in book.values())
        assert cat.total_rate == pytest.approx(expect, rel=1e-9)

    def test_total_rate_independent_of_resolution(self):
        a = self.make(200).total_rate
        b = self.make(2000).total_rate
        assert a == pytest.approx(b, rel=1e-9)

    def test_events_inside_region(self):
        cat = self.make()
        assert REGION.contains(cat.table["lat"], cat.table["lon"]).all()

    def test_peril_split_proportional_to_rate(self):
        book = standard_perils()
        cat = self.make(4000)
        total_rate = sum(p.annual_rate for p in book.values())
        for kind, peril in book.items():
            sub = cat.for_peril(kind)
            expect = peril.annual_rate / total_rate
            assert sub.n_events / cat.n_events == pytest.approx(expect, abs=0.05)

    def test_deterministic(self):
        a = self.make(seed=3)
        b = self.make(seed=3)
        assert a.table.equals(b.table)

    def test_zero_events_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(0)

    def test_no_perils_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_catalog({}, REGION, 10, np.random.default_rng(0))

    def test_wrapper_validates_duplicate_ids(self):
        cat = self.make(10)
        bad = cat.table.take(np.array([0, 0, 1]))
        with pytest.raises(ConfigurationError):
            EventCatalog(bad)


class TestGenerateExposure:
    def make(self, n=1000, seed=0):
        return generate_exposure(REGION, n, np.random.default_rng(seed))

    def test_counts_and_positive_values(self):
        exp = self.make(1000)
        assert exp.n_sites == 1000
        assert (exp.table["value"] > 0).all()
        assert exp.total_value > 0

    def test_sites_inside_region(self):
        exp = self.make()
        assert REGION.contains(exp.table["lat"], exp.table["lon"]).all()

    def test_construction_classes_valid(self):
        exp = self.make()
        assert set(np.unique(exp.table["construction"])) <= set(ConstructionClass.ALL)

    def test_value_drives_construction_mix(self):
        """High-value sites use engineered construction more often."""
        exp = self.make(5000)
        value = exp.table["value"]
        cons = exp.table["construction"]
        rich = cons[value > np.quantile(value, 0.8)]
        poor = cons[value < np.quantile(value, 0.2)]
        steel_rich = (rich >= ConstructionClass.CONCRETE).mean()
        steel_poor = (poor >= ConstructionClass.CONCRETE).mean()
        assert steel_rich > steel_poor

    def test_heavy_tailed_values(self):
        exp = self.make(5000)
        v = exp.table["value"]
        assert v.max() > 10 * np.median(v)

    def test_deterministic(self):
        a = self.make(seed=5)
        b = self.make(seed=5)
        assert a.table.equals(b.table)

    def test_zero_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(0)
