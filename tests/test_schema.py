"""Tests for table schemas."""

import numpy as np
import pytest

from repro.data.schema import Field, Schema
from repro.errors import SchemaError


class TestField:
    def test_dtype_coercion(self):
        f = Field("x", "f8")
        assert f.dtype == np.dtype(np.float64)
        assert f.itemsize == 8

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("", np.int64)


class TestSchema:
    def test_from_tuples(self):
        s = Schema([("a", np.int64), ("b", np.float64)])
        assert s.names == ("a", "b")
        assert len(s) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "i8"), ("a", "f8")])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_getitem_and_contains(self):
        s = Schema([("a", "i8")])
        assert "a" in s and "z" not in s
        assert s["a"].dtype == np.dtype("i8")
        with pytest.raises(SchemaError):
            _ = s["z"]

    def test_equality_and_hash(self):
        a = Schema([("x", "i8")])
        b = Schema([("x", "i8")])
        c = Schema([("x", "i4")])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_row_bytes(self):
        s = Schema([("a", "i8"), ("b", "f4"), ("c", "i2")])
        assert s.row_bytes == 8 + 4 + 2
        assert s.table_bytes(10) == 140

    def test_table_bytes_negative_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "i8")]).table_bytes(-1)

    def test_empty_columns(self):
        cols = Schema([("a", "i8")]).empty_columns(3)
        assert cols["a"].shape == (3,)

    def test_validate_columns_happy(self):
        s = Schema([("a", "i8")])
        assert s.validate_columns({"a": np.zeros(4, dtype="i8")}) == 4

    def test_validate_wrong_names(self):
        s = Schema([("a", "i8")])
        with pytest.raises(SchemaError):
            s.validate_columns({"b": np.zeros(4, dtype="i8")})

    def test_validate_wrong_dtype(self):
        s = Schema([("a", "i8")])
        with pytest.raises(SchemaError):
            s.validate_columns({"a": np.zeros(4, dtype="f8")})

    def test_validate_ragged_lengths(self):
        s = Schema([("a", "i8"), ("b", "i8")])
        with pytest.raises(SchemaError):
            s.validate_columns({"a": np.zeros(3, dtype="i8"),
                                "b": np.zeros(4, dtype="i8")})

    def test_validate_2d_rejected(self):
        s = Schema([("a", "i8")])
        with pytest.raises(SchemaError):
            s.validate_columns({"a": np.zeros((2, 2), dtype="i8")})

    def test_struct_dtype_roundtrip(self):
        s = Schema([("a", "i8"), ("b", "f8")])
        dt = s.to_struct_dtype()
        assert dt.names == ("a", "b")
        assert dt.itemsize == s.row_bytes
