"""Integration: stage-1 location losses → YELLT → YELT → YLT algebra.

Exercises the full location-granularity path the paper says is
infeasible at scale (§II's 5×10¹⁶-entry YELLT) at a scale where it *is*
feasible, validating the size ratios and the marginalisation algebra on
rows produced by the real catastrophe-model pipeline.
"""

import numpy as np
import pytest

from repro.catmod import (
    CatModPipeline,
    assign_contracts,
    generate_catalog,
    generate_exposure,
    standard_perils,
)
from repro.catmod.geography import Region
from repro.core import YetTable, materialize_yellt, yellt_to_yelt
from repro.util.rng import RngHierarchy


@pytest.fixture(scope="module")
def stage1_with_locations():
    rng = RngHierarchy(404)
    region = Region(25.0, 33.0, -98.0, -80.0)
    perils = standard_perils()
    catalog = generate_catalog(perils, region, 150, rng.generator("cat"))
    exposure = generate_exposure(region, 500, rng.generator("exp"))
    contracts = assign_contracts(exposure, 5, rng.generator("con"))
    pipeline = CatModPipeline(perils)
    elts, _ = pipeline.run(catalog, exposure, contracts,
                           collect_location_losses=True)
    yet = YetTable.simulate(
        catalog.event_ids, catalog.rates, 200, rng.generator("yet"),
        mean_events_per_trial=15.0,
    )
    return pipeline.last_location_losses, elts, yet


class TestLocationLossCollection:
    def test_ell_collected(self, stage1_with_locations):
        ell, _, _ = stage1_with_locations
        assert ell is not None and ell.n_rows > 0
        assert (ell["loss"] > 0).all()

    def test_ell_sums_match_elt_means(self, stage1_with_locations):
        """Per-event site losses sum to the ELT means (up to the
        min_mean_loss pruning threshold, which both sides share)."""
        ell, elts, _ = stage1_with_locations
        per_event = {}
        for e, l in zip(ell["event_id"].tolist(), ell["loss"].tolist()):
            per_event[e] = per_event.get(e, 0.0) + l
        elt_total = {}
        for elt in elts:
            for e, m in zip(elt.event_ids.tolist(), elt.mean_losses.tolist()):
                elt_total[e] = elt_total.get(e, 0.0) + m
        elt_total = {e: m for e, m in elt_total.items() if m > 0}
        assert set(per_event) == set(elt_total)
        for e in per_event:
            assert per_event[e] == pytest.approx(elt_total[e], rel=1e-9)

    def test_not_collected_by_default(self):
        rng = RngHierarchy(405)
        region = Region(25.0, 30.0, -95.0, -85.0)
        perils = standard_perils()
        catalog = generate_catalog(perils, region, 50, rng.generator("c"))
        exposure = generate_exposure(region, 100, rng.generator("e"))
        contracts = assign_contracts(exposure, 2, rng.generator("k"))
        pipeline = CatModPipeline(perils)
        pipeline.run(catalog, exposure, contracts)
        assert pipeline.last_location_losses is None


class TestYelltFromStage1:
    def test_materialise_and_marginalise(self, stage1_with_locations):
        ell, _, yet = stage1_with_locations
        yellt = materialize_yellt(yet, ell)
        yelt = yellt_to_yelt(yellt)
        assert yellt.n_rows >= yelt.n_rows
        assert yelt.total_loss() == pytest.approx(yellt.total_loss())

    def test_ratio_matches_mean_locations_per_event(self, stage1_with_locations):
        ell, _, yet = stage1_with_locations
        yellt = materialize_yellt(yet, ell)
        yelt = yellt_to_yelt(yellt)
        if yelt.n_rows == 0:
            pytest.skip("no covered occurrences in this draw")
        ratio = yellt.n_rows / yelt.n_rows
        # mean locations per covered occurrence, weighted by occurrence,
        # must match the realised ratio closely
        assert 1.0 <= ratio <= ell.n_rows  # sane bounds
        # the YLT then loses the event dimension entirely:
        ylt = yelt.to_ylt()
        assert ylt.n_trials == yet.n_trials
        assert ylt.losses.sum() == pytest.approx(yellt.total_loss())
