"""Tests for geography primitives and peril definitions."""

import numpy as np
import pytest

from repro.catmod.geography import Region, haversine_km, random_sites
from repro.catmod.perils import Peril, PerilKind, standard_perils
from repro.errors import ConfigurationError


class TestRegion:
    def test_valid(self):
        r = Region(25.0, 33.0, -98.0, -80.0)
        assert r.lat_span == 8.0 and r.lon_span == 18.0

    @pytest.mark.parametrize("args", [
        (33.0, 25.0, -98.0, -80.0),   # lat inverted
        (25.0, 33.0, -80.0, -98.0),   # lon inverted
        (-95.0, 33.0, -98.0, -80.0),  # lat out of range
    ])
    def test_invalid_rejected(self, args):
        with pytest.raises(ConfigurationError):
            Region(*args)

    def test_contains_vectorised(self):
        r = Region(0.0, 10.0, 0.0, 10.0)
        mask = r.contains(np.array([5.0, 15.0]), np.array([5.0, 5.0]))
        np.testing.assert_array_equal(mask, [True, False])


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(10.0, 20.0, 10.0, 20.0) == pytest.approx(0.0)

    def test_known_distance_equator_degree(self):
        # one degree of longitude at the equator ~111.19 km
        d = haversine_km(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(111.19, rel=1e-3)

    def test_symmetry(self):
        a = haversine_km(10.0, 20.0, 30.0, 40.0)
        b = haversine_km(30.0, 40.0, 10.0, 20.0)
        assert a == pytest.approx(b)

    def test_broadcasting(self):
        lats = np.array([0.0, 1.0, 2.0])
        d = haversine_km(0.0, 0.0, lats, 0.0)
        assert d.shape == (3,)
        assert d[0] < d[1] < d[2]

    def test_antipodal_bounded(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi * 6371.0, rel=1e-3)


class TestRandomSites:
    def test_within_region(self):
        r = Region(25.0, 33.0, -98.0, -80.0)
        lat, lon = random_sites(r, 500, np.random.default_rng(0))
        assert r.contains(lat, lon).all()

    def test_deterministic(self):
        r = Region(0.0, 10.0, 0.0, 10.0)
        a = random_sites(r, 100, np.random.default_rng(1))
        b = random_sites(r, 100, np.random.default_rng(1))
        np.testing.assert_array_equal(a[0], b[0])

    def test_clustered_not_uniform(self):
        """Clustered sites should have lower nearest-neighbour spread than
        uniform sampling over the same region."""
        r = Region(0.0, 10.0, 0.0, 10.0)
        lat, _ = random_sites(r, 2000, np.random.default_rng(2), n_clusters=3,
                              cluster_sigma_deg=0.1)
        # with 3 tight clusters the lat histogram is concentrated
        hist, _ = np.histogram(lat, bins=20, range=(0, 10))
        assert (hist > 0).sum() <= 12

    def test_bad_counts_rejected(self):
        r = Region(0.0, 1.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            random_sites(r, 0, np.random.default_rng(0))


class TestPeril:
    def test_standard_book_complete(self):
        book = standard_perils()
        assert set(book) == set(PerilKind)
        for kind, peril in book.items():
            assert peril.kind == kind

    def test_magnitude_sampling_in_support(self):
        peril = standard_perils()[PerilKind.EARTHQUAKE]
        mags = peril.sample_magnitudes(10_000, np.random.default_rng(0))
        assert mags.min() >= peril.mag_min
        assert mags.max() <= peril.mag_max

    def test_magnitude_law_favours_small_events(self):
        peril = standard_perils()[PerilKind.EARTHQUAKE]
        mags = peril.sample_magnitudes(50_000, np.random.default_rng(0))
        low = (mags < 6.0).mean()
        high = (mags > 8.0).mean()
        assert low > 5 * high

    def test_footprint_grows_with_magnitude(self):
        peril = standard_perils()[PerilKind.HURRICANE]
        assert peril.footprint_radius_km(5.0) > peril.footprint_radius_km(3.0)

    def test_zero_samples(self):
        peril = standard_perils()[PerilKind.FLOOD]
        assert peril.sample_magnitudes(0, np.random.default_rng(0)).size == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Peril(PerilKind.FLOOD, annual_rate=-1, mag_min=1, mag_max=2,
                  mag_b=1, footprint_km_per_mag=1, attenuation_power=1,
                  attenuation_d0_km=1)
        with pytest.raises(ConfigurationError):
            Peril(PerilKind.FLOOD, annual_rate=1, mag_min=3, mag_max=2,
                  mag_b=1, footprint_km_per_mag=1, attenuation_power=1,
                  attenuation_d0_km=1)
