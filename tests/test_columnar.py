"""Tests for the columnar table."""

import numpy as np
import pytest

from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import SchemaError

S = Schema([("k", np.int64), ("v", np.float64)])


def make(k, v):
    return ColumnTable.from_arrays(S, k=k, v=v)


class TestConstruction:
    def test_empty(self):
        t = ColumnTable(S)
        assert t.n_rows == 0 and len(t) == 0

    def test_from_arrays_coerces(self):
        t = make([1, 2], [1.5, 2.5])
        assert t["k"].dtype == np.int64

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            ColumnTable.from_arrays(S, k=[1])

    def test_extra_column_rejected(self):
        with pytest.raises(SchemaError):
            ColumnTable.from_arrays(S, k=[1], v=[1.0], z=[2])

    def test_nbytes(self):
        t = make([1, 2, 3], [1.0, 2.0, 3.0])
        assert t.nbytes == 3 * 16


class TestAccess:
    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            make([1], [1.0]).column("zzz")

    def test_row_materialisation(self):
        t = make([5, 6], [1.0, 2.0])
        assert t.row(1) == {"k": 6, "v": 2.0}

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            make([1], [1.0]).row(5)


class TestOps:
    def test_select(self):
        t = make([1, 2], [3.0, 4.0]).select(["v"])
        assert t.schema.names == ("v",)

    def test_take(self):
        t = make([1, 2, 3], [1.0, 2.0, 3.0]).take([2, 0])
        np.testing.assert_array_equal(t["k"], [3, 1])

    def test_slice_is_view(self):
        base = make([1, 2, 3], [1.0, 2.0, 3.0])
        s = base.slice(1, 3)
        assert s.n_rows == 2
        # zero-copy: the slice shares memory with the base table
        assert np.shares_memory(s["k"], base["k"])

    def test_filter(self):
        t = make([1, 2, 3], [1.0, 2.0, 3.0]).filter(np.array([True, False, True]))
        np.testing.assert_array_equal(t["k"], [1, 3])

    def test_filter_wrong_shape_rejected(self):
        with pytest.raises(SchemaError):
            make([1, 2], [1.0, 2.0]).filter(np.array([True]))

    def test_where(self):
        t = make([1, 2, 3], [1.0, 2.0, 3.0]).where(lambda tb: tb["k"] > 1)
        assert t.n_rows == 2

    def test_sort_by(self):
        t = make([3, 1, 2], [1.0, 2.0, 3.0]).sort_by("k")
        np.testing.assert_array_equal(t["k"], [1, 2, 3])

    def test_concat(self):
        t = ColumnTable.concat([make([1], [1.0]), make([2], [2.0])])
        assert t.n_rows == 2

    def test_concat_schema_mismatch_rejected(self):
        other = ColumnTable.from_arrays(Schema([("k", np.int64)]), k=[1])
        with pytest.raises(SchemaError):
            ColumnTable.concat([make([1], [1.0]), other])

    def test_concat_empty_list_rejected(self):
        with pytest.raises(SchemaError):
            ColumnTable.concat([])

    def test_append(self):
        t = make([1], [1.0]).append(make([2], [2.0]))
        np.testing.assert_array_equal(t["k"], [1, 2])


class TestGroupbySum:
    def test_dense_keys(self):
        t = make([0, 1, 0, 2, 1], [1.0, 2.0, 3.0, 4.0, 5.0])
        g = t.groupby_sum("k", "v")
        assert dict(zip(g["k"].tolist(), g["v"].tolist())) == {0: 4.0, 1: 7.0, 2: 4.0}

    def test_sparse_keys_fall_back_to_sort(self):
        t = make([10**12, 5, 10**12], [1.0, 2.0, 3.0])
        g = t.groupby_sum("k", "v")
        assert dict(zip(g["k"].tolist(), g["v"].tolist())) == {5: 2.0, 10**12: 4.0}

    def test_empty_table(self):
        g = ColumnTable(S).groupby_sum("k", "v")
        assert g.n_rows == 0

    def test_conserves_total(self):
        rng = np.random.default_rng(0)
        t = make(rng.integers(0, 50, 1000), rng.random(1000))
        g = t.groupby_sum("k", "v")
        assert g["v"].sum() == pytest.approx(t["v"].sum())

    def test_float_key_rejected(self):
        with pytest.raises(SchemaError):
            make([1], [1.0]).groupby_sum("v", "k")

    def test_negative_keys_ok(self):
        t = make([-5, -5, 3], [1.0, 2.0, 3.0])
        g = t.groupby_sum("k", "v")
        assert dict(zip(g["k"].tolist(), g["v"].tolist())) == {-5: 3.0, 3: 3.0}


class TestStructRoundtrip:
    def test_roundtrip(self):
        t = make([1, 2], [3.0, 4.0])
        back = ColumnTable.from_struct_array(S, t.to_struct_array())
        assert back.equals(t)

    def test_equals_tolerance(self):
        a = make([1], [1.0])
        b = make([1], [1.0 + 1e-12])
        assert not a.equals(b)
        assert a.equals(b, rtol=1e-9)
