"""The zero-copy shared-memory data plane: lifecycle, parity, recovery.

Three invariant families:

- **lifecycle** — arenas and slabs own their segments: handles pickle
  small, attach as read-only views, and closing the owner unlinks
  everything (the session-scoped fixture in ``conftest.py`` additionally
  asserts the whole suite leaks no segments);
- **parity** — the shm transport changes wall time, never answers:
  multicore-over-shm is bit-identical to multicore-over-pickle and
  matches the vectorized engine, likewise the pooled dispatcher;
- **recovery** — a dead worker breaks the executor, not the data plane:
  the next run re-ships handles only and re-attaches cleanly.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.engines import MulticoreEngine, VectorizedEngine
from repro.core.kernels import PortfolioKernel
from repro.core.tables import YetTable
from repro.errors import ConfigurationError, EngineError, ExecutionError
from repro.hpc import shm
from repro.hpc.pool import TaskPolicy, WorkPool
from repro.serve.dispatch import InlineDispatcher, PooledDispatcher, _ShmYet
from repro.serve import PricingService

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on this host"
)


def _tiny_kernel_layer():
    from repro.core.layer import Layer
    from repro.core.tables import EltTable
    from repro.core.terms import LayerTerms

    elt = EltTable.from_arrays(np.arange(50, dtype=np.int64),
                               np.linspace(1e4, 5e5, 50))
    return Layer(0, [elt], LayerTerms(occ_retention=1e4))


# ---------------------------------------------------------------------------
# handles and arenas
# ---------------------------------------------------------------------------

class TestHandles:
    def test_handle_pickles_small_and_attaches_equal(self):
        data = np.arange(50_000, dtype=np.float64)
        with shm.SharedArena() as arena:
            handle = arena.share(data)
            wire = pickle.dumps(handle)
            assert len(wire) < 500, "a handle must pickle as a descriptor"
            view = pickle.loads(wire).attach()
            np.testing.assert_array_equal(view, data)

    def test_attached_views_are_read_only(self):
        with shm.SharedArena() as arena:
            view = arena.share(np.arange(8.0)).attach()
            with pytest.raises(ValueError):
                view[0] = 99.0

    def test_place_packs_many_arrays_into_one_segment(self):
        a = np.arange(10, dtype=np.int64)
        b = np.linspace(0.0, 1.0, 17)
        c = np.arange(6, dtype=np.int32).reshape(2, 3)
        with shm.SharedArena() as arena:
            ha, hb, hc = arena.place(a, b, c)
            assert ha.segment == hb.segment == hc.segment
            np.testing.assert_array_equal(ha.attach(), a)
            np.testing.assert_array_equal(hb.attach(), b)
            np.testing.assert_array_equal(hc.attach(), c)
            assert hc.attach().shape == (2, 3)

    def test_close_unlinks_owned_segments(self):
        arena = shm.SharedArena()
        arena.share(np.arange(4.0))
        arena.share(np.arange(8.0))
        assert arena.n_segments == 2
        assert len(shm.active_segment_names()) >= 2
        arena.close()
        arena.close()  # idempotent
        assert arena.n_segments == 0 or arena.nbytes == 0
        with pytest.raises(ConfigurationError):
            arena.share(np.arange(2.0))

    def test_slab_reuses_segment_until_outgrown(self):
        with shm.ShmSlab(capacity_bytes=1024) as slab:
            slab.pack(np.arange(16.0))
            name = slab.segment_name
            assert slab.generations == 1
            (h,) = slab.pack(np.arange(32.0))
            assert slab.segment_name == name, "a fitting payload must reuse"
            np.testing.assert_array_equal(h.attach(), np.arange(32.0))
            (h,) = slab.pack(np.arange(50_000.0))
            assert slab.segment_name != name, "an outgrown slab must roll"
            assert slab.generations == 2
            np.testing.assert_array_equal(h.attach(), np.arange(50_000.0))
        assert slab.segment_name is None


# ---------------------------------------------------------------------------
# table and kernel round-trips
# ---------------------------------------------------------------------------

class TestRoundTrips:
    def test_yet_to_shared_from_handles(self, tiny_workload):
        yet = tiny_workload.yet
        yet.fingerprint()   # cached → must ride the handles
        with shm.SharedArena() as arena:
            handles = pickle.loads(pickle.dumps(yet.to_shared(arena)))
            again = YetTable.from_handles(handles)
            assert again.n_trials == yet.n_trials
            assert again.fingerprint() == yet.fingerprint()
            np.testing.assert_array_equal(again.trials, yet.trials)
            np.testing.assert_array_equal(again.event_ids, yet.event_ids)
            np.testing.assert_array_equal(again.trial_offsets,
                                          yet.trial_offsets)

    def test_kernel_export_from_handles_bit_identical(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        kernel = wl.portfolio.kernel()
        with shm.SharedArena() as arena:
            handles = pickle.loads(pickle.dumps(kernel.export_handles(arena)))
            assert handles.nbytes >= kernel.nbytes
            again = PortfolioKernel.from_handles(handles)
            assert again.layer_ids == kernel.layer_ids
            a = kernel.run(wl.yet.trials, wl.yet.event_ids, wl.yet.n_trials)
            b = again.run(wl.yet.trials, wl.yet.event_ids, wl.yet.n_trials)
            np.testing.assert_array_equal(a, b)

    def test_mixed_dense_sparse_kernel_round_trip(self, tiny_workload):
        """dense_max_entries=1 forces sparse lookups; the CSR arrays must
        survive the handle round-trip like the dense stack does."""
        wl = tiny_workload
        kernel = wl.portfolio.kernel(dense_max_entries=1)
        assert kernel.n_sparse > 0
        with shm.SharedArena() as arena:
            again = PortfolioKernel.from_handles(kernel.export_handles(arena))
            a = kernel.run(wl.yet.trials, wl.yet.event_ids, wl.yet.n_trials)
            b = again.run(wl.yet.trials, wl.yet.event_ids, wl.yet.n_trials)
            np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# engine / dispatcher parity
# ---------------------------------------------------------------------------

class TestTransportParity:
    def test_multicore_shm_matches_pickle_and_vectorized(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        ref = VectorizedEngine().run(wl.portfolio, wl.yet)
        with MulticoreEngine(n_workers=2) as shm_eng:
            via_shm = shm_eng.run(wl.portfolio, wl.yet)
            assert via_shm.details["transport"] == "shm"
        with MulticoreEngine(n_workers=2, transport="pickle") as pkl_eng:
            via_pickle = pkl_eng.run(wl.portfolio, wl.yet)
            assert via_pickle.details["transport"] == "pickle"
        np.testing.assert_array_equal(
            via_shm.portfolio_ylt.losses, via_pickle.portfolio_ylt.losses,
            err_msg="transports must be bit-identical",
        )
        assert via_shm.portfolio_ylt.allclose(ref.portfolio_ylt)

    def test_multicore_repeat_runs_ship_zero_payloads(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        with MulticoreEngine(n_workers=2) as engine:
            engine.run(wl.portfolio, wl.yet)
            ships = engine.pool.payload_ships
            engine.run(wl.portfolio, wl.yet)
            engine.run(wl.portfolio, wl.yet)
            assert engine.pool.payload_ships == ships, (
                "repeat runs with an unchanged kernel and YET must not "
                "re-deliver the shared payload"
            )

    def test_pooled_dispatcher_shm_matches_inline_and_pickle(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        kernel = wl.portfolio.kernel()
        oracle = InlineDispatcher().run(kernel, wl.yet)
        with PooledDispatcher(n_workers=2) as d:
            via_shm = d.run(kernel, wl.yet)
        with PooledDispatcher(n_workers=2, transport="pickle") as d:
            via_pickle = d.run(kernel, wl.yet)
        np.testing.assert_array_equal(via_shm, via_pickle)
        np.testing.assert_allclose(via_shm, oracle, rtol=1e-9, atol=1e-6)

    def test_equal_resimulated_yet_does_not_reship(self, rng):
        """The bundle keys on content fingerprint, not object identity:
        swapping in an equal re-simulated YET must ship nothing."""
        ids = np.arange(500, dtype=np.int64)
        rates = np.full(500, 1.0 / 500)
        make = lambda: YetTable.simulate(ids, rates, 200,
                                         np.random.default_rng(3),
                                         mean_events_per_trial=20.0)
        yet_a, yet_b = make(), make()
        assert yet_a is not yet_b
        layer = _tiny_kernel_layer()
        kernel = PortfolioKernel.from_layers([layer], layer_ids=[0])
        with PooledDispatcher(n_workers=2) as d:
            first = d.run(kernel, yet_a)
            ships = d.pool.payload_ships
            second = d.run(kernel, yet_b)
            assert d.pool.payload_ships == ships
            np.testing.assert_array_equal(first, second)

    def test_pooled_dispatcher_through_service(self, small_portfolio_workload):
        """End-to-end: a pooled service on the shm plane quotes the same
        premiums as the inline service."""
        wl = small_portfolio_workload
        layers = list(wl.portfolio)
        with PricingService(wl.yet, engine=PooledDispatcher(n_workers=2)) as svc:
            svc.warmup()
            pooled = svc.quote_many(layers)
        with PricingService(wl.yet) as svc:
            inline = svc.quote_many(layers)
        for a, b in zip(pooled, inline):
            assert a.premium == pytest.approx(b.premium, rel=1e-9)

    def test_explicit_shm_transport_unavailable_raises(self, monkeypatch,
                                                       tiny_workload):
        monkeypatch.setattr(shm, "_AVAILABLE", False)
        with MulticoreEngine(n_workers=2, transport="shm") as engine:
            with pytest.raises(EngineError, match="unavailable"):
                engine.run(tiny_workload.portfolio, tiny_workload.yet)

    def test_auto_transport_falls_back_without_shm(self, monkeypatch,
                                                   tiny_workload):
        monkeypatch.setattr(shm, "_AVAILABLE", False)
        ref = VectorizedEngine().run(tiny_workload.portfolio, tiny_workload.yet)
        with MulticoreEngine(n_workers=2) as engine:
            res = engine.run(tiny_workload.portfolio, tiny_workload.yet)
        assert res.details["transport"] == "pickle"
        assert res.portfolio_ylt.allclose(ref.portfolio_ylt)

    def test_unknown_transport_rejected(self):
        with pytest.raises(EngineError):
            MulticoreEngine(transport="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            PooledDispatcher(transport="carrier-pigeon")

    def test_yet_swap_retires_arena_instead_of_unlinking(
            self, small_portfolio_workload, rng):
        """Swapping trial sets must not unlink the old YET's segments
        mid-flight: a batch staged just before the swap may still be
        delivering the old handles to a fresh worker.  Old arenas retire
        until close()."""
        wl = small_portfolio_workload
        kernel = wl.portfolio.kernel()
        ids = np.arange(500, dtype=np.int64)
        other_yet = YetTable.simulate(ids, np.full(500, 1 / 500), 150, rng,
                                      mean_events_per_trial=15.0)
        d = PooledDispatcher(n_workers=2)
        try:
            d.run(kernel, wl.yet)
            first = d._shared
            d.run(kernel, other_yet)
            assert len(d._yet_arenas) == 2
            # the first shipment's segments must still attach
            assert isinstance(first, _ShmYet)
            trials, _ = pickle.loads(pickle.dumps(first)).__shm_resolve__()
            np.testing.assert_array_equal(trials, wl.yet.trials)
            # a third trial set frees the oldest retiree: the held
            # footprint is bounded at current + one predecessor
            third = YetTable.simulate(ids, np.full(500, 1 / 500), 100, rng,
                                      mean_events_per_trial=10.0)
            d.run(kernel, third)
            assert len(d._yet_arenas) == 2
        finally:
            d.close()
        assert not d._yet_arenas


# ---------------------------------------------------------------------------
# worker death and recovery
# ---------------------------------------------------------------------------

def _die(_shared, _i: int):  # pragma: no cover - runs in a worker
    os._exit(17)


def _attach_and_cached_slabs(handle):
    """Worker: attach one slab handle, report this process's cached
    slab mappings (picklable task for the eviction tests)."""
    view = handle.attach()
    with shm._ATTACHED_LOCK:
        cached = sorted(n for n in shm._ATTACHED
                        if n.startswith("repro-slab-"))
    return float(view.sum()), cached


#: No-retry supervision: a persistent killer fails terminally at once,
#: keeping these tests to exactly one executor cycle.
_NO_RETRY = TaskPolicy(max_retries=0, backoff_seconds=0.0)


class TestRecovery:
    def test_engine_recovers_and_reattaches_after_worker_death(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        with MulticoreEngine(n_workers=2) as engine:
            before = engine.run(wl.portfolio, wl.yet)
            ships = engine.pool.payload_ships
            shipment = engine._staged[2]
            with pytest.raises(ExecutionError):
                engine.pool.starmap_shared(_die, shipment,
                                           [(i,) for i in range(4)],
                                           policy=_NO_RETRY)
            after = engine.run(wl.portfolio, wl.yet)
            np.testing.assert_array_equal(before.portfolio_ylt.losses,
                                          after.portfolio_ylt.losses)
            # recovery re-sent handles (one more executor build), not a
            # fresh placement: the staged arena is untouched
            assert engine.pool.payload_ships == ships + 1
            assert engine._staged[2] is shipment
            assert engine.pool.health.worker_deaths >= 1

    def test_dispatcher_recovers_after_worker_death(
            self, small_portfolio_workload):
        wl = small_portfolio_workload
        kernel = wl.portfolio.kernel()
        with PooledDispatcher(n_workers=2) as d:
            before = d.run(kernel, wl.yet)
            with pytest.raises(ExecutionError):
                d.pool.starmap_shared(_die, d._bundle(wl.yet),
                                      [(i,) for i in range(4)],
                                      policy=_NO_RETRY)
            after = d.run(kernel, wl.yet)
            np.testing.assert_array_equal(before, after)


# ---------------------------------------------------------------------------
# slab generation eviction on the attach side
# ---------------------------------------------------------------------------

class TestSlabGenerationEviction:
    def test_workers_unmap_outgrown_generations(self):
        """Attaching a newer slab generation evicts the worker's cached
        mapping of the outgrown one — the stale segment must not stay
        pinned until worker exit."""
        arr1 = np.arange(256, dtype=np.float64)
        arr2 = np.arange(4096, dtype=np.float64)  # outgrows the slab
        with WorkPool(n_workers=2) as pool, \
                shm.ShmSlab(capacity_bytes=1 << 11) as slab:
            # Spawn workers before any segment exists: a forked worker
            # inherits the owner registry, which would short-circuit the
            # attach path this test is about.
            pool.ensure_started()
            (h1,) = slab.pack(arr1)
            g1 = slab.segment_name
            assert shm._SLAB_NAME_RE.match(g1)
            for total, cached in pool.map(_attach_and_cached_slabs,
                                          [h1] * 8):
                assert total == arr1.sum()
                assert g1 in cached
            (h2,) = slab.pack(arr2)
            g2 = slab.segment_name
            assert slab.generations == 2 and g1 != g2
            for total, cached in pool.map(_attach_and_cached_slabs,
                                          [h2] * 8):
                assert total == arr2.sum()
                assert g2 in cached
                # the outgrown generation was unmapped at attach time
                assert g1 not in cached

    def test_unrelated_slabs_do_not_evict_each_other(self):
        arr = np.arange(128, dtype=np.float64)
        with WorkPool(n_workers=2) as pool, \
                shm.ShmSlab(capacity_bytes=1 << 11) as a, \
                shm.ShmSlab(capacity_bytes=1 << 11) as b:
            pool.ensure_started()  # fork before any segment exists
            (ha,) = a.pack(arr)
            (hb,) = b.pack(arr)
            # Every worker attaches slab A, then slab B: different uids,
            # so A's generation-1 mapping must survive B's attach.
            for total, cached in pool.map(_attach_and_cached_slabs,
                                          [ha] * 8):
                assert total == arr.sum()
            for _total, cached in pool.map(_attach_and_cached_slabs,
                                           [hb] * 8):
                if a.segment_name in cached or b.segment_name in cached:
                    # a worker that saw both keeps both mappings
                    assert b.segment_name in cached
