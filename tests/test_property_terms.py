"""Property-based tests for the financial-terms arithmetic.

These are the invariants the whole pipeline's correctness rests on:
whatever the terms and losses, layer output is bounded, monotone, and
identical between the scalar oracle and the vectorised implementation.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.terms import LayerTerms

finite_loss = st.floats(min_value=0.0, max_value=1e12,
                        allow_nan=False, allow_infinity=False)

terms_strategy = st.builds(
    LayerTerms,
    occ_retention=st.floats(0.0, 1e9, allow_nan=False),
    occ_limit=st.one_of(st.just(math.inf), st.floats(1.0, 1e9, allow_nan=False)),
    agg_retention=st.floats(0.0, 1e9, allow_nan=False),
    agg_limit=st.one_of(st.just(math.inf), st.floats(1.0, 1e10, allow_nan=False)),
    participation=st.floats(0.01, 1.0, allow_nan=False),
)

loss_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(0, 200),
    elements=finite_loss,
)


class TestOccurrenceProperties:
    @given(terms=terms_strategy, loss=finite_loss)
    def test_scalar_bounds(self, terms, loss):
        out = terms.occurrence_scalar(loss)
        assert 0.0 <= out <= min(loss, terms.occ_limit) + 1e-9

    @given(terms=terms_strategy, a=finite_loss, b=finite_loss)
    def test_monotone(self, terms, a, b):
        lo, hi = sorted((a, b))
        assert terms.occurrence_scalar(lo) <= terms.occurrence_scalar(hi) + 1e-9

    @given(terms=terms_strategy, losses=loss_arrays)
    def test_vector_equals_scalar(self, terms, losses):
        vec = terms.apply_occurrence(losses)
        scal = np.array([terms.occurrence_scalar(x) for x in losses])
        np.testing.assert_allclose(vec, scal, rtol=1e-12, atol=1e-9)

    @given(terms=terms_strategy, losses=loss_arrays)
    def test_one_lipschitz(self, terms, losses):
        """Terms never amplify differences (1-Lipschitz in each loss)."""
        bumped = terms.apply_occurrence(losses + 1.0)
        base = terms.apply_occurrence(losses)
        assert (bumped - base <= 1.0 + 1e-9).all()
        assert (bumped - base >= -1e-9).all()


class TestAggregateProperties:
    @given(terms=terms_strategy, annual=finite_loss)
    def test_scalar_bounds(self, terms, annual):
        out = terms.aggregate_scalar(annual)
        cap = terms.agg_limit * terms.participation
        assert 0.0 <= out <= min(annual, cap) + 1e-9

    @given(terms=terms_strategy, annual=loss_arrays)
    def test_vector_equals_scalar(self, terms, annual):
        vec = terms.apply_aggregate(annual)
        scal = np.array([terms.aggregate_scalar(x) for x in annual])
        np.testing.assert_allclose(vec, scal, rtol=1e-12, atol=1e-9)


class TestTrialProperties:
    @settings(max_examples=50)
    @given(terms=terms_strategy, losses=loss_arrays)
    def test_trial_loss_bounded_by_caps(self, terms, losses):
        out = terms.trial_loss_scalar(losses)
        assert out >= 0.0
        assert out <= terms.agg_limit * terms.participation + 1e-6
        n = len(losses)
        occ_cap = terms.occ_limit * n if n else 0.0
        # Relative slack: summing n capped occurrences accumulates a few
        # ulps against the single n*occ_limit multiplication.
        tol = 1e-6 + 1e-9 * occ_cap if occ_cap != float("inf") else 0.0
        assert out <= terms.participation * occ_cap + tol or n == 0

    @settings(max_examples=50)
    @given(terms=terms_strategy, losses=loss_arrays)
    def test_adding_an_event_never_decreases(self, terms, losses):
        base = terms.trial_loss_scalar(losses)
        more = terms.trial_loss_scalar(list(losses) + [1e6])
        assert more >= base - 1e-9

    @settings(max_examples=50)
    @given(losses=loss_arrays)
    def test_passthrough_terms_sum(self, losses):
        """Identity terms reduce to a plain sum."""
        t = LayerTerms()
        np.testing.assert_allclose(
            t.trial_loss_scalar(losses), float(np.sum(losses)), rtol=1e-9
        )
