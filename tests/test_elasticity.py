"""Tests for the elastic-provisioning comparison."""

import pytest

from repro.errors import ConfigurationError
from repro.hpc.elasticity import DemandPhase, compare_provisioning


def pipeline_week():
    """A §II-shaped week: long cheap stage 1, short massive stages 2-3."""
    return [
        DemandPhase("stage1 (modelling)", n_procs=2, hours=100.0),
        DemandPhase("stage2 (portfolio)", n_procs=3000, hours=0.5),
        DemandPhase("stage3 (DFA)", n_procs=500, hours=0.5),
        DemandPhase("idle", n_procs=0, hours=67.0),
    ]


class TestCompareProvisioning:
    def test_elastic_beats_fixed_on_bursty_profile(self):
        plans = compare_provisioning(pipeline_week())
        assert plans["elastic"].node_hours < plans["fixed"].node_hours
        # the §II shape: orders of magnitude cheaper
        assert plans["fixed"].node_hours / plans["elastic"].node_hours > 50

    def test_fixed_cost_is_peak_times_duration(self):
        phases = pipeline_week()
        plans = compare_provisioning(phases)
        total_hours = sum(p.hours for p in phases)
        assert plans["fixed"].node_hours == pytest.approx(3000 * total_hours)

    def test_utilisation_bounds(self):
        plans = compare_provisioning(pipeline_week())
        for plan in plans.values():
            assert 0.0 < plan.utilisation <= 1.0
        assert plans["elastic"].utilisation > plans["fixed"].utilisation

    def test_flat_profile_near_parity(self):
        """With constant demand, elasticity buys (almost) nothing."""
        flat = [DemandPhase("steady", 100, 10.0)] * 4
        plans = compare_provisioning(flat, spin_up_overhead_hours=0.0)
        assert plans["elastic"].node_hours == pytest.approx(
            plans["fixed"].node_hours
        )

    def test_spin_up_overhead_charged_per_scale_up(self):
        phases = [
            DemandPhase("a", 10, 1.0),
            DemandPhase("b", 20, 1.0),   # +10 procs
            DemandPhase("c", 5, 1.0),    # scale down, free
            DemandPhase("d", 25, 1.0),   # +20 procs
        ]
        base = compare_provisioning(phases, spin_up_overhead_hours=0.0)
        with_overhead = compare_provisioning(phases, spin_up_overhead_hours=1.0)
        extra = (with_overhead["elastic"].node_hours
                 - base["elastic"].node_hours)
        assert extra == pytest.approx(10 + 20 + 10)  # first phase also spins up

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compare_provisioning([])
        with pytest.raises(ConfigurationError):
            DemandPhase("x", -1, 1.0)
        with pytest.raises(ConfigurationError):
            DemandPhase("x", 1, -1.0)
        with pytest.raises(ConfigurationError):
            compare_provisioning(pipeline_week(), spin_up_overhead_hours=-1)
