"""Tests for the bench workload generators and harness."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentReport, time_call
from repro.bench.workloads import (
    build_elt,
    build_layer_workload,
    build_portfolio_workload,
    companion_study_workload,
    dfa_workload,
    typical_contract_workload,
    warehouse_fact_table,
)
from repro.core.tables import YltTable
from repro.errors import AnalysisError, ConfigurationError


class TestBuildElt:
    def test_shape(self):
        elt = build_elt(100, 1000, np.random.default_rng(0))
        assert elt.n_events == 100
        assert elt.max_event_id < 1000

    def test_unique_sorted_ids(self):
        elt = build_elt(200, 500, np.random.default_rng(1))
        ids = elt.event_ids
        assert (np.diff(ids) > 0).all()

    def test_too_many_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            build_elt(100, 50, np.random.default_rng(0))


class TestWorkloads:
    def test_layer_workload_deterministic(self):
        a = build_layer_workload(50, 10.0, 2, 20, 100, seed=5)
        b = build_layer_workload(50, 10.0, 2, 20, 100, seed=5)
        assert a.yet.table.equals(b.yet.table)
        for ea, eb in zip(a.portfolio.layers[0].elts, b.portfolio.layers[0].elts):
            assert ea.table.equals(eb.table)

    def test_companion_study_shape(self):
        wl = companion_study_workload(n_trials=100)
        assert wl.portfolio.n_layers == 1
        assert wl.portfolio.layers[0].n_elts == 15
        assert wl.meta["elt_rows"] == 16_000

    def test_typical_contract_shape(self):
        wl = typical_contract_workload(n_trials=100)
        assert wl.portfolio.layers[0].n_elts == 1

    def test_portfolio_workload(self):
        wl = build_portfolio_workload(3, 50, 10.0, 2, 20, 200, seed=5)
        assert wl.portfolio.n_layers == 3
        assert wl.portfolio.n_elts == 6

    def test_nondegenerate_ylt(self):
        """The canonical workload must produce a dispersed YLT (guards the
        terms calibration that E3/E4 depend on)."""
        from repro.core.simulation import AggregateAnalysis

        wl = companion_study_workload(n_trials=500)
        losses = AggregateAnalysis(wl.portfolio, wl.yet).run(
            "vectorized").portfolio_ylt.losses
        assert losses.std() > 0.01 * losses.mean()
        assert (losses == losses.max()).mean() < 0.5

    def test_dfa_workload_sources(self):
        sources = dfa_workload(YltTable(np.ones(100)), seed=1)
        assert len(sources) == 6
        assert all(s.n_trials == 100 for s in sources)

    def test_warehouse_fact_table(self):
        t = warehouse_fact_table(n_trials=10, rows_per_trial=3)
        assert t.n_rows == 30
        assert t["trial"].max() == 9


class TestHarness:
    def test_time_call_returns_result(self):
        seconds, result = time_call(lambda: 42, repeats=2, warmup=1)
        assert result == 42
        assert seconds >= 0

    def test_time_call_bad_repeats(self):
        with pytest.raises(AnalysisError):
            time_call(lambda: 1, repeats=0)

    def test_experiment_report_renders(self):
        rep = ExperimentReport("EX", "claim", ["a", "b"])
        rep.add_row(1, 2)
        rep.add_note("note")
        out = rep.render()
        assert "[EX] claim" in out
        assert "note" in out
