"""Edge-case and failure-injection tests across the stack.

Degenerate inputs (empty YETs, uncovered catalogues), corrupted storage,
and hostile configurations — the inputs a production system meets on a
bad day.
"""

import numpy as np
import pytest

from repro.analytics.comparison import assert_engines_equivalent
from repro.core import AggregateAnalysis, EltTable, Layer, LayerTerms, Portfolio
from repro.core.tables import YET_SCHEMA, YetTable
from repro.data.columnar import ColumnTable
from repro.data.dfs import SimDfs
from repro.data.serialization import pack_table
from repro.errors import StorageError

ALL_ENGINES = ["sequential", "vectorized", "device", "multicore",
               "mapreduce", "distributed"]


def empty_yet(n_trials=10):
    return YetTable(ColumnTable(YET_SCHEMA), n_trials=n_trials)


def one_layer_portfolio(terms=None):
    elt = EltTable.from_arrays([1, 2, 3], [100.0, 200.0, 300.0])
    return Portfolio([Layer(0, [elt], terms or LayerTerms())])


class TestEmptyYet:
    def test_all_engines_produce_zero_ylt(self):
        pf = one_layer_portfolio()
        yet = empty_yet()
        assert_engines_equivalent(pf, yet, ALL_ENGINES)
        res = AggregateAnalysis(pf, yet).run("vectorized")
        assert (res.portfolio_ylt.losses == 0).all()
        assert res.portfolio_ylt.n_trials == 10

    def test_emit_yelt_on_empty_yet(self):
        res = AggregateAnalysis(one_layer_portfolio(), empty_yet()).run(
            "vectorized", emit_yelt=True
        )
        assert res.yelt_rows() == 0


class TestUncoveredCatalogue:
    def test_events_outside_every_elt(self):
        """A YET referencing only uncovered events yields a zero YLT."""
        pf = one_layer_portfolio()
        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0, 1, 2], seq=[0, 0, 0],
            event_id=[500, 600, 700],
        )
        yet = YetTable(table, n_trials=4)
        assert_engines_equivalent(pf, yet, ALL_ENGINES)
        res = AggregateAnalysis(pf, yet).run("sequential")
        assert (res.portfolio_ylt.losses == 0).all()


class TestExtremeTermsInteraction:
    def test_occ_limit_below_retention_band(self):
        """occ_limit smaller than typical retained losses: every attaching
        occurrence pays exactly the limit."""
        terms = LayerTerms(occ_retention=50.0, occ_limit=10.0)
        pf = one_layer_portfolio(terms)
        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0, 0], seq=[0, 1], event_id=[2, 3]
        )
        yet = YetTable(table, n_trials=1)
        res = AggregateAnalysis(pf, yet).run("sequential")
        assert res.portfolio_ylt.losses[0] == pytest.approx(20.0)

    def test_huge_event_ids(self):
        """Sparse lookups must handle ids near 2^62 without allocating."""
        elt = EltTable.from_arrays([2**61, 2**62], [10.0, 20.0])
        pf = Portfolio([Layer(0, [elt], LayerTerms())])
        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0, 0], seq=[0, 1],
            event_id=[2**61, 2**62],
        )
        yet = YetTable(table, n_trials=1)
        assert_engines_equivalent(pf, yet,
                                  ["sequential", "vectorized", "device"])
        res = AggregateAnalysis(pf, yet).run("vectorized")
        assert res.portfolio_ylt.losses[0] == pytest.approx(30.0)

    def test_single_trial_single_event(self):
        pf = one_layer_portfolio()
        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0], seq=[0], event_id=[1]
        )
        yet = YetTable(table, n_trials=1)
        assert_engines_equivalent(pf, yet, ALL_ENGINES)


class TestDfsCorruption:
    def test_corrupted_block_detected_on_decode(self):
        """Bit-rot inside a stored block must fail loudly, not return
        garbage losses."""
        dfs = SimDfs(n_datanodes=2, replication=1)
        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0, 1], seq=[0, 0], event_id=[1, 2]
        )
        dfs.write_table("yet", table, rows_per_block=2)
        # reach into the datanode and flip bytes in the header region
        block_id = dfs.file_blocks("yet")[0].block_id
        for node in dfs._nodes.values():
            if block_id in node.blocks:
                raw = bytearray(node.blocks[block_id])
                raw[5] ^= 0xFF
                node.blocks[block_id] = bytes(raw)
        with pytest.raises(StorageError):
            dfs.read_table("yet")

    def test_truncated_block_detected(self):
        dfs = SimDfs(n_datanodes=2, replication=1)
        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=[0], seq=[0], event_id=[1]
        )
        payload = pack_table(table)
        dfs.write("raw", payload[:-3])  # store a truncated packed table
        from repro.data.serialization import unpack_table

        with pytest.raises(StorageError):
            unpack_table(dfs.read("raw"))


class TestDeterminismAcrossEngines:
    def test_repeated_runs_identical(self, tiny_workload):
        """Engines are pure: repeated runs give bit-identical YLTs."""
        analysis = AggregateAnalysis(tiny_workload.portfolio,
                                     tiny_workload.yet)
        for name in ("vectorized", "device", "mapreduce"):
            a = analysis.run(name).portfolio_ylt.losses
            b = analysis.run(name).portfolio_ylt.losses
            np.testing.assert_array_equal(a, b)
