"""Tests for argument-validation helpers."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive("x", bad)

    def test_error_mentions_name(self):
        with pytest.raises(ConfigurationError, match="premium"):
            check_positive("premium", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_accepts_inf(self):
        """Limits are often unbounded: inf must pass."""
        assert check_non_negative("x", math.inf) == math.inf

    @pytest.mark.parametrize("bad", [-0.1, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", bad)


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_fraction("x", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_fraction("x", bad)


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        out = check_probability_vector("p", [0.25, 0.75])
        assert isinstance(out, np.ndarray)

    def test_rejects_bad_sum(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [0.3, 0.3])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [-0.5, 1.5])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [])

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [[0.5, 0.5]])


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("mode", "a", {"a", "b"}) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="mode"):
            check_in("mode", "c", {"a", "b"})
