"""Tests for partitioners, the on-disk chunk store, and the loss cube."""

import numpy as np
import pytest

from repro.data.columnar import ColumnTable
from repro.data.partition import RangePartitioner, hash_partition
from repro.data.schema import Schema
from repro.data.store import ChunkStore
from repro.data.warehouse import CubeQuery, LossCube
from repro.errors import AnalysisError, ConfigurationError, StorageError

S = Schema([("k", np.int64), ("v", np.float64)])


class TestHashPartition:
    def test_stable_across_calls(self):
        assert hash_partition("abc", 8) == hash_partition("abc", 8)

    def test_range(self):
        for key in range(100):
            assert 0 <= hash_partition(key, 7) < 7

    def test_zero_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            hash_partition(1, 0)

    def test_spreads_keys(self):
        buckets = {hash_partition(k, 16) for k in range(1000)}
        assert len(buckets) == 16


class TestRangePartitioner:
    def test_from_sample_quantiles(self):
        p = RangePartitioner.from_sample(list(range(100)), 4)
        assert p.n_buckets == 4
        assert p(0) == 0
        assert p(99) == 3

    def test_ordering_preserved(self):
        p = RangePartitioner.from_sample(list(range(1000)), 8)
        buckets = [p(k) for k in range(0, 1000, 10)]
        assert buckets == sorted(buckets)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner([5, 1])

    def test_overflow_bucket_check(self):
        p = RangePartitioner([10])
        with pytest.raises(ConfigurationError):
            p(50, n_buckets=1)


class TestChunkStore:
    def make_table(self, n=100):
        return ColumnTable.from_arrays(
            S, k=np.arange(n), v=np.arange(n, dtype=np.float64)
        )

    def test_roundtrip(self, tmp_path):
        store = ChunkStore(tmp_path)
        t = self.make_table()
        n_chunks = store.write_table("t", t, rows_per_chunk=30)
        assert n_chunks == 4
        assert store.read_table("t").equals(t)

    def test_iter_chunks_streams_in_order(self, tmp_path):
        store = ChunkStore(tmp_path)
        t = self.make_table(50)
        store.write_table("t", t, rows_per_chunk=20)
        chunks = list(store.iter_chunks("t"))
        assert [c.n_rows for c in chunks] == [20, 20, 10]
        np.testing.assert_array_equal(chunks[0]["k"], np.arange(20))

    def test_duplicate_name_rejected(self, tmp_path):
        store = ChunkStore(tmp_path)
        store.write_table("t", self.make_table(), rows_per_chunk=50)
        with pytest.raises(StorageError):
            store.write_table("t", self.make_table(), rows_per_chunk=50)

    def test_missing_table_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            ChunkStore(tmp_path).read_table("nope")

    def test_invalid_name_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            ChunkStore(tmp_path).write_table("../evil", self.make_table(), 10)

    def test_delete(self, tmp_path):
        store = ChunkStore(tmp_path)
        store.write_table("t", self.make_table(), rows_per_chunk=50)
        store.delete_table("t")
        assert store.list_tables() == []

    def test_stored_bytes_positive(self, tmp_path):
        store = ChunkStore(tmp_path)
        store.write_table("t", self.make_table(), rows_per_chunk=25)
        assert store.stored_bytes("t") > self.make_table().nbytes  # headers add


FACTS = Schema([("trial", np.int64), ("lob", np.int64),
                ("region", np.int64), ("loss", np.float64)])


class TestLossCube:
    def make_cube(self, n_trials=50):
        rng = np.random.default_rng(7)
        n = 400
        table = ColumnTable.from_arrays(
            FACTS,
            trial=rng.integers(0, n_trials, n),
            lob=rng.integers(0, 3, n),
            region=rng.integers(0, 2, n),
            loss=rng.random(n) * 100,
        )
        return LossCube(table, dims=("lob", "region"), n_trials=n_trials), table

    def test_unfiltered_matches_direct_sum(self):
        cube, table = self.make_cube()
        direct = np.zeros(50)
        np.add.at(direct, table["trial"], table["loss"])
        np.testing.assert_allclose(cube.annual_losses(), direct)

    def test_slice_matches_filtered_sum(self):
        cube, table = self.make_cube()
        mask = (table["lob"] == 1) & (table["region"] == 0)
        direct = np.zeros(50)
        np.add.at(direct, table["trial"][mask], table["loss"][mask])
        np.testing.assert_allclose(
            cube.annual_losses({"lob": 1, "region": 0}), direct
        )

    def test_slices_partition_total(self):
        cube, _ = self.make_cube()
        total = cube.annual_losses()
        parts = sum(cube.annual_losses({"lob": l}) for l in range(3))
        np.testing.assert_allclose(parts, total)

    def test_cube_query_object(self):
        cube, _ = self.make_cube()
        np.testing.assert_allclose(
            cube.annual_losses(CubeQuery({"lob": 2})),
            cube.annual_losses({"lob": 2}),
        )

    def test_unknown_dimension_rejected(self):
        cube, _ = self.make_cube()
        with pytest.raises(AnalysisError):
            cube.annual_losses({"peril": 1})

    def test_absent_combination_returns_zeros(self):
        cube, _ = self.make_cube()
        out = cube.annual_losses({"lob": 99})
        assert (out == 0).all()

    def test_pml_and_tvar_consistency(self):
        cube, _ = self.make_cube()
        losses = cube.annual_losses()
        assert cube.pml(10.0) == pytest.approx(np.quantile(losses, 0.9))
        assert cube.tvar(0.9) >= cube.pml(10.0)

    def test_missing_column_rejected(self):
        with pytest.raises(ConfigurationError):
            LossCube(ColumnTable(FACTS), dims=("nope",), n_trials=10)

    def test_trial_out_of_range_rejected(self):
        table = ColumnTable.from_arrays(
            FACTS, trial=[100], lob=[0], region=[0], loss=[1.0]
        )
        with pytest.raises(ConfigurationError):
            LossCube(table, dims=("lob",), n_trials=10)

    def test_nbytes_and_cells(self):
        cube, _ = self.make_cube()
        assert cube.n_cells <= 6
        assert cube.nbytes == cube.n_cells * 50 * 8
