"""Tests for the fixed-width table renderer and formatters."""

import pytest

from repro.util.tables import format_bytes, format_count, render_table


class TestFormatCount:
    @pytest.mark.parametrize("value, expect", [
        (5, "5"), (1500, "1.50K"), (2.5e6, "2.50M"), (3e9, "3.00B"),
        (4e12, "4.00T"), (5e16, "5.00e+16"),
    ])
    def test_suffixes(self, value, expect):
        assert format_count(value) == expect

    def test_nan(self):
        assert format_count(float("nan")) == "nan"


class TestFormatBytes:
    @pytest.mark.parametrize("value, expect", [
        (512, "512 B"), (2048, "2.00 KiB"), (3 * 1024**2, "3.00 MiB"),
        (5 * 1024**3, "5.00 GiB"), (7 * 1024**4, "7.00 TiB"),
    ])
    def test_suffixes(self, value, expect):
        assert format_bytes(value) == expect


class TestRenderTable:
    def test_alignment_and_header(self):
        out = render_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title_prepended(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456789]])
        assert "1.235" in out

    def test_empty_rows_ok(self):
        out = render_table(["a", "b"], [])
        assert "a" in out
