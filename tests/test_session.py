"""Tests for the session layer: RiskSession, the planner, the registry.

The contract under test is the paper's thesis applied to the API: bind
the YET once, stage it once, and every workload — aggregate runs, quote
batches, EP curves, sensitivities — sweeps data that is already
resident.  Plus the redesigned engine registry (declarative EngineSpec
records, boundary-surfaced unknown-name errors) and the cost-model
planner behind ``engine="auto"``.
"""

import dataclasses

import numpy as np

import pytest

from repro.core.engines import (
    Engine,
    EngineSpec,
    VectorizedEngine,
    available_engines,
    engine_spec,
)
from repro.core.layer import Layer
from repro.core.simulation import AggregateAnalysis
from repro.errors import ConfigurationError, EngineError
from repro.hpc import shm
from repro.session import EnginePlanner, ExecutionPlan, RiskSession
from repro.session.planner import plan_workload

ALL_ENGINES = ["sequential", "vectorized", "device", "multicore",
               "mapreduce", "distributed"]

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on this host"
)


def _candidates(portfolio, n):
    base = portfolio.layers[0]
    out = []
    for i in range(n):
        terms = dataclasses.replace(
            base.terms, occ_retention=base.terms.occ_retention * (1 + 0.2 * i)
        )
        out.append(Layer(900 + i, base.elts, terms, weights=base.weights))
    return out


# ---------------------------------------------------------------------------
# the declarative registry
# ---------------------------------------------------------------------------

class TestEngineSpecs:
    def test_every_engine_has_a_spec(self):
        for name in ALL_ENGINES:
            spec = engine_spec(name)
            assert isinstance(spec, EngineSpec)
            assert spec.name == name
            assert spec.factory().name == name

    def test_unknown_name_surfaces_available_list(self):
        with pytest.raises(EngineError) as err:
            engine_spec("quantum")
        for name in ALL_ENGINES:
            assert name in str(err.value)

    def test_auto_candidates_are_priced_substrates(self):
        from repro.core.engines import auto_candidates

        autos = {s.name for s in auto_candidates()}
        assert autos == {"vectorized", "multicore", "device", "distributed"}
        # the oracle and the DFS demo stay out of auto's reach
        for name in ("sequential", "mapreduce"):
            assert not engine_spec(name).auto_candidate
        # simulated substrates carry conservative seeds (below the
        # vectorized host rate) plus a per-run transfer term, so a seed
        # plan never routes real work onto them
        vec_rate = engine_spec("vectorized").lane_throughput
        for name in ("device", "distributed"):
            spec = engine_spec(name)
            assert spec.lane_throughput < vec_rate
            assert spec.transfer_seconds(1_000_000) > 0

    def test_simulated_substrates_declare_fixed_procs(self):
        assert engine_spec("distributed").procs_for(32) == 8  # n_nodes
        assert engine_spec("device").procs_for(32) == 1
        assert engine_spec("vectorized").transfer_seconds(1e9) == 0.0

    def test_capability_flags_match_engine_behaviour(self, tiny_workload):
        # emit_yelt: the spec flag and the engine's actual behaviour agree
        for name in ALL_ENGINES:
            spec = engine_spec(name)
            analysis = AggregateAnalysis(tiny_workload.portfolio,
                                         tiny_workload.yet)
            if spec.supports_emit_yelt:
                res = analysis.run(name, emit_yelt=True)
                assert res.yelt_by_layer
            else:
                with pytest.raises(EngineError):
                    analysis.run(name, emit_yelt=True)

    def test_stage_spec_cost_hook(self):
        spec = engine_spec("multicore")
        stage = spec.stage_spec(1e6)
        assert stage.throughput_per_proc == spec.lane_throughput
        # more processors help a process-pool substrate
        assert stage.runtime_seconds(4) < stage.runtime_seconds(1)
        assert spec.procs_for(8) == 8
        assert engine_spec("vectorized").procs_for(8) == 1


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------

class TestPlanner:
    def test_tiny_workload_plans_inline(self):
        planner = EnginePlanner(n_workers=8)
        plan = planner.plan("aggregate", n_trials=100, n_occurrences=1_000,
                            n_layers=1)
        assert plan.engine == "vectorized"
        assert plan.transport == "inline"

    def test_huge_workload_plans_pooled(self):
        planner = EnginePlanner(n_workers=8)
        plan = planner.plan("aggregate", n_trials=1_000_000,
                            n_occurrences=500_000_000, n_layers=16)
        assert plan.engine == "multicore"
        assert plan.n_procs == 8

    def test_single_core_host_never_plans_pooled(self):
        planner = EnginePlanner(n_workers=1)
        plan = planner.plan("aggregate", n_trials=1_000_000,
                            n_occurrences=500_000_000, n_layers=16)
        assert plan.engine == "vectorized"
        ineligible = [e for e in plan.estimates if not e.eligible]
        assert ineligible and ineligible[0].engine == "multicore"

    def test_warm_pool_waives_startup(self):
        planner = EnginePlanner(n_workers=4)
        shape = dict(n_trials=10_000, n_occurrences=2_000_000, n_layers=4)
        cold = planner.plan("aggregate", pool_warm=False, **shape)
        warm = planner.plan("aggregate", pool_warm=True, **shape)
        cold_mc = next(e for e in cold.estimates if e.engine == "multicore")
        warm_mc = next(e for e in warm.estimates if e.engine == "multicore")
        assert cold_mc.startup_seconds > 0
        assert warm_mc.startup_seconds == 0

    def test_observation_calibrates_the_estimate(self):
        planner = EnginePlanner(n_workers=4)
        seed = planner.throughput("vectorized")
        planner.observe("vectorized", lanes=1e6, seconds=1.0)
        assert planner.throughput("vectorized") == pytest.approx(1e6)
        assert planner.throughput("vectorized") != seed
        # second observation is EWMA-blended, not a replacement
        planner.observe("vectorized", lanes=2e6, seconds=1.0)
        assert 1e6 < planner.throughput("vectorized") < 2e6

    def test_explain_names_engine_and_cost_inputs(self):
        planner = EnginePlanner(n_workers=8)
        plan = planner.plan("aggregate", n_trials=1_000,
                            n_occurrences=100_000, n_layers=2)
        text = plan.explain()
        assert plan.engine in text
        assert "lanes" in text
        assert "throughput" in text
        assert "startup" in text
        for est in plan.estimates:
            assert est.engine in text

    def test_seed_plan_never_picks_a_simulated_substrate(self):
        planner = EnginePlanner(n_workers=1)
        for shape in (dict(n_trials=100, n_occurrences=1_000, n_layers=1),
                      dict(n_trials=1_000_000, n_occurrences=500_000_000,
                           n_layers=16)):
            assert planner.plan("aggregate", **shape).engine == "vectorized"

    def test_calibrated_device_wins_and_explains_itself(self):
        # The tentpole planner behaviour: after a measured device run
        # calibrates the estimate above the host rate, auto selects the
        # device at a shape where compute dominates the H2D transfer.
        planner = EnginePlanner(n_workers=1)
        planner.observe("device", lanes=1e6, seconds=0.01)  # 1e8 lanes/s
        plan = planner.plan("aggregate", n_trials=10_000,
                            n_occurrences=1_000_000, n_layers=16)
        assert plan.engine == "device"
        dev = plan.chosen
        assert dev.calibrated
        # launch + per-run H2D transfer priced, never waived
        assert dev.startup_seconds > 0
        text = plan.explain()
        assert "device" in text and "measured" in text
        assert "transfer" in text
        # the distributed candidate is priced at its cluster width
        dist = next(e for e in plan.estimates if e.engine == "distributed")
        assert dist.n_procs == 8

    def test_device_transfer_charged_even_when_pool_warm(self):
        planner = EnginePlanner(n_workers=4)
        shape = dict(n_trials=10_000, n_occurrences=2_000_000, n_layers=4)
        warm = planner.plan("aggregate", pool_warm=True, **shape)
        dev = next(e for e in warm.estimates if e.engine == "device")
        spec = engine_spec("device")
        expected = spec.startup_seconds + spec.transfer_seconds(2_000_000)
        assert dev.startup_seconds == pytest.approx(expected)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            EnginePlanner(n_workers=2).plan("quantum", n_trials=1,
                                            n_occurrences=1)

    def test_plan_workload_one_shot(self, tiny_workload):
        plan = plan_workload(tiny_workload.yet, n_layers=1)
        assert isinstance(plan, ExecutionPlan)
        assert plan.engine in available_engines()


# ---------------------------------------------------------------------------
# session lifecycle
# ---------------------------------------------------------------------------

class TestSessionLifecycle:
    def test_close_is_idempotent(self, tiny_workload):
        session = RiskSession(tiny_workload.yet, tiny_workload.portfolio)
        session.aggregate(engine="vectorized")
        session.close()
        session.close()
        assert session.closed

    def test_use_after_close_raises(self, tiny_workload):
        session = RiskSession(tiny_workload.yet, tiny_workload.portfolio)
        session.close()
        for call in (
            lambda: session.aggregate(engine="vectorized"),
            lambda: session.quote(tiny_workload.portfolio.layers[0]),
            lambda: session.ep_curve(),
            lambda: session.plan(),
            lambda: session.engine("vectorized"),
            lambda: session.dispatcher("inline"),
            lambda: session.pricing_service(),
            lambda: session.warmup(),
        ):
            with pytest.raises(ConfigurationError, match="closed"):
                call()

    def test_context_manager_closes(self, tiny_workload):
        with RiskSession(tiny_workload.yet, tiny_workload.portfolio) as s:
            s.aggregate(engine="vectorized")
        assert s.closed

    @needs_shm
    def test_no_leaked_segments(self, tiny_workload):
        before = set(shm.active_segment_names())
        with RiskSession(tiny_workload.yet, tiny_workload.portfolio,
                         n_workers=2) as s:
            s.aggregate(engine="multicore")
            s.pricing_service(engine="pooled").quote(
                tiny_workload.portfolio.layers[0]
            )
        assert set(shm.active_segment_names()) == before

    def test_rejects_wrong_types(self, tiny_workload):
        with pytest.raises(ConfigurationError):
            RiskSession("not a yet")
        with pytest.raises(ConfigurationError):
            RiskSession(tiny_workload.yet, "not a portfolio")
        with pytest.raises(ConfigurationError):
            RiskSession(tiny_workload.yet, transport="carrier-pigeon")

    def test_no_bound_portfolio_is_a_clear_error(self, tiny_workload):
        with RiskSession(tiny_workload.yet) as s:
            with pytest.raises(ConfigurationError, match="portfolio"):
                s.aggregate()

    def test_closing_a_session_service_keeps_the_session_alive(
            self, tiny_workload, risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        svc = session.pricing_service()
        svc.quote(tiny_workload.portfolio.layers[0])
        svc.close()
        # the session's substrate survives its services
        res = session.aggregate(engine="vectorized")
        assert res.portfolio_ylt.n_trials == tiny_workload.yet.n_trials


# ---------------------------------------------------------------------------
# parity: session-mediated vs legacy entry points
# ---------------------------------------------------------------------------

class TestSessionParity:
    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_aggregate_matches_legacy(self, tiny_workload, risk_session, name):
        legacy = AggregateAnalysis(tiny_workload.portfolio,
                                   tiny_workload.yet).run(name)
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        staged = session.aggregate(engine=name)
        assert staged.engine == legacy.engine == name
        assert staged.portfolio_ylt.allclose(legacy.portfolio_ylt)
        for lid, ylt in legacy.ylt_by_layer.items():
            assert staged.ylt_by_layer[lid].allclose(ylt)

    def test_session_quote_matches_legacy_service(self, tiny_workload,
                                                  risk_session):
        from repro.serve.service import PricingService

        layer = tiny_workload.portfolio.layers[0]
        with PricingService(tiny_workload.yet) as svc:
            legacy = svc.quote(layer)
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        staged = session.quote(layer)
        assert staged.premium == pytest.approx(legacy.premium, rel=1e-9)

    def test_session_sensitivities_match_legacy(self, tiny_workload,
                                                risk_session):
        from repro.analytics.sensitivity import term_sensitivities

        layer = tiny_workload.portfolio.layers[0]
        legacy = term_sensitivities(layer, tiny_workload.yet)
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        staged = session.sensitivities(layer, engine="vectorized")
        assert staged == pytest.approx(legacy)

    def test_ep_curves_from_one_run(self, small_portfolio_workload,
                                    risk_session):
        session = risk_session(small_portfolio_workload.yet,
                               small_portfolio_workload.portfolio)
        by_layer, total = session.ep_curves(engine="vectorized")
        assert set(by_layer) == set(
            small_portfolio_workload.portfolio.layer_ids
        )
        # the portfolio's total-loss curve dominates each layer's
        for curve in by_layer.values():
            assert total.dominates(curve)

    def test_ep_curve_layer_path_matches_service(self, tiny_workload,
                                                 risk_session):
        layer = tiny_workload.portfolio.layers[0]
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        via_layer = session.ep_curve(layer)
        assert via_layer.n_trials == tiny_workload.yet.n_trials


# ---------------------------------------------------------------------------
# the staged data plane: the one-ship invariant
# ---------------------------------------------------------------------------

class TestStagedPayload:
    @needs_shm
    def test_mixed_workload_ships_payload_once(self, small_portfolio_workload,
                                               risk_session):
        """Acceptance: aggregate + >=8 quotes + EP curve through one
        session ships the YET at most once (WorkPool.payload_ships)."""
        from repro.serve.cache import CachePolicy

        wl = small_portfolio_workload
        session = risk_session(wl.yet, wl.portfolio, n_workers=2)
        session.aggregate(engine="multicore")
        assert session.payload_ships == 1
        svc = session.pricing_service(engine="pooled", cache=CachePolicy(0))
        quotes = svc.quote_many(_candidates(wl.portfolio, 8))
        assert len(quotes) == 8 and all(q.premium >= 0 for q in quotes)
        svc.ep_curve(wl.portfolio.layers[0])
        assert session.payload_ships == 1
        # and a repeat aggregate still re-ships nothing
        session.aggregate(engine="multicore")
        assert session.payload_ships == 1
        # one scrape of the session's plane sees the whole stack: the
        # ship counter, the serve counters, and the session counters
        metrics = session.telemetry.snapshot()["metrics"]
        assert metrics["pool.payload_ships"] == 1
        assert metrics["serve.requests"] >= 8
        assert metrics["session.aggregates"] == 2

    @needs_shm
    def test_run_all_ships_do_not_grow_across_the_sweep(
            self, tiny_workload, risk_session):
        """Satellite: run_all through one session stages (kernel, YET)
        once; a second sweep ships nothing more."""
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio,
                               n_workers=2)
        analysis = AggregateAnalysis(tiny_workload.portfolio,
                                     tiny_workload.yet, session=session)
        first = analysis.run_all(["vectorized", "multicore"])
        ships_after_first = session.payload_ships
        assert ships_after_first == 1
        second = analysis.run_all(["vectorized", "multicore"])
        assert session.payload_ships == ships_after_first
        assert first["multicore"].portfolio_ylt.allclose(
            second["multicore"].portfolio_ylt
        )

    def test_staged_multicore_details(self, tiny_workload, risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio,
                               n_workers=2)
        res = session.aggregate(engine="multicore")
        assert res.details["session_staged"] is True
        assert res.details["n_workers"] == 2
        assert res.details["transport"] in ("shm", "pickle")

    def test_staged_multicore_rejects_emit_yelt(self, tiny_workload,
                                                risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio,
                               n_workers=2)
        with pytest.raises(EngineError, match="YELT"):
            session.aggregate(engine="multicore", emit_yelt=True)


# ---------------------------------------------------------------------------
# engine="auto" through the session
# ---------------------------------------------------------------------------

class TestAutoEngine:
    def test_auto_with_emit_yelt_plans_an_emitting_engine(self, tiny_workload,
                                                          risk_session):
        """emit_yelt is a plan constraint: even when the pooled substrate
        would win on cost, auto must land on an engine that can emit."""
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio,
                               n_workers=2)
        res = session.aggregate(emit_yelt=True)
        assert res.yelt_by_layer
        assert engine_spec(res.engine).supports_emit_yelt

    def test_planner_marks_non_emitters_ineligible(self):
        planner = EnginePlanner(n_workers=8)
        # a shape where multicore wins unconstrained...
        shape = dict(n_trials=1_000_000, n_occurrences=500_000_000,
                     n_layers=16)
        assert planner.plan("aggregate", **shape).engine == "multicore"
        # ...but the YELT constraint excludes it, visibly
        plan = planner.plan("aggregate", require_emit_yelt=True, **shape)
        assert plan.engine == "vectorized"
        mc = next(e for e in plan.estimates if e.engine == "multicore")
        assert not mc.eligible and "YELT" in mc.note
        assert "YELT" in plan.explain()

    def test_auto_attaches_an_execution_plan(self, tiny_workload,
                                             risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        res = session.aggregate()
        plan = res.details["plan"]
        assert isinstance(plan, ExecutionPlan)
        assert plan.engine == res.engine
        text = plan.explain()
        assert res.engine in text and "throughput" in text

    def test_auto_works_standalone(self, tiny_workload):
        res = AggregateAnalysis(tiny_workload.portfolio,
                                tiny_workload.yet).run("auto")
        assert isinstance(res.details["plan"], ExecutionPlan)
        assert res.engine == res.details["plan"].engine

    def test_auto_emit_yelt_works_standalone(self, tiny_workload):
        """The emit_yelt constraint reaches the standalone planner too."""
        res = AggregateAnalysis(tiny_workload.portfolio,
                                tiny_workload.yet).run("auto", emit_yelt=True)
        assert res.yelt_by_layer
        assert engine_spec(res.engine).supports_emit_yelt

    def test_auto_rejects_engine_kwargs(self, tiny_workload, risk_session):
        """Constructor kwargs are engine-specific: forwarding them to
        whichever engine the planner picks would crash or silently
        misconfigure, so 'auto' refuses them outright."""
        analysis = AggregateAnalysis(tiny_workload.portfolio,
                                     tiny_workload.yet)
        with pytest.raises(EngineError, match="explicit engine name"):
            analysis.run("auto", n_workers=2)
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        with pytest.raises(EngineError, match="explicit engine name"):
            session.aggregate(engine="auto", n_workers=2)

    def test_runs_calibrate_later_plans(self, tiny_workload, risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        seed_rate = session.plan().chosen.throughput_per_proc
        session.aggregate(engine="vectorized")
        est = next(e for e in session.plan().estimates
                   if e.engine == "vectorized")
        assert est.calibrated
        assert est.throughput_per_proc != pytest.approx(seed_rate)


# ---------------------------------------------------------------------------
# standalone/session parity for kernel options (satellite)
# ---------------------------------------------------------------------------

class TestKernelOptionParity:
    """The new kernel options must behave identically through the
    standalone entry point and the session veneer (carried-over ROADMAP
    parity debt)."""

    def test_sublinear_tail_kwarg_flows_through_both_entry_points(
            self, small_portfolio_workload, risk_session):
        wl = small_portfolio_workload
        standalone = AggregateAnalysis(wl.portfolio, wl.yet)
        res_sa = standalone.run("vectorized", sublinear_tail=False)
        assert res_sa.details["sublinear_tail"] is False
        session = risk_session(wl.yet, wl.portfolio)
        res_se = session.aggregate(engine="vectorized", sublinear_tail=False)
        assert res_se.details["sublinear_tail"] is False
        res_default = standalone.run("vectorized")
        assert res_default.details["sublinear_tail"] is True
        np.testing.assert_allclose(res_sa.portfolio_ylt.losses,
                                   res_se.portfolio_ylt.losses)
        np.testing.assert_allclose(res_sa.portfolio_ylt.losses,
                                   res_default.portfolio_ylt.losses,
                                   rtol=1e-9, atol=1e-6)

    def test_run_all_matches_between_entry_points(
            self, small_portfolio_workload, risk_session):
        wl = small_portfolio_workload
        names = ["sequential", "vectorized", "device"]
        standalone = AggregateAnalysis(wl.portfolio, wl.yet).run_all(names)
        session = risk_session(wl.yet, wl.portfolio)
        via_session = session.run_all(names)
        assert set(standalone) == set(via_session) == set(names)
        for name in names:
            np.testing.assert_allclose(
                standalone[name].portfolio_ylt.losses,
                via_session[name].portfolio_ylt.losses,
            )


# ---------------------------------------------------------------------------
# boundary errors on the classic entry points (satellite)
# ---------------------------------------------------------------------------

class TestBoundaryErrors:
    def test_unknown_engine_name_in_run(self, tiny_workload):
        analysis = AggregateAnalysis(tiny_workload.portfolio,
                                     tiny_workload.yet)
        with pytest.raises(EngineError) as err:
            analysis.run("quantum")
        assert "available" in str(err.value)
        for name in ALL_ENGINES:
            assert name in str(err.value)

    def test_run_all_validates_names_before_running(self, tiny_workload):
        analysis = AggregateAnalysis(tiny_workload.portfolio,
                                     tiny_workload.yet)
        with pytest.raises(EngineError) as err:
            analysis.run_all(["vectorized", "quantum"])
        assert "available" in str(err.value)

    def test_session_surfaces_unknown_engine(self, tiny_workload,
                                             risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        with pytest.raises(EngineError) as err:
            session.aggregate(engine="quantum")
        assert "available" in str(err.value)

    def test_session_surfaces_unknown_dispatcher(self, tiny_workload,
                                                 risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        with pytest.raises(ConfigurationError, match="dispatcher"):
            session.dispatcher("warp-drive")

    def test_analysis_rejects_mismatched_session(self, tiny_workload,
                                                 small_portfolio_workload,
                                                 risk_session):
        session = risk_session(small_portfolio_workload.yet)
        with pytest.raises(EngineError, match="different YET"):
            AggregateAnalysis(tiny_workload.portfolio, tiny_workload.yet,
                              session=session)


# ---------------------------------------------------------------------------
# entry points as veneers over a session
# ---------------------------------------------------------------------------

class TestVeneers:
    def test_engine_instances_are_not_closed_by_session(self, tiny_workload,
                                                        risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        mine = VectorizedEngine()
        res = session.aggregate(engine=mine)
        assert res.engine == "vectorized"
        assert session.engine(mine) is mine

    def test_session_engines_are_cached_and_warm(self, tiny_workload,
                                                 risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        assert session.engine("vectorized") is session.engine("vectorized")
        assert isinstance(session.engine("vectorized"), Engine)

    def test_engine_cache_keys_on_configuration(self, tiny_workload,
                                                risk_session):
        """Same (name, kwargs) -> same warm engine; different kwargs ->
        different engine — never a silently mis-configured cache hit."""
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        default = session.engine("vectorized")
        sparse = session.engine("vectorized", dense_max_entries=1)
        assert sparse is not default
        assert sparse.dense_max_entries == 1
        assert session.engine("vectorized", dense_max_entries=1) is sparse

    def test_kwarg_engines_do_not_accumulate_pools(self, tiny_workload,
                                                   risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        analysis = AggregateAnalysis(tiny_workload.portfolio,
                                     tiny_workload.yet, session=session)
        for _ in range(3):
            analysis.run("multicore", n_workers=2)
        live = [e for e in session._engines.values()
                if getattr(e, "name", "") == "multicore"]
        assert len(live) == 1
        assert not session._extra_engines

    def test_instance_plus_kwargs_rejected(self, tiny_workload,
                                           risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        with pytest.raises(EngineError, match="engine_kwargs"):
            session.aggregate(engine=VectorizedEngine(), n_workers=2)

    def test_service_rejects_mismatched_session_yet(self, tiny_workload,
                                                    small_portfolio_workload,
                                                    risk_session):
        from repro.dfa.pricing import RealTimePricer
        from repro.serve.service import PricingService

        session = risk_session(small_portfolio_workload.yet)
        with pytest.raises(ConfigurationError, match="different YET"):
            PricingService(tiny_workload.yet, session=session)
        with pytest.raises(ConfigurationError, match="different YET"):
            RealTimePricer(tiny_workload.yet, session=session)

    def test_sensitivities_reject_mismatched_session_yet(
            self, tiny_workload, small_portfolio_workload, risk_session):
        from repro.analytics.sensitivity import term_sensitivities
        from repro.errors import AnalysisError

        session = risk_session(small_portfolio_workload.yet)
        with pytest.raises(AnalysisError, match="different YET"):
            term_sensitivities(tiny_workload.portfolio.layers[0],
                               tiny_workload.yet, session=session)

    def test_service_rejects_dispatcher_plus_session(self, tiny_workload,
                                                     risk_session):
        from repro.serve.dispatch import InlineDispatcher
        from repro.serve.service import PricingService

        session = risk_session(tiny_workload.yet)
        with pytest.raises(ConfigurationError, match="not both"):
            PricingService(tiny_workload.yet, engine=InlineDispatcher(),
                           session=session)

    def test_pricer_engine_auto(self, tiny_workload):
        from repro.dfa.pricing import RealTimePricer

        with RealTimePricer(tiny_workload.yet, engine="auto") as pricer:
            assert pricer.quote(tiny_workload.portfolio.layers[0]).premium > 0

    def test_pricer_shares_a_session_substrate(self, tiny_workload,
                                               risk_session):
        from repro.dfa.pricing import RealTimePricer

        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        with RealTimePricer(tiny_workload.yet, session=session) as pricer:
            quote = pricer.quote(tiny_workload.portfolio.layers[0])
            assert quote.premium > 0
        # pricer close must not have torn down the shared session
        assert not session.closed
        session.aggregate(engine="vectorized")

    def test_standalone_service_owns_and_closes_a_session(self,
                                                          tiny_workload):
        from repro.serve.service import PricingService

        svc = PricingService(tiny_workload.yet)
        assert svc._owned_session is not None
        svc.quote(tiny_workload.portfolio.layers[0])
        svc.close()
        assert svc._owned_session.closed

    def test_service_engine_auto_resolves_via_planner(self, tiny_workload,
                                                      risk_session):
        session = risk_session(tiny_workload.yet, tiny_workload.portfolio)
        svc = session.pricing_service(engine="auto")
        quote = svc.quote(tiny_workload.portfolio.layers[0])
        assert quote.premium > 0
