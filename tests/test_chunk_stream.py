"""Tests for chunk planning and streaming scans."""

import numpy as np
import pytest

from repro.data.chunk import iter_chunks, plan_chunks, rows_for_budget
from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.data.stream import TableScan
from repro.errors import AnalysisError, ConfigurationError

S = Schema([("k", np.int64), ("v", np.float64)])


def make(n):
    return ColumnTable.from_arrays(
        S, k=np.arange(n) % 7, v=np.arange(n, dtype=np.float64)
    )


class TestPlanChunks:
    def test_exact_cover_no_overlap(self):
        specs = plan_chunks(10, 3)
        assert [(s.start, s.stop) for s in specs] == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert sum(s.n_rows for s in specs) == 10

    def test_empty(self):
        assert plan_chunks(0, 5) == []

    def test_single_chunk(self):
        specs = plan_chunks(3, 100)
        assert len(specs) == 1 and specs[0].n_rows == 3

    @pytest.mark.parametrize("bad_rows", [0, -1])
    def test_bad_chunk_size_rejected(self, bad_rows):
        with pytest.raises(ConfigurationError):
            plan_chunks(10, bad_rows)

    def test_negative_n_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_chunks(-1, 5)


class TestRowsForBudget:
    def test_floor_division(self):
        assert rows_for_budget(16, 100) == 6

    def test_too_small_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            rows_for_budget(16, 8)


class TestIterChunks:
    def test_chunks_are_views_covering_table(self):
        t = make(10)
        seen = 0
        for spec, chunk in iter_chunks(t, 4):
            assert chunk.n_rows == spec.n_rows
            seen += chunk.n_rows
        assert seen == 10


class TestTableScan:
    def test_sum_matches_direct(self):
        t = make(1000)
        assert TableScan(t, rows_per_chunk=64).sum("v") == pytest.approx(t["v"].sum())

    def test_filter_then_sum(self):
        t = make(100)
        got = TableScan(t, rows_per_chunk=7).filter(lambda c: c["k"] == 0).sum("v")
        expect = t["v"][t["k"] == 0].sum()
        assert got == pytest.approx(expect)

    def test_map_stage(self):
        t = make(50)
        scan = TableScan(t, rows_per_chunk=8).map(
            lambda c: ColumnTable.from_arrays(S, k=c["k"], v=c["v"] * 2.0)
        )
        assert scan.sum("v") == pytest.approx(2.0 * t["v"].sum())

    def test_stats_recorded(self):
        t = make(100)
        scan = TableScan(t, rows_per_chunk=30)
        scan.sum("v")
        assert scan.stats.chunks_read == 4
        assert scan.stats.rows_read == 100
        assert scan.stats.bytes_read == t.nbytes

    def test_groupby_sum_matches_table(self):
        t = make(500)
        streamed = TableScan(t, rows_per_chunk=37).groupby_sum("k", "v")
        direct = t.groupby_sum("k", "v")
        assert streamed.sort_by("k").equals(direct.sort_by("k"), rtol=1e-12)

    def test_groupby_on_empty_scan_rejected(self):
        t = make(10)
        scan = TableScan(t).filter(lambda c: c["k"] > 100)
        with pytest.raises(AnalysisError):
            scan.groupby_sum("k", "v")

    def test_collect_roundtrip(self):
        t = make(64)
        assert TableScan(t, rows_per_chunk=10).collect().equals(t)

    def test_collect_empty_result_keeps_schema(self):
        t = make(10)
        out = TableScan(t).filter(lambda c: c["k"] > 100).collect()
        assert out.n_rows == 0
        assert out.schema == t.schema

    def test_reduce_fold(self):
        t = make(100)
        count = TableScan(t, rows_per_chunk=9).reduce(
            lambda acc, chunk: acc + chunk.n_rows, 0
        )
        assert count == 100
