"""Tests for the library configuration bundle."""

import pytest

from repro.config import DEFAULTS, ReproConfig


class TestReproConfig:
    def test_defaults_are_fermi_class(self):
        assert DEFAULTS.device_global_mem_bytes == 3 * 1024**3
        assert DEFAULTS.device_shared_mem_bytes == 48 * 1024
        assert DEFAULTS.device_constant_mem_bytes == 64 * 1024

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULTS.default_seed = 1  # type: ignore[misc]

    def test_with_copies(self):
        custom = DEFAULTS.with_(device_num_sms=4)
        assert custom.device_num_sms == 4
        assert DEFAULTS.device_num_sms == 14  # original untouched
        assert isinstance(custom, ReproConfig)

    def test_device_properties_from_config(self):
        from repro.hpc.device import DeviceProperties

        custom = DEFAULTS.with_(device_global_mem_bytes=1024)
        props = DeviceProperties.from_config(custom)
        assert props.global_mem_bytes == 1024
        assert props.shared_mem_per_block_bytes == 48 * 1024
