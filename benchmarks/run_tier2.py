"""Tier-2 perf entry point: run the fused-vs-per-layer bench, write JSON.

Usage::

    PYTHONPATH=src python benchmarks/run_tier2.py [--full] [--out PATH]

The default (small) sizes finish in a few seconds so every PR can
refresh ``BENCH_e13.json`` and compare against the committed trajectory;
``--full`` runs the paper-shaped sizes from ``bench_e13_fused_portfolio``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_e13_fused_portfolio import LAYER_COUNTS, measure, write_json

#: Reduced shape for the per-PR tier-2 run: same layer counts, ~8x fewer
#: occurrences, so the trajectory stays comparable but cheap.
SMALL_SHAPE = dict(
    n_trials=500,
    mean_events_per_trial=120.0,
    elts_per_layer=2,
    elt_rows=1_000,
    catalog_events=8_000,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the full (default-shape) sizes")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path (default: repo-root BENCH_e13.json)")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    shape = {} if args.full else SMALL_SHAPE
    record = measure(layer_counts=LAYER_COUNTS, repeats=args.repeats, **shape)
    record["tier"] = "full" if args.full else "small"
    path = write_json(record, args.out)

    print(f"wrote {path}")
    print(f"{'L':>4} {'per-layer':>12} {'fused':>12} {'speedup':>8}")
    for r in record["rows"]:
        print(f"{r['n_layers']:>4} {r['per_layer_seconds']*1e3:>10.1f}ms "
              f"{r['fused_seconds']*1e3:>10.1f}ms {r['speedup']:>7.2f}x")

    at16 = next(r for r in record["rows"] if r["n_layers"] == 16)
    if at16["speedup"] < 2.0:
        print(f"WARNING: speedup at L=16 is {at16['speedup']:.2f}x (bar: 2x)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
