"""Tier-2 perf entry point: run the trajectory benches, write JSON.

Usage::

    PYTHONPATH=src python benchmarks/run_tier2.py [--full] [--out-dir DIR]
                                                  [--only {e13,...,e19}]

Seven trajectory records are refreshed:

- ``BENCH_e13.json`` — the fused portfolio kernel vs the per-layer path;
- ``BENCH_e14.json`` — the serving layer's micro-batched pricing vs one
  sweep per request;
- ``BENCH_e15.json`` — the zero-copy shared-memory data plane vs the
  pickle ship on the pooled dispatch path;
- ``BENCH_e16.json`` — one staged ``RiskSession`` vs per-call entry-point
  construction across a mixed aggregate + quote + EP-curve workload;
- ``BENCH_e17.json`` — fault-recovery latency (one injected worker kill
  mid-batch) and degraded-mode throughput, answers bit-identical;
- ``BENCH_e18.json`` — sublinear tail-group pricing vs the lane path
  (lanes/s vs L over one shared book) and the device engine's
  uploads-per-sweep table (one stacked upload per batch vs L);
- ``BENCH_e19.json`` — open-loop saturation curves for the serving
  layer (offered vs served rate, latency percentiles, shed rate, queue
  depth at fractions and multiples of calibrated capacity), with every
  metric read from the public telemetry plane.

The default (small) sizes finish in seconds so every PR can refresh the
trajectory and compare against the committed records; ``--full`` runs
the paper-shaped sizes from the bench modules.  ``--only`` (repeatable)
restricts the run to named experiments.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_e13_fused_portfolio as e13
import bench_e14_serving as e14
import bench_e15_shm_data_plane as e15
import bench_e16_session_reuse as e16
import bench_e17_fault_recovery as e17
import bench_e18_sublinear_tail as e18
import bench_e19_open_loop as e19

#: Reduced shape for the per-PR tier-2 run: same layer counts, ~8x fewer
#: occurrences, so the trajectory stays comparable but cheap.
SMALL_SHAPE_E13 = dict(
    n_trials=500,
    mean_events_per_trial=120.0,
    elts_per_layer=2,
    elt_rows=1_000,
    catalog_events=8_000,
)

#: Same idea for the serving bench: a shorter YET, identical burst
#: sizes.  Kept above ~200k occurrences — serving is the regime where
#: the sweep dominates a quote; shrink it further and the fixed
#: per-quote metric costs (TVaR, stats) swamp what is being measured.
SMALL_SHAPE_E14 = dict(
    n_trials=1_000,
    mean_events_per_trial=200.0,
    elt_rows=1_000,
    catalog_events=8_000,
)

#: The tail-group bench needs the same serving regime as e14 — enough
#: occurrences that the sweep dominates, a sorted multi-event YET so
#: the sublinear path engages.  Identical lane counts to the full run.
SMALL_SHAPE_E18 = dict(
    n_trials=1_000,
    mean_events_per_trial=150.0,
    elt_rows=1_000,
    catalog_events=8_000,
)


def run_e13(full: bool, out_dir: Path | None, repeats: int) -> int:
    shape = {} if full else SMALL_SHAPE_E13
    record = e13.measure(layer_counts=e13.LAYER_COUNTS, repeats=repeats, **shape)
    record["tier"] = "full" if full else "small"
    path = e13.write_json(
        record, out_dir / "BENCH_e13.json" if out_dir else None
    )

    print(f"wrote {path}")
    print(f"{'L':>4} {'per-layer':>12} {'fused':>12} {'speedup':>8}")
    for r in record["rows"]:
        print(f"{r['n_layers']:>4} {r['per_layer_seconds']*1e3:>10.1f}ms "
              f"{r['fused_seconds']*1e3:>10.1f}ms {r['speedup']:>7.2f}x")

    at16 = next(r for r in record["rows"] if r["n_layers"] == 16)
    if at16["speedup"] < 2.0:
        print(f"WARNING: e13 speedup at L=16 is {at16['speedup']:.2f}x (bar: 2x)",
              file=sys.stderr)
        return 1
    return 0


def run_e14(full: bool, out_dir: Path | None, repeats: int) -> int:
    shape = {} if full else SMALL_SHAPE_E14
    record = e14.measure(request_counts=e14.REQUEST_COUNTS, repeats=repeats,
                         **shape)
    record["tier"] = "full" if full else "small"
    path = e14.write_json(
        record, out_dir / "BENCH_e14.json" if out_dir else None
    )

    print(f"wrote {path}")
    print(f"{'reqs':>5} {'baseline':>11} {'batched':>11} {'gain':>7} "
          f"{'batch p95':>10} {'sweeps':>7}")
    for r in record["rows"]:
        print(f"{r['n_requests']:>5} {r['baseline_seconds']*1e3:>9.1f}ms "
              f"{r['batched_seconds']*1e3:>9.1f}ms "
              f"{r['throughput_gain']:>6.2f}x "
              f"{r['batched_p95_ms']:>8.1f}ms {r['sweeps']:>7}")

    at32 = next(r for r in record["rows"] if r["n_requests"] == 32)
    if at32["throughput_gain"] < 3.0:
        print(f"WARNING: e14 gain at 32 requests is "
              f"{at32['throughput_gain']:.2f}x (bar: 3x)", file=sys.stderr)
        return 1
    return 0


def run_e15(full: bool, out_dir: Path | None, repeats: int) -> int:
    sizes = ("small", "medium", "large") if full else ("small", "medium")
    record = e15.measure(ship_sizes=sizes, batch_sizes=sizes,
                         n_batches=max(2 * repeats, 4), ship_repeats=repeats)
    record["tier"] = "full" if full else "small"
    path = e15.write_json(
        record, out_dir / "BENCH_e15.json" if out_dir else None
    )

    print(f"wrote {path}")
    if not record["shm_available"]:
        print("WARNING: shared memory unavailable; e15 recorded no rows",
              file=sys.stderr)
        return 0
    print(f"{'size':>7} {'kern MB':>8} {'pickle batch':>13} {'shm batch':>12} "
          f"{'speedup':>8} {'reships':>8}")
    for r in record["batch_rows"]:
        print(f"{r['size']:>7} {r['kernel_mb']:>8.1f} "
              f"{r['pickle_batch_seconds']*1e3:>11.1f}ms "
              f"{r['shm_batch_seconds']*1e3:>10.1f}ms "
              f"{r['batch_speedup']:>7.2f}x {r['reships_on_repeat']:>8}")

    medium = next(r for r in record["batch_rows"] if r["size"] == "medium")
    status = 0
    if medium["batch_speedup"] < 2.0:
        print(f"WARNING: e15 batch speedup at the medium shape is "
              f"{medium['batch_speedup']:.2f}x (bar: 2x)", file=sys.stderr)
        status = 1
    if any(r["reships_on_repeat"] != 0 for r in record["batch_rows"]):
        print("WARNING: e15 observed payload re-ships on an unchanged YET",
              file=sys.stderr)
        status = 1
    return status


def run_e16(full: bool, out_dir: Path | None, repeats: int) -> int:
    sizes = ("small", "medium", "large") if full else ("small", "medium")
    record = e16.measure(sizes=sizes, repeats=repeats)
    record["tier"] = "full" if full else "small"
    path = e16.write_json(
        record, out_dir / "BENCH_e16.json" if out_dir else None
    )

    print(f"wrote {path}")
    print(f"{'size':>7} {'per-call':>11} {'session':>11} {'speedup':>8} "
          f"{'ships':>6}")
    for r in record["rows"]:
        print(f"{r['size']:>7} {r['baseline_seconds']*1e3:>9.1f}ms "
              f"{r['session_seconds']*1e3:>9.1f}ms "
              f"{r['speedup']:>7.2f}x {r['session_payload_ships']:>6}")

    medium = next(r for r in record["rows"] if r["size"] == "medium")
    status = 0
    if medium["speedup"] < 2.0:
        print(f"WARNING: e16 session-reuse speedup at the medium shape is "
              f"{medium['speedup']:.2f}x (bar: 2x)", file=sys.stderr)
        status = 1
    if any(r["session_payload_ships"] > 1 for r in record["rows"]):
        print("WARNING: e16 observed more than one payload ship through a "
              "staged session", file=sys.stderr)
        status = 1
    return status


def run_e17(full: bool, out_dir: Path | None, repeats: int) -> int:
    sizes = ("small", "medium", "large") if full else ("small", "medium")
    record = e17.measure(sizes=sizes, repeats=repeats)
    record["tier"] = "full" if full else "small"
    path = e17.write_json(
        record, out_dir / "BENCH_e17.json" if out_dir else None
    )

    print(f"wrote {path}")
    print(f"{'size':>7} {'clean':>10} {'faulted':>10} {'recovery':>10} "
          f"{'degraded':>10} {'slowdown':>9} {'deaths':>7}")
    for r in record["rows"]:
        print(f"{r['size']:>7} {r['clean_seconds']*1e3:>8.1f}ms "
              f"{r['faulted_seconds']*1e3:>8.1f}ms "
              f"{r['recovery_overhead_seconds']*1e3:>8.1f}ms "
              f"{r['degraded_seconds']*1e3:>8.1f}ms "
              f"{r['degraded_slowdown']:>8.2f}x {r['worker_deaths']:>7}")

    status = 0
    for r in record["rows"]:
        if not r["bit_identical_after_recovery"]:
            print(f"WARNING: e17 {r['size']} recovery changed answers",
                  file=sys.stderr)
            status = 1
        if not r["bit_identical_degraded"]:
            print(f"WARNING: e17 {r['size']} degraded fallback changed "
                  "answers", file=sys.stderr)
            status = 1
        if r["worker_deaths"] < 1:
            print(f"WARNING: e17 {r['size']} injected kill never fired",
                  file=sys.stderr)
            status = 1
    return status


def run_e18(full: bool, out_dir: Path | None, repeats: int) -> int:
    shape = {} if full else SMALL_SHAPE_E18
    record = e18.measure(lane_counts=e18.LANE_COUNTS, repeats=repeats, **shape)
    record["tier"] = "full" if full else "small"
    path = e18.write_json(
        record, out_dir / "BENCH_e18.json" if out_dir else None
    )

    print(f"wrote {path}")
    print(f"{'L':>4} {'lane':>11} {'group':>11} {'speedup':>8} "
          f"{'group Ml/s':>11} {'max err':>9}")
    for r in record["rows"]:
        print(f"{r['n_layers']:>4} {r['lane_seconds']*1e3:>9.1f}ms "
              f"{r['group_seconds']*1e3:>9.1f}ms {r['speedup']:>7.2f}x "
              f"{r['group_lanes_per_s']/1e6:>10.1f} {r['max_abs_err']:>9.1e}")
    print(f"{'L':>4} {'batches':>8} {'stack ups':>10} {'vs per-layer':>13}")
    for r in record["device_rows"]:
        print(f"{r['n_layers']:>4} {r['n_batches']:>8} "
              f"{r['stack_uploads']:>10} "
              f"{r['per_layer_uploads_would_be']:>13}")

    status = 0
    at64 = next(r for r in record["rows"] if r["n_layers"] == 64)
    if at64["speedup"] < 2.0:
        print(f"WARNING: e18 sublinear speedup at L=64 is "
              f"{at64['speedup']:.2f}x (bar: 2x)", file=sys.stderr)
        status = 1
    for r in record["device_rows"]:
        if r["stack_uploads"] != r["n_batches"]:
            print(f"WARNING: e18 device L={r['n_layers']} shipped "
                  f"{r['stack_uploads']} stacked uploads over "
                  f"{r['n_batches']} batches (bar: exactly one per batch)",
                  file=sys.stderr)
            status = 1
    return status


#: Reduced shape for the open-loop saturation bench: a shorter YET and
#: shorter runs, still enough sweep cost that the knee sits at a rate
#: the single-threaded generator can offer multiples of.
SMALL_SHAPE_E19 = dict(
    n_trials=800,
    mean_events_per_trial=120.0,
    elt_rows=1_000,
    catalog_events=8_000,
)


def run_e19(full: bool, out_dir: Path | None, repeats: int) -> int:
    shape = {} if full else SMALL_SHAPE_E19
    duration = 2.0 if full else 1.0
    record = e19.measure(multiples=e19.RATE_MULTIPLES,
                         duration_seconds=duration, **shape)
    record["tier"] = "full" if full else "small"
    path = e19.write_json(
        record, out_dir / "BENCH_e19.json" if out_dir else None
    )

    print(f"wrote {path}")
    print(f"capacity {record['capacity_rps']:.0f} rps "
          f"(slo {record['slo_seconds']*1e3:.0f}ms)")
    print(f"{'run':>15} {'offered':>9} {'served':>8} {'shed':>6} "
          f"{'p95':>9} {'p99':>9} {'qmax':>6}")
    for r in record["rows"]:
        print(f"{r['name']:>15} {r['offered_rate']:>7.0f}/s "
              f"{r['served_rate']:>6.0f}/s {r['shed']:>6} "
              f"{r['p95_ms']:>7.1f}ms {r['p99_ms']:>7.1f}ms "
              f"{r['queue_depth_max']:>6.0f}")

    status = 0
    for r in record["rows"]:
        if r["mix"] == "quotes" and r["rate_multiple"] <= 0.5 and r["shed"]:
            print(f"WARNING: e19 {r['name']} shed {r['shed']} requests "
                  "below the knee (bar: zero shed)", file=sys.stderr)
            status = 1
    at2x = next(r for r in record["rows"] if r["name"] == "quotes@2x")
    if at2x["shed"] == 0 and at2x["served_rate"] >= 0.9 * at2x["achieved_offer_rate"]:
        print("WARNING: e19 showed no saturation at 2x capacity",
              file=sys.stderr)
        status = 1
    return status


#: Experiment registry for ``--only`` (insertion order = run order).
EXPERIMENTS = {"e13": run_e13, "e14": run_e14, "e15": run_e15,
               "e16": run_e16, "e17": run_e17, "e18": run_e18,
               "e19": run_e19}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the full (default-shape) sizes")
    parser.add_argument("--out-dir", type=Path, default=None,
                        help="output directory (default: repo root)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--only", action="append", choices=sorted(EXPERIMENTS),
                        default=None, metavar="EXP",
                        help="run only the named experiment(s); repeatable "
                             f"(choices: {', '.join(sorted(EXPERIMENTS))})")
    args = parser.parse_args(argv)

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
    selected = args.only or list(EXPERIMENTS)
    status = 0
    for i, name in enumerate(name for name in EXPERIMENTS if name in selected):
        if i:
            print()
        status |= EXPERIMENTS[name](args.full, args.out_dir, args.repeats)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
