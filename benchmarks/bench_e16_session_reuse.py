"""E16 — staged session reuse vs per-call entry-point construction.

The session layer's claim is the paper's thesis applied to the API: the
YET is simulated once, so a *mixed* workload — an aggregate run, a burst
of ad-hoc quotes, an EP curve — should pay binding, worker spawn, and
payload staging **once**, not once per entry point.  This experiment
measures exactly that delta on the pooled substrate:

- **per-call baseline**: each operation constructs its own entry point
  the way pre-session code did — a fresh
  :class:`~repro.core.simulation.AggregateAnalysis` run on the multicore
  engine, one fresh :class:`~repro.serve.service.PricingService` per
  quote, one more for the EP curve.  Every call re-pays pool spawn and
  YET shipment and tears everything down again.
- **staged session**: ONE :class:`~repro.session.RiskSession` runs the
  identical operations over its shared dispatcher; after the first
  iteration the pool is warm and ``payload_ships`` stays at 1.

Written to ``BENCH_e16.json`` via ``run_tier2.py [--only e16]``.  The
acceptance bar: **≥ 2x speedup at the medium shape**, and the session
path ships the YET payload at most once.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.bench.workloads import build_portfolio_workload
from repro.core.layer import Layer
from repro.core.simulation import AggregateAnalysis
from repro.serve.cache import CachePolicy
from repro.serve.dispatch import PooledDispatcher
from repro.serve.service import PricingService
from repro.session import RiskSession

N_WORKERS = 2

#: Quotes per mixed-workload iteration (the acceptance criterion's "≥8").
N_QUOTES = 8

#: Mixed-workload shapes.  The *medium* shape carries the acceptance bar
#: and is run identically in both tiers so the trajectory is comparable.
SHAPES = {
    "small": dict(n_layers=2, n_trials=400, mean_events_per_trial=60.0,
                  elts_per_layer=1, elt_rows=800, catalog_events=20_000),
    "medium": dict(n_layers=4, n_trials=1_000, mean_events_per_trial=120.0,
                   elts_per_layer=1, elt_rows=1_500, catalog_events=60_000),
    "large": dict(n_layers=8, n_trials=2_000, mean_events_per_trial=200.0,
                  elts_per_layer=1, elt_rows=2_000, catalog_events=120_000),
}


def _candidates(portfolio, n_quotes: int) -> list[Layer]:
    """Quote candidates: the book's first layer at rising attachments."""
    base = portfolio.layers[0]
    out = []
    for i in range(n_quotes):
        terms = dataclasses.replace(
            base.terms, occ_retention=base.terms.occ_retention * (1.0 + 0.15 * i)
        )
        out.append(Layer(10_000 + i, base.elts, terms, weights=base.weights))
    return out


def _run_per_call(portfolio, yet, candidates) -> None:
    """One mixed iteration, each operation through a fresh entry point.

    This is the pre-session idiom verbatim: every call builds its own
    pooled substrate (fresh worker pool, fresh YET shipment) and tears
    it down again before the next call.
    """
    AggregateAnalysis(portfolio, yet).run("multicore",
                                          n_workers=N_WORKERS)
    for layer in candidates:
        with PricingService(yet, engine=PooledDispatcher(n_workers=N_WORKERS),
                            cache=CachePolicy(0)) as svc:
            svc.quote(layer)
    with PricingService(yet, engine=PooledDispatcher(n_workers=N_WORKERS),
                        cache=CachePolicy(0)) as svc:
        svc.ep_curve(candidates[0])


def _run_session(session: RiskSession, svc, candidates) -> None:
    """One mixed iteration over the staged session."""
    session.aggregate(engine="multicore")
    for layer in candidates:
        svc.quote(layer)
    svc.ep_curve(candidates[0])


def measure_row(size: str, shape: dict, repeats: int = 3,
                n_quotes: int = N_QUOTES) -> dict:
    """Best-of-``repeats`` mixed-workload wall time, both ways.

    Best-of is deliberate for both sides: the baseline re-pays its
    staging inside *every* iteration (that is what per-call construction
    means), while the session's first iteration warms the pool and later
    ones show the staged steady state.
    """
    wl = build_portfolio_workload(seed=16, **shape)
    candidates = _candidates(wl.portfolio, n_quotes)

    baseline_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _run_per_call(wl.portfolio, wl.yet, candidates)
        baseline_best = min(baseline_best, time.perf_counter() - t0)

    session_best = float("inf")
    with RiskSession(wl.yet, wl.portfolio, n_workers=N_WORKERS) as session:
        svc = session.pricing_service(engine="pooled", cache=CachePolicy(0))
        for _ in range(repeats):
            t0 = time.perf_counter()
            _run_session(session, svc, candidates)
            session_best = min(session_best, time.perf_counter() - t0)
        payload_ships = session.payload_ships

    return {
        "size": size,
        "n_layers": shape["n_layers"],
        "n_trials": shape["n_trials"],
        "n_occurrences": wl.yet.n_occurrences,
        "n_quotes": n_quotes,
        "baseline_seconds": baseline_best,
        "session_seconds": session_best,
        "speedup": baseline_best / session_best if session_best > 0 else 0.0,
        "session_payload_ships": payload_ships,
        "baseline_constructions": 2 + n_quotes,
    }


def measure(sizes=("small", "medium"), repeats: int = 3,
            n_quotes: int = N_QUOTES) -> dict:
    rows = [measure_row(size, SHAPES[size], repeats=repeats,
                        n_quotes=n_quotes)
            for size in sizes]
    return {
        "experiment": "e16_session_reuse",
        "n_workers": N_WORKERS,
        "repeats": repeats,
        "rows": rows,
    }


def write_json(record: dict, path: Path | None = None) -> Path:
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_e16.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":
    record = measure()
    out = write_json(record)
    print(f"wrote {out}")
    for r in record["rows"]:
        print(f"{r['size']:>7}: per-call {r['baseline_seconds']:.2f}s, "
              f"session {r['session_seconds']:.2f}s "
              f"({r['speedup']:.2f}x), ships {r['session_payload_ships']}")
