"""E13 — fused portfolio sweep vs the per-layer path.

The fused :class:`~repro.core.kernels.PortfolioKernel` replaces L
per-layer passes over the YET (L gathers, L ``bincount`` reductions)
with one blocked sweep whose trial-boundary decode and occurrence-block
traffic are shared across layers.  This bench measures both paths on the
same portfolio across layer counts L ∈ {1, 4, 16, 64} and emits a JSON
record (see ``run_tier2.py``) so the perf trajectory is tracked PR over
PR.  The acceptance bar of the fusion work: ≥ 2x throughput at L = 16.

``run_per_layer`` below *is* the pre-fusion ``VectorizedEngine`` body,
kept here as the measured baseline (the engines themselves now all run
the fused kernel).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.workloads import build_portfolio_workload
from repro.core.engines import SequentialEngine
from repro.core.kernels import PortfolioKernel

LAYER_COUNTS = (1, 4, 16, 64)

#: The default workload shape: ~500k occurrences over a catalogue whose
#: dense tables are big enough to spill L2 when walked per layer.
DEFAULT_SHAPE = dict(
    n_trials=2_000,
    mean_events_per_trial=250.0,
    elts_per_layer=2,
    elt_rows=2_000,
    catalog_events=20_000,
    seed=7,
)


def run_per_layer(portfolio, yet, dense_max_entries: int = 4_000_000) -> dict:
    """The per-layer reference path (the pre-fusion vectorized engine)."""
    trials, event_ids, n_trials = yet.trials, yet.event_ids, yet.n_trials
    out = {}
    for layer in portfolio:
        lookup = layer.lookup(dense_max_entries=dense_max_entries)
        losses = lookup(event_ids)
        retained = layer.terms.apply_occurrence(losses)
        annual = np.bincount(trials, weights=retained, minlength=n_trials)
        out[layer.layer_id] = layer.terms.apply_aggregate(annual)
    return out


def run_fused(kernel: PortfolioKernel, yet) -> np.ndarray:
    return kernel.run(yet.trials, yet.event_ids, yet.n_trials)


def _time(fn, repeats: int) -> float:
    fn()  # warm caches and the kernel/lookup builds
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(layer_counts=LAYER_COUNTS, repeats: int = 3,
            **shape) -> dict:
    """Run both paths across layer counts; returns the JSON-able record.

    Throughput is layer-occurrences per second (`L × n_occurrences / s`),
    the unit the paper's ~10⁹-lookups accounting is written in.
    """
    shape = {**DEFAULT_SHAPE, **shape}
    rows = []
    for n_layers in layer_counts:
        wl = build_portfolio_workload(n_layers=n_layers, **shape)
        kernel = wl.portfolio.kernel()
        yet = wl.yet

        # Parity before timing: a wrong fast path is not a fast path.
        fused = run_fused(kernel, yet)
        per_layer = run_per_layer(wl.portfolio, yet)
        for row, lid in enumerate(kernel.layer_ids):
            np.testing.assert_allclose(fused[row], per_layer[lid],
                                       rtol=1e-9, atol=1e-6)

        t_pl = _time(lambda: run_per_layer(wl.portfolio, yet), repeats)
        t_f = _time(lambda: run_fused(kernel, yet), repeats)
        lanes = n_layers * yet.n_occurrences
        rows.append({
            "n_layers": n_layers,
            "n_occurrences": yet.n_occurrences,
            "per_layer_seconds": t_pl,
            "fused_seconds": t_f,
            "per_layer_lanes_per_s": lanes / t_pl,
            "fused_lanes_per_s": lanes / t_f,
            "speedup": t_pl / t_f,
        })
    return {"experiment": "e13_fused_portfolio", "shape": shape,
            "repeats": repeats, "rows": rows}


def write_json(record: dict, path: str | Path | None = None) -> Path:
    """Write the bench record next to the repo root (the trajectory file)."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_e13.json"
    path = Path(path)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path


# -- pytest entry points ----------------------------------------------------

@pytest.fixture(scope="module")
def record():
    return measure()


def test_fused_matches_oracle():
    """The timed path is the shipped path: check it against the scalar
    oracle once at a sequential-feasible size."""
    wl = build_portfolio_workload(n_layers=4, **{**DEFAULT_SHAPE,
                                                 "n_trials": 100,
                                                 "mean_events_per_trial": 50.0})
    kernel = wl.portfolio.kernel()
    fused = run_fused(kernel, wl.yet)
    oracle = SequentialEngine().run(wl.portfolio, wl.yet)
    for row, lid in enumerate(kernel.layer_ids):
        np.testing.assert_allclose(fused[row], oracle.ylt_by_layer[lid].losses,
                                   rtol=1e-9, atol=1e-6)


def test_fused_speedup_at_16_layers(record):
    """The acceptance bar: ≥ 2x over the per-layer path at L = 16."""
    row = next(r for r in record["rows"] if r["n_layers"] == 16)
    assert row["speedup"] >= 2.0, (
        f"fused sweep was only {row['speedup']:.2f}x the per-layer path at "
        "L=16 (bar is 2x)"
    )


def test_report(record):
    """Emit the table and the JSON trajectory file."""
    write_json(record)
    print()
    print(f"{'L':>4} {'occurrences':>12} {'per-layer':>12} {'fused':>12} {'speedup':>8}")
    for r in record["rows"]:
        print(f"{r['n_layers']:>4} {r['n_occurrences']:>12,} "
              f"{r['per_layer_seconds']*1e3:>10.1f}ms "
              f"{r['fused_seconds']*1e3:>10.1f}ms "
              f"{r['speedup']:>7.2f}x")
