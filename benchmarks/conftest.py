"""Shared benchmark fixtures.

Workloads are session-scoped: generation cost (YET simulation) must not
pollute the timed regions, which measure only the analysis itself.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    build_layer_workload,
    companion_study_workload,
    typical_contract_workload,
)


@pytest.fixture(scope="session")
def study_2k():
    """Companion-study layer at 2k trials (sequential-feasible)."""
    return companion_study_workload(n_trials=2_000)


@pytest.fixture(scope="session")
def study_20k():
    """Companion-study layer at 20k trials (vector engines)."""
    return companion_study_workload(n_trials=20_000)


@pytest.fixture(scope="session")
def contract_50k():
    """§II 'typical contract' at 50k trials."""
    return typical_contract_workload(n_trials=50_000)


@pytest.fixture(scope="session")
def small_lookup_20k():
    """Workload whose dense lookup fits constant memory (E5)."""
    return build_layer_workload(
        n_trials=20_000, mean_events_per_trial=1000.0, n_elts=4,
        elt_rows=2_000, catalog_events=6_000, seed=13,
    )
