"""E11 — scaling ablations (the companion study's evaluation shapes).

[7] reports runtime scaling with trial count, events per trial, and
ELTs per layer.  The parametrised benchmarks regenerate the series; the
linearity in events/trial (the occurrence-stream length) is the shape
that matters, and the merged-lookup design makes ELT count nearly free.
"""

import pytest

from repro.bench.workloads import build_layer_workload
from repro.core.simulation import AggregateAnalysis


@pytest.mark.parametrize("events_per_trial", [250, 500, 1000, 2000])
def test_events_per_trial_sweep(benchmark, events_per_trial):
    wl = build_layer_workload(
        n_trials=10_000, mean_events_per_trial=float(events_per_trial),
        n_elts=4, elt_rows=8_000, catalog_events=50_000, seed=31,
    )
    analysis = AggregateAnalysis(wl.portfolio, wl.yet)
    res = benchmark(lambda: analysis.run("vectorized"))
    assert res.portfolio_ylt.n_trials == 10_000


@pytest.mark.parametrize("n_elts", [1, 4, 8, 16])
def test_elts_per_layer_sweep(benchmark, n_elts):
    wl = build_layer_workload(
        n_trials=10_000, mean_events_per_trial=1000.0,
        n_elts=n_elts, elt_rows=8_000, catalog_events=50_000, seed=31,
    )
    analysis = AggregateAnalysis(wl.portfolio, wl.yet)
    res = benchmark(lambda: analysis.run("vectorized"))
    assert res.portfolio_ylt.n_trials == 10_000


@pytest.mark.parametrize("n_trials", [2_500, 5_000, 10_000, 20_000])
def test_trial_count_sweep(benchmark, n_trials):
    wl = build_layer_workload(
        n_trials=n_trials, mean_events_per_trial=1000.0,
        n_elts=4, elt_rows=8_000, catalog_events=50_000, seed=31,
    )
    analysis = AggregateAnalysis(wl.portfolio, wl.yet)
    res = benchmark(lambda: analysis.run("vectorized"))
    assert res.portfolio_ylt.n_trials == n_trials
