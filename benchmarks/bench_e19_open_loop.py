"""E19 — open-loop saturation curves for the serving layer.

Every serving number so far (E14's throughput gain, E9's burst
elasticity) came from closed-loop drivers, which by construction cannot
show where the service *breaks*: the client waits for the server, so the
offered rate sags exactly when the served rate does.  This bench drives
:class:`~repro.serve.PricingService` with the open-loop generator in
:mod:`loadgen` — arrivals on a fixed wall-clock schedule, shed requests
counted rather than retried — and traces the classic saturation curve:

- below the knee, served rate tracks offered rate, shed rate is zero,
  and latency sits at the batching window;
- past the knee, served rate flattens at capacity, queues build, and
  SLO admission control starts shedding.

The run table crosses workload mix (distinct quotes / hot cache set /
mixed metrics) with offered rate (fractions and multiples of a
calibrated closed-loop capacity) and dispatch engine.  **Every reported
metric is read from the public telemetry plane** — the snapshot and
Prometheus export built in the observability PR — never from private
service fields; each run also asserts ``to_prometheus_text()``
round-trips the exact sample values.  Results go to ``BENCH_e19.json``
via ``run_tier2.py --only e19``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from loadgen import (     # noqa: E402  (needs BENCH_DIR on the path)
    RunSpec,
    build_layers,
    calibrate_capacity,
    run_open_loop,
)

#: Offered-rate multiples of calibrated capacity.  0.25/0.5 sit safely
#: below the knee (the zero-shed bar), 1.0 rides it, 2.0 is past it.
RATE_MULTIPLES = (0.25, 0.5, 1.0, 2.0)

#: Workload shape: the sweep has to cost enough that capacity lands in
#: the hundreds of requests/second — a range an open loop paced with
#: ``time.sleep`` can actually offer 2x of from one thread.
DEFAULT_SHAPE = dict(
    n_trials=2_000,
    mean_events_per_trial=250.0,
    n_elts=2,
    elt_rows=2_000,
    catalog_events=20_000,
)

#: SLO for admission control.  Far above the batching window (so the
#: modelled queue wait below the knee never trips it) and far below the
#: backlog a 2x-capacity run builds within its first half second.
SLO_SECONDS = 0.25

N_DISTINCT_LAYERS = 256


def measure(
    multiples=RATE_MULTIPLES,
    duration_seconds: float = 2.0,
    seed: int = 7,
    **shape,
) -> dict:
    """Run the saturation sweep plus mix/engine factor cells."""
    shape = {**DEFAULT_SHAPE, **shape}
    yet, layers = build_layers(N_DISTINCT_LAYERS, seed=seed, **shape)
    capacity = calibrate_capacity(yet, layers)

    specs = [
        RunSpec(name=f"quotes@{mult:g}x", mix="quotes",
                rate=capacity * mult, engine="inline",
                duration_seconds=duration_seconds, seed=seed)
        for mult in multiples
    ]
    # Factor cells off the main curve: cache-heavy and mixed-metric
    # traffic at a comfortably sub-knee rate.
    factor_mult = min(0.5, min(multiples))
    specs.append(RunSpec(name="hot@sub-knee", mix="hot",
                         rate=capacity * factor_mult, engine="inline",
                         duration_seconds=duration_seconds, seed=seed))
    specs.append(RunSpec(name="mixed@sub-knee", mix="mixed",
                         rate=capacity * factor_mult, engine="inline",
                         duration_seconds=duration_seconds, seed=seed))

    rows = []
    for spec, mult in zip(specs, list(multiples) + [factor_mult] * 2):
        # The quotes curve runs cache-off so every request costs a sweep
        # (the saturation regime); the factor cells keep the cache on.
        cache_entries = 0 if spec.mix == "quotes" else 4096
        row = run_open_loop(spec, yet, layers, slo_seconds=SLO_SECONDS,
                            cache_entries=cache_entries)
        row["rate_multiple"] = mult
        rows.append(row)
    return {
        "experiment": "e19_open_loop",
        "shape": shape,
        "capacity_rps": capacity,
        "slo_seconds": SLO_SECONDS,
        "duration_seconds": duration_seconds,
        "rows": rows,
    }


def write_json(record: dict, path: str | Path | None = None) -> Path:
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_e19.json"
    path = Path(path)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path


# -- pytest entry points ----------------------------------------------------

@pytest.fixture(scope="module")
def record():
    return measure()


@pytest.mark.loadtest
def test_zero_shed_below_the_knee(record):
    """SLO admission must not fire while the service keeps up."""
    below = [r for r in record["rows"]
             if r["mix"] == "quotes" and r["rate_multiple"] <= 0.5]
    assert below, "run table lost its sub-knee cells"
    for row in below:
        assert row["shed"] == 0, (
            f"{row['name']} shed {row['shed']} of {row['offered']} at "
            f"{row['offered_rate']:.0f} rps — below the knee"
        )


@pytest.mark.loadtest
def test_saturation_past_the_knee(record):
    """At 2x capacity the service must visibly saturate: either shed
    via admission control or serve well under the offered rate."""
    row = next(r for r in record["rows"] if r["name"] == "quotes@2x")
    saturated = (row["shed"] > 0
                 or row["served_rate"] < 0.9 * row["achieved_offer_rate"])
    assert saturated, (
        f"2x-capacity run showed no saturation: served "
        f"{row['served_rate']:.0f} rps of {row['achieved_offer_rate']:.0f} "
        f"offered, shed {row['shed']}"
    )


@pytest.mark.loadtest
def test_hot_mix_hits_cache(record):
    """The hot set must be served mostly from the result cache."""
    row = next(r for r in record["rows"] if r["mix"] == "hot")
    assert row["cache_hits"] >= row["served"] * 0.5, (
        f"hot mix hit cache only {row['cache_hits']}/{row['served']} times"
    )


@pytest.mark.loadtest
def test_report(record):
    write_json(record)
    print()
    print(f"capacity {record['capacity_rps']:.0f} rps "
          f"(slo {record['slo_seconds']*1e3:.0f}ms)")
    print(f"{'run':>15} {'offered':>8} {'served':>7} {'shed':>5} "
          f"{'p50':>8} {'p95':>8} {'p99':>8} {'qmax':>5}")
    for r in record["rows"]:
        print(f"{r['name']:>15} {r['offered_rate']:>6.0f}/s "
              f"{r['served_rate']:>5.0f}/s {r['shed']:>5} "
              f"{r['p50_ms']:>6.1f}ms {r['p95_ms']:>6.1f}ms "
              f"{r['p99_ms']:>6.1f}ms {r['queue_depth_max']:>5.0f}")
