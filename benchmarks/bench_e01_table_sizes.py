"""E1/E2 — table size laws and the YELT materialisation cost.

Paper claims (§II): the YELLT at 10⁴ contracts × 10⁵ events × 10³
locations × 5×10⁴ trials has (over) 5×10¹⁶ entries; the YELT is ~1000×
smaller than the YELLT and ~1000× larger than the YLT.  The analytic law
is asserted; the benchmark times materialising the YELT (the thing
existing tools *can* hold) against producing only the YLT.
"""

import pytest

from repro.core.simulation import AggregateAnalysis
from repro.core.tables import YelltModel


def test_paper_scale_size_law():
    model = YelltModel.paper_scale()
    assert model.yellt_entries() >= 5e16
    ratios = model.ratios()
    assert ratios["yellt_over_yelt"] == pytest.approx(1000.0)
    assert ratios["yelt_over_ylt"] == pytest.approx(1000.0)


def test_materialised_ratio_near_1000(study_2k):
    res = AggregateAnalysis(study_2k.portfolio, study_2k.yet).run(
        "vectorized", emit_yelt=True
    )
    ratio = res.yelt_rows() / res.portfolio_ylt.n_trials
    # coverage of the catalogue by the layer's ELTs trims ~7% off the
    # 1000 events/trial
    assert 700 <= ratio <= 1100


def bench_ylt_only(wl):
    return AggregateAnalysis(wl.portfolio, wl.yet).run("vectorized")


def bench_with_yelt(wl):
    return AggregateAnalysis(wl.portfolio, wl.yet).run(
        "vectorized", emit_yelt=True
    )


def test_ylt_only(benchmark, study_2k):
    """Produce the YLT alone (the paper's recommended operating point)."""
    result = benchmark(bench_ylt_only, study_2k)
    assert result.portfolio_ylt.n_trials == 2_000


def test_yelt_materialised(benchmark, study_2k):
    """Also materialise the ~1000x larger YELT (what §II says tools
    struggle to analyse)."""
    result = benchmark(bench_with_yelt, study_2k)
    assert result.yelt_rows() > 0
