"""E15 — the zero-copy shared-memory data plane vs the pickle ship.

The paper's thesis is that risk analytics is data-movement bound: the
YET is the dominant payload, and §II's numbers all reduce to "keep the
trial set resident next to the compute".  Our multiprocess paths used to
violate that on the host itself — ``WorkPool`` delivered the payload by
*pickling it through the pool initializer* (a full serialise/deserialise
round per executor build), and the serving layer's ``PooledDispatcher``
re-pickled the per-batch kernel with every task.  The shared-memory data
plane (:mod:`repro.hpc.shm`) replaces both with segment handles that
attach as zero-copy views.

Two measurements, written to ``BENCH_e15.json`` (see ``run_tier2.py``):

- **ship**: delivery cost of the YET bundle to the workers across YET
  sizes — full pickle round-trip vs arena placement + handle attach,
  both for the first ship and for the *re-ship* (executor cycled, worker
  died) where the segments already exist and only handles travel.
- **batch**: steady-state pooled batch dispatch latency (pool warm, YET
  delivered, per-batch kernels churning) — kernel pickled per task vs
  written once into the reusable slab and shipped as ~1 KB of handles.
  The acceptance bar: **≥ 2x lower batch latency at the medium shape**,
  and **zero payload re-ships** across repeat runs with an unchanged
  (re-simulated but equal) YET.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.workloads import build_portfolio_workload
from repro.core.tables import YetTable
from repro.hpc.shm import SharedArena, shm_available
from repro.serve.dispatch import InlineDispatcher, PooledDispatcher, _ShmYet

N_WORKERS = 2

#: YET sizes for the ship measurement (occurrences ≈ trials × epk).
SHIP_SIZES = {
    "small": dict(n_trials=1_000, mean_events_per_trial=100.0),
    "medium": dict(n_trials=2_000, mean_events_per_trial=400.0),
    "large": dict(n_trials=4_000, mean_events_per_trial=1_000.0),
}

#: Batch shapes: L distinct contract books make the stacked kernel the
#: dominant per-task payload, which is precisely the serving steady
#: state this experiment isolates (the YET is already resident either
#: way).  The *medium* shape carries the acceptance bar and is run
#: identically in both tiers so the trajectory stays comparable.
BATCH_SHAPES = {
    "small": dict(n_layers=8, n_trials=500, mean_events_per_trial=100.0,
                  elts_per_layer=1, elt_rows=1_000, catalog_events=40_000),
    "medium": dict(n_layers=16, n_trials=1_500, mean_events_per_trial=150.0,
                   elts_per_layer=1, elt_rows=2_000, catalog_events=150_000),
    "large": dict(n_layers=24, n_trials=3_000, mean_events_per_trial=200.0,
                  elts_per_layer=1, elt_rows=2_000, catalog_events=250_000),
}


def _simulate_yet(n_trials: int, mean_events_per_trial: float,
                  catalog_events: int = 20_000, seed: int = 7) -> YetTable:
    ids = np.arange(catalog_events, dtype=np.int64)
    rates = np.full(catalog_events, 1.0 / catalog_events)
    return YetTable.simulate(ids, rates, n_trials,
                             np.random.default_rng(seed),
                             mean_events_per_trial=mean_events_per_trial)


# ---------------------------------------------------------------------------
# ship: cold-pool YET delivery
# ---------------------------------------------------------------------------

def measure_ship_row(size: str, shape: dict, repeats: int = 3) -> dict:
    """Transport cost of delivering one YET bundle to ``N_WORKERS``.

    Measured as the serialise/deserialise work itself, which is what a
    re-ship actually pays: the pickle path serialises the full columns
    once and deserialises them in every worker; the handle path copies
    the columns into a shared segment once and every worker deserialises
    ~300 bytes of descriptors (the attach is one ``mmap`` each, part of
    the timed loop via a fresh ``loads`` per worker).  End-to-end pool
    spawn is deliberately excluded — on fork-based Linux executors the
    initializer *inherits* memory copy-on-write and the comparison would
    measure process spawn, while spawn-based hosts (macOS/Windows) and
    every per-task kernel ship pay exactly the serialise cost below.
    """
    import pickle

    yet = _simulate_yet(**shape)
    bundle = (yet.trials, yet.event_ids)
    payload_mb = (yet.trials.nbytes + yet.event_ids.nbytes) / 1e6

    pickle_best = shm_best = reship_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        buf = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
        for _w in range(N_WORKERS):
            pickle.loads(buf)
        pickle_best = min(pickle_best, time.perf_counter() - t0)

        with SharedArena() as arena:
            t0 = time.perf_counter()
            shipment = _ShmYet(yet.to_shared(arena), local=bundle)
            small = pickle.dumps(shipment, protocol=pickle.HIGHEST_PROTOCOL)
            for _w in range(N_WORKERS):
                pickle.loads(small).__shm_resolve__()
            shm_best = min(shm_best, time.perf_counter() - t0)

            # The re-ship (executor cycled, worker died, pool rebuilt):
            # the segments already exist, so delivery is handles only —
            # this is the cost the pickle path pays in full every time.
            t0 = time.perf_counter()
            small = pickle.dumps(shipment, protocol=pickle.HIGHEST_PROTOCOL)
            for _w in range(N_WORKERS):
                pickle.loads(small).__shm_resolve__()
            reship_best = min(reship_best, time.perf_counter() - t0)

    return {
        "size": size,
        "n_occurrences": yet.n_occurrences,
        "payload_mb": payload_mb,
        "handle_bytes": len(small),
        "pickle_ship_seconds": pickle_best,
        "shm_first_ship_seconds": shm_best,
        "shm_reship_seconds": reship_best,
        "first_ship_speedup": pickle_best / shm_best,
        "reship_speedup": pickle_best / reship_best,
    }


# ---------------------------------------------------------------------------
# batch: steady-state pooled dispatch
# ---------------------------------------------------------------------------

def build_batch_workload(shape: dict, n_kernels: int = 4):
    """One YET plus a cycle of per-batch kernels over distinct books.

    Serving batches re-stack a fresh ephemeral kernel every window; the
    cycle of pre-built kernels models that churn (the transport cannot
    amortise "same kernel as last batch") without timing kernel
    construction, which is identical on both paths.
    """
    wl = build_portfolio_workload(**shape, seed=11)
    kernels = [
        wl.portfolio.kernel(dense_max_entries=4_000_000 + gen)
        for gen in range(n_kernels)
    ]
    return wl.yet, kernels


def run_batches(dispatcher, yet, kernels, n_batches: int):
    """Steady-state per-batch dispatch latencies (pool warm, YET shipped)."""
    dispatcher.warmup(yet)
    dispatcher.run(kernels[0], yet)  # attach/one-time costs out of band
    latencies = []
    for b in range(n_batches):
        kernel = kernels[b % len(kernels)]
        t0 = time.perf_counter()
        dispatcher.run(kernel, yet)
        latencies.append(time.perf_counter() - t0)
    return latencies


def measure_batch_row(size: str, shape: dict, n_batches: int) -> dict:
    yet, kernels = build_batch_workload(shape)
    kernel_mb = kernels[0].nbytes / 1e6

    # Parity before timing: a wrong fast path is not a fast path.
    oracle = InlineDispatcher().run(kernels[0], yet)

    with PooledDispatcher(N_WORKERS, transport="pickle") as pickle_d:
        np.testing.assert_allclose(pickle_d.run(kernels[0], yet), oracle,
                                   rtol=1e-9, atol=1e-6)
        pickle_lat = run_batches(pickle_d, yet, kernels, n_batches)

    with PooledDispatcher(N_WORKERS, transport="shm") as shm_d:
        np.testing.assert_allclose(shm_d.run(kernels[0], yet), oracle,
                                   rtol=1e-9, atol=1e-6)
        ships_warm = shm_d.pool.payload_ships
        shm_lat = run_batches(shm_d, yet, kernels, n_batches)

        # Repeat against a re-simulated but *equal* trial set: the
        # fingerprint-keyed bundle must re-ship nothing.
        equal_yet = build_portfolio_workload(**shape, seed=11).yet
        shm_d.run(kernels[0], equal_yet)
        # Both counts come off the public telemetry plane (the ship
        # counter and the slab-generation gauge), not private fields.
        metrics = shm_d.telemetry.snapshot()["metrics"]
        reships = int(metrics["pool.payload_ships"]) - ships_warm
        slab_generations = int(metrics.get("dispatch.slab.generations", 0))

    p50_pickle = float(np.median(pickle_lat))
    p50_shm = float(np.median(shm_lat))
    return {
        "size": size,
        "n_layers": shape["n_layers"],
        "n_occurrences": yet.n_occurrences,
        "kernel_mb": kernel_mb,
        "pickle_batch_seconds": p50_pickle,
        "shm_batch_seconds": p50_shm,
        "batch_speedup": p50_pickle / p50_shm,
        "pickle_p95_ms": float(np.percentile(pickle_lat, 95)) * 1e3,
        "shm_p95_ms": float(np.percentile(shm_lat, 95)) * 1e3,
        "reships_on_repeat": reships,
        "slab_generations": slab_generations,
    }


def measure(ship_sizes=("small", "medium"), batch_sizes=("small", "medium"),
            n_batches: int = 6, ship_repeats: int = 3) -> dict:
    """Run both measurements; returns the JSON-able record."""
    if not shm_available():  # pragma: no cover - degraded host
        return {"experiment": "e15_shm_data_plane", "shm_available": False,
                "ship_rows": [], "batch_rows": []}
    ship_rows = [measure_ship_row(s, SHIP_SIZES[s], repeats=ship_repeats)
                 for s in ship_sizes]
    batch_rows = [measure_batch_row(s, BATCH_SHAPES[s], n_batches)
                  for s in batch_sizes]
    return {
        "experiment": "e15_shm_data_plane",
        "shm_available": True,
        "n_workers": N_WORKERS,
        "n_batches": n_batches,
        "ship_rows": ship_rows,
        "batch_rows": batch_rows,
    }


def write_json(record: dict, path: str | Path | None = None) -> Path:
    """Write the bench record next to the repo root (the trajectory file)."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_e15.json"
    path = Path(path)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path


# -- pytest entry points ----------------------------------------------------

@pytest.fixture(scope="module")
def record():
    return measure()


def test_shm_batch_dispatch_beats_pickle(record):
    """The acceptance bar: ≥ 2x lower steady-state batch latency at the
    medium shape, with zero payload re-ships."""
    if not record["shm_available"]:
        pytest.skip("shared memory unavailable on this host")
    row = next(r for r in record["batch_rows"] if r["size"] == "medium")
    assert row["batch_speedup"] >= 2.0, (
        f"shm batch dispatch gained only {row['batch_speedup']:.2f}x over "
        "the pickle ship at the medium shape (bar is 2x)"
    )
    assert row["reships_on_repeat"] == 0


def test_report(record):
    """Emit the tables and the JSON trajectory file."""
    write_json(record)
    print()
    print(f"{'size':>7} {'yet MB':>8} {'pickle ship':>12} {'shm first':>12} "
          f"{'shm reship':>12} {'reship gain':>12}")
    for r in record["ship_rows"]:
        print(f"{r['size']:>7} {r['payload_mb']:>8.1f} "
              f"{r['pickle_ship_seconds']*1e3:>10.2f}ms "
              f"{r['shm_first_ship_seconds']*1e3:>10.2f}ms "
              f"{r['shm_reship_seconds']*1e3:>10.3f}ms "
              f"{r['reship_speedup']:>11.0f}x")
    print()
    print(f"{'size':>7} {'kern MB':>8} {'pickle batch':>13} {'shm batch':>12} "
          f"{'speedup':>8} {'reships':>8}")
    for r in record["batch_rows"]:
        print(f"{r['size']:>7} {r['kernel_mb']:>8.1f} "
              f"{r['pickle_batch_seconds']*1e3:>11.1f}ms "
              f"{r['shm_batch_seconds']*1e3:>10.1f}ms "
              f"{r['batch_speedup']:>7.2f}x {r['reships_on_repeat']:>8}")
