"""E9 — the processor-burst profile across pipeline stages.

Paper claim (§II): "While in the first stage less than ten processors
may be sufficient to handle the data, in the second and third stages
thousands or even tens of thousands of processors need to be put
together" — the elastic demand that makes cloud provisioning attractive.
The benchmark times the calibrated cost-model evaluation and asserts the
burst shape; full numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.bench.experiments import run_e09_burst_elasticity
from repro.hpc.cost_model import PipelineCostModel, StageSpec

WEEK_SECONDS = 7 * 24 * 3600.0


@pytest.fixture(scope="module")
def calibrated_model():
    """A model calibrated to 2012-class scalar-core rates."""
    return PipelineCostModel([
        StageSpec("stage1", 1e11, 1.3e7, comm_overhead_per_proc_s=1.0),
        StageSpec("stage2_scalar", 5e11, 2.2e6, comm_overhead_per_proc_s=0.001),
        StageSpec("stage3", 1e10, 1.7e8, comm_overhead_per_proc_s=0.05),
    ])


def test_burst_profile_evaluation(benchmark, calibrated_model):
    deadlines = {"stage1": WEEK_SECONDS, "stage2_scalar": 60.0, "stage3": 60.0}
    reqs = benchmark(lambda: calibrated_model.burst_profile(deadlines))
    by_name = {r.stage: r.n_procs for r in reqs}
    assert by_name["stage1"] < 10
    assert by_name["stage2_scalar"] >= 1_000


def test_measured_burst_profile(benchmark):
    """The full measured-rate E9 runner (calibrates from this machine)."""
    report = benchmark.pedantic(
        lambda: run_e09_burst_elasticity(measure_trials=5_000),
        rounds=1, iterations=1,
    )
    assert any("burst factor" in note for note in report.notes)


def test_burst_factor_is_orders_of_magnitude(calibrated_model):
    deadlines = {"stage1": WEEK_SECONDS, "stage2_scalar": 60.0, "stage3": 60.0}
    reqs = calibrated_model.burst_profile(deadlines)
    counts = [r.n_procs for r in reqs]
    assert max(counts) / min(counts) >= 1_000
