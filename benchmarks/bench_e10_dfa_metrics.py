"""E10 — DFA risk integration, PML/TVaR, and warehouse pre-computation.

Paper claims (§II): the DFA stage combines catastrophe YLTs with the six
named non-cat risks; PML and TVaR are the derived metrics; and because
the data must be scanned, "pre-computation techniques such as in
parallel data warehousing can be applied".
"""

import numpy as np
import pytest

from repro.bench.workloads import dfa_workload, warehouse_fact_table
from repro.core.simulation import AggregateAnalysis
from repro.data.warehouse import LossCube
from repro.dfa import RiskMetrics, combine_ylts
from repro.dfa.correlation import GaussianCopula
from repro.util.rng import RngHierarchy

N_TRIALS = 20_000


@pytest.fixture(scope="module")
def all_ylts(study_20k):
    cat = AggregateAnalysis(study_20k.portfolio, study_20k.yet).run(
        "vectorized").portfolio_ylt
    return [cat] + [s.ylt for s in dfa_workload(cat)]


def test_combine_trial_aligned(benchmark, all_ylts):
    out = benchmark(lambda: combine_ylts(all_ylts, "trial_aligned"))
    assert out.n_trials == N_TRIALS


def test_combine_copula(benchmark, all_ylts):
    corr = GaussianCopula.uniform(len(all_ylts), 0.3).correlation
    rng = RngHierarchy(29)
    out = benchmark(
        lambda: combine_ylts(all_ylts, "copula", correlation=corr,
                             rng=rng.generator("cop"))
    )
    assert out.n_trials == N_TRIALS


def test_metrics_ladder(benchmark, all_ylts):
    combined = combine_ylts(all_ylts, "trial_aligned")
    metrics = benchmark(lambda: RiskMetrics.from_ylt(combined))
    metrics.check_coherence()


@pytest.fixture(scope="module")
def facts():
    return warehouse_fact_table(n_trials=10_000, rows_per_trial=20)


@pytest.fixture(scope="module")
def cube(facts):
    return LossCube(facts, dims=("lob", "region", "peril"), n_trials=10_000)


def test_warehouse_cube_build(benchmark, facts):
    c = benchmark(lambda: LossCube(facts, dims=("lob", "region", "peril"),
                                   n_trials=10_000))
    assert c.n_cells > 0


def test_warehouse_cube_query(benchmark, cube):
    """Pre-aggregated slice query (the paper's pre-computation win)."""
    pml = benchmark(lambda: cube.pml(250.0, {"lob": 1}))
    assert pml > 0


def test_recompute_from_fact_table(benchmark, facts):
    """The same query answered by rescanning the base table."""

    def recompute():
        mask = facts["lob"] == 1
        losses = np.zeros(10_000)
        np.add.at(losses, facts["trial"][mask], facts["loss"][mask])
        return float(np.quantile(losses, 1 - 1 / 250.0))

    pml = benchmark(recompute)
    assert pml > 0


def test_cube_matches_recompute(cube, facts):
    mask = facts["lob"] == 1
    losses = np.zeros(10_000)
    np.add.at(losses, facts["trial"][mask], facts["loss"][mask])
    expect = float(np.quantile(losses, 1 - 1 / 250.0))
    assert cube.pml(250.0, {"lob": 1}) == pytest.approx(expect, rel=1e-12)


def test_dependence_ordering(all_ylts):
    """Comonotonic >= copula(0.3) >= independent at TVaR99."""
    rng = RngHierarchy(31)
    k = len(all_ylts)
    tv = {}
    tv["ind"] = RiskMetrics.from_ylt(
        combine_ylts(all_ylts, "independent", rng=rng.generator("i"))
    ).tvar[0.99]
    tv["cop"] = RiskMetrics.from_ylt(
        combine_ylts(all_ylts, "copula",
                     correlation=GaussianCopula.uniform(k, 0.3).correlation,
                     rng=rng.generator("c"))
    ).tvar[0.99]
    tv["como"] = RiskMetrics.from_ylt(
        combine_ylts(all_ylts, "comonotonic")
    ).tvar[0.99]
    assert tv["como"] >= tv["cop"] >= tv["ind"] * 0.99
