"""E18 — sublinear tail pricing + stacked device placement.

Two raw-speed claims from the PR-6 kernel round are tracked here:

1. **Sublinear tail groups.**  A batch of L tail-attaching layers over
   one shared book — the exact shape ``quote_many`` produces — prices
   through :class:`~repro.core.kernels.PortfolioKernel`'s
   sorted-threshold histogram path instead of materialising an
   ``(L, block)`` lane matrix.  The bench sweeps L and times the same
   kernel with ``sublinear=True`` vs ``sublinear=False``; the
   acceptance bar is **≥ 2x at L=64**, and lanes/s should *grow* with L
   on the group path (sublinearity) where the lane path stays flat.
   Parity is asserted before anything is timed (documented tolerance:
   atol 1e-6 absolute, the library-wide kernel bar).

2. **Stacked device placement.**  The rebuilt
   :class:`~repro.core.engines.DeviceEngine` ships ONE trimmed
   ``dense_stack`` upload per resident batch (row offsets resolved
   in-kernel) and one stacked YET upload per chunk — versus one lookup
   upload *per layer* under the old first-come placement.  The bench
   records the uploads-per-sweep table across L.

Results are written to ``BENCH_e18.json`` (see ``run_tier2.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.workloads import build_layer_workload
from repro.core.engines import DeviceEngine
from repro.core.kernels import PortfolioKernel
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.terms import LayerTerms

LANE_COUNTS = (8, 16, 32, 64, 128)
DEVICE_LANE_COUNTS = (8, 64)

#: Documented sublinear-vs-lane tolerance: the group path resolves each
#: row from shared prefix sums, so it differs from the lane path by
#: accumulation order only — within the library-wide kernel bar.
PARITY_ATOL = 1e-6
PARITY_RTOL = 1e-9

#: One shared contract book, a YET long enough that the sweep dominates
#: (the serving regime).  Same family of shapes as E14.
DEFAULT_SHAPE = dict(
    n_trials=2_000,
    mean_events_per_trial=250.0,
    n_elts=2,
    elt_rows=2_000,
    catalog_events=20_000,
    seed=11,
)


def build_tail_stack(n_layers: int, **shape):
    """L tail-attaching layers over ONE shared book, plus the YET.

    Underwriters sweeping attachment points: every layer prices the same
    merged lookup under different ``clip(g, lo, hi)`` windows, so the
    stacked kernel dedups them to one stored table and the whole stack
    forms one tail group.
    """
    shape = {**DEFAULT_SHAPE, **shape}
    wl = build_layer_workload(**shape)
    base = wl.portfolio.layers[0]
    mean_loss = 5e5
    layers = [
        Layer(1000 + i, base.elts, LayerTerms(
            occ_retention=(1.0 + 0.25 * (i % 32)) * mean_loss,
            occ_limit=(20.0 + i) * mean_loss,
        ))
        for i in range(n_layers)
    ]
    for layer in layers:
        layer.lookup()
    return wl.yet, layers


def _time_sweep(kernel, yet, sublinear: bool, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        kernel.run(yet.trials, yet.event_ids, yet.n_trials,
                   sublinear=sublinear)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_kernel(lane_counts=LANE_COUNTS, repeats: int = 3,
                   **shape) -> list[dict]:
    """Sublinear-vs-lane timing rows across stack sizes."""
    rows = []
    for n_layers in lane_counts:
        yet, layers = build_tail_stack(n_layers, **shape)
        kernel = PortfolioKernel.from_layers(layers)

        # Parity before timing: a wrong fast path is not a fast path.
        ref = kernel.run(yet.trials, yet.event_ids, yet.n_trials,
                         sublinear=False)
        sub = kernel.run(yet.trials, yet.event_ids, yet.n_trials)
        np.testing.assert_allclose(sub, ref, rtol=PARITY_RTOL,
                                   atol=PARITY_ATOL)
        max_abs_err = float(np.max(np.abs(sub - ref))) if ref.size else 0.0

        lane_s = _time_sweep(kernel, yet, False, repeats)
        group_s = _time_sweep(kernel, yet, True, repeats)
        lanes = n_layers * yet.n_occurrences
        rows.append({
            "n_layers": n_layers,
            "n_occurrences": yet.n_occurrences,
            "tail_group_rows": kernel.tail_group_rows,
            "lane_seconds": lane_s,
            "group_seconds": group_s,
            "speedup": lane_s / group_s,
            "lane_lanes_per_s": lanes / lane_s,
            "group_lanes_per_s": lanes / group_s,
            "max_abs_err": max_abs_err,
        })
    return rows


def measure_device(lane_counts=DEVICE_LANE_COUNTS, **shape) -> list[dict]:
    """Uploads-per-sweep table for the stacked device path.

    ``use_constant=False`` forces the merged lookup onto the global
    stack so the dense-stack upload count is observable; the dedup means
    one store regardless of L, and the stacked engine ships it once per
    batch where per-layer placement would ship L buffers.
    """
    rows = []
    for n_layers in lane_counts:
        yet, layers = build_tail_stack(n_layers, **shape)
        res = DeviceEngine(use_constant=False).run(Portfolio(layers), yet)
        d = res.details
        rows.append({
            "n_layers": n_layers,
            "n_batches": d["n_batches"],
            "stack_uploads": d["stack_uploads"],
            "stack_uploads_per_batch": d["stack_uploads"] / d["n_batches"],
            "per_layer_uploads_would_be": n_layers,
            "yet_uploads": d["yet_uploads"],
            "n_chunks_total": d["n_chunks_total"],
            "launches": d["launches"],
            "h2d_bytes": d["h2d_bytes"],
        })
    return rows


def measure(lane_counts=LANE_COUNTS, device_lane_counts=DEVICE_LANE_COUNTS,
            repeats: int = 3, **shape) -> dict:
    """Run both sections; returns the JSON-able record."""
    return {
        "experiment": "e18_sublinear_tail",
        "shape": {**DEFAULT_SHAPE, **shape},
        "repeats": repeats,
        "parity_atol": PARITY_ATOL,
        "rows": measure_kernel(lane_counts, repeats, **shape),
        "device_rows": measure_device(device_lane_counts, **shape),
    }


def write_json(record: dict, path: str | Path | None = None) -> Path:
    """Write the bench record next to the repo root (the trajectory file)."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_e18.json"
    path = Path(path)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path


# -- pytest entry points ----------------------------------------------------

@pytest.fixture(scope="module")
def record():
    return measure()


def test_group_path_parity_within_documented_tolerance(record):
    for r in record["rows"]:
        assert r["max_abs_err"] <= PARITY_ATOL


def test_speedup_at_64_lanes(record):
    """The acceptance bar: ≥ 2x vs the lane path at L=64."""
    row = next(r for r in record["rows"] if r["n_layers"] == 64)
    assert row["speedup"] >= 2.0, (
        f"sublinear path gained only {row['speedup']:.2f}x over the lane "
        "path at L=64 (bar is 2x)"
    )


def test_one_stacked_upload_per_device_batch(record):
    for r in record["device_rows"]:
        assert r["stack_uploads"] == r["n_batches"]
        assert r["yet_uploads"] == r["n_chunks_total"]


def test_report(record):
    """Emit the tables and the JSON trajectory file."""
    write_json(record)
    print()
    print(f"{'L':>4} {'lane':>11} {'group':>11} {'speedup':>8} "
          f"{'group Ml/s':>11} {'max err':>9}")
    for r in record["rows"]:
        print(f"{r['n_layers']:>4} {r['lane_seconds']*1e3:>9.1f}ms "
              f"{r['group_seconds']*1e3:>9.1f}ms {r['speedup']:>7.2f}x "
              f"{r['group_lanes_per_s']/1e6:>10.1f} "
              f"{r['max_abs_err']:>9.1e}")
    print()
    print(f"{'L':>4} {'batches':>8} {'stack ups':>10} {'vs per-layer':>13} "
          f"{'yet ups':>8}")
    for r in record["device_rows"]:
        print(f"{r['n_layers']:>4} {r['n_batches']:>8} "
              f"{r['stack_uploads']:>10} "
              f"{r['per_layer_uploads_would_be']:>13} {r['yet_uploads']:>8}")
