"""E14 — the serving layer: micro-batched pricing vs one sweep per request.

The pre-serve reality of concurrent pricing was one full YET pass per
quote: each request built its own single-layer portfolio and ran an
engine over the whole trial set (the classic ``RealTimePricer.quote``
body).  The serving layer coalesces every request in flight into one
stacked :class:`~repro.core.kernels.PortfolioKernel` sweep, so N
concurrent requests cost ~one YET pass plus N cheap kernel rows.

This bench drives both paths over the same burst of ad-hoc candidate
layers (structure variations on a shared contract book) and reports
request throughput and per-quote latency percentiles.  The acceptance
bar: **≥ 3x request throughput at 32 concurrent requests**.  Results are
written to ``BENCH_e14.json`` (see ``run_tier2.py``) so the serving
trajectory is tracked PR over PR alongside the kernel trajectory (E13).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.workloads import build_layer_workload
from repro.core.engines import VectorizedEngine
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.terms import LayerTerms
from repro.dfa.quote import premium_components
from repro.serve import BatchPolicy, CachePolicy, PricingService

REQUEST_COUNTS = (1, 8, 32, 64)

#: Workload shape: one shared contract book, a YET long enough that the
#: sweep dominates each quote (the serving regime the paper motivates).
DEFAULT_SHAPE = dict(
    n_trials=2_000,
    mean_events_per_trial=250.0,
    n_elts=2,
    elt_rows=2_000,
    catalog_events=20_000,
    seed=7,
)

VOL_LOADING = 0.25
TAIL_LOADING = 0.02


def build_burst(n_requests: int, **shape):
    """A burst of ad-hoc candidate layers over one shared book + YET.

    Underwriters sweep attachment points and shares: each request is a
    distinct ``Layer`` (distinct terms), the realistic "what-if" burst.
    Lookups are warmed up front so both paths measure pricing, not the
    one-off ELT merge.
    """
    shape = {**DEFAULT_SHAPE, **shape}
    wl = build_layer_workload(**shape)
    base = wl.portfolio.layers[0]
    mean_loss = 5e5
    layers = []
    for i in range(n_requests):
        terms = LayerTerms(
            occ_retention=(1.0 + 0.5 * (i % 16)) * mean_loss,
            occ_limit=(30.0 + i) * mean_loss,
            agg_retention=8.0 * mean_loss,
            agg_limit=2500.0 * mean_loss,
            participation=0.5 + 0.4 * ((i % 8) / 7.0 if n_requests > 1 else 1.0),
        )
        layers.append(Layer(1000 + i, base.elts, terms))
    for layer in layers:
        layer.lookup()
    return wl.yet, layers


def _premium_from_ylt(ylt, occ_limit) -> float:
    return premium_components(ylt, occ_limit, VOL_LOADING, TAIL_LOADING)[3]


def run_baseline(yet, layers):
    """One engine run per request (the pre-serve path); returns
    (total_seconds, per-request latencies, premiums)."""
    engine = VectorizedEngine()
    latencies, premiums = [], []
    t_start = time.perf_counter()
    for layer in layers:
        t0 = time.perf_counter()
        result = engine.run(Portfolio([layer]), yet)
        ylt = result.ylt_by_layer[layer.layer_id]
        premium = _premium_from_ylt(ylt, layer.terms.occ_limit)
        latencies.append(time.perf_counter() - t0)
        premiums.append(premium)
    return time.perf_counter() - t_start, latencies, premiums


def run_batched(yet, layers):
    """All requests through one PricingService micro-batch; returns
    (total_seconds, per-request latencies, premiums, sweeps)."""
    with PricingService(
        yet,
        volatility_loading=VOL_LOADING,
        tail_loading=TAIL_LOADING,
        batch=BatchPolicy(max_batch=max(len(layers), 1)),
        cache=CachePolicy(0),   # measure sweeps, not cache hits
    ) as svc:
        t_start = time.perf_counter()
        tickets = [svc.submit(layer) for layer in layers]
        svc.drain()
        quotes = [t.result() for t in tickets]
        total = time.perf_counter() - t_start
        # Sweep count off the public telemetry plane (serve.batches is
        # what the legacy stats.sweeps attribute is a view of).
        sweeps = int(svc.telemetry.snapshot()["metrics"]["serve.batches"])
        return (total, [q.latency_seconds for q in quotes],
                [q.premium for q in quotes], sweeps)


def _pctl(latencies, p):
    return float(np.percentile(np.asarray(latencies), p))


def measure(request_counts=REQUEST_COUNTS, repeats: int = 3, **shape) -> dict:
    """Run both paths across burst sizes; returns the JSON-able record."""
    rows = []
    for n_requests in request_counts:
        yet, layers = build_burst(n_requests, **shape)

        # Parity before timing: a wrong fast path is not a fast path.
        _, _, base_premiums = run_baseline(yet, layers)
        _, _, batch_premiums, _ = run_batched(yet, layers)
        np.testing.assert_allclose(batch_premiums, base_premiums,
                                   rtol=1e-9, atol=1e-6)

        best_base, best_batch = np.inf, np.inf
        base_lat, batch_lat, sweeps = [], [], 0
        for _ in range(repeats):
            total, lats, _ = run_baseline(yet, layers)
            if total < best_base:
                best_base, base_lat = total, lats
            total, lats, _, n_sweeps = run_batched(yet, layers)
            if total < best_batch:
                best_batch, batch_lat, sweeps = total, lats, n_sweeps
        rows.append({
            "n_requests": n_requests,
            "n_occurrences": yet.n_occurrences,
            "baseline_seconds": best_base,
            "batched_seconds": best_batch,
            "baseline_rps": n_requests / best_base,
            "batched_rps": n_requests / best_batch,
            "throughput_gain": best_base / best_batch,
            "baseline_p50_ms": _pctl(base_lat, 50) * 1e3,
            "baseline_p95_ms": _pctl(base_lat, 95) * 1e3,
            "batched_p50_ms": _pctl(batch_lat, 50) * 1e3,
            "batched_p95_ms": _pctl(batch_lat, 95) * 1e3,
            "sweeps": sweeps,
        })
    return {"experiment": "e14_serving", "shape": {**DEFAULT_SHAPE, **shape},
            "repeats": repeats, "rows": rows}


def write_json(record: dict, path: str | Path | None = None) -> Path:
    """Write the bench record next to the repo root (the trajectory file)."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_e14.json"
    path = Path(path)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path


# -- pytest entry points ----------------------------------------------------

@pytest.fixture(scope="module")
def record():
    return measure()


def test_batched_parity_with_direct_pricing():
    """Batched premiums equal one-run-per-request premiums exactly-ish."""
    yet, layers = build_burst(8, n_trials=300, mean_events_per_trial=50.0)
    _, _, base = run_baseline(yet, layers)
    _, _, batched, sweeps = run_batched(yet, layers)
    assert sweeps == 1
    np.testing.assert_allclose(batched, base, rtol=1e-9, atol=1e-6)


def test_throughput_gain_at_32_requests(record):
    """The acceptance bar: ≥ 3x request throughput at 32 concurrent."""
    row = next(r for r in record["rows"] if r["n_requests"] == 32)
    assert row["throughput_gain"] >= 3.0, (
        f"micro-batching gained only {row['throughput_gain']:.2f}x over "
        "one-sweep-per-request at 32 concurrent (bar is 3x)"
    )


def test_report(record):
    """Emit the table and the JSON trajectory file."""
    write_json(record)
    print()
    print(f"{'reqs':>5} {'baseline':>11} {'batched':>11} {'gain':>7} "
          f"{'base p95':>10} {'batch p95':>10} {'sweeps':>7}")
    for r in record["rows"]:
        print(f"{r['n_requests']:>5} {r['baseline_seconds']*1e3:>9.1f}ms "
              f"{r['batched_seconds']*1e3:>9.1f}ms "
              f"{r['throughput_gain']:>6.2f}x "
              f"{r['baseline_p95_ms']:>8.1f}ms {r['batched_p95_ms']:>8.1f}ms "
              f"{r['sweeps']:>7}")
