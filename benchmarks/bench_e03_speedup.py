"""E3 — data-parallel engines vs the sequential counterpart.

Paper claim (§II, citing [7]): many-core GPU portfolio simulation is
"15x times faster than the sequential counterpart".  The pytest-benchmark
table regenerates the comparison: ``sequential`` vs ``vectorized`` vs
``device`` on the companion-study layer.  The ratio of the sequential
row's time to the device row's time is the paper's headline number; on
this substrate it lands well above 15x (see EXPERIMENTS.md).
"""

import pytest

from repro.core.simulation import AggregateAnalysis


@pytest.fixture(scope="module")
def analysis(study_2k):
    return AggregateAnalysis(study_2k.portfolio, study_2k.yet)


def test_sequential_baseline(benchmark, analysis):
    """The scalar one-occurrence-at-a-time loop (the paper's baseline)."""
    res = benchmark.pedantic(
        lambda: analysis.run("sequential"), rounds=2, iterations=1
    )
    assert res.portfolio_ylt.n_trials == 2_000


def test_vectorized_engine(benchmark, analysis):
    """Whole-array NumPy — the data-parallel 'global memory only' model."""
    res = benchmark(lambda: analysis.run("vectorized"))
    assert res.portfolio_ylt.n_trials == 2_000


def test_device_engine(benchmark, analysis):
    """Simulated GPU with chunking + constant-memory lookup placement."""
    res = benchmark(lambda: analysis.run("device"))
    assert res.portfolio_ylt.n_trials == 2_000


def test_speedup_exceeds_paper_claim(analysis):
    """Direct assertion of the >=15x shape (single measured pass)."""
    import time

    t0 = time.perf_counter()
    analysis.run("sequential")
    t_seq = time.perf_counter() - t0
    analysis.run("device")  # warm
    t0 = time.perf_counter()
    analysis.run("device")
    t_dev = time.perf_counter() - t0
    assert t_seq / t_dev >= 10.0, (
        f"device speedup {t_seq / t_dev:.1f}x fell below the reproduction "
        "band (paper claims 15x)"
    )
