"""E6 — scan-oriented access vs traditional random access.

Paper claim (§II): "Traditional database management techniques do not
fit the requirements of this stage as data needs to be scanned over
rather than randomly access data."  The same YET-to-ELT join runs as
(a) key-at-a-time probes of a B+-tree row store and (b) a vectorised
gather over the columnar lookup; the benchmark table shows the gap.
"""

import numpy as np
import pytest

from repro.core.lookup import LossLookup
from repro.core.tables import EltTable
from repro.data.rdbms import RowStore
from repro.util.rng import RngHierarchy

N_OCCURRENCES = 100_000
ELT_ROWS = 20_000


@pytest.fixture(scope="module")
def join_inputs():
    rng = RngHierarchy(17)
    elt = EltTable.from_arrays(
        np.arange(ELT_ROWS, dtype=np.int64),
        rng.generator("losses").lognormal(12.0, 1.2, ELT_ROWS),
    )
    occurrences = rng.generator("occ").integers(0, ELT_ROWS, size=N_OCCURRENCES)
    store = RowStore(elt.table.schema, key="event_id", page_rows=128)
    store.bulk_load(elt.table)
    lookup = LossLookup.from_elt(elt)
    return store, lookup, occurrences


def test_btree_random_access(benchmark, join_inputs):
    """One index descent + one page read per occurrence (OLTP plan)."""
    store, _, occurrences = join_inputs
    total = benchmark.pedantic(
        lambda: float(store.get_many(occurrences, "mean_loss").sum()),
        rounds=2, iterations=1,
    )
    assert total > 0


def test_columnar_scan_gather(benchmark, join_inputs):
    """Stream the ELT once, gather losses vectorised (the paper's way)."""
    _, lookup, occurrences = join_inputs
    total = benchmark(lambda: float(lookup(occurrences).sum()))
    assert total > 0


def test_plans_agree(join_inputs):
    store, lookup, occurrences = join_inputs
    sample = occurrences[:2_000]
    a = float(store.get_many(sample, "mean_loss").sum())
    b = float(lookup(sample).sum())
    assert a == pytest.approx(b, rel=1e-12)
