"""E17 — fault recovery latency and degraded-mode throughput.

The robustness layer's claim has two measurable halves:

- **recovery latency** — a worker killed mid-batch costs one supervised
  recovery cycle (executor respawn + handle re-ship + re-execution of
  the lost trial blocks), not the batch.  The experiment times one
  pooled batch fault-free, then the same batch with a deterministic
  ``kill`` injected (:mod:`repro.hpc.faults`), and reports the delta —
  with the recovered matrix asserted **bit-identical** to the fault-free
  one, because recovery that changes answers is not recovery.
- **degraded throughput** — after the pool gives up
  (:attr:`~repro.hpc.pool.PoolHealth.degraded`), batches run serial on
  the calling thread through the *same* trial-block decomposition.  The
  experiment measures the surviving throughput so the slowdown of
  limping along is a number, not a hope — and asserts degraded answers
  are bit-identical too.

Each faulted run embeds its :meth:`~repro.hpc.faults.FaultPlan.report`
and the pool's :meth:`~repro.hpc.pool.PoolHealth.snapshot`, so the JSON
record shows exactly which injections fired and what supervision did
about them.  Written to ``BENCH_e17.json`` via
``run_tier2.py [--only e17]``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench.workloads import build_portfolio_workload
from repro.hpc import faults
from repro.hpc.faults import FaultPlan
from repro.serve.dispatch import PooledDispatcher

N_WORKERS = 2

#: Batch shapes.  The *medium* shape carries the acceptance assertions
#: and runs identically in both tiers so the trajectory is comparable.
SHAPES = {
    "small": dict(n_layers=4, n_trials=600, mean_events_per_trial=80.0,
                  elts_per_layer=1, elt_rows=800, catalog_events=20_000),
    "medium": dict(n_layers=8, n_trials=1_500, mean_events_per_trial=150.0,
                   elts_per_layer=1, elt_rows=1_500, catalog_events=60_000),
    "large": dict(n_layers=16, n_trials=3_000, mean_events_per_trial=250.0,
                  elts_per_layer=1, elt_rows=2_000, catalog_events=120_000),
}


def _timed(dispatcher, kernel, yet):
    t0 = time.perf_counter()
    out = dispatcher.run(kernel, yet)
    return time.perf_counter() - t0, out


def measure_row(size: str, shape: dict, repeats: int = 3) -> dict:
    wl = build_portfolio_workload(seed=17, **shape)
    kernel = wl.portfolio.kernel()

    # -- fault-free pooled baseline (warm pool, best-of) -------------------
    clean_best = float("inf")
    with PooledDispatcher(n_workers=N_WORKERS) as d:
        d.warmup(wl.yet)
        for _ in range(repeats):
            seconds, ref = _timed(d, kernel, wl.yet)
            clean_best = min(clean_best, seconds)

    # -- one injected worker kill per run (fresh pool: the fault plan
    #    keys off the pool's task ordinal, so a fresh pool makes the
    #    injection point deterministic across repeats) --------------------
    faulted_best = float("inf")
    fault_reports = []
    health_after_fault = None
    faulted_identical = True
    for _ in range(repeats):
        with PooledDispatcher(n_workers=N_WORKERS) as d:
            d.warmup(wl.yet)
            with faults.inject(FaultPlan.kill_task(0, seed=17)) as plan:
                seconds, recovered = _timed(d, kernel, wl.yet)
            faulted_best = min(faulted_best, seconds)
            faulted_identical &= bool(np.array_equal(ref, recovered))
            fault_reports.append(plan.report())
            health_after_fault = d.health.snapshot()

    # -- degraded-mode throughput (serial fallback on the caller) ---------
    degraded_best = float("inf")
    with PooledDispatcher(n_workers=N_WORKERS) as d:
        d.pool.health.degraded = True
        for _ in range(repeats):
            seconds, inline = _timed(d, kernel, wl.yet)
            degraded_best = min(degraded_best, seconds)
        degraded_identical = bool(np.array_equal(ref, inline))
        degraded_calls = d.health.degraded_calls

    return {
        "size": size,
        "n_layers": shape["n_layers"],
        "n_trials": shape["n_trials"],
        "n_occurrences": wl.yet.n_occurrences,
        "clean_seconds": clean_best,
        "faulted_seconds": faulted_best,
        "recovery_overhead_seconds": faulted_best - clean_best,
        "degraded_seconds": degraded_best,
        "degraded_slowdown": (degraded_best / clean_best
                              if clean_best > 0 else 0.0),
        "degraded_batches_per_second": (1.0 / degraded_best
                                        if degraded_best > 0 else 0.0),
        "degraded_calls": degraded_calls,
        "bit_identical_after_recovery": faulted_identical,
        "bit_identical_degraded": degraded_identical,
        "worker_deaths": health_after_fault["pool.worker_deaths"],
        "retries": health_after_fault["pool.retries"],
        "executor_cycles": health_after_fault["pool.executor_cycles"],
        "fault_reports": fault_reports,
        "health_after_fault": health_after_fault,
    }


def measure(sizes=("small", "medium"), repeats: int = 3) -> dict:
    rows = [measure_row(size, SHAPES[size], repeats=repeats)
            for size in sizes]
    return {
        "experiment": "e17_fault_recovery",
        "n_workers": N_WORKERS,
        "repeats": repeats,
        "rows": rows,
    }


def write_json(record: dict, path: Path | None = None) -> Path:
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_e17.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":
    record = measure()
    out = write_json(record)
    print(f"wrote {out}")
    for r in record["rows"]:
        print(f"{r['size']:>7}: clean {r['clean_seconds']*1e3:.1f}ms, "
              f"faulted {r['faulted_seconds']*1e3:.1f}ms "
              f"(+{r['recovery_overhead_seconds']*1e3:.1f}ms), "
              f"degraded {r['degraded_seconds']*1e3:.1f}ms "
              f"({r['degraded_slowdown']:.2f}x), "
              f"identical={r['bit_identical_after_recovery']}")
