"""E5 — chunking and memory-placement ablation on the simulated device.

Paper claim (§II): "The management of large data in memory employs the
notion of chunking, which is utilising shared and constant memory as
much as possible."  Four placement variants (constant/shared on/off) and
a chunk-size sweep; on the simulated device the wall-clock signal is the
chunk-size locality effect, while constant/shared placement is verified
as a capacity-feasibility property (see EXPERIMENTS.md note).
"""

import pytest

from repro.core.engines import DeviceEngine
from repro.core.simulation import AggregateAnalysis


@pytest.fixture(scope="module")
def analysis(small_lookup_20k):
    return AggregateAnalysis(small_lookup_20k.portfolio, small_lookup_20k.yet)


@pytest.mark.parametrize("label, flags", [
    ("naive", dict(use_constant=False, use_shared=False)),
    ("shared", dict(use_constant=False, use_shared=True)),
    ("constant", dict(use_constant=True, use_shared=False)),
    ("shared_constant", dict(use_constant=True, use_shared=True)),
])
def test_placement_variants(benchmark, analysis, label, flags):
    engine = DeviceEngine(max_rows_per_chunk=200_000, **flags)
    res = benchmark(lambda: analysis.run(engine))
    assert res.portfolio_ylt.n_trials == 20_000


@pytest.mark.parametrize("chunk_rows", [50_000, 200_000, 1_000_000, None])
def test_chunk_size_sweep(benchmark, analysis, chunk_rows):
    engine = DeviceEngine(max_rows_per_chunk=chunk_rows)
    res = benchmark(lambda: analysis.run(engine))
    assert res.portfolio_ylt.n_trials == 20_000


def test_constant_placement_feasibility(analysis):
    """The 6k-event dense lookup (48 KB) must be placed in the 64 KB
    constant space; the ablated engine must place it in global."""
    res_opt = analysis.run(DeviceEngine())
    res_naive = analysis.run(DeviceEngine(use_constant=False))
    assert res_opt.details["layers"][0]["lookup_in_constant"]
    assert not res_naive.details["layers"][0]["lookup_in_constant"]
    assert res_opt.portfolio_ylt.allclose(res_naive.portfolio_ylt)
