"""Open-loop load generation for the serving layer.

Closed-loop drivers (submit, wait, submit again) measure a system that
is never stressed: the client slows down exactly when the server does,
so queues never build and admission control never fires.  An *open-loop*
generator fixes the arrival schedule up front — request ``i`` is due at
``start + i / rate`` whether or not request ``i-1`` has finished — which
is how coordinated omission is avoided and how the saturation knee
becomes visible (offered rate keeps climbing, served rate flattens,
latency and shed rate take off).

The generator is run-table driven: a :class:`RunSpec` names a workload
mix, an offered arrival rate, and a dispatch engine; :func:`run_open_loop`
builds a **fresh** :class:`~repro.serve.PricingService` for the run (so
cumulative telemetry counters equal per-run numbers), paces submissions
against the wall clock, and reads every reported metric from the
service's public telemetry plane — ``svc.telemetry.snapshot()`` — never
from private fields.

Workload mixes
--------------
``quotes``
    Every request is a distinct candidate layer (an underwriter what-if
    burst); the result cache never hits.
``hot``
    Requests cycle over a small hot set of layers, the repeated-lookup
    regime where the content-addressed cache carries most of the load.
``mixed``
    Alternating ``quote`` and ``ep_curve`` metrics over a medium pool —
    distinct (layer, metric) result keys with partial reuse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.workloads import build_layer_workload
from repro.core.layer import Layer
from repro.core.terms import LayerTerms
from repro.errors import AdmissionError
from repro.obs import parse_prometheus_text
from repro.serve import BatchPolicy, CachePolicy, PricingService

MIXES = ("quotes", "hot", "mixed")

#: How many distinct layers the ``hot`` mix cycles over.
HOT_SET_SIZE = 8

#: Pool size for ``mixed`` (each layer appears with both metrics).
MIXED_POOL_SIZE = 32


@dataclass(frozen=True)
class RunSpec:
    """One row of the run table: a named (mix × rate × engine) cell."""

    name: str
    mix: str = "quotes"
    rate: float = 50.0            #: offered arrival rate, requests/second
    engine: str = "inline"        #: dispatcher name for the service
    duration_seconds: float = 2.0
    seed: int = 7

    def __post_init__(self):
        if self.mix not in MIXES:
            raise ValueError(f"unknown mix {self.mix!r}; expected {MIXES}")
        if self.rate <= 0 or self.duration_seconds <= 0:
            raise ValueError("rate and duration_seconds must be positive")

    @property
    def n_requests(self) -> int:
        return max(1, int(round(self.rate * self.duration_seconds)))


def build_layers(n_layers: int, seed: int = 7, **shape):
    """``n_layers`` distinct candidate layers over one shared book + YET.

    Returns ``(yet, layers)``; lookups are warmed so runs measure
    pricing, not the one-off ELT merge.
    """
    wl = build_layer_workload(seed=seed, **shape)
    base = wl.portfolio.layers[0]
    mean_loss = 5e5
    layers = []
    for i in range(n_layers):
        terms = LayerTerms(
            occ_retention=(1.0 + 0.5 * (i % 16)) * mean_loss,
            occ_limit=(30.0 + i) * mean_loss,
            agg_retention=8.0 * mean_loss,
            agg_limit=2500.0 * mean_loss,
            participation=0.5 + 0.4 * ((i % 8) / 7.0),
        )
        layers.append(Layer(1000 + i, base.elts, terms))
    for layer in layers:
        layer.lookup()
    return wl.yet, layers


def build_request_pool(mix: str, layers: list[Layer]) -> list[tuple[Layer, str]]:
    """The (layer, metric) cycle a run draws its arrivals from."""
    if mix == "quotes":
        # Callers pair this mix with cache_entries=0: the pool is finite,
        # so only a disabled cache keeps "every request sweeps" true once
        # arrivals outnumber distinct layers.
        return [(layer, "quote") for layer in layers]
    if mix == "hot":
        return [(layer, "quote") for layer in layers[:HOT_SET_SIZE]]
    if mix == "mixed":
        pool = []
        for layer in layers[:MIXED_POOL_SIZE]:
            pool.append((layer, "quote"))
            pool.append((layer, "ep_curve"))
        return pool
    raise ValueError(f"unknown mix {mix!r}")


def verify_prometheus_round_trip(telemetry) -> None:
    """Assert the exposition text parses back to the exact sample dict."""
    parsed = parse_prometheus_text(telemetry.to_prometheus_text())
    samples = telemetry.samples()
    if parsed != samples:
        missing = set(samples) ^ set(parsed)
        raise AssertionError(
            f"prometheus text did not round-trip; key diff: {sorted(missing)}"
        )


def run_open_loop(
    spec: RunSpec,
    yet,
    layers: list[Layer],
    *,
    slo_seconds: float | None = None,
    max_batch: int = 64,
    window_seconds: float = 0.01,
    cache_entries: int = 4096,
) -> dict:
    """Drive one run-table cell; returns a JSON-able row.

    Every reported service-side number is read from the public telemetry
    plane (``svc.telemetry.snapshot()``); the generator itself only
    contributes the wall-clock frame (offered schedule, elapsed time).
    """
    pool = build_request_pool(spec.mix, layers)
    n_requests = spec.n_requests
    svc = PricingService(
        yet,
        engine=spec.engine,
        batch=BatchPolicy(max_batch=max_batch,
                          window_seconds=window_seconds,
                          auto_flush=True),
        cache=CachePolicy(max_entries=cache_entries),
        slo_seconds=slo_seconds,
    )
    with svc:
        # Warm the path outside the measured window: the first real
        # sweep calibrates SLO admission upward (the controller's seed
        # estimate is deliberately conservative, so a cold open-loop
        # schedule would shed its first windows spuriously).  The
        # baseline snapshot keeps the warmup out of the reported
        # counters — deltas of two public snapshots, no private state.
        svc.quote(pool[0][0])
        base = svc.telemetry.snapshot()["metrics"]
        tickets = []
        start = time.perf_counter()
        for i in range(n_requests):
            # Open loop: arrival i is due at start + i/rate.  When the
            # schedule has slipped (now past due) submit immediately —
            # never let a slow server pace the client.
            due = start + i / spec.rate
            now = time.perf_counter()
            if due > now:
                time.sleep(due - now)
            layer, metric = pool[i % len(pool)]
            try:
                tickets.append(svc.submit(layer, metric))
            except AdmissionError:
                pass        # counted by the service as serve.shed
        submit_elapsed = time.perf_counter() - start
        svc.drain()
        for ticket in tickets:
            ticket.result()
        elapsed = time.perf_counter() - start
        verify_prometheus_round_trip(svc.telemetry)
        snap = svc.telemetry.snapshot()

    m = snap["metrics"]

    def delta(name: str) -> float:
        return m.get(name, 0) - base.get(name, 0)

    offered = int(delta("serve.requests"))
    shed = int(delta("serve.shed"))
    served = offered - shed
    return {
        "name": spec.name,
        "mix": spec.mix,
        "engine": spec.engine,
        "offered_rate": spec.rate,
        "achieved_offer_rate": offered / submit_elapsed if submit_elapsed else 0.0,
        "duration_seconds": spec.duration_seconds,
        "elapsed_seconds": elapsed,
        "offered": offered,
        "served": served,
        "shed": shed,
        "shed_rate": shed / offered if offered else 0.0,
        "served_rate": served / elapsed if elapsed else 0.0,
        "p50_ms": m.get("serve.request.seconds.p50", 0.0) * 1e3,
        "p95_ms": m.get("serve.request.seconds.p95", 0.0) * 1e3,
        "p99_ms": m.get("serve.request.seconds.p99", 0.0) * 1e3,
        "latency_count": int(delta("serve.request.seconds.count")),
        "queue_depth_max": m.get("serve.queue.depth.max", 0.0),
        "cache_hits": int(delta("serve.cache.hits")),
        "batches": int(delta("serve.batches")),
        "largest_batch": m.get("serve.largest_batch.max", 0.0),
    }


def calibrate_capacity(
    yet,
    layers: list[Layer],
    *,
    burst: int = 64,
    repeats: int = 2,
    max_batch: int = 64,
) -> float:
    """Closed-loop burst capacity in requests/second (no admission).

    A fresh service per repeat (fresh cache — every request sweeps).
    The *worst* repeat is reported: a closed-loop burst of full batches
    already overestimates what an open loop's window-sized batches can
    sustain, so the conservative repeat keeps sub-knee offered rates
    genuinely below the knee.
    """
    rates = []
    for _ in range(repeats):
        svc = PricingService(
            yet,
            batch=BatchPolicy(max_batch=max_batch, auto_flush=False),
            cache=CachePolicy(max_entries=0),
            slo_seconds=None,
        )
        with svc:
            t0 = time.perf_counter()
            tickets = [svc.submit(layers[i % len(layers)], "quote")
                       for i in range(burst)]
            svc.drain()
            for ticket in tickets:
                ticket.result()
            elapsed = time.perf_counter() - t0
            served = svc.telemetry.snapshot()["metrics"].get("serve.requests", 0)
        if elapsed > 0:
            rates.append(served / elapsed)
    return min(rates) if rates else 0.0
