"""E4 — the million-trial "typical contract" run (real-time pricing).

Paper claim (§II): "A 1 million trial aggregate simulation on a typical
contract only takes 25 seconds and can therefore support real-time
pricing."  The benchmark measures the 50k-trial operating point of the
same configuration; EXPERIMENTS.md records the full streamed 1M-trial
run (`run_e04_million_trials`), which on this machine lands in the same
tens-of-seconds band the paper reports.
"""

import pytest

from repro.core.engines import MulticoreEngine
from repro.core.simulation import AggregateAnalysis
from repro.dfa.pricing import RealTimePricer
from repro.serve import CachePolicy


@pytest.fixture(scope="module")
def analysis(contract_50k):
    return AggregateAnalysis(contract_50k.portfolio, contract_50k.yet)


@pytest.fixture(scope="module")
def multicore_engine():
    """One context-managed engine reused across every repeated sweep.

    Constructing per-run would respawn the worker pool and re-stage the
    shared-memory payload inside the timed region; reuse is also the
    documented engine contract (see AggregateAnalysis.run: caller-built
    engines keep their resources for reuse and close themselves).
    """
    with MulticoreEngine(n_workers=2) as engine:
        yield engine


def test_typical_contract_50k_trials(benchmark, analysis, contract_50k):
    """50k trials x ~1000 events/trial of one contract (vectorized)."""
    res = benchmark(lambda: analysis.run("vectorized"))
    assert res.portfolio_ylt.n_trials == 50_000


def test_typical_contract_50k_trials_multicore(benchmark, analysis,
                                               multicore_engine):
    """The same contract over the pooled engine: repeated sweeps reuse
    one warm pool and the staged shm payload (zero re-ships)."""
    res = benchmark(lambda: analysis.run(multicore_engine))
    assert res.portfolio_ylt.n_trials == 50_000
    assert multicore_engine.pool.payload_ships <= 1


def test_realtime_quote_latency(benchmark, contract_50k):
    """A full pricing quote (simulation + premium derivation).

    The result cache is disabled: pytest-benchmark re-quotes one layer,
    and a cache hit would measure a dict lookup instead of pricing.
    """
    pricer = RealTimePricer(contract_50k.yet, cache=CachePolicy(0))
    layer = contract_50k.portfolio.layers[0]
    quote = benchmark(lambda: pricer.quote(layer))
    assert quote.premium > 0


def test_million_trial_extrapolation_band(analysis, contract_50k):
    """Measured throughput extrapolated to 1M trials must stay within the
    real-time band the paper argues for (<60 s on this class of machine)."""
    import time

    analysis.run("vectorized")  # warm
    t0 = time.perf_counter()
    analysis.run("vectorized")
    t = time.perf_counter() - t0
    extrapolated_1m = t * (1_000_000 / contract_50k.yet.n_trials)
    assert extrapolated_1m < 120.0, (
        f"extrapolated 1M-trial time {extrapolated_1m:.1f}s is out of the "
        "real-time pricing band (paper: 25 s)"
    )
