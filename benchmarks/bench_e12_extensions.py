"""E12 (extensions) — ablations of the paper's optional machinery.

Not claims from the paper text, but the design choices DESIGN.md calls
out, measured: sampled-mode vs expected-mode analysis cost, the
reinstatement pass, out-of-core streaming vs in-memory, and compressed
vs raw chunk storage for the YET.
"""

import numpy as np
import pytest

from repro.core import sampled_aggregate_analysis
from repro.core.engines.outofcore import OutOfCoreEngine
from repro.core.reinstatements import apply_reinstatement_limit
from repro.core.simulation import AggregateAnalysis
from repro.data.compression import (
    compression_ratio,
    pack_table_compressed,
    unpack_table_compressed,
)
from repro.data.serialization import pack_table
from repro.data.store import ChunkStore
from repro.util.rng import RngHierarchy


@pytest.fixture(scope="module")
def analysis(study_20k):
    return AggregateAnalysis(study_20k.portfolio, study_20k.yet)


def test_expected_mode(benchmark, analysis):
    res = benchmark(lambda: analysis.run("vectorized"))
    assert res.portfolio_ylt.n_trials == 20_000


def test_sampled_mode(benchmark, study_20k):
    """Sampled-mode costs one extra RNG pass per occurrence."""
    rng = RngHierarchy(55)
    gen = rng.generator("sampling")
    ylts = benchmark(
        lambda: sampled_aggregate_analysis(study_20k.portfolio,
                                           study_20k.yet, gen)
    )
    assert next(iter(ylts.values())).n_trials == 20_000


def test_reinstatement_pass(benchmark, study_20k):
    res = AggregateAnalysis(study_20k.portfolio, study_20k.yet).run(
        "vectorized", emit_yelt=True
    )
    layer = study_20k.portfolio.layers[0]
    yelt = res.yelt_by_layer[layer.layer_id]
    limited = benchmark(
        lambda: apply_reinstatement_limit(yelt, layer.terms.occ_limit, 2)
    )
    assert limited.n_rows == yelt.n_rows


def test_out_of_core_stream(benchmark, study_20k, tmp_path_factory):
    store = ChunkStore(tmp_path_factory.mktemp("ooc"))
    store.write_table("yet", study_20k.yet.table, rows_per_chunk=500_000)
    engine = OutOfCoreEngine()
    res = benchmark.pedantic(
        lambda: engine.run_from_store(study_20k.portfolio, store, "yet",
                                      study_20k.yet.n_trials),
        rounds=2, iterations=1,
    )
    ref = AggregateAnalysis(study_20k.portfolio, study_20k.yet).run("vectorized")
    assert res.portfolio_ylt.allclose(ref.portfolio_ylt)


def test_yet_pack_raw(benchmark, study_20k):
    payload = benchmark(lambda: pack_table(study_20k.yet.table.slice(0, 2_000_000)))
    assert len(payload) > 0


def test_yet_pack_compressed(benchmark, study_20k):
    chunk = study_20k.yet.table.slice(0, 2_000_000)
    payload = benchmark(lambda: pack_table_compressed(chunk))
    assert unpack_table_compressed(payload).n_rows == chunk.n_rows


def test_yet_compression_ratio(study_20k):
    """The sorted YET must compress meaningfully (the §III 'large but
    not enormous' memory argument)."""
    chunk = study_20k.yet.table.slice(0, 500_000)
    assert compression_ratio(chunk) > 1.5
