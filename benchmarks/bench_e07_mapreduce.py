"""E7 — aggregate analysis over large distributed file space (MapReduce).

Paper claim (§II): the second viable strategy is "accumulation of large
distributed file space ... relying on MapReduce or Hadoop style
computations".  The benchmark runs the full job (DFS input splits → map →
combine → shuffle → reduce) and checks output equivalence; the simulated
worker-count scaling (LPT makespan over measured task times) is recorded
in EXPERIMENTS.md.
"""

import pytest

from repro.core.engines import MapReduceEngine, VectorizedEngine
from repro.core.simulation import AggregateAnalysis
from repro.data.dfs import SimDfs


@pytest.fixture(scope="module")
def analysis(study_20k):
    return AggregateAnalysis(study_20k.portfolio, study_20k.yet)


def test_mapreduce_full_job(benchmark, study_20k):
    engine = MapReduceEngine(n_splits=16, n_reducers=8)
    analysis = AggregateAnalysis(study_20k.portfolio, study_20k.yet)
    res = benchmark.pedantic(lambda: analysis.run(engine), rounds=2,
                             iterations=1)
    assert res.portfolio_ylt.n_trials == 20_000


def test_vectorized_reference(benchmark, analysis):
    """The in-memory path, for the cost-of-generality comparison."""
    res = benchmark(lambda: analysis.run("vectorized"))
    assert res.portfolio_ylt.n_trials == 20_000


def test_mapreduce_output_equivalent(study_20k):
    analysis = AggregateAnalysis(study_20k.portfolio, study_20k.yet)
    mr = analysis.run(MapReduceEngine(n_splits=16))
    ref = analysis.run("vectorized")
    assert mr.portfolio_ylt.allclose(ref.portfolio_ylt)


def test_worker_scaling_monotone(study_20k):
    """Simulated makespan must shrink monotonically with workers."""
    engine = MapReduceEngine(n_splits=16, n_reducers=8)
    AggregateAnalysis(study_20k.portfolio, study_20k.yet).run(engine)
    job = next(iter(engine.last_jobs.values()))
    spans = [job.makespan(w) for w in (1, 2, 4, 8, 16)]
    assert spans == sorted(spans, reverse=True)
    assert spans[0] / spans[2] > 2.0  # 4 workers at least halve 1-worker time


def test_dfs_block_write_throughput(benchmark, study_20k):
    """Writing the YET into the DFS (block-aligned packed batches)."""
    counter = [0]

    def write_once():
        dfs = SimDfs(n_datanodes=8)
        counter[0] += 1
        dfs.write_table(f"yet{counter[0]}", study_20k.yet.table,
                        rows_per_block=2_000_000)
        return dfs

    dfs = benchmark.pedantic(write_once, rounds=2, iterations=1)
    assert dfs.total_stored_bytes() > 0
