"""E8 — stage-1 (risk modelling) throughput.

Paper claim (§II): "in the first stage less than ten processors may be
sufficient to handle the data".  The benchmark measures the streamed
event×exposure pipeline; the processors-for-paper-scale derivation from
the measured rate is in EXPERIMENTS.md (it comes out at 1).
"""

import pytest

from repro.catmod import (
    CatModPipeline,
    assign_contracts,
    generate_catalog,
    generate_exposure,
    standard_perils,
)
from repro.catmod.geography import Region
from repro.hpc.cost_model import PipelineCostModel, StageSpec
from repro.util.rng import RngHierarchy

WEEK_SECONDS = 7 * 24 * 3600.0


@pytest.fixture(scope="module")
def stage1_inputs():
    rng = RngHierarchy(19)
    region = Region(25.0, 33.0, -98.0, -80.0)
    perils = standard_perils()
    catalog = generate_catalog(perils, region, 500, rng.generator("catalog"))
    exposure = generate_exposure(region, 4_000, rng.generator("exposure"))
    contracts = assign_contracts(exposure, 16, rng.generator("contracts"))
    return perils, catalog, exposure, contracts


def test_pipeline_run(benchmark, stage1_inputs):
    perils, catalog, exposure, contracts = stage1_inputs
    pipeline = CatModPipeline(perils)
    elts, stats = benchmark.pedantic(
        lambda: pipeline.run(catalog, exposure, contracts),
        rounds=2, iterations=1,
    )
    assert len(elts) == 16
    assert stats.event_site_pairs == 500 * 4_000


def test_elt_generation_only(benchmark, stage1_inputs):
    """Hazard+vulnerability+financial for one event batch (the hot loop)."""
    perils, catalog, exposure, contracts = stage1_inputs
    pipeline = CatModPipeline(perils)
    small_catalog = type(catalog)(catalog.table.slice(0, 64))
    result = benchmark(
        lambda: pipeline.run(small_catalog, exposure, contracts,
                             batch_events=64)
    )
    assert len(result[0]) == 16


def test_paper_scale_needs_fewer_than_ten_processors(stage1_inputs):
    perils, catalog, exposure, contracts = stage1_inputs
    _, stats = CatModPipeline(perils).run(catalog, exposure, contracts)
    model = PipelineCostModel([
        StageSpec("stage1", work_items=100_000 * 1_000_000,
                  throughput_per_proc=stats.pairs_per_second),
    ])
    req = model.procs_for_deadline("stage1", WEEK_SECONDS)
    assert req.feasible and req.n_procs < 10
