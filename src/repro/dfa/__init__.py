"""Stage 3 — dynamic financial analysis (DFA) and enterprise risk.

"The aggregate YLTs of catastrophe risks are integrated with investment,
reserving, interest rate, market cycle, counter-party, and operational
risks in the simulation ... From a YLT, a reinsurer can derive important
portfolio risk metrics such as the Probable Maximum Loss (PML) and the
Tail Value at Risk (TVAR) which are used for both internal risk
management and reporting to regulators and rating agencies" (§II).

This package provides each of those named risk sources as a YLT
generator (:mod:`repro.dfa.risks`), copula-based correlation for their
combination (:mod:`repro.dfa.correlation`, :mod:`repro.dfa.combine`),
the metric set (:mod:`repro.dfa.metrics`), regulator-style reporting
(:mod:`repro.dfa.reporting`), the enterprise roll-up
(:mod:`repro.dfa.erm`), and the real-time layer pricer that the paper's
"1 million trial ... 25 seconds" claim is about
(:mod:`repro.dfa.pricing`).
"""

from repro.dfa.metrics import RiskMetrics, probable_maximum_loss, tail_value_at_risk, value_at_risk
from repro.dfa.risks import (
    RiskSource,
    counterparty_risk,
    interest_rate_risk,
    investment_risk,
    market_cycle_risk,
    operational_risk,
    reserve_risk,
)
from repro.dfa.correlation import GaussianCopula
from repro.dfa.combine import combine_ylts
from repro.dfa.allocation import allocation_report_rows, co_tvar_allocation
from repro.dfa.reporting import regulator_report
from repro.dfa.erm import BusinessUnit, Enterprise
from repro.dfa.pricing import PricingQuote, RealTimePricer

__all__ = [
    "RiskMetrics",
    "value_at_risk",
    "tail_value_at_risk",
    "probable_maximum_loss",
    "RiskSource",
    "investment_risk",
    "reserve_risk",
    "interest_rate_risk",
    "market_cycle_risk",
    "counterparty_risk",
    "operational_risk",
    "GaussianCopula",
    "combine_ylts",
    "co_tvar_allocation",
    "allocation_report_rows",
    "regulator_report",
    "BusinessUnit",
    "Enterprise",
    "PricingQuote",
    "RealTimePricer",
]
