"""Enterprise risk management: the final roll-up of §II.

"These metrics then flow into the final stage in the risk analysis
pipeline, namely Enterprise Risk Management, where liability, asset, and
other forms of risks are combined and correlated to generate an
enterprise wide view of risk."  An :class:`Enterprise` holds business
units (each a named YLT), combines them under a dependence model, and
reports economic capital and the diversification benefit — the quantity
that justifies running the combination at full trial resolution instead
of adding standalone capital numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tables import YltTable
from repro.dfa.combine import combine_ylts
from repro.dfa.metrics import RiskMetrics, tail_value_at_risk
from repro.errors import AnalysisError

__all__ = ["BusinessUnit", "Enterprise"]


@dataclass(frozen=True)
class BusinessUnit:
    """One business unit / risk source in the enterprise view."""

    name: str
    ylt: YltTable

    def standalone_capital(self, q: float = 0.99) -> float:
        """TVaR-based standalone economic capital."""
        return tail_value_at_risk(self.ylt, q)


class Enterprise:
    """The enterprise-wide aggregation of business-unit YLTs."""

    def __init__(self, units: list[BusinessUnit]) -> None:
        if not units:
            raise AnalysisError("an enterprise needs at least one business unit")
        names = [u.name for u in units]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate business unit names: {names}")
        n = units[0].ylt.n_trials
        for u in units:
            if u.ylt.n_trials != n:
                raise AnalysisError("all units must share the trial count")
        self.units = list(units)

    @property
    def n_trials(self) -> int:
        return self.units[0].ylt.n_trials

    def combined_ylt(self, method: str = "trial_aligned",
                     correlation: np.ndarray | None = None,
                     rng: np.random.Generator | None = None) -> YltTable:
        return combine_ylts(
            [u.ylt for u in self.units], method=method,
            correlation=correlation, rng=rng,
        )

    def economic_capital(self, q: float = 0.99, method: str = "trial_aligned",
                         correlation: np.ndarray | None = None,
                         rng: np.random.Generator | None = None) -> float:
        """Enterprise TVaR(q) under the chosen dependence model."""
        return tail_value_at_risk(
            self.combined_ylt(method, correlation, rng), q
        )

    def diversification_benefit(self, q: float = 0.99,
                                method: str = "trial_aligned",
                                correlation: np.ndarray | None = None,
                                rng: np.random.Generator | None = None) -> float:
        """1 − combined capital / Σ standalone capital, in ``[0, 1]``.

        Zero means no diversification (comonotonic-like); larger is
        better.  Sub-additivity of TVaR guarantees non-negativity up to
        sampling noise for trial-aligned and copula combination.
        """
        standalone = sum(u.standalone_capital(q) for u in self.units)
        if standalone <= 0:
            raise AnalysisError("standalone capital is zero; benefit undefined")
        combined = self.economic_capital(q, method, correlation, rng)
        return 1.0 - combined / standalone

    def metrics(self, method: str = "trial_aligned",
                correlation: np.ndarray | None = None,
                rng: np.random.Generator | None = None) -> RiskMetrics:
        return RiskMetrics.from_ylt(self.combined_ylt(method, correlation, rng))
