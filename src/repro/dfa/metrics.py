"""Portfolio risk metrics: PML, VaR, TVaR (§II's named metrics).

All metrics are empirical functionals of a year-loss sample:

- **VaR(q)** — the ``q``-quantile of annual loss;
- **TVaR(q)** — the conditional mean above VaR(q); always ≥ VaR(q);
- **PML(T)** — the loss with a ``T``-year mean recurrence interval,
  i.e. VaR(1 − 1/T) (Woo 2002, the paper's ref. [8]).

:class:`RiskMetrics` bundles the standard report set for one YLT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tables import YltTable
from repro.util import stats_utils

__all__ = [
    "value_at_risk",
    "tail_value_at_risk",
    "probable_maximum_loss",
    "RiskMetrics",
    "STANDARD_RETURN_PERIODS",
    "STANDARD_TAIL_LEVELS",
]

#: Return periods (years) quoted in standard PML reports.
STANDARD_RETURN_PERIODS = (10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)
#: Tail levels quoted in standard VaR/TVaR reports.
STANDARD_TAIL_LEVELS = (0.9, 0.95, 0.99, 0.995, 0.999)


def _losses(ylt) -> np.ndarray:
    if isinstance(ylt, YltTable):
        return ylt.losses
    return np.asarray(ylt, dtype=np.float64)


def value_at_risk(ylt, q: float) -> float:
    """Annual-loss quantile at non-exceedance level ``q``."""
    return stats_utils.empirical_quantile(_losses(ylt), q)


def tail_value_at_risk(ylt, q: float) -> float:
    """Conditional expectation of annual loss beyond VaR(q)."""
    return stats_utils.tail_expectation(_losses(ylt), q)


def probable_maximum_loss(ylt, return_period_years: float) -> float:
    """Loss with the given mean recurrence interval (PML)."""
    return stats_utils.return_period_loss(_losses(ylt), return_period_years)


@dataclass(frozen=True)
class RiskMetrics:
    """The standard metric set for one year-loss table."""

    mean: float
    std: float
    pml: dict[float, float]       # return period -> loss
    var: dict[float, float]       # level -> loss
    tvar: dict[float, float]      # level -> loss
    standard_error: float
    n_trials: int

    @classmethod
    def from_ylt(
        cls,
        ylt,
        return_periods=STANDARD_RETURN_PERIODS,
        tail_levels=STANDARD_TAIL_LEVELS,
    ) -> "RiskMetrics":
        losses = _losses(ylt)
        return cls(
            mean=float(losses.mean()),
            std=float(losses.std(ddof=1)) if losses.size > 1 else 0.0,
            pml={t: stats_utils.return_period_loss(losses, t) for t in return_periods},
            var={q: stats_utils.empirical_quantile(losses, q) for q in tail_levels},
            tvar={q: stats_utils.tail_expectation(losses, q) for q in tail_levels},
            standard_error=(
                stats_utils.standard_error_of_mean(losses) if losses.size > 1 else 0.0
            ),
            n_trials=losses.size,
        )

    def check_coherence(self) -> None:
        """Assert the internal-order invariants (used by property tests).

        Tolerances are relative: empirical quantiles and tail means of
        large-magnitude samples carry O(eps·|loss|) round-off.
        """
        def tol(x: float) -> float:
            return 1e-9 * max(1.0, abs(x))

        periods = sorted(self.pml)
        for a, b in zip(periods, periods[1:]):
            assert self.pml[a] <= self.pml[b] + tol(self.pml[b]), \
                "PML must grow with return period"
        for q in self.var:
            assert self.tvar[q] + tol(self.var[q]) >= self.var[q], \
                "TVaR must dominate VaR"
        levels = sorted(self.var)
        for a, b in zip(levels, levels[1:]):
            assert self.var[a] <= self.var[b] + tol(self.var[b]), \
                "VaR must grow with level"
