"""Non-catastrophe risk sources for the DFA simulation.

§II names the risks the cat YLTs are integrated with: *investment,
reserving, interest rate, market cycle, counter-party, and operational*.
Each generator here simulates one of them as a YLT over the same trial
set as the catastrophe analysis — one annual *loss* per trial (gains
floor at zero, as DFA downside models do), using standard parametric
forms from the DFA literature (Blum & Dacorogna 2004, ref. [6]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tables import YltTable
from repro.errors import ConfigurationError
from repro.util.validation import check_fraction, check_non_negative, check_positive

__all__ = [
    "RiskSource",
    "investment_risk",
    "reserve_risk",
    "interest_rate_risk",
    "market_cycle_risk",
    "counterparty_risk",
    "operational_risk",
]


@dataclass(frozen=True)
class RiskSource:
    """A named risk with its simulated YLT."""

    name: str
    ylt: YltTable

    @property
    def n_trials(self) -> int:
        return self.ylt.n_trials


def investment_risk(n_trials: int, rng: np.random.Generator,
                    assets: float = 1e9, mu: float = 0.05,
                    sigma: float = 0.12) -> RiskSource:
    """Mark-to-market loss on the asset portfolio.

    Annual return is normal(μ, σ); the loss is the shortfall below zero
    return (a downside-only view of investment result).
    """
    check_positive("assets", assets)
    check_positive("sigma", sigma)
    returns = rng.normal(mu, sigma, size=n_trials)
    losses = np.maximum(0.0, -returns) * assets
    return RiskSource("investment", YltTable(losses))


def reserve_risk(n_trials: int, rng: np.random.Generator,
                 reserves: float = 2e9, cv: float = 0.08) -> RiskSource:
    """Adverse development of held reserves (lognormal deterioration)."""
    check_positive("reserves", reserves)
    check_positive("cv", cv)
    sigma = np.sqrt(np.log1p(cv * cv))
    mu = -0.5 * sigma * sigma  # mean development factor of 1
    factors = rng.lognormal(mu, sigma, size=n_trials)
    losses = np.maximum(0.0, factors - 1.0) * reserves
    return RiskSource("reserve", YltTable(losses))


def interest_rate_risk(n_trials: int, rng: np.random.Generator,
                       liabilities: float = 1.5e9, duration_gap: float = 2.0,
                       rate_vol: float = 0.012) -> RiskSource:
    """Duration-gap P&L from parallel rate shifts (Vasicek-style shock)."""
    check_positive("liabilities", liabilities)
    check_positive("rate_vol", rate_vol)
    shocks = rng.normal(0.0, rate_vol, size=n_trials)
    pnl = -duration_gap * shocks * liabilities
    return RiskSource("interest_rate", YltTable(np.maximum(0.0, -pnl)))


def market_cycle_risk(n_trials: int, rng: np.random.Generator,
                      premium: float = 8e8, soft_prob: float = 0.3,
                      soft_shortfall: float = 0.15) -> RiskSource:
    """Underwriting-cycle risk: soft-market years under-price the book."""
    check_positive("premium", premium)
    check_fraction("soft_prob", soft_prob)
    check_fraction("soft_shortfall", soft_shortfall)
    soft = rng.random(n_trials) < soft_prob
    severity = rng.beta(2.0, 5.0, size=n_trials) * soft_shortfall * 2.0
    losses = np.where(soft, severity * premium, 0.0)
    return RiskSource("market_cycle", YltTable(losses))


def counterparty_risk(n_trials: int, rng: np.random.Generator,
                      recoverables: float = 5e8, default_prob: float = 0.01,
                      loss_given_default: float = 0.5) -> RiskSource:
    """Retrocessionaire default on reinsurance recoverables."""
    check_positive("recoverables", recoverables)
    check_fraction("default_prob", default_prob)
    check_fraction("loss_given_default", loss_given_default)
    defaults = rng.random(n_trials) < default_prob
    lgd = rng.beta(2.0, 2.0, size=n_trials) * 2.0 * loss_given_default
    losses = np.where(defaults, np.clip(lgd, 0.0, 1.0) * recoverables, 0.0)
    return RiskSource("counterparty", YltTable(losses))


def operational_risk(n_trials: int, rng: np.random.Generator,
                     annual_rate: float = 0.8, severity_median: float = 2e6,
                     severity_sigma: float = 1.6) -> RiskSource:
    """Operational events: Poisson frequency × lognormal severity."""
    check_non_negative("annual_rate", annual_rate)
    check_positive("severity_median", severity_median)
    check_positive("severity_sigma", severity_sigma)
    counts = rng.poisson(annual_rate, size=n_trials)
    total = int(counts.sum())
    severities = rng.lognormal(np.log(severity_median), severity_sigma, size=total)
    losses = np.zeros(n_trials)
    np.add.at(losses, np.repeat(np.arange(n_trials), counts), severities)
    return RiskSource("operational", YltTable(losses))
