"""Copula-based dependence for combining risk YLTs.

Summing independently simulated YLTs trial-by-trial implies zero
dependence between risks, which understates tail risk — catastrophe
years correlate with soft markets and counterparty stress.  The standard
DFA remedy is rank reordering (Iman–Conover): draw one multivariate
Gaussian vector per trial under the target correlation matrix and
rearrange each marginal's simulated losses to follow the ranks, which
preserves every marginal exactly while inducing the requested rank
correlation.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import YltTable
from repro.errors import AnalysisError, ConfigurationError

__all__ = ["GaussianCopula"]


class GaussianCopula:
    """Rank-dependence inducer over ``k`` marginals.

    Parameters
    ----------
    correlation:
        ``k×k`` symmetric positive-semidefinite matrix with unit diagonal.
    """

    def __init__(self, correlation: np.ndarray) -> None:
        corr = np.asarray(correlation, dtype=np.float64)
        if corr.ndim != 2 or corr.shape[0] != corr.shape[1]:
            raise ConfigurationError("correlation must be a square matrix")
        if not np.allclose(corr, corr.T, atol=1e-12):
            raise ConfigurationError("correlation must be symmetric")
        if not np.allclose(np.diag(corr), 1.0, atol=1e-12):
            raise ConfigurationError("correlation diagonal must be 1")
        # PSD check via eigenvalues (tolerating tiny negatives from fp).
        eigvals = np.linalg.eigvalsh(corr)
        if eigvals.min() < -1e-8:
            raise ConfigurationError(
                f"correlation matrix is not PSD (min eigenvalue {eigvals.min():.3g})"
            )
        self.correlation = corr
        # Factor for sampling: use eigen decomposition so PSD-but-singular
        # matrices (e.g. perfect correlation) still work.
        w = np.clip(eigvals, 0.0, None)
        v = np.linalg.eigh(corr)[1]
        self._factor = v @ np.diag(np.sqrt(w))

    @property
    def k(self) -> int:
        return self.correlation.shape[0]

    def sample_ranks(self, n_trials: int, rng: np.random.Generator) -> np.ndarray:
        """Rank matrix ``(n_trials, k)``: each column a permutation order.

        Column ``j``'s ranks follow the copula: trials that rank high in
        one risk tend to rank high in correlated risks.
        """
        if n_trials <= 0:
            raise AnalysisError("n_trials must be positive")
        z = rng.standard_normal((n_trials, self.k)) @ self._factor.T
        return np.argsort(np.argsort(z, axis=0), axis=0)

    def reorder(self, ylts: list[YltTable], rng: np.random.Generator) -> list[YltTable]:
        """Return reordered copies of the marginals with induced dependence.

        Each output YLT has exactly the same multiset of losses as its
        input (marginals preserved); only the trial assignment changes.
        """
        if len(ylts) != self.k:
            raise AnalysisError(
                f"copula has {self.k} marginals, got {len(ylts)} YLTs"
            )
        n = ylts[0].n_trials
        for y in ylts:
            if y.n_trials != n:
                raise AnalysisError("all YLTs must share the trial count")
        ranks = self.sample_ranks(n, rng)
        out = []
        for j, ylt in enumerate(ylts):
            sorted_losses = np.sort(ylt.losses)
            out.append(YltTable(sorted_losses[ranks[:, j]]))
        return out

    @classmethod
    def uniform(cls, k: int, rho: float) -> "GaussianCopula":
        """Equicorrelated matrix (all off-diagonals ``rho``)."""
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if not (-1.0 / (k - 1) if k > 1 else -1.0) <= rho <= 1.0:
            raise ConfigurationError(f"rho={rho} is infeasible for k={k}")
        corr = np.full((k, k), rho, dtype=np.float64)
        np.fill_diagonal(corr, 1.0)
        return cls(corr)
