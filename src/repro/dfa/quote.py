"""The quote record and premium arithmetic shared by both pricers.

A leaf module: :mod:`repro.dfa.pricing` (the classic synchronous
pricer) and :mod:`repro.serve.service` (the batched service) both
produce :class:`PricingQuote` values from the same
:func:`premium_components` arithmetic, so they live below both — one
formula, one place, and the two paths cannot silently diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tables import YltTable
from repro.dfa.metrics import tail_value_at_risk

__all__ = ["PricingQuote", "premium_components"]


def premium_components(
    ylt: YltTable,
    occ_limit: float,
    volatility_loading: float,
    tail_loading: float,
) -> tuple[float, float, float, float, float]:
    """Technical-premium decomposition of one layer YLT.

    Returns ``(expected_loss, volatility_load, tail_load, premium,
    rate_on_line)`` — the latency-free fields of a
    :class:`PricingQuote`, and exactly what the serving layer caches.
    """
    expected = ylt.mean()
    std = float(ylt.losses.std(ddof=1)) if ylt.n_trials > 1 else 0.0
    vol_load = volatility_loading * std
    tail = tail_loading * tail_value_at_risk(ylt, 0.99)
    premium = expected + vol_load + tail
    rol = (premium / occ_limit
           if occ_limit not in (0.0, float("inf")) else float("nan"))
    return expected, vol_load, tail, premium, rol


@dataclass(frozen=True)
class PricingQuote:
    """A technical price for one layer.

    Attributes
    ----------
    expected_loss:
        Mean annual layer loss over the trial set (the pure premium).
    volatility_load:
        Loading proportional to the annual-loss standard deviation.
    tail_load:
        Loading proportional to TVaR₉₉ (capital-cost proxy).
    premium:
        Technical premium: expected loss + both loadings.
    rate_on_line:
        Premium divided by the layer's occurrence limit (the market's
        quoting convention), when the limit is finite.
    latency_seconds:
        Wall time to produce the quote (for batched quotes: submission
        to resolution, including any batch-window wait).
    trials_per_second:
        Simulation throughput of the sweep that produced this number —
        for a cached quote, the throughput of the original sweep, not
        of the cache lookup.
    """

    expected_loss: float
    volatility_load: float
    tail_load: float
    premium: float
    rate_on_line: float
    latency_seconds: float
    trials_per_second: float
