"""Real-time layer pricing — the paper's "25 seconds" use case.

§II: "A 1 million trial aggregate simulation on a typical contract only
takes 25 seconds and can therefore support real-time pricing."  The
:class:`RealTimePricer` packages that workflow: given a candidate layer,
price it against the shared YET, derive the technical premium (expected
loss + volatility loading), and report latency plus the measured
trials/second — from which the E4 bench extrapolates and then *verifies*
the million-trial figure.

Since the serving layer landed, the pricer is a veneer over
:class:`~repro.serve.service.PricingService`: single quotes ride the
service's cache + fused sweep, and :meth:`RealTimePricer.quote_sweep`
prices *all* candidate structures in **one** stacked-kernel pass instead
of one YET sweep per alternative.  Passing a specific ``engine`` (an
instance, or any registry name other than the service-backed
``vectorized``/``multicore``) keeps the classic one-layer-one-run path
for both :meth:`quote` and :meth:`quote_sweep` — that is the
cross-engine validation hook, and its latency fields describe the
chosen engine, not the service.
"""

from __future__ import annotations

import time

from repro.core.engines import Engine, get_engine
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import YetTable
from repro.dfa.quote import PricingQuote, premium_components
from repro.errors import AnalysisError, ConfigurationError

__all__ = ["PricingQuote", "RealTimePricer"]


class RealTimePricer:
    """Prices candidate layers against a fixed YET in 'real time'.

    Parameters
    ----------
    yet:
        The shared, pre-simulated trial set (the consistent lens).
    engine:
        ``"vectorized"`` (default) and ``"multicore"`` run through the
        batched :class:`~repro.serve.service.PricingService` (inline and
        pooled dispatch respectively); ``"auto"`` lets the backing
        session's planner pick the dispatch substrate.  Any other name
        or an :class:`~repro.core.engines.Engine` instance prices each
        quote with a classic single-layer engine run.
    volatility_loading:
        Multiplier on the annual-loss std-dev added to the premium.
    tail_loading:
        Multiplier on TVaR₉₉ added to the premium (cost of capital).
    cache:
        Forwarded to the backing service: a
        :class:`~repro.serve.cache.CachePolicy` or ready
        :class:`~repro.serve.cache.ResultCache`.  ``CachePolicy(0)``
        disables result caching — what latency benchmarks that re-quote
        one layer need.
    session:
        A :class:`~repro.session.RiskSession` to share staged state
        with: the backing service then borrows the session's dispatcher
        (one worker pool and shared-memory arena across every workload)
        instead of staging privately.
    """

    def __init__(self, yet: YetTable, engine: str | Engine = "vectorized",
                 volatility_loading: float = 0.25,
                 tail_loading: float = 0.02,
                 cache=None, session=None) -> None:
        if volatility_loading < 0 or tail_loading < 0:
            raise AnalysisError("loadings must be non-negative")
        if session is not None and session.yet is not yet:
            raise ConfigurationError(
                "session is bound to a different YET than this pricer"
            )
        self.yet = yet
        self.volatility_loading = volatility_loading
        self.tail_loading = tail_loading
        self._cache = cache
        self._session = session
        self._use_service = isinstance(engine, str) and engine in (
            "vectorized", "multicore", "auto",
        )
        #: The classic-path engine; ``None`` for service-backed pricers
        #: (building one would just idle beside the service's dispatcher).
        self.engine = (
            None if self._use_service
            else get_engine(engine) if isinstance(engine, str) else engine
        )
        self._dispatch = {"multicore": "pooled", "auto": "auto"}.get(
            engine if isinstance(engine, str) else "", "inline"
        )
        self._service = None
        self._closed = False

    @property
    def service(self):
        """The backing :class:`~repro.serve.service.PricingService`,
        built on first use (legacy-engine pricers that never sweep skip
        the YET fingerprinting entirely)."""
        if self._closed:
            raise ConfigurationError("pricer is closed")
        if self._service is None:
            from repro.serve.service import PricingService

            self._service = PricingService(
                self.yet,
                engine=self._dispatch,
                volatility_loading=self.volatility_loading,
                tail_loading=self.tail_loading,
                cache=self._cache,
                session=self._session,
            )
        return self._service

    def close(self) -> None:
        """Release the service (worker pools when pooled); idempotent and
        terminal — a quote after close raises instead of silently
        (re)building a service and resurrecting worker pools."""
        self._closed = True
        if self._service is not None:
            self._service.close()
        if self.engine is not None and hasattr(self.engine, "close"):
            self.engine.close()

    def __enter__(self) -> "RealTimePricer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def quote(self, layer: Layer) -> PricingQuote:
        """Produce a technical premium for one candidate layer."""
        if self._use_service:
            return self.service.quote(layer)
        return self._quote_via_engine(layer)

    def quote_sweep(self, layers: list[Layer]) -> list[PricingQuote]:
        """Quote several structure alternatives (the what-if workflow).

        On the default (service-backed) engines all candidates are
        coalesced into a single stacked-kernel sweep — N alternatives
        cost one YET pass — while each quote keeps its own latency and
        throughput fields.  With an explicitly chosen engine the sweep
        prices per layer on that engine, keeping the cross-engine
        validation (and per-engine latency) semantics intact.
        """
        if self._use_service:
            return self.service.quote_many(list(layers))
        return [self._quote_via_engine(layer) for layer in layers]

    # -- the classic path (explicit engine choice) -------------------------

    def _quote_via_engine(self, layer: Layer) -> PricingQuote:
        """One-layer, one-engine-run pricing (cross-engine validation)."""
        t0 = time.perf_counter()
        result = self.engine.run(Portfolio([layer]), self.yet)
        ylt = result.ylt_by_layer[layer.layer_id]
        expected, vol_load, tail, premium, rol = premium_components(
            ylt, layer.terms.occ_limit,
            self.volatility_loading, self.tail_loading,
        )
        latency = time.perf_counter() - t0
        return PricingQuote(
            expected_loss=expected,
            volatility_load=vol_load,
            tail_load=tail,
            premium=premium,
            rate_on_line=rol,
            latency_seconds=latency,
            trials_per_second=self.yet.n_trials / latency if latency > 0 else float("inf"),
        )
