"""Real-time layer pricing — the paper's "25 seconds" use case.

§II: "A 1 million trial aggregate simulation on a typical contract only
takes 25 seconds and can therefore support real-time pricing."  The
:class:`RealTimePricer` packages that workflow: given a candidate layer,
run the fast engine over the shared YET, derive the technical premium
(expected loss + volatility loading), and report latency plus the
measured trials/second — from which the E4 bench extrapolates and then
*verifies* the million-trial figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.engines import Engine, get_engine
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import YetTable
from repro.dfa.metrics import tail_value_at_risk
from repro.errors import AnalysisError

__all__ = ["PricingQuote", "RealTimePricer"]


@dataclass(frozen=True)
class PricingQuote:
    """A technical price for one layer.

    Attributes
    ----------
    expected_loss:
        Mean annual layer loss over the trial set (the pure premium).
    volatility_load:
        Loading proportional to the annual-loss standard deviation.
    tail_load:
        Loading proportional to TVaR₉₉ (capital-cost proxy).
    premium:
        Technical premium: expected loss + both loadings.
    rate_on_line:
        Premium divided by the layer's occurrence limit (the market's
        quoting convention), when the limit is finite.
    latency_seconds:
        Wall time to produce the quote.
    trials_per_second:
        Simulation throughput achieved while quoting.
    """

    expected_loss: float
    volatility_load: float
    tail_load: float
    premium: float
    rate_on_line: float
    latency_seconds: float
    trials_per_second: float


class RealTimePricer:
    """Prices candidate layers against a fixed YET in 'real time'.

    Parameters
    ----------
    yet:
        The shared, pre-simulated trial set (the consistent lens).
    engine:
        Engine name or instance; defaults to the vectorised engine, the
        fastest single-process path.
    volatility_loading:
        Multiplier on the annual-loss std-dev added to the premium.
    tail_loading:
        Multiplier on TVaR₉₉ added to the premium (cost of capital).
    """

    def __init__(self, yet: YetTable, engine: str | Engine = "vectorized",
                 volatility_loading: float = 0.25,
                 tail_loading: float = 0.02) -> None:
        if volatility_loading < 0 or tail_loading < 0:
            raise AnalysisError("loadings must be non-negative")
        self.yet = yet
        self.engine = get_engine(engine) if isinstance(engine, str) else engine
        self.volatility_loading = volatility_loading
        self.tail_loading = tail_loading

    def quote(self, layer: Layer) -> PricingQuote:
        """Produce a technical premium for one candidate layer."""
        t0 = time.perf_counter()
        result = self.engine.run(Portfolio([layer]), self.yet)
        ylt = result.ylt_by_layer[layer.layer_id]
        expected = ylt.mean()
        std = float(ylt.losses.std(ddof=1)) if ylt.n_trials > 1 else 0.0
        vol_load = self.volatility_loading * std
        tail = self.tail_loading * tail_value_at_risk(ylt, 0.99)
        premium = expected + vol_load + tail
        latency = time.perf_counter() - t0
        occ_limit = layer.terms.occ_limit
        rol = premium / occ_limit if occ_limit not in (0.0, float("inf")) else float("nan")
        return PricingQuote(
            expected_loss=expected,
            volatility_load=vol_load,
            tail_load=tail,
            premium=premium,
            rate_on_line=rol,
            latency_seconds=latency,
            trials_per_second=self.yet.n_trials / latency if latency > 0 else float("inf"),
        )

    def quote_sweep(self, layers: list[Layer]) -> list[PricingQuote]:
        """Quote several structure alternatives (the what-if workflow)."""
        return [self.quote(layer) for layer in layers]
