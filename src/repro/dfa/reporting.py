"""Regulator / rating-agency style reporting.

§II: PML and TVaR "are used for both internal risk management and
reporting to regulators and rating agencies".  This module renders the
standard report: a PML ladder over return periods and a VaR/TVaR ladder
over tail levels, as fixed-width text (the pipeline's reporting endpoint
and the E10 bench's human-readable output).
"""

from __future__ import annotations

from repro.dfa.metrics import RiskMetrics
from repro.util.tables import render_table

__all__ = ["regulator_report", "pml_ladder_rows", "tail_ladder_rows"]


def pml_ladder_rows(metrics: RiskMetrics) -> list[list[object]]:
    """Rows of (return period, exceedance probability, PML)."""
    return [
        [f"{int(t)}y", f"{1.0 / t:.3%}", f"{metrics.pml[t]:,.0f}"]
        for t in sorted(metrics.pml)
    ]


def tail_ladder_rows(metrics: RiskMetrics) -> list[list[object]]:
    """Rows of (level, VaR, TVaR, TVaR/VaR)."""
    rows = []
    for q in sorted(metrics.var):
        var, tvar = metrics.var[q], metrics.tvar[q]
        ratio = tvar / var if var > 0 else float("nan")
        rows.append([f"{q:.1%}", f"{var:,.0f}", f"{tvar:,.0f}", f"{ratio:.2f}"])
    return rows


def regulator_report(metrics: RiskMetrics, title: str = "Portfolio risk report") -> str:
    """Render the full report as monospace text."""
    header = (
        f"{title}\n"
        f"trials: {metrics.n_trials:,}   expected annual loss: {metrics.mean:,.0f}"
        f"   (s.e. {metrics.standard_error:,.0f})   std: {metrics.std:,.0f}\n"
    )
    pml = render_table(
        ["return period", "exceedance p", "PML"],
        pml_ladder_rows(metrics),
        title="Probable Maximum Loss ladder",
    )
    tail = render_table(
        ["level", "VaR", "TVaR", "TVaR/VaR"],
        tail_ladder_rows(metrics),
        title="Tail ladders",
    )
    return f"{header}\n{pml}\n\n{tail}"
