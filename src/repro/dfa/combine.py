"""YLT combination: integrating catastrophe and non-catastrophe risks.

"The challenge here comes from the combination of YLTs representing
different risks" (§II).  Combination is a per-trial sum under a chosen
dependence structure:

- ``trial_aligned`` — sum as simulated (correct when all YLTs were driven
  by the same trial set, e.g. per-layer cat YLTs from one YET);
- ``independent`` — independently shuffle each marginal first;
- ``comonotonic`` — sort each marginal (maximal positive dependence; the
  conservative bound regulators ask about);
- ``copula`` — Gaussian-copula rank reordering with a target matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import YltTable
from repro.dfa.correlation import GaussianCopula
from repro.errors import AnalysisError

__all__ = ["combine_ylts"]


def combine_ylts(
    ylts: list[YltTable],
    method: str = "trial_aligned",
    correlation: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> YltTable:
    """Combine YLTs into one enterprise YLT under a dependence model."""
    if not ylts:
        raise AnalysisError("need at least one YLT to combine")
    n = ylts[0].n_trials
    for y in ylts:
        if y.n_trials != n:
            raise AnalysisError("all YLTs must share the trial count")

    if method == "trial_aligned":
        parts = [y.losses for y in ylts]
    elif method == "independent":
        if rng is None:
            raise AnalysisError("independent combination needs an rng")
        parts = [rng.permutation(y.losses) for y in ylts]
    elif method == "comonotonic":
        parts = [np.sort(y.losses) for y in ylts]
    elif method == "copula":
        if correlation is None or rng is None:
            raise AnalysisError("copula combination needs a correlation matrix and rng")
        copula = GaussianCopula(correlation)
        parts = [y.losses for y in copula.reorder(ylts, rng)]
    else:
        raise AnalysisError(
            f"unknown combination method {method!r}; use trial_aligned, "
            "independent, comonotonic, or copula"
        )
    return YltTable(np.sum(parts, axis=0))
