"""Capital allocation: attributing enterprise capital to business units.

The last sentence of §II's pipeline — ERM "combined and correlated to
generate an enterprise wide view of risk" — raises the question every
CRO asks next: *who is consuming the capital?*  The standard answer is
Euler/co-TVaR allocation: unit *i*'s capital is its expected loss in the
trial years where the *enterprise* is in its tail,

    A_i = E[X_i | X_total >= VaR_q(X_total)].

Because expectation is linear, the allocations sum exactly to the
enterprise TVaR (the "full allocation" property — property-tested), and
a unit that loses money in the same years as everyone else is charged
more than one that diversifies, at equal standalone risk.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import YltTable
from repro.errors import AnalysisError
from repro.util import stats_utils

__all__ = ["co_tvar_allocation", "allocation_report_rows"]


def co_tvar_allocation(ylts: dict[str, YltTable], q: float = 0.99
                       ) -> dict[str, float]:
    """Euler/co-TVaR capital allocation over trial-aligned unit YLTs.

    Parameters
    ----------
    ylts:
        Unit name → YLT; all must share the trial set (they must have
        been simulated on the same trials for the conditional to mean
        anything).
    q:
        Tail level of the enterprise TVaR being allocated.

    Returns
    -------
    dict
        Unit name → allocated capital.  Sums to the enterprise TVaR(q)
        up to floating-point round-off.
    """
    if not ylts:
        raise AnalysisError("need at least one unit YLT")
    if not (0.0 <= q < 1.0):
        raise AnalysisError(f"q must lie in [0, 1), got {q}")
    names = list(ylts)
    n = ylts[names[0]].n_trials
    for name in names:
        if ylts[name].n_trials != n:
            raise AnalysisError("all unit YLTs must share the trial count")

    total = np.sum([ylts[name].losses for name in names], axis=0)
    var = stats_utils.empirical_quantile(total, q)
    tail = total >= var
    if not tail.any():  # fp edge: fall back to the single worst year
        tail = total == total.max()
    return {
        name: float(ylts[name].losses[tail].mean()) for name in names
    }


def allocation_report_rows(ylts: dict[str, YltTable], q: float = 0.99
                           ) -> list[list[str]]:
    """Rows (unit, standalone TVaR, allocated, diversification %) for
    reporting; consumed by the examples and E10's extension bench."""
    alloc = co_tvar_allocation(ylts, q)
    rows = []
    for name, ylt in ylts.items():
        standalone = stats_utils.tail_expectation(ylt.losses, q)
        allocated = alloc[name]
        benefit = 1.0 - allocated / standalone if standalone > 0 else 0.0
        rows.append([
            name,
            f"{standalone:,.0f}",
            f"{allocated:,.0f}",
            f"{benefit:.1%}",
        ])
    return rows
