"""Benchmark support: workload generators and the experiment harness.

``benchmarks/`` (pytest-benchmark) and EXPERIMENTS.md are both generated
from this package so that the numbers in the document and the numbers in
the bench output come from the same code paths.
"""

from repro.bench.workloads import (
    Workload,
    build_elt,
    build_layer_workload,
    build_portfolio_workload,
    companion_study_workload,
    dfa_workload,
    typical_contract_workload,
    warehouse_fact_table,
)
from repro.bench.harness import BenchRecord, time_call

__all__ = [
    "Workload",
    "build_elt",
    "build_layer_workload",
    "build_portfolio_workload",
    "companion_study_workload",
    "typical_contract_workload",
    "dfa_workload",
    "warehouse_fact_table",
    "BenchRecord",
    "time_call",
]
