"""Experiment runners: one function per paper claim (E1-E11).

Each ``run_eXX`` executes the experiment at a configurable scale and
returns an :class:`~repro.bench.harness.ExperimentReport` whose rendered
table is what EXPERIMENTS.md quotes.  The ``benchmarks/`` suite calls the
same functions under pytest-benchmark, so document and bench never
diverge.  Scales default to "minutes on one core"; every runner takes
explicit sizes so the full paper scale can be requested on bigger iron.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.comparison import compare_engines
from repro.bench.harness import ExperimentReport, time_call
from repro.bench.workloads import (
    build_layer_workload,
    companion_study_workload,
    dfa_workload,
    warehouse_fact_table,
)
from repro.catmod import (
    CatModPipeline,
    assign_contracts,
    generate_catalog,
    generate_exposure,
    standard_perils,
)
from repro.catmod.geography import Region
from repro.core import AggregateAnalysis, YelltModel, YetTable, YltTable
from repro.core.engines import (
    DeviceEngine,
    MapReduceEngine,
    MulticoreEngine,
    VectorizedEngine,
)
from repro.core.tables import EltTable
from repro.data.columnar import ColumnTable
from repro.data.rdbms import RowStore
from repro.data.warehouse import LossCube
from repro.dfa import RiskMetrics, combine_ylts
from repro.dfa.correlation import GaussianCopula
from repro.hpc.cost_model import PipelineCostModel, StageSpec
from repro.util.rng import RngHierarchy
from repro.util.tables import format_bytes, format_count
from repro.util.timing import format_seconds

__all__ = [
    "run_e01_table_sizes",
    "run_e03_speedup",
    "run_e04_million_trials",
    "run_e05_chunking",
    "run_e06_scan_vs_random",
    "run_e07_mapreduce",
    "run_e08_stage1_pipeline",
    "run_e09_burst_elasticity",
    "run_e10_dfa_metrics",
    "run_e11_ablations",
    "run_all",
]

WEEK_SECONDS = 7 * 24 * 3600.0


# ---------------------------------------------------------------------------
# E1 + E2 — table size laws and ratios
# ---------------------------------------------------------------------------

def run_e01_table_sizes(n_trials: int = 2_000) -> ExperimentReport:
    """E1/E2: YELLT > 5e16 entries at paper scale; YELT/YELLT and YLT/YELT
    ratios of ~1000x, checked analytically and on a materialised run."""
    report = ExperimentReport(
        "E1/E2",
        "YELLT has >5e16 entries at paper scale; YELT ~1000x smaller than "
        "YELLT and ~1000x bigger than YLT",
        ["table", "accounting", "entries", "bytes @8B", "ratio to next"],
    )
    model = YelltModel.paper_scale()
    yellt = model.yellt_entries()
    yelt = model.yelt_entries()
    ylt = model.ylt_entries()
    report.add_row("YELLT", "paper cross-product", format_count(yellt),
                   format_bytes(model.bytes_at(yellt)), f"{yellt / yelt:.0f}x YELT")
    report.add_row("YELT", "paper cross-product", format_count(yelt),
                   format_bytes(model.bytes_at(yelt)), f"{yelt / ylt:.0f}x YLT")
    report.add_row("YLT", "paper cross-product", format_count(ylt),
                   format_bytes(model.bytes_at(ylt)), "-")
    # The paper says "over 5x10^16"; its own parameters give exactly 5e16.
    assert yellt >= 5e16, "paper-scale YELLT must reach 5e16 entries"

    # Materialised check at bench scale: the YELT/YLT ratio equals the
    # realised mean events per trial.
    wl = companion_study_workload(n_trials=n_trials)
    res = AggregateAnalysis(wl.portfolio, wl.yet).run("vectorized", emit_yelt=True)
    yelt_rows = res.yelt_rows()
    ylt_rows = res.portfolio_ylt.n_trials
    report.add_row("YELT (materialised)", f"{n_trials} trials run",
                   format_count(yelt_rows), format_bytes(yelt_rows * 24),
                   f"{yelt_rows / ylt_rows:.0f}x YLT")
    report.add_row("YLT (materialised)", f"{n_trials} trials run",
                   format_count(ylt_rows), format_bytes(ylt_rows * 16), "-")
    report.add_note(
        f"materialised YELT/YLT ratio = {yelt_rows / ylt_rows:.0f} "
        f"(driven by ~{wl.yet.mean_events_per_trial():.0f} events/trial; "
        "paper quotes 'generally 1000 times')"
    )
    report.add_note(
        "YELLT at paper scale is "
        f"{format_bytes(model.bytes_at(yellt))} — §II's point that existing "
        "tools cannot analyse at YELLT level"
    )
    return report


# ---------------------------------------------------------------------------
# E3 — GPU vs sequential speedup
# ---------------------------------------------------------------------------

def run_e03_speedup(trials_list=(250, 500, 1_000, 2_000),
                    repeats: int = 1) -> ExperimentReport:
    """E3: the data-parallel engines vs the sequential counterpart.

    The paper (via [7]) claims ~15x for the GPU; we report the shape:
    speedup grows with trial count and exceeds 15x well before the
    companion study's 100k-trial operating point.

    The pool-backed engine is constructed once, reused across the whole
    trial sweep (its workers amortise over every run), and closed by the
    ``with`` block — sweeps must never leak worker pools across
    :func:`run_all`.
    """
    report = ExperimentReport(
        "E3",
        "aggregate analysis: data-parallel engine >= 15x the sequential counterpart",
        ["trials", "sequential", "vectorized", "multicore", "device",
         "vec speedup", "dev speedup"],
    )
    best_dev = 0.0
    with MulticoreEngine() as mc_engine:
        for n_trials in trials_list:
            wl = companion_study_workload(n_trials=n_trials)
            analysis = AggregateAnalysis(wl.portfolio, wl.yet)
            t_seq, _ = time_call(lambda: analysis.run("sequential"), repeats=repeats, warmup=0)
            t_vec, _ = time_call(lambda: analysis.run("vectorized"), repeats=repeats, warmup=1)
            t_mc, _ = time_call(lambda: analysis.run(mc_engine), repeats=repeats, warmup=1)
            t_dev, _ = time_call(lambda: analysis.run("device"), repeats=repeats, warmup=1)
            report.add_row(
                n_trials, format_seconds(t_seq), format_seconds(t_vec),
                format_seconds(t_mc), format_seconds(t_dev),
                f"{t_seq / t_vec:.1f}x", f"{t_seq / t_dev:.1f}x",
            )
            best_dev = max(best_dev, t_seq / t_dev)
    report.add_note(
        f"peak device-engine speedup {best_dev:.1f}x vs paper's '15x times "
        "faster than the sequential counterpart'"
    )
    return report


# ---------------------------------------------------------------------------
# E4 — the million-trial real-time pricing run
# ---------------------------------------------------------------------------

def run_e04_million_trials(
    full_trials: int = 1_000_000,
    events_per_trial: float = 100.0,
    block_trials: int = 100_000,
    throughput_trials: int = 50_000,
) -> ExperimentReport:
    """E4: a 1M-trial aggregate simulation of a typical contract.

    The paper quotes ~25 s on a 2012 GPU.  We run the full 1M trials for
    real (in YET blocks to bound memory) at ``events_per_trial``
    occurrences per year, and separately measure occurrence throughput at
    the companion study's 1000 events/trial to extrapolate that
    configuration.
    """
    report = ExperimentReport(
        "E4",
        "1M-trial aggregate simulation of a typical contract supports "
        "real-time pricing (paper: ~25 s)",
        ["configuration", "trials", "events/trial", "wall time", "trials/s"],
    )
    rng = RngHierarchy(11)
    wl_small = build_layer_workload(
        n_trials=throughput_trials, mean_events_per_trial=1000.0,
        n_elts=1, elt_rows=16_000, catalog_events=100_000, seed=11,
    )
    engine = VectorizedEngine()
    analysis = AggregateAnalysis(wl_small.portfolio, wl_small.yet)
    t_1000, _ = time_call(lambda: analysis.run(engine), repeats=2, warmup=1)
    report.add_row(
        "measured @1000 ev/trial", throughput_trials, 1000,
        format_seconds(t_1000), f"{throughput_trials / t_1000:,.0f}",
    )
    extrapolated = t_1000 * (full_trials / throughput_trials)
    report.add_row(
        "extrapolated @1000 ev/trial", full_trials, 1000,
        format_seconds(extrapolated), f"{full_trials / extrapolated:,.0f}",
    )

    # The real full-scale run, streamed in trial blocks.
    portfolio = wl_small.portfolio
    catalog_ids = np.arange(100_000, dtype=np.int64)
    rates = np.full(100_000, 1.0 / 100_000)
    total_seconds = 0.0
    n_blocks = full_trials // block_trials
    for b in range(n_blocks):
        yet_block = YetTable.simulate(
            catalog_ids, rates, block_trials,
            rng.generator(f"e4/block{b}"),
            mean_events_per_trial=events_per_trial,
        )
        t_block, _ = time_call(
            lambda: engine.run(portfolio, yet_block), repeats=1, warmup=0
        )
        total_seconds += t_block
    report.add_row(
        "measured full run", full_trials, int(events_per_trial),
        format_seconds(total_seconds), f"{full_trials / total_seconds:,.0f}",
    )
    report.add_note(
        f"paper: 25 s on a 2012 GPU; this machine: {format_seconds(total_seconds)} "
        f"at {events_per_trial:.0f} ev/trial measured, "
        f"{format_seconds(extrapolated)} at 1000 ev/trial extrapolated"
    )
    report.add_note(
        "real-time pricing threshold (<1 min) "
        + ("met" if total_seconds < 60 else "not met")
        + " for the measured configuration"
    )
    return report


# ---------------------------------------------------------------------------
# E5 — chunking / memory-placement ablation
# ---------------------------------------------------------------------------

def run_e05_chunking(n_trials: int = 20_000,
                     chunk_sizes=(50_000, 200_000, 1_000_000, None)) -> ExperimentReport:
    """E5: shared/constant-memory chunking on the simulated device.

    Workload uses a catalogue small enough that the dense lookup fits the
    64 KiB constant space, so all four placement variants are reachable.
    """
    report = ExperimentReport(
        "E5",
        "chunking into shared+constant memory is the key GPU optimisation",
        ["variant", "chunk rows", "lookup placement", "wall time", "h2d traffic"],
    )
    wl = build_layer_workload(
        n_trials=n_trials, mean_events_per_trial=1000.0, n_elts=4,
        elt_rows=2_000, catalog_events=6_000, seed=13,
    )
    analysis = AggregateAnalysis(wl.portfolio, wl.yet)

    # Memory-placement ablation at a fixed, realistic chunk size.
    variants = [
        ("naive (global, no shared)", dict(use_constant=False, use_shared=False)),
        ("shared only", dict(use_constant=False, use_shared=True)),
        ("constant only", dict(use_constant=True, use_shared=False)),
        ("shared + constant", dict(use_constant=True, use_shared=True)),
    ]
    times = {}
    for label, flags in variants:
        engine = DeviceEngine(max_rows_per_chunk=200_000, **flags)
        t, res = time_call(lambda e=engine: analysis.run(e), repeats=2, warmup=1)
        placement = (
            "constant" if res.details["layers"][0]["lookup_in_constant"] else "global"
        )
        times[label] = t
        report.add_row(label, res.details["layers"][0]["rows_per_chunk"],
                       placement, format_seconds(t),
                       format_bytes(res.details["h2d_bytes"]))

    # Chunk-size sweep, including the planner's unconstrained (single
    # resident chunk) plan — the locality effect chunking is about.
    sweep_times = {}
    for rows in chunk_sizes:
        engine = DeviceEngine(max_rows_per_chunk=rows)
        t, res = time_call(lambda e=engine: analysis.run(e), repeats=2, warmup=1)
        actual = res.details["layers"][0]["rows_per_chunk"]
        sweep_times[actual] = t
        label = "chunk sweep" if rows is not None else "chunk sweep (planner max)"
        report.add_row(label, actual, "constant", format_seconds(t),
                       format_bytes(res.details["h2d_bytes"]))
    best_rows = min(sweep_times, key=sweep_times.get)
    worst_rows = max(sweep_times, key=lambda k: sweep_times[k])
    report.add_note(
        f"chunking effect: best chunk ({best_rows:,} rows) is "
        f"{sweep_times[worst_rows] / sweep_times[best_rows]:.2f}x faster than "
        f"the worst ({worst_rows:,} rows) — the locality win chunking buys"
    )
    report.add_note(
        "constant/shared placement is a *capacity feasibility* property on "
        "the simulated device (both spaces are host RAM): the planner "
        "proves the layout fits 64 KiB constant + 48 KiB shared per block, "
        "while its wall-time benefit is hardware-specific (the [7] study "
        "measured it on a real Fermi GPU)"
    )
    return report


# ---------------------------------------------------------------------------
# E6 — scan vs random access
# ---------------------------------------------------------------------------

def run_e06_scan_vs_random(n_occurrences: int = 200_000,
                           elt_rows: int = 20_000) -> ExperimentReport:
    """E6: the same join executed as an indexed random-access plan (row
    store + B+-tree) and as a columnar scan/gather plan."""
    report = ExperimentReport(
        "E6",
        "data must be scanned over, not randomly accessed: columnar scan "
        "vs B+-tree row store on the YET-to-ELT join",
        ["plan", "wall time", "logical I/O", "throughput (occ/s)"],
    )
    rng = RngHierarchy(17)
    elt = EltTable.from_arrays(
        np.arange(elt_rows, dtype=np.int64),
        rng.generator("losses").lognormal(12.0, 1.2, elt_rows),
    )
    # Random event stream hitting the ELT (the YET's event column).
    occurrences = rng.generator("occ").integers(0, elt_rows, size=n_occurrences)

    # Plan A: traditional row store, key-at-a-time.
    store = RowStore(elt.table.schema, key="event_id", page_rows=128)
    store.bulk_load(elt.table)
    store.stats.reset()

    def plan_a():
        return float(store.get_many(occurrences, "mean_loss").sum())

    t_a, total_a = time_call(plan_a, repeats=1, warmup=0)
    io_a = f"{store.stats.page_reads:,} page reads + {store.index_node_visits:,} index nodes"

    # Plan B: columnar scan -> vectorised gather.
    from repro.core.lookup import LossLookup

    lookup = LossLookup.from_elt(elt)

    def plan_b():
        return float(lookup(occurrences).sum())

    t_b, total_b = time_call(plan_b, repeats=3, warmup=1)
    assert abs(total_a - total_b) < 1e-6 * max(abs(total_a), 1.0), \
        "plans must agree on the answer"

    report.add_row("B+-tree random access", format_seconds(t_a), io_a,
                   f"{n_occurrences / t_a:,.0f}")
    report.add_row("columnar scan + gather", format_seconds(t_b),
                   f"{elt_rows:,} rows streamed once",
                   f"{n_occurrences / t_b:,.0f}")
    report.add_note(f"scan plan is {t_a / t_b:,.0f}x faster at {n_occurrences:,} occurrences")
    return report


# ---------------------------------------------------------------------------
# E7 — MapReduce over distributed file space
# ---------------------------------------------------------------------------

def run_e07_mapreduce(n_trials: int = 20_000, n_splits: int = 16,
                      workers=(1, 2, 4, 8, 16)) -> ExperimentReport:
    """E7: aggregate analysis as a MapReduce job; simulated worker scaling
    from measured per-task times (LPT makespan)."""
    report = ExperimentReport(
        "E7",
        "MapReduce/Hadoop-style computation over large distributed file "
        "space is the second viable strategy",
        ["workers", "makespan (model)", "speedup", "efficiency"],
    )
    wl = companion_study_workload(n_trials=n_trials)
    engine = MapReduceEngine(n_splits=n_splits, n_reducers=8)
    analysis = AggregateAnalysis(wl.portfolio, wl.yet)
    res = analysis.run(engine)
    # Verify against the vectorized engine.
    ref = analysis.run("vectorized")
    assert ref.portfolio_ylt.allclose(res.portfolio_ylt), "MapReduce output mismatch"

    job = engine.last_jobs[wl.portfolio.layers[0].layer_id]
    base = job.makespan(1)
    for w in workers:
        mk = job.makespan(w)
        speedup = base / mk
        report.add_row(w, format_seconds(mk), f"{speedup:.2f}x",
                       f"{speedup / w:.2f}")
    c = job.counters
    report.add_note(
        f"{n_splits} map tasks over {c['map_input_records']:,} YET records, "
        f"{engine.n_reducers} reducers over {c['reduce_input_groups']:,} trial "
        f"groups; shuffle ~{format_bytes(c['shuffle_bytes'])}"
    )
    report.add_note("output verified equal to the vectorized engine")
    return report


# ---------------------------------------------------------------------------
# E8 — stage-1 pipeline throughput
# ---------------------------------------------------------------------------

def run_e08_stage1_pipeline(n_events: int = 1_000, n_sites: int = 5_000,
                            n_contracts: int = 20) -> ExperimentReport:
    """E8: risk-modelling throughput and the processors needed at paper
    scale (the '<10 processors' stage)."""
    report = ExperimentReport(
        "E8",
        "stage 1 streams event-exposure pairs; fewer than ten processors suffice",
        ["quantity", "value"],
    )
    rng = RngHierarchy(19)
    region = Region(25.0, 33.0, -98.0, -80.0)
    perils = standard_perils()
    catalog = generate_catalog(perils, region, n_events, rng.generator("catalog"))
    exposure = generate_exposure(region, n_sites, rng.generator("exposure"))
    contracts = assign_contracts(exposure, n_contracts, rng.generator("contracts"))
    pipeline = CatModPipeline(perils)
    elts, stats = pipeline.run(catalog, exposure, contracts)

    report.add_row("events processed", f"{stats.n_events:,}")
    report.add_row("exposure sites", f"{stats.n_sites:,}")
    report.add_row("event-site pairs", f"{stats.event_site_pairs:,}")
    report.add_row("wall time", format_seconds(stats.seconds))
    report.add_row("throughput", f"{stats.pairs_per_second:,.0f} pairs/s")
    report.add_row("ELTs produced", f"{len(elts)} (non-empty: "
                   f"{sum(1 for e in elts if e.mean_losses.sum() > 0)})")

    # Processors needed at paper scale (100k events x 1M sites, weekly).
    paper_pairs = 100_000 * 1_000_000
    model = PipelineCostModel([
        StageSpec("risk modelling", work_items=paper_pairs,
                  throughput_per_proc=stats.pairs_per_second),
    ])
    req = model.procs_for_deadline("risk modelling", WEEK_SECONDS)
    report.add_row("procs for paper scale, weekly deadline", str(req.n_procs))
    report.add_note(
        f"{req.n_procs} processor(s) needed vs paper's 'less than ten "
        "processors may be sufficient'"
    )
    assert req.n_procs < 10, "stage 1 should need <10 processors"
    return report


# ---------------------------------------------------------------------------
# E9 — burst / elasticity profile
# ---------------------------------------------------------------------------

def run_e09_burst_elasticity(measure_trials: int = 20_000) -> ExperimentReport:
    """E9: processors per stage at paper scale — the burst profile that
    motivates elastic (cloud) provisioning."""
    report = ExperimentReport(
        "E9",
        "stage 1 needs <10 processors; stages 2-3 need thousands to tens "
        "of thousands — the burst that makes elasticity attractive",
        ["stage", "work items", "deadline", "processors needed", "runtime @P"],
    )
    rng = RngHierarchy(23)

    # Measured single-core throughputs.
    region = Region(25.0, 33.0, -98.0, -80.0)
    perils = standard_perils()
    catalog = generate_catalog(perils, region, 400, rng.generator("catalog"))
    exposure = generate_exposure(region, 2_000, rng.generator("exposure"))
    contracts = assign_contracts(exposure, 8, rng.generator("contracts"))
    _, s1_stats = CatModPipeline(perils).run(catalog, exposure, contracts)
    s1_rate = s1_stats.pairs_per_second

    wl = companion_study_workload(n_trials=measure_trials)
    analysis = AggregateAnalysis(wl.portfolio, wl.yet)
    t_vec, _ = time_call(lambda: analysis.run("vectorized"), repeats=2, warmup=1)
    s2_rate = wl.yet.n_occurrences / t_vec  # occurrence-lookups/s/proc

    # A 2012-era production core runs scalar code: measure the sequential
    # engine's per-core rate on a smaller slice of the same workload.
    wl_seq = companion_study_workload(n_trials=max(200, measure_trials // 50))
    t_seq, _ = time_call(
        lambda: AggregateAnalysis(wl_seq.portfolio, wl_seq.yet).run("sequential"),
        repeats=1, warmup=0,
    )
    s2_rate_scalar = wl_seq.yet.n_occurrences / t_seq

    ylts = [YltTable(rng.generator(f"y{i}").lognormal(13, 1, measure_trials))
            for i in range(8)]
    t_comb, _ = time_call(lambda: combine_ylts(ylts, "comonotonic"), repeats=2)
    s3_rate = (len(ylts) * measure_trials) / t_comb  # rows/s/proc

    # Paper-scale work volumes.
    s1_work = 100_000 * 1_000_000               # events x locations/sites
    s2_work = 50_000 * 1_000.0 * 10_000         # trials x ev/trial x contracts
    s3_work = 50_000 * 10_000.0 * 20            # trials x YLTs x rework factor

    model = PipelineCostModel([
        StageSpec("1: risk modelling", s1_work, s1_rate,
                  comm_overhead_per_proc_s=1.0),
        StageSpec("2: portfolio risk (vector core)", s2_work, s2_rate,
                  comm_overhead_per_proc_s=0.05),
        StageSpec("2: portfolio risk (scalar core)", s2_work, s2_rate_scalar,
                  comm_overhead_per_proc_s=0.001),
        StageSpec("3: DFA (real-time)", s3_work, s3_rate,
                  comm_overhead_per_proc_s=0.05),
    ])
    deadlines = {
        "1: risk modelling": WEEK_SECONDS,
        "2: portfolio risk (vector core)": 60.0,
        "2: portfolio risk (scalar core)": 60.0,
        "3: DFA (real-time)": 60.0,
    }
    reqs = model.burst_profile(deadlines)
    for req in reqs:
        spec = model.stage(req.stage)
        report.add_row(
            req.stage, format_count(spec.work_items),
            format_seconds(req.deadline_seconds),
            f"{req.n_procs:,}" + ("" if req.feasible else " (infeasible)"),
            format_seconds(req.runtime_seconds),
        )
    counts = [r.n_procs for r in reqs]
    report.add_note(
        f"burst factor (max/min processors) = {max(counts) / min(counts):,.0f}x "
        "— the elastic demand profile of §II"
    )

    # Translate the burst into the §II cloud-economics argument.
    from repro.hpc.elasticity import DemandPhase, compare_provisioning

    scalar_req = next(r for r in reqs if "scalar" in r.stage)
    s1_req = next(r for r in reqs if "risk modelling" in r.stage)
    week = [
        DemandPhase("stage1", s1_req.n_procs, s1_req.runtime_seconds / 3600.0),
        DemandPhase("stage2", scalar_req.n_procs, 1.0),
        DemandPhase("stage3", reqs[-1].n_procs, 0.5),
        DemandPhase("idle", 0, max(0.0, 168.0 - s1_req.runtime_seconds / 3600.0 - 1.5)),
    ]
    plans = compare_provisioning(week)
    report.add_note(
        f"provisioning a week at peak ({plans['fixed'].node_hours:,.0f} "
        f"node-hours, {plans['fixed'].utilisation:.1%} utilised) vs elastic "
        f"({plans['elastic'].node_hours:,.0f} node-hours, "
        f"{plans['elastic'].utilisation:.1%} utilised): "
        f"{plans['fixed'].node_hours / plans['elastic'].node_hours:,.0f}x — "
        "why §II calls cloud computing attractive"
    )
    report.add_note(
        f"measured single-proc rates: stage1 {s1_rate:,.0f} pairs/s, "
        f"stage2 {s2_rate:,.0f} (vector) / {s2_rate_scalar:,.0f} (scalar) "
        f"lookups/s, stage3 {s3_rate:,.0f} rows/s"
    )
    report.add_note(
        "with 2012-era scalar cores the stage-2 real-time requirement is in "
        "the thousands-to-tens-of-thousands of processors — §II's burst"
    )
    return report


# ---------------------------------------------------------------------------
# E10 — DFA combination, metrics, warehouse
# ---------------------------------------------------------------------------

def run_e10_dfa_metrics(n_trials: int = 50_000) -> ExperimentReport:
    """E10: integrate the cat YLT with the six §II risk sources, derive
    PML/TVaR, and show warehouse pre-aggregation beating recomputation."""
    report = ExperimentReport(
        "E10",
        "DFA combines YLTs of many risks; PML and TVaR are derived; "
        "pre-computation (parallel warehousing) applies",
        ["quantity", "trial_aligned", "independent", "copula(0.3)", "comonotonic"],
    )
    rng = RngHierarchy(29)
    wl = companion_study_workload(n_trials=n_trials)
    cat = AggregateAnalysis(wl.portfolio, wl.yet).run("vectorized").portfolio_ylt
    sources = dfa_workload(cat)
    ylts = [cat] + [s.ylt for s in sources]
    k = len(ylts)

    combos = {
        "trial_aligned": combine_ylts(ylts, "trial_aligned"),
        "independent": combine_ylts(ylts, "independent", rng=rng.generator("ind")),
        "copula(0.3)": combine_ylts(
            ylts, "copula",
            correlation=GaussianCopula.uniform(k, 0.3).correlation,
            rng=rng.generator("cop"),
        ),
        "comonotonic": combine_ylts(ylts, "comonotonic"),
    }
    metrics = {name: RiskMetrics.from_ylt(y) for name, y in combos.items()}
    for m in metrics.values():
        m.check_coherence()

    def row(label, getter):
        report.add_row(label, *(f"{getter(metrics[n]):,.0f}" for n in
                                ("trial_aligned", "independent", "copula(0.3)",
                                 "comonotonic")))

    row("mean annual loss", lambda m: m.mean)
    row("PML 100y", lambda m: m.pml[100.0])
    row("PML 250y", lambda m: m.pml[250.0])
    row("VaR 99%", lambda m: m.var[0.99])
    row("TVaR 99%", lambda m: m.tvar[0.99])

    tv = {n: metrics[n].tvar[0.99] for n in metrics}
    assert tv["comonotonic"] >= tv["independent"] - 1e-6, \
        "comonotonic tail must dominate independent"
    report.add_note(
        "dependence ordering holds: comonotonic >= copula(0.3) >= independent "
        "at TVaR99 (up to MC noise)"
    )

    # Warehouse pre-aggregation vs recompute (scan of the fact table).
    facts = warehouse_fact_table(n_trials=10_000, rows_per_trial=20)
    t_build, cube = time_call(
        lambda: LossCube(facts, dims=("lob", "region", "peril"), n_trials=10_000),
        repeats=1, warmup=0,
    )
    t_query, _ = time_call(lambda: cube.pml(250.0, {"lob": 1}), repeats=3)

    def recompute():
        mask = facts["lob"] == 1
        losses = np.zeros(10_000)
        np.add.at(losses, facts["trial"][mask], facts["loss"][mask])
        return float(np.quantile(losses, 1 - 1 / 250.0))

    t_scan, _ = time_call(recompute, repeats=3)
    report.add_note(
        f"warehouse: cube build {format_seconds(t_build)} ({cube.n_cells} cells, "
        f"{format_bytes(cube.nbytes)}); slice PML query {format_seconds(t_query)} "
        f"vs {format_seconds(t_scan)} recompute — {t_scan / t_query:.1f}x"
    )
    return report


# ---------------------------------------------------------------------------
# E11 — scaling ablations (companion-study shapes)
# ---------------------------------------------------------------------------

def run_e11_ablations(n_trials: int = 10_000) -> ExperimentReport:
    """E11: runtime is linear in events/trial and in ELTs/layer (the
    scaling shapes of the companion study's evaluation)."""
    report = ExperimentReport(
        "E11",
        "runtime scales linearly in events/trial and ELTs/layer",
        ["sweep", "value", "wall time", "time per 1k trials"],
    )
    for epk in (250, 500, 1000, 2000):
        wl = build_layer_workload(
            n_trials=n_trials, mean_events_per_trial=float(epk),
            n_elts=4, elt_rows=8_000, catalog_events=50_000, seed=31,
        )
        analysis = AggregateAnalysis(wl.portfolio, wl.yet)
        t, _ = time_call(lambda: analysis.run("vectorized"), repeats=2, warmup=1)
        report.add_row("events/trial", epk, format_seconds(t),
                       format_seconds(t / (n_trials / 1000)))
    for n_elts in (1, 4, 8, 16):
        wl = build_layer_workload(
            n_trials=n_trials, mean_events_per_trial=1000.0,
            n_elts=n_elts, elt_rows=8_000, catalog_events=50_000, seed=31,
        )
        analysis = AggregateAnalysis(wl.portfolio, wl.yet)
        t, _ = time_call(lambda: analysis.run("vectorized"), repeats=2, warmup=1)
        report.add_row("ELTs/layer", n_elts, format_seconds(t),
                       format_seconds(t / (n_trials / 1000)))
    report.add_note(
        "per-layer cost is dominated by the occurrence stream length "
        "(events/trial); the merged-lookup design makes ELT count nearly "
        "free after the merge, matching [7]'s observation that the ELT "
        "pass is memory-bound"
    )
    return report


def run_all(fast: bool = True) -> list[ExperimentReport]:
    """Run every experiment at bench scale and return the reports."""
    reports = [
        run_e01_table_sizes(),
        run_e03_speedup(),
        run_e04_million_trials(
            full_trials=200_000 if fast else 1_000_000,
        ),
        run_e05_chunking(),
        run_e06_scan_vs_random(),
        run_e07_mapreduce(),
        run_e08_stage1_pipeline(),
        run_e09_burst_elasticity(),
        run_e10_dfa_metrics(n_trials=20_000 if fast else 50_000),
        run_e11_ablations(),
    ]
    return reports


if __name__ == "__main__":  # pragma: no cover - manual driver
    import sys

    fast = "--full" not in sys.argv
    for rep in run_all(fast=fast):
        print(rep.render())
        print()
