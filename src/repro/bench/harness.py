"""Timing harness shared by the experiment runners."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AnalysisError
from repro.util.tables import render_table

__all__ = ["BenchRecord", "time_call", "ExperimentReport"]


def time_call(fn: Callable[[], object], repeats: int = 3,
              warmup: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of ``fn`` (returns last result)."""
    if repeats < 1:
        raise AnalysisError("repeats must be at least 1")
    result = None
    for _ in range(warmup):
        result = fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@dataclass
class BenchRecord:
    """One row of an experiment's output table."""

    values: list

    def __iter__(self):
        return iter(self.values)


@dataclass
class ExperimentReport:
    """A rendered experiment: id, claim, table, and conclusions."""

    exp_id: str
    claim: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        table = render_table(self.headers, self.rows,
                             title=f"[{self.exp_id}] {self.claim}")
        if self.notes:
            notes = "\n".join(f"  - {n}" for n in self.notes)
            return f"{table}\n{notes}"
        return table
