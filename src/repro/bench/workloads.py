"""Canonical workloads for the experiments.

Every experiment needs "a YET and a portfolio shaped like X".  These
builders produce them deterministically from a seed, at any scale, with
the companion study's shapes as presets:

- the **companion-study layer**: one layer over 15 ELTs of 10k-25k rows,
  driven by a YET with ~1000 events per trial (the [7] evaluation rig
  whose GPU ran 15× the sequential code);
- the **typical contract**: one layer over one ELT — the unit whose
  million-trial run §II prices in ~25 s.

ELT losses are lognormal (heavy-tailed, like real event losses); layer
terms attach above the loss median so that both terms branches (below
retention / above limit) are exercised at every scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import EltTable, YetTable, YltTable
from repro.core.terms import LayerTerms
from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.dfa.risks import (
    counterparty_risk,
    interest_rate_risk,
    investment_risk,
    market_cycle_risk,
    operational_risk,
    reserve_risk,
)
from repro.errors import ConfigurationError
from repro.util.rng import RngHierarchy

__all__ = [
    "Workload",
    "build_elt",
    "build_layer_workload",
    "build_portfolio_workload",
    "companion_study_workload",
    "typical_contract_workload",
    "dfa_workload",
    "warehouse_fact_table",
]


@dataclass
class Workload:
    """A bound (portfolio, YET) pair plus provenance metadata."""

    portfolio: Portfolio
    yet: YetTable
    meta: dict = field(default_factory=dict)


def build_elt(
    n_rows: int,
    catalog_events: int,
    rng: np.random.Generator,
    mean_loss: float = 5e5,
    sigma: float = 1.4,
    contract_id: int = 0,
) -> EltTable:
    """One synthetic ELT: ``n_rows`` events sampled from the catalogue id
    space with lognormal mean losses."""
    if n_rows > catalog_events:
        raise ConfigurationError(
            f"cannot draw {n_rows} distinct events from a {catalog_events}-event catalogue"
        )
    event_ids = rng.choice(catalog_events, size=n_rows, replace=False).astype(np.int64)
    event_ids.sort()
    mu = np.log(mean_loss) - 0.5 * sigma**2
    losses = rng.lognormal(mu, sigma, size=n_rows)
    sigmas = losses * rng.uniform(0.3, 0.8, size=n_rows)
    return EltTable.from_arrays(event_ids, losses, sigmas, contract_id=contract_id)


def _default_terms(mean_loss: float) -> LayerTerms:
    """An excess-of-loss layer attaching in the tail of the event-loss
    distribution, with occurrence and aggregate caps that bind on the
    worst occurrences/years but not on typical ones — so every branch of
    the terms arithmetic is exercised without degenerating the YLT."""
    return LayerTerms(
        occ_retention=3.0 * mean_loss,
        occ_limit=40.0 * mean_loss,
        agg_retention=10.0 * mean_loss,
        agg_limit=3000.0 * mean_loss,
        participation=0.9,
    )


def build_layer_workload(
    n_trials: int,
    mean_events_per_trial: float,
    n_elts: int,
    elt_rows: int,
    catalog_events: int,
    seed: int = 7,
    terms: LayerTerms | None = None,
    mean_loss: float = 5e5,
) -> Workload:
    """One layer over ``n_elts`` ELTs, with a simulated YET."""
    rng = RngHierarchy(seed)
    elts = [
        build_elt(elt_rows, catalog_events, rng.generator(f"elt/{i}"),
                  mean_loss=mean_loss, contract_id=i)
        for i in range(n_elts)
    ]
    layer = Layer(0, elts, terms or _default_terms(mean_loss))
    catalog_ids = np.arange(catalog_events, dtype=np.int64)
    rates = np.full(catalog_events, 1.0 / catalog_events)
    yet = YetTable.simulate(
        catalog_ids, rates, n_trials, rng.generator("yet"),
        mean_events_per_trial=mean_events_per_trial,
    )
    return Workload(
        portfolio=Portfolio([layer]),
        yet=yet,
        meta={
            "n_trials": n_trials,
            "mean_events_per_trial": mean_events_per_trial,
            "n_elts": n_elts,
            "elt_rows": elt_rows,
            "catalog_events": catalog_events,
            "seed": seed,
        },
    )


def build_portfolio_workload(
    n_layers: int,
    n_trials: int,
    mean_events_per_trial: float,
    elts_per_layer: int,
    elt_rows: int,
    catalog_events: int,
    seed: int = 7,
    mean_loss: float = 5e5,
) -> Workload:
    """A multi-layer portfolio sharing one YET."""
    rng = RngHierarchy(seed)
    layers = []
    cid = 0
    for li in range(n_layers):
        elts = []
        for _ in range(elts_per_layer):
            elts.append(build_elt(
                elt_rows, catalog_events, rng.generator(f"elt/{cid}"),
                mean_loss=mean_loss, contract_id=cid,
            ))
            cid += 1
        layers.append(Layer(li, elts, _default_terms(mean_loss)))
    catalog_ids = np.arange(catalog_events, dtype=np.int64)
    rates = np.full(catalog_events, 1.0 / catalog_events)
    yet = YetTable.simulate(
        catalog_ids, rates, n_trials, rng.generator("yet"),
        mean_events_per_trial=mean_events_per_trial,
    )
    return Workload(
        portfolio=Portfolio(layers),
        yet=yet,
        meta={"n_layers": n_layers, "n_trials": n_trials,
              "elts_per_layer": elts_per_layer, "seed": seed},
    )


def companion_study_workload(n_trials: int = 100_000, seed: int = 7) -> Workload:
    """The [7] evaluation shape: 1 layer, 15 ELTs × 16k rows, ~1000
    events/trial over a 100k-event catalogue (scaled by ``n_trials``)."""
    return build_layer_workload(
        n_trials=n_trials,
        mean_events_per_trial=1000.0,
        n_elts=15,
        elt_rows=16_000,
        catalog_events=100_000,
        seed=seed,
    )


def typical_contract_workload(n_trials: int = 1_000_000, seed: int = 7) -> Workload:
    """§II's "typical contract": one layer over one ELT."""
    return build_layer_workload(
        n_trials=n_trials,
        mean_events_per_trial=1000.0,
        n_elts=1,
        elt_rows=16_000,
        catalog_events=100_000,
        seed=seed,
    )


def dfa_workload(cat_ylt: YltTable, seed: int = 7) -> list:
    """The six §II risk sources simulated on the cat YLT's trial set."""
    rng = RngHierarchy(seed)
    n = cat_ylt.n_trials
    return [
        investment_risk(n, rng.generator("investment")),
        reserve_risk(n, rng.generator("reserve")),
        interest_rate_risk(n, rng.generator("interest_rate")),
        market_cycle_risk(n, rng.generator("market_cycle")),
        counterparty_risk(n, rng.generator("counterparty")),
        operational_risk(n, rng.generator("operational")),
    ]


WAREHOUSE_SCHEMA = Schema([
    ("trial", np.int64),
    ("lob", np.int64),
    ("region", np.int64),
    ("peril", np.int64),
    ("loss", np.float64),
])


def warehouse_fact_table(
    n_trials: int,
    rows_per_trial: int,
    n_lobs: int = 4,
    n_regions: int = 6,
    n_perils: int = 4,
    seed: int = 7,
) -> ColumnTable:
    """A dimensioned YLT-style fact table for the warehouse bench (E10)."""
    rng = RngHierarchy(seed).generator("facts")
    n = n_trials * rows_per_trial
    return ColumnTable.from_arrays(
        WAREHOUSE_SCHEMA,
        trial=np.repeat(np.arange(n_trials, dtype=np.int64), rows_per_trial),
        lob=rng.integers(0, n_lobs, size=n),
        region=rng.integers(0, n_regions, size=n),
        peril=rng.integers(0, n_perils, size=n),
        loss=rng.lognormal(12.0, 1.0, size=n),
    )
