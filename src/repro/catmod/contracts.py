"""Reinsurance contracts: groupings of exposure sites with policy terms.

"An ELT is the risk associated with an individual reinsurance contract"
(§II): each contract covers a book of sites, and stage 1 produces one ELT
per contract.  :func:`assign_contracts` partitions an exposure database
into contracts the way real books are organised — geographically
clustered, uneven in size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catmod.exposure import ExposureDatabase
from repro.catmod.financial import PolicyTerms
from repro.errors import ConfigurationError

__all__ = ["Contract", "assign_contracts"]


@dataclass(frozen=True)
class Contract:
    """One reinsurance contract over a set of exposure sites.

    Attributes
    ----------
    contract_id:
        Stable integer id (the ELT produced for this contract carries it).
    site_indices:
        Row indices into the exposure table covered by this contract.
    terms:
        Site-level policy terms applied when computing gross losses.
    """

    contract_id: int
    site_indices: np.ndarray
    terms: PolicyTerms

    def __post_init__(self):
        if self.contract_id < 0:
            raise ConfigurationError("contract_id must be non-negative")
        if self.site_indices.size == 0:
            raise ConfigurationError("a contract must cover at least one site")


def assign_contracts(
    exposure: ExposureDatabase,
    n_contracts: int,
    rng: np.random.Generator,
    terms: PolicyTerms | None = None,
) -> list[Contract]:
    """Partition the exposure into ``n_contracts`` geographic contracts.

    Sites are sorted by longitude (a proxy for territory) and cut into
    contiguous runs with Dirichlet-distributed sizes, giving the realistic
    mix of large and small books.  Every site belongs to exactly one
    contract.
    """
    if n_contracts <= 0:
        raise ConfigurationError(f"n_contracts must be positive, got {n_contracts}")
    n_sites = exposure.n_sites
    if n_contracts > n_sites:
        raise ConfigurationError(
            f"cannot make {n_contracts} contracts from {n_sites} sites"
        )
    terms = terms or PolicyTerms()
    order = np.argsort(exposure.table["lon"], kind="stable")
    weights = rng.dirichlet(np.full(n_contracts, 2.0))
    # Convert weights to integer cut sizes that sum to n_sites, each >= 1.
    sizes = np.maximum(1, np.floor(weights * n_sites).astype(int))
    while sizes.sum() > n_sites:
        sizes[np.argmax(sizes)] -= 1
    sizes[np.argmax(sizes)] += n_sites - sizes.sum()
    contracts = []
    start = 0
    for cid in range(n_contracts):
        stop = start + sizes[cid]
        contracts.append(Contract(cid, np.sort(order[start:stop]), terms))
        start = stop
    assert start == n_sites
    return contracts
