"""Exposure-database generation.

An exposure database is a "description of attributes such as construction
type or value of buildings exposed to the catastrophe in a location"
(§II).  We generate clustered site locations (cities), lognormal insured
values, and categorical construction classes whose mix shifts with value
(high-value sites skew towards engineered construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catmod.geography import Region, random_sites
from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import ConfigurationError

__all__ = ["EXPOSURE_SCHEMA", "ConstructionClass", "ExposureDatabase", "generate_exposure"]

EXPOSURE_SCHEMA = Schema([
    ("site_id", np.int64),
    ("lat", np.float64),
    ("lon", np.float64),
    ("value", np.float64),           # total insured value at the site
    ("construction", np.int16),      # ConstructionClass code
    ("occupancy", np.int16),         # 0=residential 1=commercial 2=industrial
])


class ConstructionClass:
    """Construction-class codes used by the vulnerability module."""

    WOOD = 0
    MASONRY = 1
    CONCRETE = 2
    STEEL = 3
    ALL = (WOOD, MASONRY, CONCRETE, STEEL)


@dataclass(frozen=True)
class ExposureDatabase:
    """Typed wrapper around the exposure table."""

    table: ColumnTable

    def __post_init__(self):
        if self.table.schema != EXPOSURE_SCHEMA:
            raise ConfigurationError("exposure table does not match EXPOSURE_SCHEMA")
        if (self.table["value"] <= 0).any():
            raise ConfigurationError("site values must be positive")
        cons = self.table["construction"]
        if cons.size and (~np.isin(cons, ConstructionClass.ALL)).any():
            raise ConfigurationError("unknown construction class code")

    @property
    def n_sites(self) -> int:
        return self.table.n_rows

    @property
    def total_value(self) -> float:
        return float(self.table["value"].sum())


def generate_exposure(
    region: Region,
    n_sites: int,
    rng: np.random.Generator,
    mean_value: float = 2.5e6,
    value_sigma: float = 1.1,
) -> ExposureDatabase:
    """Generate an ``n_sites``-row exposure database.

    Values are lognormal (median ≈ ``mean_value``/e^{σ²/2}); construction
    mix is value-dependent: the probability of engineered classes
    (concrete/steel) rises with the site's value percentile.
    """
    if n_sites <= 0:
        raise ConfigurationError(f"n_sites must be positive, got {n_sites}")
    if mean_value <= 0 or value_sigma <= 0:
        raise ConfigurationError("mean_value and value_sigma must be positive")

    lat, lon = random_sites(region, n_sites, rng)
    mu = np.log(mean_value) - 0.5 * value_sigma**2
    value = rng.lognormal(mean=mu, sigma=value_sigma, size=n_sites)

    # Value percentile drives the construction mix.
    pct = np.argsort(np.argsort(value)) / max(n_sites - 1, 1)
    p_wood = np.clip(0.55 - 0.5 * pct, 0.05, None)
    p_masonry = np.full(n_sites, 0.25)
    p_concrete = 0.15 + 0.3 * pct
    p_steel = np.clip(1.0 - p_wood - p_masonry - p_concrete, 0.0, None)
    probs = np.stack([p_wood, p_masonry, p_concrete, p_steel], axis=1)
    probs /= probs.sum(axis=1, keepdims=True)
    u = rng.random(n_sites)
    construction = (u[:, None] > np.cumsum(probs, axis=1)).sum(axis=1).astype(np.int16)

    occupancy = rng.choice(3, size=n_sites, p=[0.6, 0.3, 0.1]).astype(np.int16)

    table = ColumnTable.from_arrays(
        EXPOSURE_SCHEMA,
        site_id=np.arange(n_sites, dtype=np.int64),
        lat=lat,
        lon=lon,
        value=value,
        construction=construction,
        occupancy=occupancy,
    )
    return ExposureDatabase(table)
