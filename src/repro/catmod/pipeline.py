"""The stage-1 pipeline: event × exposure → per-contract ELTs.

"Typically, data needs to be organised in a small number of very large
tables and streamed by independent processes, further to which the
results need to be aggregated" (§II).  The pipeline streams the event
catalogue in batches; for each event it evaluates hazard intensity at
every exposure site, vulnerability per construction class, and financial
terms, then scatters the site losses into per-contract accumulators.
Batches are independent, so the work parallelises trivially — the E8
bench measures per-processor throughput and shows why "<10 processors"
suffice at this stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.catmod.catalog import EventCatalog
from repro.catmod.contracts import Contract
from repro.catmod.exposure import ExposureDatabase
from repro.catmod.financial import gross_loss
from repro.catmod.hazard import hazard_intensity
from repro.catmod.perils import Peril, PerilKind
from repro.catmod.vulnerability import VulnerabilityCurve, damage_ratio, standard_curves
from repro.core.tables import EltTable
from repro.errors import ConfigurationError

__all__ = ["PipelineStats", "CatModPipeline"]


@dataclass
class PipelineStats:
    """Throughput record of one pipeline run."""

    n_events: int = 0
    n_sites: int = 0
    n_contracts: int = 0
    event_site_pairs: int = 0
    seconds: float = 0.0
    batch_seconds: list[float] = field(default_factory=list)

    @property
    def pairs_per_second(self) -> float:
        return self.event_site_pairs / self.seconds if self.seconds > 0 else 0.0


class CatModPipeline:
    """Catastrophe-model runner producing one ELT per contract.

    Parameters
    ----------
    perils:
        Peril book keyed by :class:`PerilKind` (hazard parameters).
    curves:
        Vulnerability curves per construction class.
    min_mean_loss:
        Event losses below this threshold are dropped from ELTs (models
        the loss thresholding real ELT production applies; keeps tables
        sparse).
    """

    def __init__(
        self,
        perils: dict[PerilKind, Peril],
        curves: dict[int, VulnerabilityCurve] | None = None,
        min_mean_loss: float = 1.0,
    ) -> None:
        if not perils:
            raise ConfigurationError("pipeline needs a peril book")
        if min_mean_loss < 0:
            raise ConfigurationError("min_mean_loss must be non-negative")
        self.perils = perils
        self.curves = curves or standard_curves()
        self.min_mean_loss = min_mean_loss
        #: Site-level (event, location, loss) rows from the last run with
        #: ``collect_location_losses=True`` (see :meth:`run`).
        self.last_location_losses = None

    def run(
        self,
        catalog: EventCatalog,
        exposure: ExposureDatabase,
        contracts: list[Contract],
        batch_events: int = 256,
        collect_location_losses: bool = False,
    ) -> tuple[list[EltTable], PipelineStats]:
        """Stream the catalogue and assemble per-contract ELTs.

        Returns the ELTs (ordered as ``contracts``) and throughput stats.
        Events whose footprint touches no contract site contribute no
        rows — ELT sparsity falls out naturally.

        With ``collect_location_losses`` the site-level (event, location,
        loss) rows are retained in :attr:`last_location_losses` (one
        :class:`ColumnTable` with :data:`repro.core.yellt.ELL_SCHEMA`) —
        the input YELLT materialisation needs.  This multiplies memory by
        the mean footprint size; it is meant for bench-scale runs.
        """
        if batch_events <= 0:
            raise ConfigurationError("batch_events must be positive")
        if not contracts:
            raise ConfigurationError("need at least one contract")

        t0 = time.perf_counter()
        stats = PipelineStats(
            n_events=catalog.n_events,
            n_sites=exposure.n_sites,
            n_contracts=len(contracts),
        )

        site_lat = exposure.table["lat"]
        site_lon = exposure.table["lon"]
        site_value = exposure.table["value"]
        site_cons = exposure.table["construction"]

        # site -> contract index map (every site belongs to exactly one).
        site_contract = np.full(exposure.n_sites, -1, dtype=np.int64)
        for ci, contract in enumerate(contracts):
            site_contract[contract.site_indices] = ci
        if (site_contract < 0).any():
            raise ConfigurationError("contracts do not cover every exposure site")

        # Accumulators: mean loss and second moment per (contract, event).
        per_contract: list[dict[int, tuple[float, float]]] = [
            {} for _ in contracts
        ]
        ell_events: list[np.ndarray] = []
        ell_sites: list[np.ndarray] = []
        ell_losses: list[np.ndarray] = []

        cat = catalog.table
        n_events = catalog.n_events
        for start in range(0, n_events, batch_events):
            bt0 = time.perf_counter()
            stop = min(start + batch_events, n_events)
            for i in range(start, stop):
                peril = self.perils[PerilKind(int(cat["peril"][i]))]
                intensity = hazard_intensity(
                    float(cat["lat"][i]), float(cat["lon"][i]),
                    float(cat["magnitude"][i]), float(cat["radius_km"][i]),
                    peril, site_lat, site_lon,
                )
                hit = np.nonzero(intensity > 0.0)[0]
                stats.event_site_pairs += exposure.n_sites
                if hit.size == 0:
                    continue
                mdr = damage_ratio(intensity[hit], site_cons[hit], self.curves)
                # Per-site CV from the vulnerability curves drives sigma.
                cvs = np.array([
                    self.curves[int(c)].cv for c in site_cons[hit]
                ])
                event_id = int(cat["event_id"][i])
                # Scatter into per-contract accumulators, applying each
                # contract's own policy terms to its sites.
                cids = site_contract[hit]
                for ci in np.unique(cids):
                    mask = cids == ci
                    losses = gross_loss(
                        mdr[mask], site_value[hit][mask], contracts[ci].terms
                    )
                    mean = float(losses.sum())
                    if mean < self.min_mean_loss:
                        continue
                    var = float(((losses * cvs[mask]) ** 2).sum())
                    per_contract[ci][event_id] = (mean, var)
                    if collect_location_losses:
                        nz = losses > 0.0
                        if nz.any():
                            sites = hit[mask][nz]
                            ell_events.append(
                                np.full(sites.size, event_id, dtype=np.int64)
                            )
                            ell_sites.append(sites.astype(np.int64))
                            ell_losses.append(losses[nz])
            stats.batch_seconds.append(time.perf_counter() - bt0)

        elts = []
        for contract, acc in zip(contracts, per_contract):
            if acc:
                event_ids = np.fromiter(acc.keys(), dtype=np.int64, count=len(acc))
                order = np.argsort(event_ids)
                means = np.array([acc[int(e)][0] for e in event_ids])
                sigmas = np.sqrt([acc[int(e)][1] for e in event_ids])
                elts.append(EltTable.from_arrays(
                    event_ids[order], means[order], np.asarray(sigmas)[order],
                    contract_id=contract.contract_id,
                ))
            else:
                # A contract no event touches still needs a (degenerate)
                # ELT so downstream layers stay well-formed.
                elts.append(EltTable.from_arrays(
                    np.array([0], dtype=np.int64), np.array([0.0]),
                    contract_id=contract.contract_id,
                ))
        if collect_location_losses:
            from repro.core.yellt import ELL_SCHEMA
            from repro.data.columnar import ColumnTable

            if ell_events:
                self.last_location_losses = ColumnTable.from_arrays(
                    ELL_SCHEMA,
                    event_id=np.concatenate(ell_events),
                    location_id=np.concatenate(ell_sites),
                    loss=np.concatenate(ell_losses),
                )
            else:
                self.last_location_losses = ColumnTable(ELL_SCHEMA)
        stats.seconds = time.perf_counter() - t0
        return elts, stats
