"""Peril definitions with frequency-severity parameterisations.

A peril bundles everything the catalogue generator and hazard module need
to know about one hazard class: how often events occur (Poisson annual
rate), how severe they are (magnitude law), how large their footprints
are, and how intensity attenuates with distance.  The parameter shapes
follow the standard catastrophe-modelling literature (Grossi & Kunreuther
2005, the paper's ref. [3]): truncated Gutenberg–Richter magnitudes for
earthquake, lognormal severities for wind perils.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PerilKind", "Peril", "standard_perils"]


class PerilKind(enum.IntEnum):
    """Catalogue peril codes (stable integers — they appear in tables)."""

    EARTHQUAKE = 0
    HURRICANE = 1
    FLOOD = 2
    WINTERSTORM = 3


@dataclass(frozen=True)
class Peril:
    """Frequency-severity description of one peril.

    Attributes
    ----------
    kind:
        The peril code.
    annual_rate:
        Poisson rate of events per contractual year in the modelled region.
    mag_min, mag_max:
        Severity (magnitude) support.  For EQ this is moment magnitude;
        for wind perils a saffir-simpson-like 0-10 intensity scale.
    mag_b:
        Exponential decay of the magnitude law (Gutenberg–Richter ``b``);
        larger means small events dominate more strongly.
    footprint_km_per_mag:
        Footprint radius grows linearly with magnitude at this slope.
    attenuation_power:
        Intensity decays as ``1 / (1 + d/d0)**attenuation_power``.
    attenuation_d0_km:
        Distance scale ``d0`` of the decay law.
    """

    kind: PerilKind
    annual_rate: float
    mag_min: float
    mag_max: float
    mag_b: float
    footprint_km_per_mag: float
    attenuation_power: float
    attenuation_d0_km: float

    def __post_init__(self):
        if self.annual_rate <= 0:
            raise ConfigurationError("annual_rate must be positive")
        if not (self.mag_min < self.mag_max):
            raise ConfigurationError("need mag_min < mag_max")
        if self.mag_b <= 0:
            raise ConfigurationError("mag_b must be positive")
        if self.footprint_km_per_mag <= 0:
            raise ConfigurationError("footprint_km_per_mag must be positive")
        if self.attenuation_power <= 0 or self.attenuation_d0_km <= 0:
            raise ConfigurationError("attenuation parameters must be positive")

    def sample_magnitudes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` magnitudes from the truncated exponential (G-R) law.

        Inverse-CDF sampling of ``p(m) ∝ exp(-b m)`` on
        ``[mag_min, mag_max]``.
        """
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n}")
        u = rng.random(n)
        b = self.mag_b
        lo, hi = self.mag_min, self.mag_max
        z = np.exp(-b * lo) - u * (np.exp(-b * lo) - np.exp(-b * hi))
        return -np.log(z) / b

    def footprint_radius_km(self, magnitude) -> np.ndarray:
        """Footprint radius for given magnitudes."""
        return self.footprint_km_per_mag * np.asarray(magnitude, dtype=np.float64)


def standard_perils() -> dict[PerilKind, Peril]:
    """The library's canonical four-peril book.

    Rates are regional-scale (events/year somewhere in the modelled
    region); severities span the damaging range of each peril.
    """
    return {
        PerilKind.EARTHQUAKE: Peril(
            kind=PerilKind.EARTHQUAKE, annual_rate=8.0,
            mag_min=5.0, mag_max=9.0, mag_b=1.8,
            footprint_km_per_mag=28.0, attenuation_power=2.2,
            attenuation_d0_km=18.0,
        ),
        PerilKind.HURRICANE: Peril(
            kind=PerilKind.HURRICANE, annual_rate=6.0,
            mag_min=2.0, mag_max=10.0, mag_b=0.55,
            footprint_km_per_mag=45.0, attenuation_power=1.6,
            attenuation_d0_km=60.0,
        ),
        PerilKind.FLOOD: Peril(
            kind=PerilKind.FLOOD, annual_rate=14.0,
            mag_min=1.0, mag_max=8.0, mag_b=0.9,
            footprint_km_per_mag=15.0, attenuation_power=2.8,
            attenuation_d0_km=8.0,
        ),
        PerilKind.WINTERSTORM: Peril(
            kind=PerilKind.WINTERSTORM, annual_rate=4.0,
            mag_min=1.0, mag_max=7.0, mag_b=0.7,
            footprint_km_per_mag=80.0, attenuation_power=1.3,
            attenuation_d0_km=120.0,
        ),
    }
