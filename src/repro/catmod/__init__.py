"""Stage 1 — catastrophe modelling (risk modelling).

Catastrophe models "take two primary inputs, firstly, stochastic event
catalogues ... and secondly, exposure databases", and analyse each
event-exposure pair "using three modules that quantify (i) the hazard
intensity at exposure sites, (ii) the vulnerability of the buildings and
the resulting damage level, and (iii) the resultant financial loss.  The
output at this stage is an Event-Loss Table (ELT)" (§II).

This package implements that stage end to end on synthetic but
statistically structured data: peril definitions with frequency-severity
laws, a stochastic catalogue generator, a clustered exposure-database
generator, the hazard / vulnerability / financial modules as vectorised
transforms, and a streaming pipeline that assembles per-contract ELTs.
"""

from repro.catmod.geography import Region, haversine_km, random_sites
from repro.catmod.perils import Peril, PerilKind, standard_perils
from repro.catmod.catalog import EventCatalog, generate_catalog
from repro.catmod.exposure import ExposureDatabase, generate_exposure
from repro.catmod.hazard import hazard_intensity
from repro.catmod.vulnerability import VulnerabilityCurve, damage_ratio, standard_curves
from repro.catmod.financial import PolicyTerms, gross_loss
from repro.catmod.contracts import Contract, assign_contracts
from repro.catmod.pipeline import CatModPipeline, PipelineStats

__all__ = [
    "Region",
    "haversine_km",
    "random_sites",
    "Peril",
    "PerilKind",
    "standard_perils",
    "EventCatalog",
    "generate_catalog",
    "ExposureDatabase",
    "generate_exposure",
    "hazard_intensity",
    "VulnerabilityCurve",
    "damage_ratio",
    "standard_curves",
    "PolicyTerms",
    "gross_loss",
    "Contract",
    "assign_contracts",
    "CatModPipeline",
    "PipelineStats",
]
