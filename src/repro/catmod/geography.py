"""Geography primitives: regions, site sampling, great-circle distance.

The hazard module needs one geometric operation at scale — distance from
an event's epicentre to every exposure site — so it is implemented as a
broadcast-friendly vectorised haversine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Region", "haversine_km", "random_sites"]

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class Region:
    """A latitude/longitude bounding box (degrees)."""

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float
    name: str = "region"

    def __post_init__(self):
        if not (-90 <= self.lat_min < self.lat_max <= 90):
            raise ConfigurationError(
                f"invalid latitude range [{self.lat_min}, {self.lat_max}]"
            )
        if not (-180 <= self.lon_min < self.lon_max <= 180):
            raise ConfigurationError(
                f"invalid longitude range [{self.lon_min}, {self.lon_max}]"
            )

    @property
    def lat_span(self) -> float:
        return self.lat_max - self.lat_min

    @property
    def lon_span(self) -> float:
        return self.lon_max - self.lon_min

    def contains(self, lat, lon) -> np.ndarray:
        """Vectorised membership test."""
        lat = np.asarray(lat)
        lon = np.asarray(lon)
        return (
            (lat >= self.lat_min) & (lat <= self.lat_max)
            & (lon >= self.lon_min) & (lon <= self.lon_max)
        )


#: A US-Gulf-coast-like default region used by the examples and benches.
GULF_COAST = Region(25.0, 33.0, -98.0, -80.0, name="gulf-coast")


def haversine_km(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Great-circle distance in km; broadcasts over any argument shapes."""
    lat1, lon1, lat2, lon2 = (np.radians(np.asarray(a, dtype=np.float64))
                              for a in (lat1, lon1, lat2, lon2))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


def random_sites(region: Region, n: int, rng: np.random.Generator,
                 n_clusters: int = 12, cluster_sigma_deg: float = 0.35
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n`` site coordinates clustered around urban centres.

    Exposure is not uniform — buildings cluster in cities — and that
    clustering is what makes single events produce correlated losses.
    Cluster centres are uniform in the region; sites are Gaussian around a
    centre chosen with population-like (Zipf) weights, clipped to the box.
    """
    if n <= 0:
        raise ConfigurationError(f"need a positive site count, got {n}")
    if n_clusters <= 0:
        raise ConfigurationError(f"need a positive cluster count, got {n_clusters}")
    centres_lat = rng.uniform(region.lat_min, region.lat_max, size=n_clusters)
    centres_lon = rng.uniform(region.lon_min, region.lon_max, size=n_clusters)
    weights = 1.0 / np.arange(1, n_clusters + 1, dtype=np.float64)
    weights /= weights.sum()
    which = rng.choice(n_clusters, size=n, p=weights)
    lat = np.clip(
        centres_lat[which] + rng.normal(0.0, cluster_sigma_deg, size=n),
        region.lat_min, region.lat_max,
    )
    lon = np.clip(
        centres_lon[which] + rng.normal(0.0, cluster_sigma_deg, size=n),
        region.lon_min, region.lon_max,
    )
    return lat, lon
