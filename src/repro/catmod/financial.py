"""Financial module: ground-up damage to insured gross loss.

Module (iii) of the catastrophe model: "the resultant financial loss"
(§II).  Site-level policy terms — deductible and limit, both expressible
as fractions of the insured value — map ground-up loss (damage ratio ×
value) to the gross loss that enters the contract's ELT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PolicyTerms", "ground_up_loss", "gross_loss"]


@dataclass(frozen=True)
class PolicyTerms:
    """Primary-insurance terms applied at each site.

    Attributes
    ----------
    deductible_fraction:
        Deductible as a fraction of site value (retained by the insured).
    limit_fraction:
        Maximum payout as a fraction of site value (∞ = unlimited).
    """

    deductible_fraction: float = 0.01
    limit_fraction: float = 1.0

    def __post_init__(self):
        if not (0.0 <= self.deductible_fraction <= 1.0):
            raise ConfigurationError("deductible_fraction must lie in [0, 1]")
        if self.limit_fraction <= 0:
            raise ConfigurationError("limit_fraction must be positive")


def ground_up_loss(damage_ratio: np.ndarray, value: np.ndarray) -> np.ndarray:
    """Economic loss before any insurance terms."""
    return np.asarray(damage_ratio, dtype=np.float64) * np.asarray(value, dtype=np.float64)


def gross_loss(
    damage_ratio: np.ndarray,
    value: np.ndarray,
    terms: PolicyTerms,
) -> np.ndarray:
    """Insured gross loss after site deductible and limit.

    ``gross = min(max(gu - ded, 0), limit)`` per site, with ``ded`` and
    ``limit`` scaled by site value.
    """
    value = np.asarray(value, dtype=np.float64)
    gu = ground_up_loss(damage_ratio, value)
    ded = terms.deductible_fraction * value
    lim = terms.limit_fraction * value
    return np.minimum(np.maximum(gu - ded, 0.0), lim)
