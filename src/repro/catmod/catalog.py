"""Stochastic event-catalogue generation.

An event catalogue is a "mathematical representation of natural
occurrence patterns and characteristics of catastrophes" (§II): a large
table of hypothetical events, each with a peril, location, severity,
footprint, and an annual occurrence *rate* used later when the YET is
simulated.  Catalogues here are a :class:`ColumnTable` wrapped with typed
accessors, generated deterministically from a peril book and a region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catmod.geography import Region
from repro.catmod.perils import Peril, PerilKind
from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import ConfigurationError

__all__ = ["CATALOG_SCHEMA", "EventCatalog", "generate_catalog"]

CATALOG_SCHEMA = Schema([
    ("event_id", np.int64),
    ("peril", np.int16),
    ("magnitude", np.float64),
    ("lat", np.float64),
    ("lon", np.float64),
    ("radius_km", np.float64),
    ("rate", np.float64),  # expected occurrences per contractual year
])


@dataclass(frozen=True)
class EventCatalog:
    """A typed wrapper around the catalogue table."""

    table: ColumnTable

    def __post_init__(self):
        if self.table.schema != CATALOG_SCHEMA:
            raise ConfigurationError("catalogue table does not match CATALOG_SCHEMA")
        ids = self.table["event_id"]
        if ids.size and np.unique(ids).size != ids.size:
            raise ConfigurationError("catalogue event ids must be unique")
        if ids.size and (ids < 0).any():
            raise ConfigurationError("catalogue event ids must be non-negative")
        if (self.table["rate"] <= 0).any():
            raise ConfigurationError("event rates must be positive")

    @property
    def n_events(self) -> int:
        return self.table.n_rows

    @property
    def event_ids(self) -> np.ndarray:
        return self.table["event_id"]

    @property
    def rates(self) -> np.ndarray:
        return self.table["rate"]

    @property
    def total_rate(self) -> float:
        """Expected total events per contractual year across the catalogue."""
        return float(self.table["rate"].sum())

    def for_peril(self, kind: PerilKind) -> "EventCatalog":
        return EventCatalog(self.table.filter(self.table["peril"] == int(kind)))


def generate_catalog(
    perils: dict[PerilKind, Peril],
    region: Region,
    n_events: int,
    rng: np.random.Generator,
) -> EventCatalog:
    """Generate an ``n_events``-row stochastic catalogue.

    Events are apportioned to perils proportionally to their annual rates,
    so each event's own occurrence rate is ``peril_rate / peril_events``
    and the catalogue-wide total rate equals the book's total rate
    regardless of ``n_events`` (refining a catalogue adds resolution, not
    frequency).
    """
    if n_events <= 0:
        raise ConfigurationError(f"n_events must be positive, got {n_events}")
    if not perils:
        raise ConfigurationError("need at least one peril")

    kinds = sorted(perils, key=int)
    total_rate = sum(perils[k].annual_rate for k in kinds)
    counts = {}
    assigned = 0
    for i, kind in enumerate(kinds):
        if i == len(kinds) - 1:
            counts[kind] = n_events - assigned
        else:
            share = perils[kind].annual_rate / total_rate
            counts[kind] = max(1, int(round(n_events * share)))
            assigned += counts[kind]
    if counts[kinds[-1]] <= 0:
        raise ConfigurationError(
            f"n_events={n_events} too small for {len(kinds)} perils"
        )

    parts = []
    next_id = 0
    for kind in kinds:
        peril = perils[kind]
        n = counts[kind]
        prng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        magnitude = peril.sample_magnitudes(n, prng)
        lat = prng.uniform(region.lat_min, region.lat_max, size=n)
        lon = prng.uniform(region.lon_min, region.lon_max, size=n)
        parts.append(ColumnTable.from_arrays(
            CATALOG_SCHEMA,
            event_id=np.arange(next_id, next_id + n, dtype=np.int64),
            peril=np.full(n, int(kind), dtype=np.int16),
            magnitude=magnitude,
            lat=lat,
            lon=lon,
            radius_km=peril.footprint_radius_km(magnitude),
            rate=np.full(n, peril.annual_rate / n, dtype=np.float64),
        ))
        next_id += n
    return EventCatalog(ColumnTable.concat(parts))
