"""Hazard module: intensity of an event at exposure sites.

Module (i) of the catastrophe model: "the hazard intensity at exposure
sites" (§II).  Intensity is the event's magnitude attenuated by distance
with the peril's decay law, truncated to zero outside the footprint
radius.  The computation is a pure broadcastable function so the pipeline
can evaluate one event against a million sites in a single vectorised
call.
"""

from __future__ import annotations

import numpy as np

from repro.catmod.geography import haversine_km
from repro.catmod.perils import Peril

__all__ = ["attenuate", "hazard_intensity"]


def attenuate(magnitude, distance_km, peril: Peril) -> np.ndarray:
    """Intensity at ``distance_km`` from an event of ``magnitude``.

    ``I(m, d) = m / (1 + d/d0)^p`` — a generic inverse-power attenuation
    that matches the qualitative shape of ground-motion-prediction and
    wind-field decay curves.
    """
    magnitude = np.asarray(magnitude, dtype=np.float64)
    distance_km = np.asarray(distance_km, dtype=np.float64)
    decay = (1.0 + distance_km / peril.attenuation_d0_km) ** peril.attenuation_power
    return magnitude / decay


def hazard_intensity(
    event_lat: float,
    event_lon: float,
    magnitude: float,
    radius_km: float,
    peril: Peril,
    site_lat: np.ndarray,
    site_lon: np.ndarray,
) -> np.ndarray:
    """Intensity of one event at each site (zero outside the footprint)."""
    d = haversine_km(event_lat, event_lon, site_lat, site_lon)
    intensity = attenuate(magnitude, d, peril)
    return np.where(d <= radius_km, intensity, 0.0)
