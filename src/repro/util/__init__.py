"""Shared low-level utilities: RNG hierarchy, timing, statistics, tables."""

from repro.util.rng import RngHierarchy, spawn_generator
from repro.util.timing import Stopwatch, ThroughputMeter
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "RngHierarchy",
    "spawn_generator",
    "Stopwatch",
    "ThroughputMeter",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability_vector",
]
