"""Deterministic hierarchical random-number streams.

Reproducibility is a hard requirement of the paper's pipeline: the whole
point of the pre-simulated Year-Event Table is to give actuaries *"a
consistent lens through which to view results, rather than using random
values generated on-the-fly"* (§II).  Every stochastic component in this
library therefore draws from a named substream derived from a single root
seed, so that regenerating any artefact — an event catalogue, an exposure
database, a YET — yields bit-identical results regardless of the order in
which other components consumed randomness.

Substreams are derived with ``numpy``'s :class:`~numpy.random.SeedSequence`
``spawn_key`` mechanism keyed by a stable 64-bit hash of the component path
(e.g. ``"catalog/peril=EQ"``), which keeps streams statistically
independent while remaining order-insensitive.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["stable_hash64", "RngHierarchy", "spawn_generator"]


def stable_hash64(text: str) -> int:
    """Return a stable (process-independent) 64-bit hash of ``text``.

    Python's built-in ``hash`` is salted per process; benches and tests need
    the same substream across runs, so we use BLAKE2b instead.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def spawn_generator(root_seed: int, path: str) -> np.random.Generator:
    """Create a generator for the substream named ``path`` under ``root_seed``."""
    seq = np.random.SeedSequence(entropy=root_seed, spawn_key=(stable_hash64(path),))
    return np.random.default_rng(seq)


class RngHierarchy:
    """A tree of named, independently seeded random streams.

    Parameters
    ----------
    root_seed:
        Seed at the root of the hierarchy.  Two hierarchies with the same
        root seed produce identical streams for identical paths.
    prefix:
        Path prefix, used internally by :meth:`child`.

    Examples
    --------
    >>> rng = RngHierarchy(42)
    >>> a = rng.generator("catalog").normal()
    >>> b = RngHierarchy(42).generator("catalog").normal()
    >>> a == b
    True
    """

    __slots__ = ("root_seed", "prefix")

    def __init__(self, root_seed: int, prefix: str = "") -> None:
        self.root_seed = int(root_seed)
        self.prefix = prefix

    def _full(self, path: str) -> str:
        return f"{self.prefix}/{path}" if self.prefix else path

    def generator(self, path: str) -> np.random.Generator:
        """Return a fresh generator for the named substream.

        Calling this twice with the same path returns generators that
        produce *identical* sequences; callers that need to continue a
        stream must hold on to the generator object.
        """
        return spawn_generator(self.root_seed, self._full(path))

    def child(self, path: str) -> "RngHierarchy":
        """Return a sub-hierarchy rooted at ``path``."""
        return RngHierarchy(self.root_seed, self._full(path))

    def seed_for(self, path: str) -> int:
        """Return a derived integer seed for components that want raw seeds."""
        return stable_hash64(f"{self.root_seed}:{self._full(path)}")

    def generators(self, paths: Iterable[str]) -> list[np.random.Generator]:
        """Vector form of :meth:`generator`."""
        return [self.generator(p) for p in paths]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngHierarchy(root_seed={self.root_seed}, prefix={self.prefix!r})"
