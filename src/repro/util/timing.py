"""Wall-clock timing and throughput measurement for the bench harness.

The experiments in EXPERIMENTS.md report timings and derived throughputs
(trials/second, rows/second).  :class:`Stopwatch` is a context-manager
timer with split support; :class:`ThroughputMeter` accumulates (items,
seconds) pairs and derives rates, which the cost model
(:mod:`repro.hpc.cost_model`) consumes for the burst analysis (E9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import AnalysisError

__all__ = ["Stopwatch", "ThroughputMeter", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Render a duration human-readably (``"1.23 ms"``, ``"2.5 s"``...)."""
    if seconds < 0:
        raise AnalysisError(f"negative duration: {seconds}")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"


class Stopwatch:
    """Context-manager stopwatch with named splits.

    Examples
    --------
    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    ...     sw.split("sum")
    >>> sw.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._stop: float | None = None
        self.splits: dict[str, float] = {}

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self._stop = None
        return self

    def stop(self) -> float:
        if self._start is None:
            raise AnalysisError("Stopwatch.stop() before start()")
        self._stop = time.perf_counter()
        return self.elapsed

    def split(self, name: str) -> float:
        """Record the elapsed time so far under ``name`` and return it."""
        if self._start is None:
            raise AnalysisError("Stopwatch.split() before start()")
        now = time.perf_counter()
        self.splits[name] = now - self._start
        return self.splits[name]

    @property
    def elapsed(self) -> float:
        """Seconds between start and stop (or now, if still running)."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else time.perf_counter()
        return end - self._start

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class ThroughputMeter:
    """Accumulates work/time observations and reports a rate.

    Attributes
    ----------
    unit:
        Name of the work item (``"trials"``, ``"rows"``) used in reports.
    """

    unit: str = "items"
    total_items: float = 0.0
    total_seconds: float = 0.0
    observations: list[tuple[float, float]] = field(default_factory=list)

    def record(self, items: float, seconds: float) -> None:
        """Add one observation of ``items`` processed in ``seconds``."""
        if items < 0 or seconds < 0:
            raise AnalysisError("items and seconds must be non-negative")
        self.observations.append((items, seconds))
        self.total_items += items
        self.total_seconds += seconds

    @property
    def rate(self) -> float:
        """Aggregate items/second over all observations."""
        if self.total_seconds == 0:
            raise AnalysisError("no time recorded; cannot compute a rate")
        return self.total_items / self.total_seconds

    def seconds_for(self, items: float) -> float:
        """Extrapolated time to process ``items`` at the measured rate."""
        return items / self.rate

    def describe(self) -> str:
        return (
            f"{self.total_items:,.0f} {self.unit} in "
            f"{format_seconds(self.total_seconds)} "
            f"({self.rate:,.0f} {self.unit}/s)"
        )
