"""Small argument-validation helpers used across the library.

These raise :class:`repro.errors.ConfigurationError` (not ``ValueError``)
so that user-facing constructors surface a consistent error type.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability_vector",
    "check_in",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` (and finite); return it."""
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be positive and finite, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` (inf allowed — limits are often unbounded)."""
    if math.isnan(value) or value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it."""
    if math.isnan(value) or not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_probability_vector(name: str, values: Sequence[float]) -> np.ndarray:
    """Require a non-empty vector of non-negative weights summing to ~1."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(f"{name} must be a non-empty 1-D vector")
    if np.any(arr < 0) or not np.isfinite(arr).all():
        raise ConfigurationError(f"{name} must contain finite non-negative entries")
    total = float(arr.sum())
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
        raise ConfigurationError(f"{name} must sum to 1, got {total}")
    return arr


def check_in(name: str, value, allowed) -> object:
    """Require ``value`` to be a member of ``allowed``; return it."""
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")
    return value
