"""Fixed-width text tables for bench reports.

The benchmark harness regenerates the paper's quantitative claims as rows;
this renderer prints them in aligned monospace suitable for tee-ing into
``bench_output.txt`` and quoting in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_count", "format_bytes"]


def format_count(value: float) -> str:
    """Format large counts with engineering suffixes (1.2K, 3.4M, 5.0e16)."""
    if value != value:  # NaN
        return "nan"
    a = abs(value)
    if a >= 1e15:
        return f"{value:.2e}"
    for threshold, suffix in ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K")):
        if a >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def format_bytes(n: float) -> str:
    """Format a byte count with binary suffixes."""
    a = abs(n)
    for threshold, suffix in ((1024**5, "PiB"), (1024**4, "TiB"), (1024**3, "GiB"),
                              (1024**2, "MiB"), (1024, "KiB")):
        if a >= threshold:
            return f"{n / threshold:.2f} {suffix}"
    return f"{n:.0f} B"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an aligned fixed-width table.

    Cells are stringified with ``str``; numeric alignment is right, text is
    left.  Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_cell(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}: {r}")
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    numeric = [all(_is_numeric(r[i]) for r in str_rows) if str_rows else False
               for i in range(ncols)]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, c in enumerate(cells):
            parts.append(c.rjust(widths[i]) if numeric[i] else c.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text.replace(",", "").rstrip("KMBTx%s"))
        return True
    except ValueError:
        return False
