"""Empirical statistics shared by the metrics and analytics layers.

The portfolio metrics of §II (PML, TVaR) and the exceedance-probability
curves of :mod:`repro.analytics.ep_curves` all reduce to operations on an
empirical sample of annual losses (one value per simulated trial year).
This module holds the sample-level primitives: quantiles with the
actuarial conventions used by YLT tooling, exceedance probabilities, and
tail expectations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError

__all__ = [
    "empirical_quantile",
    "exceedance_probability",
    "tail_expectation",
    "return_period_loss",
    "loss_at_probability",
    "standard_error_of_mean",
]


def _as_sample(losses) -> np.ndarray:
    arr = np.asarray(losses, dtype=np.float64).ravel()
    if arr.size == 0:
        raise AnalysisError("empty loss sample")
    if not np.isfinite(arr).all():
        raise AnalysisError("loss sample contains non-finite values")
    return arr


def empirical_quantile(losses, q: float) -> float:
    """Empirical quantile with linear interpolation (NumPy default).

    ``q`` is the non-exceedance probability: ``empirical_quantile(x, 0.99)``
    is the loss exceeded in ~1% of trial years.
    """
    if not (0.0 <= q <= 1.0):
        raise AnalysisError(f"quantile level must lie in [0,1], got {q}")
    return float(np.quantile(_as_sample(losses), q))


def exceedance_probability(losses, threshold: float) -> float:
    """Fraction of trial years with loss strictly greater than ``threshold``."""
    arr = _as_sample(losses)
    return float(np.count_nonzero(arr > threshold) / arr.size)


def tail_expectation(losses, q: float) -> float:
    """Mean of the worst ``(1-q)`` fraction of the sample (the TVaR kernel).

    Uses the conditional-expectation convention ``E[X | X >= VaR_q]``; when
    several sample points tie with the VaR the ties are included, which
    keeps the estimator monotone in ``q`` and ≥ the quantile itself.
    """
    arr = _as_sample(losses)
    var = empirical_quantile(arr, q)
    tail = arr[arr >= var]
    if tail.size == 0:  # can only happen with q == 1 and fp round-off
        return float(arr.max())
    return float(tail.mean())


def return_period_loss(losses, years: float) -> float:
    """Loss with a mean recurrence interval of ``years`` (the PML convention).

    A ``years``-year return period corresponds to exceedance probability
    ``1/years`` per contractual year, i.e. the ``1 - 1/years`` quantile.
    """
    if years <= 1.0:
        raise AnalysisError(f"return period must exceed 1 year, got {years}")
    return empirical_quantile(losses, 1.0 - 1.0 / years)


def loss_at_probability(losses, p_exceed: float) -> float:
    """Loss whose exceedance probability is ``p_exceed`` (inverse EP curve)."""
    if not (0.0 < p_exceed < 1.0):
        raise AnalysisError(f"exceedance probability must lie in (0,1), got {p_exceed}")
    return empirical_quantile(losses, 1.0 - p_exceed)


def standard_error_of_mean(losses) -> float:
    """Monte-Carlo standard error of the sample mean."""
    arr = _as_sample(losses)
    if arr.size < 2:
        raise AnalysisError("need at least two observations for a standard error")
    return float(arr.std(ddof=1) / np.sqrt(arr.size))
