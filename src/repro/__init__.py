"""repro — reproduction of *Data Challenges in High-Performance Risk
Analytics* (Varghese & Rau-Chaplin, SC 2012).

The library implements the paper's three-stage reinsurance risk-analytics
pipeline and the substrates it runs on:

- :mod:`repro.catmod` — stage 1, catastrophe modelling (catalogues,
  exposure, hazard/vulnerability/financial modules → ELTs);
- :mod:`repro.core` — stage 2, portfolio aggregate analysis (YET × layers
  → YLTs) with six interchangeable engines (sequential, vectorized,
  simulated-GPU, multicore, MapReduce, distributed);
- :mod:`repro.dfa` — stage 3, dynamic financial analysis and enterprise
  risk (risk combination, PML/VaR/TVaR, reporting, real-time pricing);
- :mod:`repro.data` — the data-management substrate (columnar scans,
  row-store baseline, simulated DFS + MapReduce, warehouse cube);
- :mod:`repro.hpc` — the HPC substrate (simulated GPU with memory
  hierarchy, simulated cluster with collectives, cost model);
- :mod:`repro.serve` — the serving layer (request micro-batching into
  fused sweeps, content-addressed result cache, SLO admission control)
  that turns stage-2 speed into many-user pricing throughput;
- :mod:`repro.session` — the staged entry point: a
  :class:`~repro.session.RiskSession` binds the YET once, stages it
  through the shared-memory data plane, and runs every stage-2/3
  workload (aggregate runs, quotes, EP curves, sensitivities) over that
  one staged substrate, with ``engine="auto"`` resolved by a cost-model
  planner whose :class:`~repro.session.ExecutionPlan` explains itself.

Quickstart::

    import repro
    wl = repro.bench.companion_study_workload(n_trials=10_000)
    with repro.RiskSession(wl.yet, wl.portfolio) as session:
        result = session.aggregate()              # engine="auto", planned
        print(result.details["plan"].explain())   # why that substrate
        quotes = session.quote_many(list(wl.portfolio))  # same staged YET
        print(repro.regulator_report(
            repro.RiskMetrics.from_ylt(result.portfolio_ylt)))

The classic entry points (:class:`~repro.core.simulation.AggregateAnalysis`,
:class:`~repro.serve.service.PricingService`,
:class:`~repro.dfa.pricing.RealTimePricer`) keep working and accept
``session=`` to share one staged substrate.
"""

from repro import (
    analytics,
    bench,
    catmod,
    core,
    data,
    dfa,
    hpc,
    obs,
    serve,
    session,
    util,
)
from repro.config import DEFAULTS, ReproConfig
from repro.core import (
    AggregateAnalysis,
    AnalysisResult,
    EltTable,
    EngineSpec,
    Layer,
    LayerTerms,
    LossLookup,
    Portfolio,
    YeltTable,
    YelltModel,
    YetTable,
    YltTable,
    available_engines,
    get_engine,
)
from repro.dfa import (
    Enterprise,
    BusinessUnit,
    PricingQuote,
    RealTimePricer,
    RiskMetrics,
    combine_ylts,
    probable_maximum_loss,
    regulator_report,
    tail_value_at_risk,
    value_at_risk,
)
from repro.errors import ExecutionError, ReproError
from repro.hpc import FaultPlan, PoolHealth, TaskPolicy, WorkPool
from repro.obs import MetricsRegistry, Telemetry
from repro.serve import BatchPolicy, CachePolicy, PricingService
from repro.session import ExecutionPlan, RiskSession
from repro.util.rng import RngHierarchy

__version__ = "1.0.0"

__all__ = [
    "analytics",
    "bench",
    "catmod",
    "core",
    "data",
    "dfa",
    "hpc",
    "obs",
    "serve",
    "session",
    "util",
    "MetricsRegistry",
    "Telemetry",
    "DEFAULTS",
    "ReproConfig",
    "AggregateAnalysis",
    "AnalysisResult",
    "EltTable",
    "EngineSpec",
    "Layer",
    "LayerTerms",
    "LossLookup",
    "Portfolio",
    "YeltTable",
    "YelltModel",
    "YetTable",
    "YltTable",
    "available_engines",
    "get_engine",
    "Enterprise",
    "BusinessUnit",
    "PricingQuote",
    "RealTimePricer",
    "RiskMetrics",
    "combine_ylts",
    "probable_maximum_loss",
    "regulator_report",
    "tail_value_at_risk",
    "value_at_risk",
    "ReproError",
    "ExecutionError",
    "FaultPlan",
    "PoolHealth",
    "TaskPolicy",
    "WorkPool",
    "PricingService",
    "BatchPolicy",
    "CachePolicy",
    "RiskSession",
    "ExecutionPlan",
    "RngHierarchy",
    "__version__",
]
