"""repro — reproduction of *Data Challenges in High-Performance Risk
Analytics* (Varghese & Rau-Chaplin, SC 2012).

The library implements the paper's three-stage reinsurance risk-analytics
pipeline and the substrates it runs on:

- :mod:`repro.catmod` — stage 1, catastrophe modelling (catalogues,
  exposure, hazard/vulnerability/financial modules → ELTs);
- :mod:`repro.core` — stage 2, portfolio aggregate analysis (YET × layers
  → YLTs) with six interchangeable engines (sequential, vectorized,
  simulated-GPU, multicore, MapReduce, distributed);
- :mod:`repro.dfa` — stage 3, dynamic financial analysis and enterprise
  risk (risk combination, PML/VaR/TVaR, reporting, real-time pricing);
- :mod:`repro.data` — the data-management substrate (columnar scans,
  row-store baseline, simulated DFS + MapReduce, warehouse cube);
- :mod:`repro.hpc` — the HPC substrate (simulated GPU with memory
  hierarchy, simulated cluster with collectives, cost model);
- :mod:`repro.serve` — the serving layer (request micro-batching into
  fused sweeps, content-addressed result cache, SLO admission control)
  that turns stage-2 speed into many-user pricing throughput.

Quickstart::

    import repro
    wl = repro.bench.companion_study_workload(n_trials=10_000)
    result = repro.AggregateAnalysis(wl.portfolio, wl.yet).run("vectorized")
    print(repro.regulator_report(repro.RiskMetrics.from_ylt(result.portfolio_ylt)))
"""

from repro import analytics, bench, catmod, core, data, dfa, hpc, serve, util
from repro.config import DEFAULTS, ReproConfig
from repro.core import (
    AggregateAnalysis,
    AnalysisResult,
    EltTable,
    Layer,
    LayerTerms,
    LossLookup,
    Portfolio,
    YeltTable,
    YelltModel,
    YetTable,
    YltTable,
    available_engines,
    get_engine,
)
from repro.dfa import (
    Enterprise,
    BusinessUnit,
    PricingQuote,
    RealTimePricer,
    RiskMetrics,
    combine_ylts,
    probable_maximum_loss,
    regulator_report,
    tail_value_at_risk,
    value_at_risk,
)
from repro.errors import ReproError
from repro.serve import BatchPolicy, CachePolicy, PricingService
from repro.util.rng import RngHierarchy

__version__ = "1.0.0"

__all__ = [
    "analytics",
    "bench",
    "catmod",
    "core",
    "data",
    "dfa",
    "hpc",
    "serve",
    "util",
    "DEFAULTS",
    "ReproConfig",
    "AggregateAnalysis",
    "AnalysisResult",
    "EltTable",
    "Layer",
    "LayerTerms",
    "LossLookup",
    "Portfolio",
    "YeltTable",
    "YelltModel",
    "YetTable",
    "YltTable",
    "available_engines",
    "get_engine",
    "Enterprise",
    "BusinessUnit",
    "PricingQuote",
    "RealTimePricer",
    "RiskMetrics",
    "combine_ylts",
    "probable_maximum_loss",
    "regulator_report",
    "tail_value_at_risk",
    "value_at_risk",
    "ReproError",
    "PricingService",
    "BatchPolicy",
    "CachePolicy",
    "RngHierarchy",
    "__version__",
]
