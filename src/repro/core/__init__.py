"""Stage 2 — portfolio risk management (aggregate analysis).

This package is the computational core of the reproduction: the Monte
Carlo *aggregate analysis* of §II, which re-plays a pre-simulated
Year-Event Table (YET) of alternative contractual years against a
portfolio of reinsurance layers, producing Year-Loss Tables (YLTs).  The
algorithm follows the companion study the paper cites for its GPU results
(Bahl et al., WHPCF @ SC12 [7]): per event-occurrence ELT lookups,
occurrence-level financial terms, per-year aggregation, aggregate-level
terms.

Six interchangeable engines execute the same analysis (see
:mod:`repro.core.engines`); their numerical equivalence is a tested
invariant, and their relative performance is the subject of experiments
E3-E5 and E7.
"""

from repro.core.tables import (
    ELT_SCHEMA,
    YET_SCHEMA,
    YELT_SCHEMA,
    YLT_SCHEMA,
    EltTable,
    YetHandles,
    YetTable,
    YeltTable,
    YltTable,
    YelltModel,
)
from repro.core.kernels import KernelHandles, PortfolioKernel
from repro.core.terms import LayerTerms
from repro.core.lookup import LossLookup
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.simulation import AggregateAnalysis, AnalysisResult
from repro.core.engines import (
    EngineSpec,
    available_engines,
    engine_spec,
    get_engine,
)
from repro.core.engines.outofcore import OutOfCoreEngine
from repro.core.uncertainty import (
    SecondaryUncertainty,
    sample_occurrence_losses,
    sampled_aggregate_analysis,
)
from repro.core.reinstatements import (
    apply_reinstatement_limit,
    reinstatement_premiums,
)
from repro.core.yellt import YelltTable, materialize_yellt, yellt_to_yelt

__all__ = [
    "ELT_SCHEMA",
    "YET_SCHEMA",
    "YELT_SCHEMA",
    "YLT_SCHEMA",
    "EltTable",
    "YetHandles",
    "YetTable",
    "YeltTable",
    "YltTable",
    "YelltModel",
    "KernelHandles",
    "PortfolioKernel",
    "LayerTerms",
    "LossLookup",
    "Layer",
    "Portfolio",
    "AggregateAnalysis",
    "AnalysisResult",
    "EngineSpec",
    "available_engines",
    "engine_spec",
    "get_engine",
    "OutOfCoreEngine",
    "SecondaryUncertainty",
    "sample_occurrence_losses",
    "sampled_aggregate_analysis",
    "apply_reinstatement_limit",
    "reinstatement_premiums",
    "YelltTable",
    "materialize_yellt",
    "yellt_to_yelt",
]
