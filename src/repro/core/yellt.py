"""YELLT materialisation — the table §II says is too big to build.

The Year-Event-Location-Loss Table carries the location dimension that
the YELT marginalises away.  At paper scale it has 5×10¹⁶ entries
(:class:`~repro.core.tables.YelltModel`); at bench scale we *can*
materialise it, which lets the size law and the marginalisation algebra
be validated on real rows instead of trusted arithmetic:

- :func:`materialize_yellt` joins a YET's occurrence stream against an
  event-location loss table (ELLT, the stage-1 site-level output);
- :func:`yellt_to_yelt` marginalises locations (must conserve loss);
- the row-count ratio YELLT/YELT equals the mean locations hit per
  event — the paper's "~1000×" factor.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import YELT_SCHEMA, YeltTable, YetTable
from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import ConfigurationError

__all__ = ["ELL_SCHEMA", "YELLT_SCHEMA", "YelltTable", "materialize_yellt",
           "yellt_to_yelt"]

#: Event-location-loss table (stage-1 site-level output for one contract).
ELL_SCHEMA = Schema([
    ("event_id", np.int64),
    ("location_id", np.int64),
    ("loss", np.float64),
])

#: The materialised YELLT.
YELLT_SCHEMA = Schema([
    ("trial", np.int64),
    ("event_id", np.int64),
    ("location_id", np.int64),
    ("loss", np.float64),
])


class YelltTable:
    """A materialised (small-scale) YELLT."""

    __slots__ = ("table", "n_trials")

    def __init__(self, table: ColumnTable, n_trials: int) -> None:
        if table.schema != YELLT_SCHEMA:
            raise ConfigurationError("YELLT table must match YELLT_SCHEMA")
        if n_trials <= 0:
            raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
        trials = table["trial"]
        if trials.size and ((trials < 0).any() or trials.max() >= n_trials):
            raise ConfigurationError("YELLT trial indices out of range")
        self.table = table
        self.n_trials = int(n_trials)

    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    def total_loss(self) -> float:
        return float(self.table["loss"].sum())


def materialize_yellt(
    yet: YetTable,
    ell: ColumnTable,
    max_rows: int = 50_000_000,
) -> YelltTable:
    """Join the YET occurrence stream against an event-location table.

    Every occurrence of event *e* in a trial produces one YELLT row per
    location with non-zero loss for *e*.  ``max_rows`` guards against
    accidentally requesting a paper-scale materialisation — the very
    operation §II warns about — with an informative error instead of an
    OOM kill.
    """
    if ell.schema != ELL_SCHEMA:
        raise ConfigurationError("event-location table must match ELL_SCHEMA")
    # Sort the ELL by event and build per-event row spans.
    order = np.argsort(ell["event_id"], kind="stable")
    ev_sorted = ell["event_id"][order]
    loc_sorted = ell["location_id"][order]
    loss_sorted = ell["loss"][order]

    occ_events = yet.event_ids
    span_start = np.searchsorted(ev_sorted, occ_events, side="left")
    span_stop = np.searchsorted(ev_sorted, occ_events, side="right")
    counts = span_stop - span_start
    total = int(counts.sum())
    if total > max_rows:
        raise ConfigurationError(
            f"materialising this YELLT needs {total:,} rows "
            f"(> max_rows={max_rows:,}); §II's point exactly — raise "
            "max_rows only if you mean it"
        )

    # Expand: for occurrence i, rows span_start[i]..span_stop[i] of the
    # sorted ELL, tagged with the occurrence's trial.
    nonzero = counts > 0
    idx_base = np.repeat(span_start[nonzero], counts[nonzero])
    # within-group offsets 0..count-1 per occurrence
    cum = np.concatenate(([0], np.cumsum(counts[nonzero])))[:-1]
    offsets = np.arange(total) - np.repeat(cum, counts[nonzero])
    gather = idx_base + offsets

    table = ColumnTable.from_arrays(
        YELLT_SCHEMA,
        trial=np.repeat(yet.trials[nonzero], counts[nonzero]),
        event_id=np.repeat(occ_events[nonzero], counts[nonzero]),
        location_id=loc_sorted[gather],
        loss=loss_sorted[gather],
    )
    return YelltTable(table, yet.n_trials)


def yellt_to_yelt(yellt: YelltTable) -> YeltTable:
    """Marginalise the location dimension (sum per trial-event run).

    Loss is conserved exactly: ``yelt.total_loss() == yellt.total_loss()``.
    Consecutive occurrences of the *same* event within a trial merge into
    one YELT row (the YELLT carries no occurrence-sequence column, so
    they are indistinguishable) — the standard (year, event)-granularity
    YELT convention.
    """
    t = yellt.table
    if t.n_rows == 0:
        return YeltTable(ColumnTable(YELT_SCHEMA), yellt.n_trials)
    # Rows for one (trial, occurrence) are contiguous by construction;
    # detect run boundaries on the (trial, event) pair.
    trial = t["trial"]
    event = t["event_id"]
    change = (np.diff(trial) != 0) | (np.diff(event) != 0)
    starts = np.concatenate(([0], np.nonzero(change)[0] + 1))
    sums = np.add.reduceat(t["loss"], starts)
    table = ColumnTable.from_arrays(
        YELT_SCHEMA,
        trial=trial[starts],
        event_id=event[starts],
        loss=sums,
    )
    return YeltTable(table, yellt.n_trials)
