"""Layer financial terms: the contract arithmetic of aggregate analysis.

Following the companion study [7], a reinsurance layer applies two
nested sets of terms to the event losses a trial year produces:

1. **Occurrence terms** per event occurrence: retention (deductible) and
   limit — ``l' = min(max(l - occ_retention, 0), occ_limit)``;
2. **Aggregate terms** per trial year on the sum of retained occurrence
   losses — ``L' = min(max(Σl' - agg_retention, 0), agg_limit)``;

then the cedant's **participation** share scales the result.  These three
steps are what every engine implements, so they live here once, in both
vectorised and scalar forms, and the scalar form is the oracle the
property tests check the engines against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LayerTerms"]


@dataclass(frozen=True)
class LayerTerms:
    """Financial terms of one reinsurance layer.

    Attributes
    ----------
    occ_retention:
        Per-occurrence retention (attachment point).  Losses below it are
        retained by the cedant.
    occ_limit:
        Per-occurrence limit of the layer (``inf`` = unlimited).
    agg_retention:
        Annual aggregate retention applied to the year's retained sum.
    agg_limit:
        Annual aggregate limit (``inf`` = unlimited).
    participation:
        Share of the layer assumed by the reinsurer, in ``(0, 1]``.
    """

    occ_retention: float = 0.0
    occ_limit: float = math.inf
    agg_retention: float = 0.0
    agg_limit: float = math.inf
    participation: float = 1.0

    def __post_init__(self):
        if self.occ_retention < 0 or math.isnan(self.occ_retention):
            raise ConfigurationError("occ_retention must be non-negative")
        if self.agg_retention < 0 or math.isnan(self.agg_retention):
            raise ConfigurationError("agg_retention must be non-negative")
        if self.occ_limit <= 0 or math.isnan(self.occ_limit):
            raise ConfigurationError("occ_limit must be positive (inf allowed)")
        if self.agg_limit <= 0 or math.isnan(self.agg_limit):
            raise ConfigurationError("agg_limit must be positive (inf allowed)")
        if not (0.0 < self.participation <= 1.0):
            raise ConfigurationError("participation must lie in (0, 1]")

    # -- vectorised forms (engines) ---------------------------------------

    def apply_occurrence(self, losses: np.ndarray) -> np.ndarray:
        """Occurrence terms over an array of event losses."""
        out = np.asarray(losses, dtype=np.float64) - self.occ_retention
        np.clip(out, 0.0, self.occ_limit, out=out)
        return out

    def apply_aggregate(self, annual: np.ndarray) -> np.ndarray:
        """Aggregate terms + participation over per-trial annual sums."""
        out = np.asarray(annual, dtype=np.float64) - self.agg_retention
        np.clip(out, 0.0, self.agg_limit, out=out)
        out *= self.participation
        return out

    # -- scalar oracle (tests, sequential engine) ----------------------------

    def occurrence_scalar(self, loss: float) -> float:
        """Scalar occurrence terms (pure Python)."""
        return min(max(loss - self.occ_retention, 0.0), self.occ_limit)

    def aggregate_scalar(self, annual: float) -> float:
        """Scalar aggregate terms + participation (pure Python)."""
        return min(max(annual - self.agg_retention, 0.0), self.agg_limit) * self.participation

    def trial_loss_scalar(self, event_losses) -> float:
        """Full layer arithmetic for one trial year (pure Python oracle)."""
        total = 0.0
        for loss in event_losses:
            total += self.occurrence_scalar(float(loss))
        return self.aggregate_scalar(total)
