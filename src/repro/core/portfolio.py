"""Portfolios: the full book of layers a reinsurer prices together.

"A reinsurer typically may have tens of thousands of contracts and are
interested in quantifying the risk across their whole portfolio" (§II).
A :class:`Portfolio` is an ordered collection of layers with unique ids;
the portfolio YLT is the trial-aligned sum of the per-layer YLTs, which
is exact because every layer is driven by the *same* YET — this is the
whole point of pre-simulating one consistent set of trial years.
"""

from __future__ import annotations

from repro.core.layer import Layer
from repro.errors import ConfigurationError

__all__ = ["Portfolio"]


class Portfolio:
    """An ordered, id-unique collection of reinsurance layers."""

    __slots__ = ("layers", "_kernel_cache")

    def __init__(self, layers) -> None:
        layers = tuple(layers)
        if not layers:
            raise ConfigurationError("a portfolio needs at least one layer")
        for layer in layers:
            if not isinstance(layer, Layer):
                raise ConfigurationError(f"expected Layer, got {type(layer).__name__}")
        ids = [l.layer_id for l in layers]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate layer ids: {ids}")
        self.layers = layers
        self._kernel_cache: dict[int, object] = {}

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def layer_ids(self) -> tuple[int, ...]:
        return tuple(l.layer_id for l in self.layers)

    @property
    def n_elts(self) -> int:
        return sum(l.n_elts for l in self.layers)

    @property
    def n_elt_rows(self) -> int:
        return sum(l.n_events for l in self.layers)

    def kernel(self, dense_max_entries: int = 4_000_000):
        """The fused :class:`~repro.core.kernels.PortfolioKernel`.

        Precomputed once per ``dense_max_entries`` (a small dict, like the
        per-layer lookup cache) so repeated engine runs over the same
        portfolio skip the stacking work.  Each cache entry remembers the
        per-layer lookups it was stacked from, so the documented
        :meth:`Layer.invalidate_lookup` mutation flow transparently
        rebuilds the kernel on next use instead of serving stale arrays.
        """
        lookups = tuple(
            layer.lookup(dense_max_entries=dense_max_entries)
            for layer in self.layers
        )
        entry = self._kernel_cache.get(dense_max_entries)
        if entry is not None:
            kernel, built_from = entry
            if all(a is b for a, b in zip(lookups, built_from)):
                return kernel
        from repro.core.kernels import PortfolioKernel

        kernel = PortfolioKernel.from_portfolio(
            self, dense_max_entries=dense_max_entries
        )
        self._kernel_cache[dense_max_entries] = (kernel, lookups)
        return kernel

    def invalidate_kernels(self) -> None:
        """Drop cached kernels and per-layer lookups (after mutating a
        layer's ELTs in place; equivalent to invalidating every layer)."""
        self._kernel_cache.clear()
        for layer in self.layers:
            layer.invalidate_lookup()

    def layer(self, layer_id: int) -> Layer:
        for l in self.layers:
            if l.layer_id == layer_id:
                return l
        raise ConfigurationError(f"no layer {layer_id} in portfolio")

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
