"""Portfolios: the full book of layers a reinsurer prices together.

"A reinsurer typically may have tens of thousands of contracts and are
interested in quantifying the risk across their whole portfolio" (§II).
A :class:`Portfolio` is an ordered collection of layers with unique ids;
the portfolio YLT is the trial-aligned sum of the per-layer YLTs, which
is exact because every layer is driven by the *same* YET — this is the
whole point of pre-simulating one consistent set of trial years.
"""

from __future__ import annotations

from repro.core.layer import Layer
from repro.errors import ConfigurationError

__all__ = ["Portfolio"]


class Portfolio:
    """An ordered, id-unique collection of reinsurance layers."""

    __slots__ = ("layers",)

    def __init__(self, layers) -> None:
        layers = tuple(layers)
        if not layers:
            raise ConfigurationError("a portfolio needs at least one layer")
        for layer in layers:
            if not isinstance(layer, Layer):
                raise ConfigurationError(f"expected Layer, got {type(layer).__name__}")
        ids = [l.layer_id for l in layers]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate layer ids: {ids}")
        self.layers = layers

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def layer_ids(self) -> tuple[int, ...]:
        return tuple(l.layer_id for l in self.layers)

    @property
    def n_elts(self) -> int:
        return sum(l.n_elts for l in self.layers)

    @property
    def n_elt_rows(self) -> int:
        return sum(l.n_events for l in self.layers)

    def layer(self, layer_id: int) -> Layer:
        for l in self.layers:
            if l.layer_id == layer_id:
                return l
        raise ConfigurationError(f"no layer {layer_id} in portfolio")

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
