"""The fused multi-layer portfolio kernel.

Every engine used to price a portfolio layer-by-layer: for L layers that
is L full passes over the same ``trials``/``event_ids`` arrays, L
separate gathers, and L separate ``bincount`` reductions — linear in
redundant memory traffic, which is exactly the data-movement cost §II
says dominates the ~10⁹ event-loss lookups of one aggregate run.

:class:`PortfolioKernel` fuses those passes.  It precomputes, once per
(portfolio, ``dense_max_entries``):

- a **stacked dense lookup**: all dense layers as one ``(D, width)``
  matrix (rows zero-padded to the widest table, so padding reads as
  "unknown event → 0");
- a **unified CSR sparse lookup**: the sparse layers' sorted ids/values
  concatenated with an offsets vector;
- ``(L,)`` **term vectors** (``occ_retention``, ``occ_limit``,
  ``agg_retention``, ``agg_limit``, ``participation``) broadcast over
  the loss matrix instead of re-read per layer.

The :meth:`sweep` then streams the YET in cache-sized occurrence blocks:
each block's event ids are gathered once per layer row while the block
(and its out-of-bounds mask) is hot in cache, sparse layers gather
through the same :func:`~repro.core.lookup.sparse_gather_into` the
scalar path uses, occurrence terms broadcast over the ``(L, block)``
matrix in place, and one **shared segment reduction** accumulates the
full ``(L, n_trials)`` annual matrix: because YET rows are sorted by
trial, the per-trial boundaries are computed once per block and
``np.add.reduceat`` folds all L layers over them — the trial index
stream is decoded once instead of L times.  Unsorted inputs get a
block-local stable sort first and take the same reduction.  Either way,
L passes collapse into one.

Kernel rows are ordered dense-first; :attr:`layer_ids` maps row → layer.
The kernel holds only plain arrays, so it pickles whole — the multicore
engine ships it to each worker once per run instead of re-sending lookup
arrays per layer per block.

**Sublinear tail groups.**  Batches of tail-attaching layers over one
shared book — the serving layer's many-quotes-one-book shape — do not
even need the ``(L, block)`` lane matrix.  Rows that (a) share a stored
lookup and (b) price through the one-clip window ``clip(g, lo, hi)``
(every row whose shifted-clip error bound passes — see
:meth:`_shift_mask`) form a *tail group*: the group's block is priced by
bucketing each gathered loss against the sorted union of the group's
``lo``/``hi`` thresholds (one ``searchsorted`` over ≤ 2·Lg cut points),
building a per-trial histogram + weighted histogram with ``bincount``,
and resolving every layer from the two cumulative-sum arrays —
``sum(clip(g - lo, 0, cap))`` is two lookups into prefix sums instead of
a lane of width ``block``.  Work per block is ``O(block · log Lg +
trials_in_block · Lg)`` instead of ``O(block · Lg)``: sublinear in lanes
whenever trials hold more than a couple of occurrences.  Rows that don't
qualify (occurrence terms at extreme retention scales, accumulating
chunk sweeps, unsorted trial streams, groups below
:data:`MIN_TAIL_GROUP` lanes) take the exact lane path via a
:meth:`subset` kernel — answers stay within the library's cross-engine
tolerance either way, and ``sweep(..., sublinear=False)`` forces the
lane path outright.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lookup import sparse_gather_into
from repro.errors import ConfigurationError

__all__ = ["KernelHandles", "PortfolioKernel", "DEFAULT_BLOCK_OCCURRENCES",
           "MIN_TAIL_GROUP"]

#: Kernel array attributes that travel through the shared-memory plane,
#: in the positional order of :meth:`PortfolioKernel.__init__`'s vector
#: arguments.  ``occ_floor``/``occ_ceiling`` are derived, not shipped.
_HANDLE_FIELDS = (
    "occ_retention", "occ_limit", "agg_retention", "agg_limit",
    "participation", "dense_stack", "sparse_ids", "sparse_values",
    "sparse_offsets", "dense_source", "sparse_source",
)


@dataclass(frozen=True)
class KernelHandles:
    """Shared-memory descriptor of one stacked kernel.

    Produced by :meth:`PortfolioKernel.export_handles`: the eleven array
    buffers as :class:`~repro.hpc.shm.ShmArrayHandle`\\ s plus the two
    scalar fields.  Pickles to ~1 KB regardless of how wide the dense
    stack is, so the serving layer can ship a per-batch kernel with
    every task for the cost of a dict of descriptors.
    """

    arrays: dict
    layer_ids: tuple[int, ...]
    block_occurrences: int

    @property
    def nbytes(self) -> int:
        """Payload bytes the handles point at."""
        return sum(h.nbytes for h in self.arrays.values())

#: Occurrence-block width of the fused sweep.  Sized so the ``(L, block)``
#: loss matrix of a mid-sized portfolio stays cache-resident (16 layers ×
#: 32k lanes × 8 B = 4 MiB) — the CPU analogue of the paper's "chunk to
#: fit the fast memory" rule.
DEFAULT_BLOCK_OCCURRENCES = 32_768

#: Minimum lanes sharing one stored lookup before the sublinear group
#: path pays for its histogram: the measured crossover against the lane
#: path sits between 16 and 32 lanes on dense streams, so below this the
#: threshold bookkeeping would cost more than the lanes it replaces.
MIN_TAIL_GROUP = 16

#: Caches derived lazily per instance — never pickled or shipped through
#: shared memory (workers rebuild them on first use).
_CACHE_SLOTS = ("_mask_cache", "_subset_cache", "_tail_index")


class PortfolioKernel:
    """Stacked lookups + term vectors for one portfolio, swept fused.

    Build with :meth:`from_portfolio` (or fetch the cached instance via
    :meth:`Portfolio.kernel`).  All state is plain NumPy, so instances
    are picklable and safe to ship to worker processes.
    """

    __slots__ = (
        "layer_ids", "occ_retention", "occ_limit", "agg_retention",
        "agg_limit", "participation", "dense_stack", "sparse_ids",
        "sparse_values", "sparse_offsets", "dense_source", "sparse_source",
        "occ_floor", "occ_ceiling", "block_occurrences",
        "_mask_cache", "_subset_cache", "_tail_index",
    )

    def __init__(
        self,
        *,
        layer_ids: tuple[int, ...],
        occ_retention: np.ndarray,
        occ_limit: np.ndarray,
        agg_retention: np.ndarray,
        agg_limit: np.ndarray,
        participation: np.ndarray,
        dense_stack: np.ndarray,
        sparse_ids: np.ndarray,
        sparse_values: np.ndarray,
        sparse_offsets: np.ndarray,
        dense_source: np.ndarray | None = None,
        sparse_source: np.ndarray | None = None,
        block_occurrences: int = DEFAULT_BLOCK_OCCURRENCES,
    ) -> None:
        n_layers = len(layer_ids)
        if n_layers == 0:
            raise ConfigurationError("a portfolio kernel needs at least one layer")
        for name, vec in (("occ_retention", occ_retention),
                          ("occ_limit", occ_limit),
                          ("agg_retention", agg_retention),
                          ("agg_limit", agg_limit),
                          ("participation", participation)):
            if vec.shape != (n_layers,):
                raise ConfigurationError(
                    f"{name} must have shape ({n_layers},), got {vec.shape}"
                )
        if dense_stack.ndim != 2:
            raise ConfigurationError("dense_stack must be a 2-D matrix")
        # Row → stored-table indirection: several layers may share one
        # dense table (or CSR segment) when they price the same merged
        # book under different terms — the serving layer's common case.
        if dense_source is None:
            dense_source = np.arange(dense_stack.shape[0], dtype=np.int64)
        else:
            dense_source = np.asarray(dense_source, dtype=np.int64)
        if sparse_source is None:
            sparse_source = np.arange(sparse_offsets.size - 1, dtype=np.int64)
        else:
            sparse_source = np.asarray(sparse_source, dtype=np.int64)
        if dense_source.size + sparse_source.size != n_layers:
            raise ConfigurationError(
                "dense rows + sparse segments must cover every layer"
            )
        if dense_source.size and not (
            (dense_source >= 0).all()
            and (dense_source < dense_stack.shape[0]).all()
        ):
            raise ConfigurationError("dense_source indexes outside dense_stack")
        if sparse_source.size and not (
            (sparse_source >= 0).all()
            and (sparse_source < sparse_offsets.size - 1).all()
        ):
            raise ConfigurationError("sparse_source indexes outside segments")
        if block_occurrences <= 0:
            raise ConfigurationError("block_occurrences must be positive")
        self.layer_ids = tuple(int(i) for i in layer_ids)
        self.occ_retention = occ_retention
        self.occ_limit = occ_limit
        self.agg_retention = agg_retention
        self.agg_limit = agg_limit
        self.participation = participation
        self.dense_stack = dense_stack
        self.sparse_ids = sparse_ids
        self.sparse_values = sparse_values
        self.sparse_offsets = sparse_offsets
        self.dense_source = dense_source
        self.sparse_source = sparse_source
        # The sweep applies occurrence terms through the identity
        #   clip(g - r, 0, c)  ==  clip(g, r, r + c) - r
        # one fused clip per row instead of subtract + clip, with the
        # "- r × (occurrences in trial)" term folded in after the trial
        # reduction, where it is an (L, n_trials) operation instead of
        # an (L, n_occurrences) one.  An *infinite* retention would turn
        # that correction into inf - inf = NaN, so such rows (result
        # identically zero) clip through a degenerate [0, 0] window and
        # contribute nothing to the correction instead.
        infinite_ret = np.isinf(occ_retention)
        self.occ_floor = np.where(infinite_ret, 0.0, occ_retention)
        self.occ_ceiling = np.where(
            infinite_ret, 0.0, occ_retention + occ_limit
        )
        self.block_occurrences = int(block_occurrences)
        self._init_caches()

    def _init_caches(self) -> None:
        self._mask_cache: dict[int, np.ndarray] = {}
        self._subset_cache: dict[bytes, "PortfolioKernel"] = {}
        self._tail_index = None

    def __getstate__(self):
        # Derived caches stay host-local: a pickled kernel (the multicore
        # ship path) carries only the stacked arrays, and the receiving
        # worker rebuilds masks/subsets lazily on first use.
        return {name: getattr(self, name) for name in self.__slots__
                if name not in _CACHE_SLOTS}

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._init_caches()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_portfolio(
        cls,
        portfolio,
        dense_max_entries: int = 4_000_000,
        block_occurrences: int = DEFAULT_BLOCK_OCCURRENCES,
    ) -> "PortfolioKernel":
        """Stack a portfolio's per-layer lookups and terms into one kernel.

        Per-layer lookups come from :meth:`Layer.lookup`, so the merge
        work is shared with every other engine via the layer cache.
        """
        return cls.from_layers(
            list(portfolio),
            dense_max_entries=dense_max_entries,
            block_occurrences=block_occurrences,
        )

    @classmethod
    def from_layers(
        cls,
        layers,
        *,
        layer_ids=None,
        dense_max_entries: int = 4_000_000,
        block_occurrences: int = DEFAULT_BLOCK_OCCURRENCES,
    ) -> "PortfolioKernel":
        """Stack loose layers into an ephemeral kernel — no Portfolio needed.

        This is the serving-layer construction path: a micro-batch of
        ad-hoc quote requests (each an arbitrary ``Layer``) is stacked
        into one kernel and priced in a single sweep.  ``layer_ids``
        overrides the row identities — batched requests may carry
        colliding ``layer.layer_id`` values, so the caller can key rows
        by request position instead.  Per-layer lookups still come from
        :meth:`Layer.lookup`, so repeat requests against the same layer
        objects reuse the cached merges.

        Layers over the *same ELT set and weights* — the what-if burst:
        many term variations of one book — share a single merged lookup:
        the merge is built once, stored once, and gathered once per
        occurrence block, with the other rows fanned out from it (see
        ``dense_source``/``sparse_source``).
        """
        layers = list(layers)
        if not layers:
            raise ConfigurationError("a portfolio kernel needs at least one layer")
        if layer_ids is None:
            layer_ids = [layer.layer_id for layer in layers]
        else:
            layer_ids = [int(i) for i in layer_ids]
            if len(layer_ids) != len(layers):
                raise ConfigurationError(
                    f"got {len(layer_ids)} layer_ids for {len(layers)} layers"
                )
        # One merged lookup per distinct (ELT set, weights): layers that
        # price the same book under different terms reuse the first
        # layer's merge instead of rebuilding it.  Object identity is
        # stable here — every layer in `layers` is alive for the call.
        lookup_by_book: dict = {}
        lookups = []
        for layer in layers:
            book = (tuple(id(e) for e in layer.elts), layer.weights)
            lk = lookup_by_book.get(book)
            if lk is None:
                lk = layer.lookup(dense_max_entries=dense_max_entries)
                lookup_by_book[book] = lk
            lookups.append(lk)
        triples = list(zip(layers, lookups, layer_ids))
        dense = [t for t in triples if t[1].kind == "dense"]
        sparse = [t for t in triples if t[1].kind == "sparse"]
        ordered = dense + sparse

        # Stack each unique table/segment once; rows point into the
        # store via the source vectors.
        def dedupe(entries):
            store, index, source = [], {}, []
            for _, lk, _ in entries:
                pos = index.get(id(lk))
                if pos is None:
                    pos = len(store)
                    index[id(lk)] = pos
                    store.append(lk)
                source.append(pos)
            return store, np.asarray(source, dtype=np.int64)

        dense_store, dense_source = dedupe(dense)
        sparse_store, sparse_source = dedupe(sparse)

        width = max((lk.table_array.size for lk in dense_store), default=0)
        dense_stack = np.zeros((len(dense_store), width), dtype=np.float64)
        for row, lk in enumerate(dense_store):
            table = lk.table_array
            dense_stack[row, :table.size] = table

        if sparse_store:
            sparse_ids = np.concatenate([lk.ids for lk in sparse_store])
            sparse_values = np.concatenate([lk.values for lk in sparse_store])
            lengths = [lk.ids.size for lk in sparse_store]
        else:
            sparse_ids = np.empty(0, dtype=np.int64)
            sparse_values = np.empty(0, dtype=np.float64)
            lengths = []
        sparse_offsets = np.concatenate(
            ([0], np.cumsum(lengths, dtype=np.int64))
        ).astype(np.int64)

        def term_vec(attr: str) -> np.ndarray:
            return np.array(
                [getattr(l.terms, attr) for l, _, _ in ordered], dtype=np.float64
            )

        return cls(
            layer_ids=tuple(lid for _, _, lid in ordered),
            occ_retention=term_vec("occ_retention"),
            occ_limit=term_vec("occ_limit"),
            agg_retention=term_vec("agg_retention"),
            agg_limit=term_vec("agg_limit"),
            participation=term_vec("participation"),
            dense_stack=dense_stack,
            sparse_ids=sparse_ids,
            sparse_values=sparse_values,
            sparse_offsets=sparse_offsets,
            dense_source=dense_source,
            sparse_source=sparse_source,
            block_occurrences=block_occurrences,
        )

    # -- shared-memory transport -------------------------------------------

    def export_handles(self, arena) -> KernelHandles:
        """Place every array buffer in shared memory; returns the handles.

        ``arena`` may be a :class:`~repro.hpc.shm.SharedArena` (one
        fresh segment, for a kernel staged across many runs) or a
        :class:`~repro.hpc.shm.ShmSlab` (the serving layer's reusable
        per-batch slab).  Either way the kernel's payload is copied into
        shared pages once and :meth:`from_handles` re-attaches it as
        views — the pickled task argument shrinks from the full stacked
        lookup to ~1 KB of descriptors.
        """
        handles = arena.place(*(getattr(self, f) for f in _HANDLE_FIELDS))
        return KernelHandles(
            arrays=dict(zip(_HANDLE_FIELDS, handles)),
            layer_ids=self.layer_ids,
            block_occurrences=self.block_occurrences,
        )

    @classmethod
    def from_handles(cls, handles: KernelHandles) -> "PortfolioKernel":
        """Rebuild a kernel over attached (read-only, zero-copy) views.

        Sweeps never write into the lookup buffers, so a handle-built
        kernel computes bit-identical results to the original; only the
        tiny derived vectors (``occ_floor``/``occ_ceiling``) are
        materialised locally by ``__init__``.
        """
        arrays = {name: h.attach() for name, h in handles.arrays.items()}
        return cls(
            layer_ids=handles.layer_ids,
            block_occurrences=handles.block_occurrences,
            **arrays,
        )

    # -- shape metadata ----------------------------------------------------

    @property
    def n_layers(self) -> int:
        return len(self.layer_ids)

    @property
    def n_dense(self) -> int:
        """Dense *rows* (several may share one stored table)."""
        return self.dense_source.size

    @property
    def n_sparse(self) -> int:
        """Sparse *rows* (several may share one stored CSR segment)."""
        return self.sparse_source.size

    @property
    def n_unique_lookups(self) -> int:
        """Distinct stored lookups (tables + segments) behind the rows."""
        return self.dense_stack.shape[0] + (self.sparse_offsets.size - 1)

    @property
    def nbytes(self) -> int:
        """Bytes of lookup state (what a device placement would ship)."""
        return (self.dense_stack.nbytes + self.sparse_ids.nbytes
                + self.sparse_values.nbytes)

    def row_of(self, layer_id: int) -> int:
        """Kernel row holding ``layer_id`` (rows are dense-first)."""
        try:
            return self.layer_ids.index(layer_id)
        except ValueError:
            raise ConfigurationError(f"no layer {layer_id} in kernel") from None

    # -- gathers -----------------------------------------------------------

    def _gather_unique(self, event_ids: np.ndarray, out: np.ndarray):
        """Gather each *stored* lookup once into its first row.

        Returns ``(firsts, duplicates)``: the rows that now hold fresh
        gathers, and ``(row, source_row)`` pairs for rows sharing a
        stored lookup with an earlier one — the caller decides whether
        to copy the raw losses or fold terms in directly.
        """
        n_dense = self.n_dense
        firsts: list[int] = []
        duplicates: list[tuple[int, int]] = []
        first_of: dict[int, int] = {}
        if n_dense:
            # Row-wise takes beat a two-axis gather: each is a contiguous
            # write, and the ids slice stays cache-hot across rows.  The
            # out-of-bounds fixup is skipped entirely in the common case
            # of ids inside the table.
            width = self.dense_stack.shape[1]
            for row in range(n_dense):
                u = int(self.dense_source[row])
                held = first_of.get(u)
                if held is None:
                    np.take(self.dense_stack[u], event_ids, mode="clip",
                            out=out[row])
                    first_of[u] = row
                    firsts.append(row)
                else:
                    duplicates.append((row, held))
            oob = event_ids >= width
            if oob.any():
                for row in firsts:
                    out[row][oob] = 0.0
        offsets = self.sparse_offsets
        first_seg: dict[int, int] = {}
        for i in range(self.n_sparse):
            row = n_dense + i
            seg = int(self.sparse_source[i])
            held = first_seg.get(seg)
            if held is None:
                lo, hi = offsets[seg], offsets[seg + 1]
                sparse_gather_into(
                    self.sparse_ids[lo:hi], self.sparse_values[lo:hi],
                    event_ids, out[row],
                )
                first_seg[seg] = row
                firsts.append(row)
            else:
                duplicates.append((row, held))
        return firsts, duplicates

    def gather_block(self, event_ids: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
        """Losses for one occurrence block, all layers: ``(L, block)``.

        Each *stored* lookup is gathered exactly once per block; rows
        sharing a lookup (same book, different terms) receive a plain
        copy of the first row's gather — a sequential write instead of a
        second random-access pass.
        """
        event_ids = np.asarray(event_ids, dtype=np.int64)
        if out is None:
            out = np.empty((self.n_layers, event_ids.size), dtype=np.float64)
        _, duplicates = self._gather_unique(event_ids, out)
        for row, src in duplicates:
            np.copyto(out[row], out[src])
        return out

    def _shift_mask(self, max_trial_count: int) -> np.ndarray:
        """Rows safe for the shifted-clip identity (see :meth:`sweep`).

        The post-reduction ``- r × count`` correction is a difference of
        ``~count·r``-magnitude sums, so its absolute rounding error is
        roughly ``count · r · 2⁻⁵²``.  ``max_trial_count`` is the exact
        maximum occurrences of any trial in this sweep (not a mean-based
        estimate — clustered trial sets would blow through one): rows
        whose worst case stays under the library's cross-engine
        tolerance (1e-6, with 2x margin for the partial-sum ulps) take
        the one-pass identity; rows attaching at extreme retention
        scales fall back to exact subtract-then-clip.

        Memoised per ``max_trial_count``: fixed-shape serving batches
        (same YET, fresh quote stacks) hit the same count every sweep.
        """
        key = int(max_trial_count)
        mask = self._mask_cache.get(key)
        if mask is None:
            worst_err = self.occ_floor * float(key) * 2.0 ** -51
            mask = worst_err <= 1e-6
            self._mask_cache[key] = mask
        return mask

    def _gather_clip_block(self, event_ids: np.ndarray, out: np.ndarray,
                           shifted: np.ndarray) -> np.ndarray:
        """Fused gather + occurrence terms for one sweep block.

        Rows flagged in ``shifted`` write ``clip(g, r, r + c)`` — the
        occurrence result shifted up by the retention, corrected after
        the trial reduction — in one clip pass; the rest take the exact
        subtract + clip.  Rows sharing a stored lookup fold either form
        straight off the shared gather without materialising a copy.
        Order matters: duplicates read their source row *before* the
        source row's own in-place terms overwrite it.
        """
        firsts, duplicates = self._gather_unique(event_ids, out)
        for row, src in duplicates:
            if shifted[row]:
                np.clip(out[src], self.occ_floor[row], self.occ_ceiling[row],
                        out=out[row])
            else:
                np.subtract(out[src], self.occ_retention[row], out=out[row])
                np.clip(out[row], 0.0, self.occ_limit[row], out=out[row])
        for row in firsts:
            if shifted[row]:
                np.clip(out[row], self.occ_floor[row], self.occ_ceiling[row],
                        out=out[row])
            else:
                np.subtract(out[row], self.occ_retention[row], out=out[row])
                np.clip(out[row], 0.0, self.occ_limit[row], out=out[row])
        return out

    def gather_layer(self, row: int, event_ids: np.ndarray) -> np.ndarray:
        """Losses for one kernel row over an id array (YELT emission path)."""
        event_ids = np.asarray(event_ids, dtype=np.int64)
        out = np.empty(event_ids.size, dtype=np.float64)
        if row < self.n_dense:
            table = self.dense_stack[int(self.dense_source[row])]
            width = table.size
            safe = np.clip(event_ids, 0, width - 1)
            np.take(table, safe, out=out)
            np.multiply(out, event_ids < width, out=out)
            return out
        seg = int(self.sparse_source[row - self.n_dense])
        lo, hi = self.sparse_offsets[seg], self.sparse_offsets[seg + 1]
        return sparse_gather_into(
            self.sparse_ids[lo:hi], self.sparse_values[lo:hi], event_ids, out
        )

    # -- sublinear tail groups ---------------------------------------------

    def _gather_store(self, kind: str, store: int, event_ids: np.ndarray,
                      out: np.ndarray) -> np.ndarray:
        """Ground-up losses of ONE stored lookup (not a row) for a block."""
        if kind == "dense":
            table = self.dense_stack[store]
            np.take(table, event_ids, mode="clip", out=out)
            oob = event_ids >= table.size
            if oob.any():
                out[oob] = 0.0
            return out
        lo, hi = self.sparse_offsets[store], self.sparse_offsets[store + 1]
        return sparse_gather_into(
            self.sparse_ids[lo:hi], self.sparse_values[lo:hi], event_ids, out
        )

    def _tail_group_index(self):
        """Structural tail groups: ``(kind, store, rows)`` triples.

        Rows sharing one stored lookup — same book, different terms —
        form a group when at least :data:`MIN_TAIL_GROUP` of them do;
        whether a given *sweep* actually prices a group sublinearly is
        decided per call (error bound, sortedness, stream density).
        Cached: the grouping is a pure function of the source vectors.
        """
        if self._tail_index is None:
            groups = []
            for kind, source, base in (("dense", self.dense_source, 0),
                                       ("sparse", self.sparse_source,
                                        self.n_dense)):
                if not source.size:
                    continue
                order = np.argsort(source, kind="stable")
                sorted_src = source[order]
                cuts = np.flatnonzero(sorted_src[1:] != sorted_src[:-1]) + 1
                for seg in np.split(order, cuts):
                    if seg.size >= MIN_TAIL_GROUP:
                        groups.append((kind, int(source[seg[0]]), seg + base))
            self._tail_index = groups
        return self._tail_index

    @property
    def tail_group_rows(self) -> int:
        """Rows structurally eligible for the sublinear group path."""
        return sum(rows.size for _, _, rows in self._tail_group_index())

    def subset(self, rows: np.ndarray) -> "PortfolioKernel":
        """A compact kernel over a sorted subset of this kernel's rows.

        Used as the exact-lane fallback when a sweep prices most rows
        through the group path: the leftover rows re-enter :meth:`sweep`
        as a small kernel of their own instead of dragging a full-width
        lane matrix along.  Stored lookups are re-deduplicated, so
        subset rows sharing a book still share one gather.  Cached per
        row set — serving batches ask for the same split every flush.
        """
        rows = np.asarray(rows, dtype=np.int64)
        key = rows.tobytes()
        cached = self._subset_cache.get(key)
        if cached is not None:
            return cached
        n_dense = self.n_dense
        dense_rows = rows[rows < n_dense]
        sparse_rows = rows[rows >= n_dense] - n_dense
        d_uniq, d_inv = np.unique(self.dense_source[dense_rows],
                                  return_inverse=True)
        dense_stack = (self.dense_stack[d_uniq] if d_uniq.size
                       else self.dense_stack[:0])
        s_uniq, s_inv = np.unique(self.sparse_source[sparse_rows],
                                  return_inverse=True)
        ids_parts, val_parts, lengths = [], [], []
        for seg in s_uniq:
            a, b = self.sparse_offsets[seg], self.sparse_offsets[seg + 1]
            ids_parts.append(self.sparse_ids[a:b])
            val_parts.append(self.sparse_values[a:b])
            lengths.append(int(b - a))
        sparse_ids = (np.concatenate(ids_parts) if ids_parts
                      else np.empty(0, dtype=np.int64))
        sparse_values = (np.concatenate(val_parts) if val_parts
                         else np.empty(0, dtype=np.float64))
        sparse_offsets = np.concatenate(
            ([0], np.cumsum(lengths, dtype=np.int64))
        ).astype(np.int64)
        sub = PortfolioKernel(
            layer_ids=tuple(self.layer_ids[int(r)] for r in rows),
            occ_retention=self.occ_retention[rows],
            occ_limit=self.occ_limit[rows],
            agg_retention=self.agg_retention[rows],
            agg_limit=self.agg_limit[rows],
            participation=self.participation[rows],
            dense_stack=dense_stack,
            sparse_ids=sparse_ids,
            sparse_values=sparse_values,
            sparse_offsets=sparse_offsets,
            dense_source=d_inv.astype(np.int64),
            sparse_source=s_inv.astype(np.int64),
            block_occurrences=self.block_occurrences,
        )
        self._subset_cache[key] = sub
        return sub

    def _sweep_tail_groups(self, trials, event_ids, out, groups) -> None:
        """Price tail groups via per-trial threshold histograms.

        For each group the sorted union of its ``[lo, hi)`` cut points is
        built once; per block, every gathered loss is bucketed with one
        ``searchsorted``, a per-(trial, bucket) count + weighted-sum
        histogram is accumulated with ``bincount``, and each layer's
        ``sum(clip(g - lo, 0, cap))`` falls out of the cumulative sums:

        ``mid  = (S[k_hi] - S[k_lo]) - lo · (C[k_hi] - C[k_lo])``
          (occurrences inside the window, measured from the attachment)
        ``top  = cap · (n_t - C[k_hi])``  (occurrences at/above the cap)

        with ``C[k] = #{g < T[k]}`` and ``S[k] = Σ{g : g < T[k]}``.
        ``lo == hi`` windows collapse to zero (k_lo == k_hi, cap 0) and
        an infinite ``hi`` never produces a ``top`` term (C[k_hi] == n_t
        for finite losses), so degenerate and uncapped rows need no
        special casing.  Each block partial is clamped at zero — the
        exact value of a partial sum of clipped losses is never negative,
        and the ``lo``-anchored subtraction can leave a −ulp residue on
        trials priced entirely below attachment (same budget as the
        shifted-clip identity, which is what gates rows into groups).

        Two further tricks keep the constant small: dense stores
        pre-bucket their *table entries* once per sweep, so bucketing the
        stream is a gather instead of per-occurrence binary search; and
        chunking follows the histogram budget (active trials × cut
        points), not the lane path's cache-sized occurrence blocks — the
        group path holds no ``(L, block)`` matrix to keep resident.
        """
        n = event_ids.size
        # Compact the (sorted) trial stream once for every group: `inv`
        # ranks each occurrence's trial among trials-present, so the
        # histogram width is active trials, not trial-id span.
        starts = np.concatenate(
            ([0], np.flatnonzero(trials[1:] != trials[:-1]) + 1)
        )
        utr = trials[starts]
        n_active = utr.size
        inv = np.repeat(
            np.arange(n_active, dtype=np.int64),
            np.diff(np.concatenate((starts, [n]))),
        )
        for kind, store, rows in groups:
            lo_vec = self.occ_floor[rows]
            hi_vec = self.occ_ceiling[rows]
            cap = hi_vec - lo_vec
            thresholds = np.unique(np.concatenate((lo_vec, hi_vec)))
            m = thresholds.size
            k_lo = np.searchsorted(thresholds, lo_vec, side="left")
            k_hi = np.searchsorted(thresholds, hi_vec, side="left")
            # bucket(g) = #{thresholds ≤ g}: g < T[k]  ⟺  bucket ≤ k.
            # A dense store's gathered losses can only be table entries
            # (or 0 for unknown events), so bucket the table once and
            # bucket the stream by gather.
            table_buckets = None
            if kind == "dense":
                table = self.dense_stack[store]
                if table.size < n:
                    table_buckets = np.searchsorted(thresholds, table,
                                                    side="right")
                    zero_bucket = int(np.searchsorted(thresholds, 0.0,
                                                      side="right"))
            # Chunk by active trials so the (m + 1, span) histograms stay
            # within a fixed element budget however long the sweep is.
            max_span = max(1, 4_000_000 // (m + 1))
            for a in range(0, n_active, max_span):
                b = min(a + max_span, n_active)
                s = int(starts[a])
                e = int(starts[b]) if b < n_active else n
                span = b - a
                ev = event_ids[s:e]
                g = self._gather_store(kind, store, ev,
                                       np.empty(e - s, dtype=np.float64))
                if table_buckets is not None:
                    bucket = np.take(table_buckets, ev, mode="clip")
                    oob = ev >= table_buckets.size
                    if oob.any():
                        bucket[oob] = zero_bucket
                else:
                    bucket = np.searchsorted(thresholds, g, side="right")
                # (m + 1, span) layout: the cumulative sum runs down the
                # bucket axis in contiguous span-wide strides, and each
                # layer's resolution is a row gather, not a column one.
                key = bucket * span
                key += inv[s:e]
                key -= a
                size = (m + 1) * span
                ccum = np.bincount(key, minlength=size).reshape(m + 1, span)
                scum = np.bincount(key, weights=g,
                                   minlength=size).reshape(m + 1, span)
                # In-place running sums down the bucket axis: span-wide
                # contiguous adds beat np.cumsum's pairwise machinery.
                for row in range(1, m + 1):
                    ccum[row] += ccum[row - 1]
                    scum[row] += scum[row - 1]
                res = scum[k_hi]
                res -= scum[k_lo]
                c_hi = ccum[k_hi]
                res -= lo_vec[:, None] * (c_hi - ccum[k_lo])
                tail = ccum[-1][None, :] - c_hi
                with np.errstate(invalid="ignore"):
                    top = cap[:, None] * tail
                np.copyto(top, 0.0, where=tail == 0)
                res += top
                np.maximum(res, 0.0, out=res)
                out[rows[:, None], utr[a:b][None, :]] += res

    # -- terms -------------------------------------------------------------

    def occurrence_row(self, row: int, losses: np.ndarray) -> np.ndarray:
        """Occurrence terms for one kernel row (returns a new array)."""
        out = losses - self.occ_retention[row]
        np.clip(out, 0.0, self.occ_limit[row], out=out)
        return out

    def apply_aggregate(self, annual: np.ndarray) -> np.ndarray:
        """Aggregate terms + participation over ``(L, n_trials)`` sums."""
        out = annual - self.agg_retention[:, None]
        np.clip(out, 0.0, self.agg_limit[:, None], out=out)
        out *= self.participation[:, None]
        return out

    # -- the fused sweep ---------------------------------------------------

    def sweep(
        self,
        trials: np.ndarray,
        event_ids: np.ndarray,
        n_trials: int,
        *,
        out: np.ndarray | None = None,
        block_occurrences: int | None = None,
        sublinear: bool | None = None,
    ) -> np.ndarray:
        """One fused pass: pre-aggregate ``(L, n_trials)`` annual matrix.

        ``out`` (C-contiguous, ``(L, n_trials)``, float64) is accumulated
        into when given — the out-of-core engine calls sweep once per YET
        chunk against one running matrix.  Aggregate terms are *not*
        applied; compose with :meth:`apply_aggregate`.

        ``sublinear`` controls the tail-group fast path (see the module
        docstring): the default (``None``/``True``) prices qualifying
        same-book row groups via per-trial threshold histograms and
        everything else through the lane path; ``False`` forces the lane
        path for every row.  Accumulating (``out=``) and unsorted sweeps
        always take the lane path — the group histogram needs whole
        sorted trial streams.
        """
        trials = np.asarray(trials, dtype=np.int64)
        event_ids = np.asarray(event_ids, dtype=np.int64)
        if trials.shape != event_ids.shape:
            raise ConfigurationError("trials and event_ids must be equal-length")
        n_layers = self.n_layers
        accumulating = out is not None
        if out is None:
            out = np.zeros((n_layers, n_trials), dtype=np.float64)
        elif (out.shape != (n_layers, n_trials) or out.dtype != np.float64
              or not out.flags.c_contiguous):
            raise ConfigurationError(
                f"out must be C-contiguous float64 of shape ({n_layers}, {n_trials})"
            )
        n = event_ids.size
        if n == 0:
            return out
        block = block_occurrences or self.block_occurrences
        block = min(block, n)
        # YET rows are sorted by trial, which lets the segment reduction
        # decode the trial stream once per block for all L layers.
        # Unsorted streams get a block-local stable sort first, keeping
        # the reduction O(n log block) without any n_trials-sized
        # temporaries per block.
        sorted_trials = bool(np.all(trials[1:] >= trials[:-1]))
        # The shifted-clip error budget is per *trial stream*.  When the
        # caller accumulates chunk-by-chunk into one running matrix (the
        # out-of-core path), this call sees only a slice of each trial's
        # occurrences — the budget would be spent once per chunk and the
        # shifted/exact decision could diverge from a single-pass run —
        # so accumulation takes the exact subtract-then-clip throughout.
        if accumulating:
            counts = None
            shifted = np.zeros(n_layers, dtype=bool)
        else:
            counts = np.bincount(trials, minlength=n_trials)
            shifted = self._shift_mask(int(counts.max()))
        # Tail-group selection happens per sweep: a row goes sublinear
        # only when its group survives the same error bound that gates
        # the shifted-clip identity AND the stream is dense enough
        # (≥ 2 occurrences per active trial on average) for the
        # histogram to beat the lanes it replaces.
        groups = []
        lane_mask = None
        if sublinear is not False and not accumulating and sorted_trials:
            n_active = int(np.count_nonzero(counts))
            if n >= 2 * n_active:
                lane_mask = np.ones(n_layers, dtype=bool)
                for kind, store, rows in self._tail_group_index():
                    ok = rows[shifted[rows]]
                    if ok.size >= MIN_TAIL_GROUP:
                        groups.append((kind, store, ok))
                        lane_mask[ok] = False
        if groups:
            self._sweep_tail_groups(trials, event_ids, out, groups)
            lane_rows = np.flatnonzero(lane_mask)
            if lane_rows.size:
                # The leftover rows sweep as a compact kernel of their
                # own — exact lane arithmetic, no full-width lane matrix.
                out[lane_rows, :] += self.subset(lane_rows).sweep(
                    trials, event_ids, n_trials,
                    block_occurrences=block, sublinear=False,
                )
            return out
        loss_buf = np.empty((n_layers, block), dtype=np.float64)
        for start in range(0, n, block):
            stop = min(start + block, n)
            lanes = loss_buf[:, :stop - start]
            self._gather_clip_block(event_ids[start:stop], out=lanes,
                                    shifted=shifted)
            tr = trials[start:stop]
            if not sorted_trials:
                order = np.argsort(tr, kind="stable")
                tr = tr[order]
                lanes = lanes[:, order]
            # One boundary scan shared by every layer, then a fused
            # per-segment sum; a trial split across blocks just adds
            # its partials in order.
            starts = np.concatenate(
                ([0], np.flatnonzero(tr[1:] != tr[:-1]) + 1)
            )
            sums = np.add.reduceat(lanes, starts, axis=1)
            out[:, tr[starts]] += sums
        # The clip identity leaves every shifted row's occurrences up by
        # its retention; undo it at trial granularity — an (L, n_trials)
        # rank-one update instead of an (L, n) pass.  The cancellation
        # can leave a ±ulp residue on trials whose every occurrence sat
        # below retention, so clamp: the true per-trial sum of clipped
        # occurrence losses is never negative.  (The exact path needs
        # neither, so all-exact sweeps — every accumulating call — skip
        # both passes.)
        if shifted.any():
            out -= (np.where(shifted, self.occ_floor, 0.0)[:, None]
                    * counts[None, :])
            np.maximum(out, 0.0, out=out)
        return out

    def run(
        self,
        trials: np.ndarray,
        event_ids: np.ndarray,
        n_trials: int,
        *,
        block_occurrences: int | None = None,
        sublinear: bool | None = None,
    ) -> np.ndarray:
        """Sweep + aggregate terms: the final ``(L, n_trials)`` YLT matrix."""
        annual = self.sweep(
            trials, event_ids, n_trials, block_occurrences=block_occurrences,
            sublinear=sublinear,
        )
        return self.apply_aggregate(annual)
