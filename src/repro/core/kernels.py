"""The fused multi-layer portfolio kernel.

Every engine used to price a portfolio layer-by-layer: for L layers that
is L full passes over the same ``trials``/``event_ids`` arrays, L
separate gathers, and L separate ``bincount`` reductions — linear in
redundant memory traffic, which is exactly the data-movement cost §II
says dominates the ~10⁹ event-loss lookups of one aggregate run.

:class:`PortfolioKernel` fuses those passes.  It precomputes, once per
(portfolio, ``dense_max_entries``):

- a **stacked dense lookup**: all dense layers as one ``(D, width)``
  matrix (rows zero-padded to the widest table, so padding reads as
  "unknown event → 0");
- a **unified CSR sparse lookup**: the sparse layers' sorted ids/values
  concatenated with an offsets vector;
- ``(L,)`` **term vectors** (``occ_retention``, ``occ_limit``,
  ``agg_retention``, ``agg_limit``, ``participation``) broadcast over
  the loss matrix instead of re-read per layer.

The :meth:`sweep` then streams the YET in cache-sized occurrence blocks:
each block's event ids are gathered once per layer row while the block
(and its out-of-bounds mask) is hot in cache, sparse layers gather
through the same :func:`~repro.core.lookup.sparse_gather_into` the
scalar path uses, occurrence terms broadcast over the ``(L, block)``
matrix in place, and one **shared segment reduction** accumulates the
full ``(L, n_trials)`` annual matrix: because YET rows are sorted by
trial, the per-trial boundaries are computed once per block and
``np.add.reduceat`` folds all L layers over them — the trial index
stream is decoded once instead of L times.  Unsorted inputs get a
block-local stable sort first and take the same reduction.  Either way,
L passes collapse into one.

Kernel rows are ordered dense-first; :attr:`layer_ids` maps row → layer.
The kernel holds only plain arrays, so it pickles whole — the multicore
engine ships it to each worker once per run instead of re-sending lookup
arrays per layer per block.
"""

from __future__ import annotations

import numpy as np

from repro.core.lookup import sparse_gather_into
from repro.errors import ConfigurationError

__all__ = ["PortfolioKernel", "DEFAULT_BLOCK_OCCURRENCES"]

#: Occurrence-block width of the fused sweep.  Sized so the ``(L, block)``
#: loss matrix of a mid-sized portfolio stays cache-resident (16 layers ×
#: 32k lanes × 8 B = 4 MiB) — the CPU analogue of the paper's "chunk to
#: fit the fast memory" rule.
DEFAULT_BLOCK_OCCURRENCES = 32_768


class PortfolioKernel:
    """Stacked lookups + term vectors for one portfolio, swept fused.

    Build with :meth:`from_portfolio` (or fetch the cached instance via
    :meth:`Portfolio.kernel`).  All state is plain NumPy, so instances
    are picklable and safe to ship to worker processes.
    """

    __slots__ = (
        "layer_ids", "occ_retention", "occ_limit", "agg_retention",
        "agg_limit", "participation", "dense_stack", "sparse_ids",
        "sparse_values", "sparse_offsets", "block_occurrences",
    )

    def __init__(
        self,
        *,
        layer_ids: tuple[int, ...],
        occ_retention: np.ndarray,
        occ_limit: np.ndarray,
        agg_retention: np.ndarray,
        agg_limit: np.ndarray,
        participation: np.ndarray,
        dense_stack: np.ndarray,
        sparse_ids: np.ndarray,
        sparse_values: np.ndarray,
        sparse_offsets: np.ndarray,
        block_occurrences: int = DEFAULT_BLOCK_OCCURRENCES,
    ) -> None:
        n_layers = len(layer_ids)
        if n_layers == 0:
            raise ConfigurationError("a portfolio kernel needs at least one layer")
        for name, vec in (("occ_retention", occ_retention),
                          ("occ_limit", occ_limit),
                          ("agg_retention", agg_retention),
                          ("agg_limit", agg_limit),
                          ("participation", participation)):
            if vec.shape != (n_layers,):
                raise ConfigurationError(
                    f"{name} must have shape ({n_layers},), got {vec.shape}"
                )
        if dense_stack.ndim != 2:
            raise ConfigurationError("dense_stack must be a 2-D matrix")
        if dense_stack.shape[0] + (sparse_offsets.size - 1) != n_layers:
            raise ConfigurationError(
                "dense rows + sparse segments must cover every layer"
            )
        if block_occurrences <= 0:
            raise ConfigurationError("block_occurrences must be positive")
        self.layer_ids = tuple(int(i) for i in layer_ids)
        self.occ_retention = occ_retention
        self.occ_limit = occ_limit
        self.agg_retention = agg_retention
        self.agg_limit = agg_limit
        self.participation = participation
        self.dense_stack = dense_stack
        self.sparse_ids = sparse_ids
        self.sparse_values = sparse_values
        self.sparse_offsets = sparse_offsets
        self.block_occurrences = int(block_occurrences)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_portfolio(
        cls,
        portfolio,
        dense_max_entries: int = 4_000_000,
        block_occurrences: int = DEFAULT_BLOCK_OCCURRENCES,
    ) -> "PortfolioKernel":
        """Stack a portfolio's per-layer lookups and terms into one kernel.

        Per-layer lookups come from :meth:`Layer.lookup`, so the merge
        work is shared with every other engine via the layer cache.
        """
        layers = list(portfolio)
        lookups = [
            layer.lookup(dense_max_entries=dense_max_entries) for layer in layers
        ]
        dense = [(l, lk) for l, lk in zip(layers, lookups) if lk.kind == "dense"]
        sparse = [(l, lk) for l, lk in zip(layers, lookups) if lk.kind == "sparse"]
        ordered = dense + sparse

        width = max((lk.table_array.size for _, lk in dense), default=0)
        dense_stack = np.zeros((len(dense), width), dtype=np.float64)
        for row, (_, lk) in enumerate(dense):
            table = lk.table_array
            dense_stack[row, :table.size] = table

        if sparse:
            sparse_ids = np.concatenate([lk.ids for _, lk in sparse])
            sparse_values = np.concatenate([lk.values for _, lk in sparse])
            lengths = [lk.ids.size for _, lk in sparse]
        else:
            sparse_ids = np.empty(0, dtype=np.int64)
            sparse_values = np.empty(0, dtype=np.float64)
            lengths = []
        sparse_offsets = np.concatenate(
            ([0], np.cumsum(lengths, dtype=np.int64))
        ).astype(np.int64)

        def term_vec(attr: str) -> np.ndarray:
            return np.array(
                [getattr(l.terms, attr) for l, _ in ordered], dtype=np.float64
            )

        return cls(
            layer_ids=tuple(l.layer_id for l, _ in ordered),
            occ_retention=term_vec("occ_retention"),
            occ_limit=term_vec("occ_limit"),
            agg_retention=term_vec("agg_retention"),
            agg_limit=term_vec("agg_limit"),
            participation=term_vec("participation"),
            dense_stack=dense_stack,
            sparse_ids=sparse_ids,
            sparse_values=sparse_values,
            sparse_offsets=sparse_offsets,
            block_occurrences=block_occurrences,
        )

    # -- shape metadata ----------------------------------------------------

    @property
    def n_layers(self) -> int:
        return len(self.layer_ids)

    @property
    def n_dense(self) -> int:
        return self.dense_stack.shape[0]

    @property
    def n_sparse(self) -> int:
        return self.sparse_offsets.size - 1

    @property
    def nbytes(self) -> int:
        """Bytes of lookup state (what a device placement would ship)."""
        return (self.dense_stack.nbytes + self.sparse_ids.nbytes
                + self.sparse_values.nbytes)

    def row_of(self, layer_id: int) -> int:
        """Kernel row holding ``layer_id`` (rows are dense-first)."""
        try:
            return self.layer_ids.index(layer_id)
        except ValueError:
            raise ConfigurationError(f"no layer {layer_id} in kernel") from None

    # -- gathers -----------------------------------------------------------

    def gather_block(self, event_ids: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
        """Losses for one occurrence block, all layers: ``(L, block)``.

        One clipped index vector is computed per block and shared by every
        dense layer through a single two-axis ``take``; sparse layers
        gather via :func:`sparse_gather_into` on their CSR segment.
        """
        event_ids = np.asarray(event_ids, dtype=np.int64)
        if out is None:
            out = np.empty((self.n_layers, event_ids.size), dtype=np.float64)
        n_dense = self.n_dense
        if n_dense:
            # Row-wise takes beat a two-axis gather: each is a contiguous
            # write, and the ids slice stays cache-hot across rows.  The
            # out-of-bounds fixup is skipped entirely in the common case
            # of ids inside the table.
            width = self.dense_stack.shape[1]
            for row in range(n_dense):
                np.take(self.dense_stack[row], event_ids, mode="clip",
                        out=out[row])
            oob = event_ids >= width
            if oob.any():
                out[:n_dense][:, oob] = 0.0
        offsets = self.sparse_offsets
        for seg in range(self.n_sparse):
            lo, hi = offsets[seg], offsets[seg + 1]
            sparse_gather_into(
                self.sparse_ids[lo:hi], self.sparse_values[lo:hi],
                event_ids, out[n_dense + seg],
            )
        return out

    def gather_layer(self, row: int, event_ids: np.ndarray) -> np.ndarray:
        """Losses for one kernel row over an id array (YELT emission path)."""
        event_ids = np.asarray(event_ids, dtype=np.int64)
        out = np.empty(event_ids.size, dtype=np.float64)
        if row < self.n_dense:
            width = self.dense_stack.shape[1]
            safe = np.clip(event_ids, 0, width - 1)
            np.take(self.dense_stack[row], safe, out=out)
            np.multiply(out, event_ids < width, out=out)
            return out
        seg = row - self.n_dense
        lo, hi = self.sparse_offsets[seg], self.sparse_offsets[seg + 1]
        return sparse_gather_into(
            self.sparse_ids[lo:hi], self.sparse_values[lo:hi], event_ids, out
        )

    # -- terms -------------------------------------------------------------

    def apply_occurrence(self, losses: np.ndarray) -> np.ndarray:
        """Occurrence terms over an ``(L, block)`` loss matrix, in place."""
        np.subtract(losses, self.occ_retention[:, None], out=losses)
        np.clip(losses, 0.0, self.occ_limit[:, None], out=losses)
        return losses

    def occurrence_row(self, row: int, losses: np.ndarray) -> np.ndarray:
        """Occurrence terms for one kernel row (returns a new array)."""
        out = losses - self.occ_retention[row]
        np.clip(out, 0.0, self.occ_limit[row], out=out)
        return out

    def apply_aggregate(self, annual: np.ndarray) -> np.ndarray:
        """Aggregate terms + participation over ``(L, n_trials)`` sums."""
        out = annual - self.agg_retention[:, None]
        np.clip(out, 0.0, self.agg_limit[:, None], out=out)
        out *= self.participation[:, None]
        return out

    # -- the fused sweep ---------------------------------------------------

    def sweep(
        self,
        trials: np.ndarray,
        event_ids: np.ndarray,
        n_trials: int,
        *,
        out: np.ndarray | None = None,
        block_occurrences: int | None = None,
    ) -> np.ndarray:
        """One fused pass: pre-aggregate ``(L, n_trials)`` annual matrix.

        ``out`` (C-contiguous, ``(L, n_trials)``, float64) is accumulated
        into when given — the out-of-core engine calls sweep once per YET
        chunk against one running matrix.  Aggregate terms are *not*
        applied; compose with :meth:`apply_aggregate`.
        """
        trials = np.asarray(trials, dtype=np.int64)
        event_ids = np.asarray(event_ids, dtype=np.int64)
        if trials.shape != event_ids.shape:
            raise ConfigurationError("trials and event_ids must be equal-length")
        n_layers = self.n_layers
        if out is None:
            out = np.zeros((n_layers, n_trials), dtype=np.float64)
        elif (out.shape != (n_layers, n_trials) or out.dtype != np.float64
              or not out.flags.c_contiguous):
            raise ConfigurationError(
                f"out must be C-contiguous float64 of shape ({n_layers}, {n_trials})"
            )
        n = event_ids.size
        if n == 0:
            return out
        block = block_occurrences or self.block_occurrences
        block = min(block, n)
        loss_buf = np.empty((n_layers, block), dtype=np.float64)
        # YET rows are sorted by trial, which lets the segment reduction
        # decode the trial stream once per block for all L layers.
        # Unsorted streams get a block-local stable sort first, keeping
        # the reduction O(n log block) without any n_trials-sized
        # temporaries per block.
        sorted_trials = bool(np.all(trials[1:] >= trials[:-1]))
        for start in range(0, n, block):
            stop = min(start + block, n)
            lanes = loss_buf[:, :stop - start]
            self.gather_block(event_ids[start:stop], out=lanes)
            self.apply_occurrence(lanes)
            tr = trials[start:stop]
            if not sorted_trials:
                order = np.argsort(tr, kind="stable")
                tr = tr[order]
                lanes = lanes[:, order]
            # One boundary scan shared by every layer, then a fused
            # per-segment sum; a trial split across blocks just adds
            # its partials in order.
            starts = np.concatenate(
                ([0], np.flatnonzero(tr[1:] != tr[:-1]) + 1)
            )
            sums = np.add.reduceat(lanes, starts, axis=1)
            out[:, tr[starts]] += sums
        return out

    def run(
        self,
        trials: np.ndarray,
        event_ids: np.ndarray,
        n_trials: int,
        *,
        block_occurrences: int | None = None,
    ) -> np.ndarray:
        """Sweep + aggregate terms: the final ``(L, n_trials)`` YLT matrix."""
        annual = self.sweep(
            trials, event_ids, n_trials, block_occurrences=block_occurrences
        )
        return self.apply_aggregate(annual)
