"""Reinsurance layers: ELT sets under financial terms.

A layer is the unit of aggregate analysis in the companion study [7]: a
set of ELTs (the contracts ceded into the layer) priced together under
occurrence/aggregate terms.  The layer's merged event-loss lookup is
built lazily and cached — it is the array the device engine places in
constant or global memory.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro.core.lookup import LossLookup
from repro.core.tables import EltTable
from repro.core.terms import LayerTerms
from repro.errors import ConfigurationError

__all__ = ["Layer"]


class Layer:
    """One reinsurance layer.

    Parameters
    ----------
    layer_id:
        Stable id; YLT outputs are keyed by it.
    elts:
        The ELTs ceded into this layer (at least one).
    terms:
        The layer's financial terms.
    weights:
        Optional per-ELT participation weights in the merged lookup.
    """

    __slots__ = ("layer_id", "elts", "terms", "weights", "_lookup_cache",
                 "_digest_cache")

    def __init__(self, layer_id: int, elts, terms: LayerTerms,
                 weights=None) -> None:
        elts = tuple(elts)
        if not elts:
            raise ConfigurationError("a layer needs at least one ELT")
        for e in elts:
            if not isinstance(e, EltTable):
                raise ConfigurationError(f"expected EltTable, got {type(e).__name__}")
        if layer_id < 0:
            raise ConfigurationError("layer_id must be non-negative")
        if weights is not None:
            weights = tuple(float(w) for w in weights)
            if len(weights) != len(elts):
                raise ConfigurationError("one weight per ELT required")
            if any(w <= 0 for w in weights):
                raise ConfigurationError("ELT weights must be positive")
        self.layer_id = int(layer_id)
        self.elts = elts
        self.terms = terms
        self.weights = weights
        self._lookup_cache: dict[int, LossLookup] = {}
        self._digest_cache: str | None = None

    @property
    def n_elts(self) -> int:
        return len(self.elts)

    @property
    def n_events(self) -> int:
        """Total ELT rows across the layer (with multiplicity)."""
        return sum(e.n_events for e in self.elts)

    def lookup(self, dense_max_entries: int = 4_000_000) -> LossLookup:
        """Merged event-loss lookup, cached per ``dense_max_entries``.

        The cache is a small dict so engines configured with different
        dense thresholds can alternate over the same layer without
        rebuilding the merge each call.
        """
        cached = self._lookup_cache.get(dense_max_entries)
        if cached is None:
            cached = LossLookup.from_elts(
                self.elts, weights=self.weights, dense_max_entries=dense_max_entries
            )
            self._lookup_cache[dense_max_entries] = cached
        return cached

    def content_digest(self) -> str:
        """Content hash of the layer (ELT arrays, weights, terms), cached.

        This is the identity the serving layer's result cache keys on:
        two ``Layer`` objects built from the same contract data and
        terms digest identically, so a quote computed for one serves
        the other.  The cache follows the lookup-cache lifecycle —
        :meth:`invalidate_lookup` drops it after in-place ELT mutation.
        """
        if self._digest_cache is None:
            h = hashlib.blake2b(digest_size=16)
            t = self.terms
            h.update(struct.pack(
                "<5d", t.occ_retention, t.occ_limit, t.agg_retention,
                t.agg_limit, t.participation,
            ))
            weights = self.weights or (1.0,) * self.n_elts
            # Length framing: without the ELT count and per-ELT row
            # counts, two different partitions of overlapping bytes
            # could hash identically.
            h.update(struct.pack("<Q", self.n_elts))
            for elt, w in zip(self.elts, weights):
                h.update(struct.pack("<Qd", elt.n_events, w))
                h.update(np.ascontiguousarray(elt.event_ids).data)
                h.update(np.ascontiguousarray(elt.mean_losses).data)
            self._digest_cache = h.hexdigest()
        return self._digest_cache

    def invalidate_lookup(self) -> None:
        """Drop cached lookups and digest (after mutating an ELT in place)."""
        self._lookup_cache.clear()
        self._digest_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Layer(id={self.layer_id}, n_elts={self.n_elts}, "
            f"terms={self.terms!r})"
        )
