"""The aggregate-analysis orchestrator.

:class:`AggregateAnalysis` is the public entry point of stage 2: bind a
portfolio to a YET, pick an engine (by name or instance), run, and get
an :class:`AnalysisResult` that adds derived artefacts — per-layer and
portfolio YLTs, optional YELTs, expected losses, and the size accounting
(E1/E2) — on top of the raw engine output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engines import Engine, EngineResult, get_engine
from repro.core.portfolio import Portfolio
from repro.core.tables import YeltTable, YetTable, YltTable
from repro.errors import EngineError

__all__ = ["AnalysisResult", "AggregateAnalysis"]


@dataclass
class AnalysisResult:
    """User-facing result of one aggregate analysis."""

    engine: str
    seconds: float
    ylt_by_layer: dict[int, YltTable]
    portfolio_ylt: YltTable
    yelt_by_layer: dict[int, YeltTable] | None
    details: dict

    @classmethod
    def from_engine(cls, res: EngineResult) -> "AnalysisResult":
        return cls(
            engine=res.engine,
            seconds=res.seconds,
            ylt_by_layer=res.ylt_by_layer,
            portfolio_ylt=res.portfolio_ylt,
            yelt_by_layer=res.yelt_by_layer,
            details=res.details,
        )

    def expected_annual_loss(self) -> float:
        """Portfolio pure premium: mean of the portfolio YLT."""
        return self.portfolio_ylt.mean()

    def layer_expected_losses(self) -> dict[int, float]:
        return {lid: ylt.mean() for lid, ylt in self.ylt_by_layer.items()}

    def trials_per_second(self) -> float:
        if self.seconds <= 0:
            raise EngineError("run recorded no elapsed time")
        return self.portfolio_ylt.n_trials / self.seconds

    def yelt_rows(self) -> int:
        """Total YELT rows (0 when YELTs were not emitted)."""
        if not self.yelt_by_layer:
            return 0
        return sum(y.n_rows for y in self.yelt_by_layer.values())


class AggregateAnalysis:
    """Binds a portfolio to a YET and runs engines over them.

    Parameters
    ----------
    portfolio:
        The book of layers to price.
    yet:
        The pre-simulated year-event table (the "consistent lens").
    """

    def __init__(self, portfolio: Portfolio, yet: YetTable) -> None:
        if not isinstance(portfolio, Portfolio):
            raise EngineError(f"expected Portfolio, got {type(portfolio).__name__}")
        if not isinstance(yet, YetTable):
            raise EngineError(f"expected YetTable, got {type(yet).__name__}")
        self.portfolio = portfolio
        self.yet = yet

    def run(self, engine: str | Engine = "vectorized", *,
            emit_yelt: bool = False, **engine_kwargs) -> AnalysisResult:
        """Run the analysis on the chosen engine.

        ``engine`` may be a registry name (``"sequential"``,
        ``"vectorized"``, ``"device"``, ``"multicore"``, ``"mapreduce"``,
        ``"distributed"``) or a pre-built :class:`Engine` instance;
        ``engine_kwargs`` are passed to the registry constructor.
        """
        owned = isinstance(engine, str)
        if owned:
            engine = get_engine(engine, **engine_kwargs)
        elif engine_kwargs:
            raise EngineError("engine_kwargs only apply when engine is a name")
        try:
            res = engine.run(self.portfolio, self.yet, emit_yelt=emit_yelt)
        finally:
            # Engines constructed here are also torn down here (worker
            # pools and the like); caller-provided instances keep their
            # resources for reuse and close themselves.
            if owned and hasattr(engine, "close"):
                engine.close()
        return AnalysisResult.from_engine(res)

    def run_all(self, names: list[str] | None = None) -> dict[str, AnalysisResult]:
        """Run several engines on the same inputs (cross-validation aid)."""
        from repro.core.engines import available_engines

        results = {}
        for name in names or available_engines():
            results[name] = self.run(name)
        return results
