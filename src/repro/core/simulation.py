"""The aggregate-analysis orchestrator.

:class:`AggregateAnalysis` is the classic entry point of stage 2: bind a
portfolio to a YET, pick an engine (by name, by instance, or ``"auto"``
for the planner's choice), run, and get an :class:`AnalysisResult` that
adds derived artefacts — per-layer and portfolio YLTs, optional YELTs,
expected losses, and the size accounting (E1/E2) — on top of the raw
engine output.

Since the session layer landed it is a veneer over
:class:`~repro.session.RiskSession`: pass ``session=`` to share one
staged substrate (worker pool, shared-memory arena) with other entry
points, and :meth:`AggregateAnalysis.run_all` always sweeps through one
session so pooled engines stage the (kernel, YET) payload once for the
whole sweep.  Standalone ``run()`` keeps its historical lifecycle —
engines it constructs are torn down before it returns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engines import Engine, EngineResult, get_engine
from repro.core.portfolio import Portfolio
from repro.core.tables import YeltTable, YetTable, YltTable
from repro.errors import EngineError

__all__ = ["AnalysisResult", "AggregateAnalysis"]


@dataclass
class AnalysisResult:
    """User-facing result of one aggregate analysis."""

    engine: str
    seconds: float
    ylt_by_layer: dict[int, YltTable]
    portfolio_ylt: YltTable
    yelt_by_layer: dict[int, YeltTable] | None
    details: dict

    @classmethod
    def from_engine(cls, res: EngineResult) -> "AnalysisResult":
        return cls(
            engine=res.engine,
            seconds=res.seconds,
            ylt_by_layer=res.ylt_by_layer,
            portfolio_ylt=res.portfolio_ylt,
            yelt_by_layer=res.yelt_by_layer,
            details=res.details,
        )

    def expected_annual_loss(self) -> float:
        """Portfolio pure premium: mean of the portfolio YLT."""
        return self.portfolio_ylt.mean()

    def layer_expected_losses(self) -> dict[int, float]:
        return {lid: ylt.mean() for lid, ylt in self.ylt_by_layer.items()}

    def trials_per_second(self) -> float:
        if self.seconds <= 0:
            raise EngineError("run recorded no elapsed time")
        return self.portfolio_ylt.n_trials / self.seconds

    def yelt_rows(self) -> int:
        """Total YELT rows (0 when YELTs were not emitted)."""
        if not self.yelt_by_layer:
            return 0
        return sum(y.n_rows for y in self.yelt_by_layer.values())


class AggregateAnalysis:
    """Binds a portfolio to a YET and runs engines over them.

    Parameters
    ----------
    portfolio:
        The book of layers to price.
    yet:
        The pre-simulated year-event table (the "consistent lens").
    """

    def __init__(self, portfolio: Portfolio, yet: YetTable, *,
                 session=None) -> None:
        if not isinstance(portfolio, Portfolio):
            raise EngineError(f"expected Portfolio, got {type(portfolio).__name__}")
        if not isinstance(yet, YetTable):
            raise EngineError(f"expected YetTable, got {type(yet).__name__}")
        if session is not None and session.yet is not yet:
            raise EngineError(
                "session is bound to a different YET than this analysis"
            )
        self.portfolio = portfolio
        self.yet = yet
        #: Borrowed staged substrate; ``None`` keeps the classic
        #: construct-per-run lifecycle.
        self.session = session

    def run(self, engine: str | Engine = "vectorized", *,
            emit_yelt: bool = False, **engine_kwargs) -> AnalysisResult:
        """Run the analysis on the chosen engine.

        ``engine`` may be a registry name (``"sequential"``,
        ``"vectorized"``, ``"device"``, ``"multicore"``, ``"mapreduce"``,
        ``"distributed"``), ``"auto"`` to let the planner price the
        substrates against the data shape, or a pre-built
        :class:`Engine` instance; ``engine_kwargs`` are passed to the
        registry constructor.  With a bound session the run reuses its
        staged engines; standalone runs keep the historical lifecycle
        (engines constructed here are torn down here).
        """
        if isinstance(engine, str) and self.session is not None:
            return self.session.aggregate(
                self.portfolio, engine=engine, emit_yelt=emit_yelt,
                **engine_kwargs,
            )
        plan = None
        owned = isinstance(engine, str)
        if owned and engine == "auto":
            if engine_kwargs:
                # Constructor kwargs are engine-specific; forwarding them
                # to whichever engine the planner happens to pick would
                # either crash or silently misconfigure.  Parallelism is
                # capped at the session level (RiskSession(n_workers=...)).
                raise EngineError(
                    "engine_kwargs require an explicit engine name; "
                    "engine='auto' chooses its own configuration"
                )
            from repro.session.planner import plan_workload

            # The plan constraint set must match this run's request —
            # emit_yelt excludes engines that cannot emit.
            plan = plan_workload(
                self.yet, n_layers=self.portfolio.n_layers,
                require_emit_yelt=emit_yelt,
            )
            engine = plan.engine
        if owned:
            engine = get_engine(engine, **engine_kwargs)
        elif engine_kwargs:
            raise EngineError("engine_kwargs only apply when engine is a name")
        try:
            res = engine.run(self.portfolio, self.yet, emit_yelt=emit_yelt)
        finally:
            # Engines constructed here are also torn down here (worker
            # pools and the like); caller-provided instances keep their
            # resources for reuse and close themselves.
            if owned and hasattr(engine, "close"):
                engine.close()
        result = AnalysisResult.from_engine(res)
        if plan is not None:
            result.details["plan"] = plan
        return result

    def run_all(self, names: list[str] | None = None) -> dict[str, AnalysisResult]:
        """Run several engines on the same inputs (cross-validation aid).

        The whole sweep goes through ONE session (the bound one, or an
        ephemeral session closed when the sweep ends): names are
        validated against the registry before anything runs, and pooled
        engines stage their (kernel, YET) payload once for the sweep
        instead of once per engine.
        """
        if self.session is not None:
            return self.session.run_all(names, self.portfolio)
        from repro.session import RiskSession

        with RiskSession(self.yet, portfolio=self.portfolio) as session:
            return session.run_all(names)
