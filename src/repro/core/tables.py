"""The pipeline's table types: ELT, YET, YELT, YLT, and the YELLT model.

These are the "small number of very large tables" (§II) the whole paper
is about.  Each type wraps a :class:`~repro.data.columnar.ColumnTable`
with its schema, validation, and the accessors the engines need:

- **ELT** (event-loss table): per-contract ``event_id → (mean_loss,
  sigma)``; the output of stage 1 and the lookup input of stage 2.
- **YET** (year-event table): the pre-simulated sequence of event
  occurrences per trial year — "a consistent lens through which to view
  results" (§II).
- **YELT** (year-event-loss table): the stage-2 intermediate at event
  granularity.
- **YLT** (year-loss table): one annual loss per trial, the stage-2
  output and stage-3 input.  Stored dense (length ``n_trials``).
- **YELLT**: the location-granularity table that §II argues is too large
  to materialise (>5×10¹⁶ entries at paper scale); represented here as an
  analytic size model plus a small-scale materialiser for validation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import ConfigurationError

__all__ = [
    "ELT_SCHEMA",
    "YET_SCHEMA",
    "YELT_SCHEMA",
    "YLT_SCHEMA",
    "EltTable",
    "YetHandles",
    "YetTable",
    "YeltTable",
    "YltTable",
    "YelltModel",
]

ELT_SCHEMA = Schema([
    ("event_id", np.int64),
    ("mean_loss", np.float64),
    ("sigma", np.float64),  # secondary-uncertainty std-dev of the loss
])

YET_SCHEMA = Schema([
    ("trial", np.int64),
    ("seq", np.int32),       # occurrence order within the trial year
    ("event_id", np.int64),
])

YELT_SCHEMA = Schema([
    ("trial", np.int64),
    ("event_id", np.int64),
    ("loss", np.float64),
])

YLT_SCHEMA = Schema([
    ("trial", np.int64),
    ("loss", np.float64),
])


# ---------------------------------------------------------------------------
# ELT
# ---------------------------------------------------------------------------

class EltTable:
    """Event-loss table for one reinsurance contract.

    Parameters
    ----------
    table:
        Backing table with :data:`ELT_SCHEMA`; event ids must be unique
        and non-negative, losses non-negative, sigmas non-negative.
    contract_id:
        Id of the contract this ELT prices.
    """

    __slots__ = ("table", "contract_id")

    def __init__(self, table: ColumnTable, contract_id: int = 0) -> None:
        if table.schema != ELT_SCHEMA:
            raise ConfigurationError("ELT table must match ELT_SCHEMA")
        ids = table["event_id"]
        if ids.size == 0:
            raise ConfigurationError("an ELT must contain at least one event")
        if (ids < 0).any():
            raise ConfigurationError("ELT event ids must be non-negative")
        if np.unique(ids).size != ids.size:
            raise ConfigurationError("ELT event ids must be unique")
        if (table["mean_loss"] < 0).any():
            raise ConfigurationError("ELT losses must be non-negative")
        if (table["sigma"] < 0).any():
            raise ConfigurationError("ELT sigmas must be non-negative")
        self.table = table
        self.contract_id = int(contract_id)

    @classmethod
    def from_arrays(cls, event_id, mean_loss, sigma=None, contract_id: int = 0) -> "EltTable":
        """Build from parallel arrays (sigma defaults to zero)."""
        event_id = np.asarray(event_id, dtype=np.int64)
        mean_loss = np.asarray(mean_loss, dtype=np.float64)
        if sigma is None:
            sigma = np.zeros_like(mean_loss)
        table = ColumnTable.from_arrays(
            ELT_SCHEMA, event_id=event_id, mean_loss=mean_loss, sigma=sigma
        )
        return cls(table, contract_id)

    @property
    def n_events(self) -> int:
        return self.table.n_rows

    @property
    def event_ids(self) -> np.ndarray:
        return self.table["event_id"]

    @property
    def mean_losses(self) -> np.ndarray:
        return self.table["mean_loss"]

    @property
    def sigmas(self) -> np.ndarray:
        return self.table["sigma"]

    @property
    def max_event_id(self) -> int:
        return int(self.event_ids.max())

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    def expected_annual_loss(self, rates: dict[int, float] | None = None) -> float:
        """Pure expectation ``Σ rate·loss`` if per-event rates are known."""
        if rates is None:
            return float(self.mean_losses.sum())
        lookup = np.array([rates.get(int(e), 0.0) for e in self.event_ids])
        return float((lookup * self.mean_losses).sum())


# ---------------------------------------------------------------------------
# YET
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class YetHandles:
    """Shared-memory descriptor of one YET (the zero-copy wire format).

    Produced by :meth:`YetTable.to_shared`; pickles as three
    :class:`~repro.hpc.shm.ShmArrayHandle` column descriptors plus the
    trial count — a few hundred bytes for a table of any size.
    :meth:`YetTable.from_handles` re-attaches it as views in a worker.
    ``fingerprint`` rides along when the source table had already
    computed it, so attached copies skip the content hash too.
    """

    trial: object
    seq: object
    event_id: object
    n_trials: int
    fingerprint: str | None = None


class YetTable:
    """Pre-simulated year-event table.

    Rows are sorted by ``(trial, seq)``; ``n_trials`` is explicit because
    trial years with zero occurrences are legal and must survive
    round-trips (their annual loss is zero, which matters for quantiles).
    """

    __slots__ = ("table", "n_trials", "_offsets", "_fingerprint")

    def __init__(self, table: ColumnTable, n_trials: int) -> None:
        if table.schema != YET_SCHEMA:
            raise ConfigurationError("YET table must match YET_SCHEMA")
        if n_trials <= 0:
            raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
        trials = table["trial"]
        if trials.size:
            if (trials < 0).any() or trials.max() >= n_trials:
                raise ConfigurationError("YET trial indices out of range")
            if (np.diff(trials) < 0).any():
                raise ConfigurationError("YET rows must be sorted by trial")
        self.table = table
        self.n_trials = int(n_trials)
        self._offsets: np.ndarray | None = None
        self._fingerprint: str | None = None

    @classmethod
    def simulate(
        cls,
        event_ids: np.ndarray,
        rates: np.ndarray,
        n_trials: int,
        rng: np.random.Generator,
        mean_events_per_trial: float | None = None,
    ) -> "YetTable":
        """Monte-Carlo simulate the YET from catalogue occurrence rates.

        Each trial year draws ``Poisson(Σ rates)`` occurrences; each
        occurrence is an event sampled with probability proportional to
        its rate.  ``mean_events_per_trial`` rescales the total rate,
        which is how benches hit the companion study's ~1000
        events/trial without a million-event catalogue.
        """
        event_ids = np.asarray(event_ids, dtype=np.int64)
        rates = np.asarray(rates, dtype=np.float64)
        if event_ids.size == 0 or event_ids.shape != rates.shape:
            raise ConfigurationError("event_ids and rates must be equal-length, non-empty")
        if (rates <= 0).any():
            raise ConfigurationError("rates must be positive")
        if n_trials <= 0:
            raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
        total_rate = float(rates.sum())
        lam = mean_events_per_trial if mean_events_per_trial is not None else total_rate
        if lam <= 0:
            raise ConfigurationError("mean_events_per_trial must be positive")
        counts = rng.poisson(lam=lam, size=n_trials)
        total = int(counts.sum())
        # Inverse-CDF event sampling (faster than rng.choice with p=).
        cdf = np.cumsum(rates)
        cdf /= cdf[-1]
        picks = np.searchsorted(cdf, rng.random(total), side="right")
        trial = np.repeat(np.arange(n_trials, dtype=np.int64), counts)
        # Sequence number within each trial: position minus trial start.
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        seq = (np.arange(total) - np.repeat(starts, counts)).astype(np.int32)
        table = ColumnTable.from_arrays(
            YET_SCHEMA, trial=trial, seq=seq, event_id=event_ids[picks]
        )
        return cls(table, n_trials)

    @property
    def n_occurrences(self) -> int:
        return self.table.n_rows

    @property
    def trials(self) -> np.ndarray:
        return self.table["trial"]

    @property
    def event_ids(self) -> np.ndarray:
        return self.table["event_id"]

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    @property
    def trial_offsets(self) -> np.ndarray:
        """Offsets such that trial ``t`` occupies rows ``[o[t], o[t+1])``."""
        if self._offsets is None:
            self._offsets = np.searchsorted(
                self.table["trial"], np.arange(self.n_trials + 1)
            )
        return self._offsets

    def fingerprint(self) -> str:
        """Content hash of the trial set (hex), computed once and cached.

        Two YETs with the same occurrence stream and trial count share a
        fingerprint regardless of identity — this is the first component
        of the serving layer's content-addressed cache key, and what lets
        a re-simulated YET invalidate exactly the stale entries.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.int64(self.n_trials).tobytes())
            # Feed the columns through the buffer protocol — a paper-
            # scale YET is gigabytes, and ``tobytes`` would copy it all.
            h.update(np.ascontiguousarray(self.table["trial"]).data)
            h.update(np.ascontiguousarray(self.table["event_id"]).data)
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def mean_events_per_trial(self) -> float:
        return self.n_occurrences / self.n_trials

    # -- shared-memory transport -------------------------------------------

    def to_shared(self, arena) -> YetHandles:
        """Place the table's columns in shared memory; returns the handles.

        ``arena`` is a :class:`~repro.hpc.shm.SharedArena` (or anything
        with its ``place`` signature) that *owns* the resulting segment —
        this table is copied into it once, and every worker that calls
        :meth:`from_handles` on the result sees the same physical pages
        instead of a pickled replica.

        All three columns travel, although the sweep paths read only
        ``trial``/``event_id``: the handles are the YET's wire format
        (the multi-node sharding axis will ship whole sub-YETs), so a
        faithful round-trip is worth ``seq``'s ~20% of one staging copy.
        """
        h_trial, h_seq, h_event = arena.place(
            self.table["trial"], self.table["seq"], self.table["event_id"]
        )
        return YetHandles(
            trial=h_trial, seq=h_seq, event_id=h_event,
            n_trials=self.n_trials, fingerprint=self._fingerprint,
        )

    @classmethod
    def from_handles(cls, handles: YetHandles) -> "YetTable":
        """Re-attach a shared YET as zero-copy (read-only) column views.

        Validation is skipped: the owning process validated the table
        when it was built, and the attach path runs in workers where an
        extra O(n) sortedness pass per process would tax exactly the
        hot path this transport exists to thin.
        """
        table = ColumnTable(YET_SCHEMA, {
            "trial": handles.trial.attach(),
            "seq": handles.seq.attach(),
            "event_id": handles.event_id.attach(),
        })
        yet = cls.__new__(cls)
        yet.table = table
        yet.n_trials = int(handles.n_trials)
        yet._offsets = None
        yet._fingerprint = handles.fingerprint
        return yet

    def slice_trials(self, t_start: int, t_stop: int) -> "YetTable":
        """Sub-YET covering trials ``[t_start, t_stop)`` (renumbered to 0)."""
        if not (0 <= t_start < t_stop <= self.n_trials):
            raise ConfigurationError(
                f"invalid trial range [{t_start}, {t_stop}) for {self.n_trials} trials"
            )
        o = self.trial_offsets
        sub = self.table.slice(int(o[t_start]), int(o[t_stop]))
        renumbered = ColumnTable.from_arrays(
            YET_SCHEMA,
            trial=sub["trial"] - t_start,
            seq=sub["seq"],
            event_id=sub["event_id"],
        )
        return YetTable(renumbered, t_stop - t_start)


# ---------------------------------------------------------------------------
# YELT
# ---------------------------------------------------------------------------

class YeltTable:
    """Year-event-loss table (stage-2 intermediate)."""

    __slots__ = ("table", "n_trials")

    def __init__(self, table: ColumnTable, n_trials: int) -> None:
        if table.schema != YELT_SCHEMA:
            raise ConfigurationError("YELT table must match YELT_SCHEMA")
        if n_trials <= 0:
            raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
        trials = table["trial"]
        if trials.size and ((trials < 0).any() or trials.max() >= n_trials):
            raise ConfigurationError("YELT trial indices out of range")
        self.table = table
        self.n_trials = int(n_trials)

    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    def total_loss(self) -> float:
        return float(self.table["loss"].sum())

    def to_ylt(self) -> "YltTable":
        """Aggregate to a dense YLT (the ``groupby_sum`` of the pipeline).

        Note this is the *pre-aggregate-terms* annual loss; engines apply
        layer aggregate terms on top of this.
        """
        losses = np.zeros(self.n_trials, dtype=np.float64)
        if self.table.n_rows:
            np.add.at(losses, self.table["trial"], self.table["loss"])
        return YltTable(losses)


# ---------------------------------------------------------------------------
# YLT
# ---------------------------------------------------------------------------

class YltTable:
    """Dense year-loss table: ``losses[t]`` is trial ``t``'s annual loss."""

    __slots__ = ("losses",)

    def __init__(self, losses: np.ndarray) -> None:
        losses = np.asarray(losses, dtype=np.float64)
        if losses.ndim != 1 or losses.size == 0:
            raise ConfigurationError("YLT losses must be a non-empty 1-D array")
        if not np.isfinite(losses).all():
            raise ConfigurationError("YLT losses must be finite")
        if (losses < 0).any():
            raise ConfigurationError("YLT losses must be non-negative")
        self.losses = losses

    @property
    def n_trials(self) -> int:
        return self.losses.size

    @property
    def nbytes(self) -> int:
        return self.losses.nbytes

    def mean(self) -> float:
        """Expected annual loss (the pure premium)."""
        return float(self.losses.mean())

    def add(self, other: "YltTable") -> "YltTable":
        """Trial-aligned (comonotonic-by-trial) combination."""
        if other.n_trials != self.n_trials:
            raise ConfigurationError(
                f"cannot add YLTs with {self.n_trials} and {other.n_trials} trials"
            )
        return YltTable(self.losses + other.losses)

    @classmethod
    def zeros(cls, n_trials: int) -> "YltTable":
        if n_trials <= 0:
            raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
        return cls(np.zeros(n_trials, dtype=np.float64))

    @classmethod
    def sum(cls, ylts: list["YltTable"]) -> "YltTable":
        if not ylts:
            raise ConfigurationError("cannot sum an empty list of YLTs")
        acc = ylts[0]
        for y in ylts[1:]:
            acc = acc.add(y)
        return acc

    def to_table(self) -> ColumnTable:
        """Export as a (trial, loss) column table."""
        return ColumnTable.from_arrays(
            YLT_SCHEMA,
            trial=np.arange(self.n_trials, dtype=np.int64),
            loss=self.losses,
        )

    @classmethod
    def from_table(cls, table: ColumnTable, n_trials: int) -> "YltTable":
        """Import from a sparse (trial, loss) table (missing trials = 0)."""
        if table.schema != YLT_SCHEMA:
            raise ConfigurationError("YLT table must match YLT_SCHEMA")
        losses = np.zeros(n_trials, dtype=np.float64)
        trials = table["trial"]
        if trials.size:
            if (trials < 0).any() or trials.max() >= n_trials:
                raise ConfigurationError("YLT trial indices out of range")
            np.add.at(losses, trials, table["loss"])
        return cls(losses)

    def allclose(self, other: "YltTable", rtol: float = 1e-9, atol: float = 1e-6) -> bool:
        return (
            self.n_trials == other.n_trials
            and bool(np.allclose(self.losses, other.losses, rtol=rtol, atol=atol))
        )


# ---------------------------------------------------------------------------
# YELLT size model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class YelltModel:
    """Analytic size model for the location-level loss table (E1/E2).

    §II: "if an analysis of 10,000 contracts for 100,000 events in 1,000
    locations with 50,000 trial years is considered, the Year-Event-
    Location-Loss Table (YELLT) has over 5×10¹⁶ entries" — i.e. the paper
    accounts the YELLT as the full cross product.  The model exposes both
    that accounting and the occurrence-based one (rows that would actually
    materialise given a mean events-per-trial), plus the derived
    YELT/YLT sizes whose ~1000× ratios §II quotes.
    """

    n_contracts: int
    n_events: int
    n_locations: int
    n_trials: int
    mean_events_per_trial: float = 1000.0

    def __post_init__(self):
        for name in ("n_contracts", "n_events", "n_locations", "n_trials"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.mean_events_per_trial <= 0:
            raise ConfigurationError("mean_events_per_trial must be positive")

    @classmethod
    def paper_scale(cls) -> "YelltModel":
        """The exact parameters quoted in §II."""
        return cls(n_contracts=10_000, n_events=100_000, n_locations=1_000,
                   n_trials=50_000)

    # -- the paper's cross-product accounting ------------------------------

    def yellt_entries(self) -> float:
        """Entries by the paper's accounting (contracts×events×locations×trials)."""
        return (
            float(self.n_contracts) * self.n_events * self.n_locations * self.n_trials
        )

    def yelt_entries(self) -> float:
        """YELT = YELLT marginalised over locations (÷ n_locations)."""
        return self.yellt_entries() / self.n_locations

    def ylt_entries(self) -> float:
        """YLT = YELT aggregated over the year's events.

        The §II rule of thumb ("1000 times smaller") corresponds to the
        mean number of event occurrences per trial year.
        """
        return self.yelt_entries() / self.mean_events_per_trial

    # -- occurrence-based accounting ----------------------------------------

    def yellt_rows_materialised(self) -> float:
        """Rows a YELLT materialisation would actually hold: one row per
        (trial, occurrence, location, contract) with non-zero loss bound."""
        return (
            float(self.n_trials) * self.mean_events_per_trial
            * self.n_locations * self.n_contracts
        )

    def bytes_at(self, entries: float, row_bytes: int = 8) -> float:
        """Size in bytes at ``row_bytes`` per entry (8 = one f8 loss)."""
        if row_bytes <= 0:
            raise ConfigurationError("row_bytes must be positive")
        return entries * row_bytes

    def ratios(self) -> dict[str, float]:
        """The two §II size ratios."""
        return {
            "yellt_over_yelt": self.yellt_entries() / self.yelt_entries(),
            "yelt_over_ylt": self.yelt_entries() / self.ylt_entries(),
        }
