"""Reinstatement provisions — the paper's contracts, one step closer.

Real excess-of-loss treaties rarely give unlimited annual cover: the
layer's occurrence limit can be used a fixed number of times per year
(the original limit plus ``n`` *reinstatements*), and each reinstatement
is bought back at a premium pro-rata to the limit consumed.  This module
implements the standard arithmetic on top of the engine outputs:

- :func:`apply_reinstatement_limit` caps each trial-year's occurrence
  losses at ``(1 + n) × occ_limit`` of total recovery, consuming
  occurrences in year order (the YET's ``seq`` order);
- :func:`reinstatement_premiums` computes the per-trial reinstatement
  premium income at a given rate.

It operates on the YELT (the event-granularity intermediate §II
describes), which is exactly why engines can emit it.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import YELT_SCHEMA, YeltTable
from repro.data.columnar import ColumnTable
from repro.errors import ConfigurationError

__all__ = ["apply_reinstatement_limit", "reinstatement_premiums"]


def apply_reinstatement_limit(
    yelt: YeltTable,
    occ_limit: float,
    n_reinstatements: int,
) -> YeltTable:
    """Cap annual recoveries at ``(1 + n_reinstatements) * occ_limit``.

    Occurrence losses are consumed in row order within each trial (the
    engines emit YELT rows in YET order, i.e. chronologically within the
    year).  Once the annual capacity is exhausted later occurrences
    recover nothing — the contractual behaviour of a fully-burned layer.

    Returns a new YELT with the same rows and clipped losses.
    """
    if occ_limit <= 0 or not np.isfinite(occ_limit):
        raise ConfigurationError("occ_limit must be positive and finite")
    if n_reinstatements < 0:
        raise ConfigurationError("n_reinstatements must be non-negative")
    capacity = (1 + n_reinstatements) * occ_limit

    trials = yelt.table["trial"]
    losses = yelt.table["loss"].astype(np.float64, copy=False)
    if losses.size == 0:
        return YeltTable(yelt.table, yelt.n_trials)
    if (np.diff(trials) < 0).any():
        raise ConfigurationError(
            "YELT rows must be grouped by trial in year order (as engines "
            "emit them) for reinstatement accounting"
        )

    # Running within-trial cumulative loss via a segmented cumsum: the
    # global cumsum minus the cumsum at each trial's start.
    cum = np.cumsum(losses)
    # index of the first row of each trial run
    starts = np.concatenate(([0], np.nonzero(np.diff(trials))[0] + 1))
    base = np.zeros_like(cum)
    # cumulative total *before* each trial's first row
    trial_base = np.concatenate(([0.0], cum[starts[1:] - 1]))
    base[starts] = trial_base
    base = np.maximum.accumulate(base)
    within = cum - base                       # inclusive within-trial cumsum
    before = within - losses                  # exclusive
    # `before` is mathematically >= 0; the subtraction can leave a tiny
    # negative residue when trial sums are large, which would let a row
    # recover epsilon more than the remaining capacity.  Clamp it.
    np.maximum(before, 0.0, out=before)
    recovered = np.clip(capacity - before, 0.0, losses)

    table = ColumnTable.from_arrays(
        YELT_SCHEMA,
        trial=trials,
        event_id=yelt.table["event_id"],
        loss=recovered,
    )
    return YeltTable(table, yelt.n_trials)


def reinstatement_premiums(
    original: YeltTable,
    limited: YeltTable,
    occ_limit: float,
    rate_on_line: float,
    n_reinstatements: int,
) -> np.ndarray:
    """Per-trial reinstatement premium income.

    Consumed limit (up to ``n_reinstatements × occ_limit`` beyond the
    first fill) is reinstated pro-rata at ``rate_on_line × occ_limit``
    per full reinstatement — the market's standard "pro rata as to
    amount" clause.
    """
    if rate_on_line < 0:
        raise ConfigurationError("rate_on_line must be non-negative")
    if original.n_trials != limited.n_trials:
        raise ConfigurationError("YELTs must share the trial count")
    annual = limited.to_ylt().losses
    # Limit consumed beyond the original (first) limit, capped at the
    # reinstated capacity.
    reinstated = np.clip(annual - occ_limit, 0.0, n_reinstatements * occ_limit)
    return (reinstated / occ_limit) * rate_on_line * occ_limit
