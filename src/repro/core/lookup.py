"""Event-loss lookup structures.

The inner operation of aggregate analysis is "given an event id, what
loss does this layer's ELT set assign it?" executed ~10⁹ times per run.
The companion study's key GPU optimisation is *where* this lookup table
lives: a small dense table fits constant memory (broadcast-cached, fast);
a large one must live in global memory (chunked).  :class:`LossLookup`
abstracts the structure so engines can choose:

- ``dense``: a direct-indexed array of length ``max_event_id + 1``
  (missing events are 0) — O(1) gather, constant-memory candidate;
- ``sparse``: sorted ids + ``searchsorted`` — O(log n) per probe, the
  fallback when ids are sparse or the dense table would be huge.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import EltTable
from repro.errors import ConfigurationError

__all__ = ["LossLookup", "dense_gather_into", "sparse_gather_into"]


def dense_gather_into(table: np.ndarray, event_ids: np.ndarray,
                      out: np.ndarray) -> np.ndarray:
    """Gather ``table[event_ids]`` into ``out`` with no float temporaries.

    Ids at or beyond the table end are unknown events and gather 0; the
    only intermediate is the boolean in-bounds mask.  ``out`` may be any
    float64 buffer of the ids' shape (including a row view of a larger
    block matrix), which is what lets the fused portfolio sweep reuse one
    preallocated block buffer across the whole run.
    """
    np.take(table, event_ids, mode="clip", out=out)
    np.multiply(out, event_ids < table.size, out=out)
    return out


def sparse_gather_into(ids: np.ndarray, values: np.ndarray,
                       event_ids: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gather from a sorted (ids, values) pair into ``out``; misses are 0."""
    pos = np.searchsorted(ids, event_ids)
    np.minimum(pos, ids.size - 1, out=pos)
    np.take(values, pos, out=out)
    np.multiply(out, ids[pos] == event_ids, out=out)
    return out


class LossLookup:
    """Vectorised ``event_id → loss`` map with dense and sparse layouts."""

    __slots__ = ("kind", "_dense", "_ids", "_values")

    def __init__(self, kind: str, dense: np.ndarray | None,
                 ids: np.ndarray | None, values: np.ndarray | None) -> None:
        if kind not in ("dense", "sparse"):
            raise ConfigurationError(f"unknown lookup kind {kind!r}")
        self.kind = kind
        self._dense = dense
        self._ids = ids
        self._values = values

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_arrays(cls, event_ids: np.ndarray, values: np.ndarray,
                    dense_max_entries: int = 4_000_000) -> "LossLookup":
        """Build the best layout for the given id set.

        A dense table is used when ``max_event_id`` is small enough that
        the direct-index array stays under ``dense_max_entries`` slots.
        """
        event_ids = np.asarray(event_ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if event_ids.size == 0 or event_ids.shape != values.shape:
            raise ConfigurationError("event_ids and values must be equal-length, non-empty")
        if (event_ids < 0).any():
            raise ConfigurationError("event ids must be non-negative")
        order = np.argsort(event_ids)
        ids_sorted = event_ids[order]
        if np.any(np.diff(ids_sorted) == 0):
            raise ConfigurationError("duplicate event ids in lookup")
        vals_sorted = values[order]
        max_id = int(ids_sorted[-1])
        if max_id + 1 <= dense_max_entries:
            dense = np.zeros(max_id + 1, dtype=np.float64)
            dense[ids_sorted] = vals_sorted
            return cls("dense", dense, ids_sorted, vals_sorted)
        return cls("sparse", None, ids_sorted, vals_sorted)

    @classmethod
    def from_elt(cls, elt: EltTable, **kwargs) -> "LossLookup":
        """Lookup over one ELT's mean losses."""
        return cls.from_arrays(elt.event_ids, elt.mean_losses, **kwargs)

    @classmethod
    def from_elts(cls, elts, weights=None, **kwargs) -> "LossLookup":
        """Merged lookup over several ELTs (losses summed per event).

        A layer over multiple ELTs sees, for each event, the sum of the
        (optionally weighted) ELT losses — the merge is precomputed here
        once instead of per-occurrence in the engines.
        """
        elts = list(elts)
        if not elts:
            raise ConfigurationError("need at least one ELT")
        if weights is None:
            weights = [1.0] * len(elts)
        if len(weights) != len(elts):
            raise ConfigurationError("one weight per ELT required")
        all_ids = np.concatenate([e.event_ids for e in elts])
        all_vals = np.concatenate([
            w * e.mean_losses for w, e in zip(weights, elts)
        ])
        uniq, inverse = np.unique(all_ids, return_inverse=True)
        summed = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(summed, inverse, all_vals)
        return cls.from_arrays(uniq, summed, **kwargs)

    # -- access ----------------------------------------------------------------

    def __call__(self, event_ids: np.ndarray) -> np.ndarray:
        """Vectorised lookup; unknown ids map to loss 0.

        Allocates exactly one array (the result); see :meth:`gather_into`
        for the zero-allocation variant over a caller-owned buffer.
        """
        event_ids = np.asarray(event_ids, dtype=np.int64)
        out = np.empty(event_ids.shape, dtype=np.float64)
        return self.gather_into(event_ids, out)

    def gather_into(self, event_ids: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Gather losses for ``event_ids`` into the preallocated ``out``.

        ``out`` must be float64 with the ids' shape; it is returned.  The
        fused portfolio sweep calls this once per occurrence block per
        sparse layer, reusing one block buffer for the whole run.
        """
        event_ids = np.asarray(event_ids, dtype=np.int64)
        if self.kind == "dense":
            return dense_gather_into(self._dense, event_ids, out)
        return sparse_gather_into(self._ids, self._values, event_ids, out)

    def get_scalar(self, event_id: int) -> float:
        """Scalar lookup (sequential-engine oracle path)."""
        return float(self(np.array([event_id], dtype=np.int64))[0])

    def as_dict(self) -> dict[int, float]:
        """Materialise as a Python dict (pure-Python engine input)."""
        return {int(i): float(v) for i, v in zip(self._ids, self._values)}

    # -- placement metadata ---------------------------------------------------

    @property
    def table_array(self) -> np.ndarray:
        """The array an engine would place in device memory."""
        return self._dense if self.kind == "dense" else self._values

    @property
    def nbytes(self) -> int:
        """Device bytes needed for this lookup's arrays."""
        if self.kind == "dense":
            return self._dense.nbytes
        return self._ids.nbytes + self._values.nbytes

    @property
    def n_entries(self) -> int:
        return self._ids.size

    @property
    def ids(self) -> np.ndarray:
        return self._ids

    @property
    def values(self) -> np.ndarray:
        return self._values
