"""Event-loss lookup structures.

The inner operation of aggregate analysis is "given an event id, what
loss does this layer's ELT set assign it?" executed ~10⁹ times per run.
The companion study's key GPU optimisation is *where* this lookup table
lives: a small dense table fits constant memory (broadcast-cached, fast);
a large one must live in global memory (chunked).  :class:`LossLookup`
abstracts the structure so engines can choose:

- ``dense``: a direct-indexed array of length ``max_event_id + 1``
  (missing events are 0) — O(1) gather, constant-memory candidate;
- ``sparse``: sorted ids + ``searchsorted`` — O(log n) per probe, the
  fallback when ids are sparse or the dense table would be huge.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import EltTable
from repro.errors import ConfigurationError

__all__ = ["LossLookup"]


class LossLookup:
    """Vectorised ``event_id → loss`` map with dense and sparse layouts."""

    __slots__ = ("kind", "_dense", "_ids", "_values")

    def __init__(self, kind: str, dense: np.ndarray | None,
                 ids: np.ndarray | None, values: np.ndarray | None) -> None:
        if kind not in ("dense", "sparse"):
            raise ConfigurationError(f"unknown lookup kind {kind!r}")
        self.kind = kind
        self._dense = dense
        self._ids = ids
        self._values = values

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_arrays(cls, event_ids: np.ndarray, values: np.ndarray,
                    dense_max_entries: int = 4_000_000) -> "LossLookup":
        """Build the best layout for the given id set.

        A dense table is used when ``max_event_id`` is small enough that
        the direct-index array stays under ``dense_max_entries`` slots.
        """
        event_ids = np.asarray(event_ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if event_ids.size == 0 or event_ids.shape != values.shape:
            raise ConfigurationError("event_ids and values must be equal-length, non-empty")
        if (event_ids < 0).any():
            raise ConfigurationError("event ids must be non-negative")
        order = np.argsort(event_ids)
        ids_sorted = event_ids[order]
        if np.any(np.diff(ids_sorted) == 0):
            raise ConfigurationError("duplicate event ids in lookup")
        vals_sorted = values[order]
        max_id = int(ids_sorted[-1])
        if max_id + 1 <= dense_max_entries:
            dense = np.zeros(max_id + 1, dtype=np.float64)
            dense[ids_sorted] = vals_sorted
            return cls("dense", dense, ids_sorted, vals_sorted)
        return cls("sparse", None, ids_sorted, vals_sorted)

    @classmethod
    def from_elt(cls, elt: EltTable, **kwargs) -> "LossLookup":
        """Lookup over one ELT's mean losses."""
        return cls.from_arrays(elt.event_ids, elt.mean_losses, **kwargs)

    @classmethod
    def from_elts(cls, elts, weights=None, **kwargs) -> "LossLookup":
        """Merged lookup over several ELTs (losses summed per event).

        A layer over multiple ELTs sees, for each event, the sum of the
        (optionally weighted) ELT losses — the merge is precomputed here
        once instead of per-occurrence in the engines.
        """
        elts = list(elts)
        if not elts:
            raise ConfigurationError("need at least one ELT")
        if weights is None:
            weights = [1.0] * len(elts)
        if len(weights) != len(elts):
            raise ConfigurationError("one weight per ELT required")
        all_ids = np.concatenate([e.event_ids for e in elts])
        all_vals = np.concatenate([
            w * e.mean_losses for w, e in zip(weights, elts)
        ])
        uniq, inverse = np.unique(all_ids, return_inverse=True)
        summed = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(summed, inverse, all_vals)
        return cls.from_arrays(uniq, summed, **kwargs)

    # -- access ----------------------------------------------------------------

    def __call__(self, event_ids: np.ndarray) -> np.ndarray:
        """Vectorised lookup; unknown ids map to loss 0."""
        event_ids = np.asarray(event_ids, dtype=np.int64)
        if self.kind == "dense":
            dense = self._dense
            clipped = np.clip(event_ids, 0, dense.size - 1)
            out = dense[clipped]
            # ids beyond the table are unknown events -> 0
            out = np.where(event_ids < dense.size, out, 0.0)
            return out
        pos = np.searchsorted(self._ids, event_ids)
        pos_clipped = np.minimum(pos, self._ids.size - 1)
        hit = self._ids[pos_clipped] == event_ids
        return np.where(hit, self._values[pos_clipped], 0.0)

    def get_scalar(self, event_id: int) -> float:
        """Scalar lookup (sequential-engine oracle path)."""
        return float(self(np.array([event_id], dtype=np.int64))[0])

    def as_dict(self) -> dict[int, float]:
        """Materialise as a Python dict (pure-Python engine input)."""
        return {int(i): float(v) for i, v in zip(self._ids, self._values)}

    # -- placement metadata ---------------------------------------------------

    @property
    def table_array(self) -> np.ndarray:
        """The array an engine would place in device memory."""
        return self._dense if self.kind == "dense" else self._values

    @property
    def nbytes(self) -> int:
        """Device bytes needed for this lookup's arrays."""
        if self.kind == "dense":
            return self._dense.nbytes
        return self._ids.nbytes + self._values.nbytes

    @property
    def n_entries(self) -> int:
        return self._ids.size

    @property
    def ids(self) -> np.ndarray:
        return self._ids

    @property
    def values(self) -> np.ndarray:
        return self._values
