"""The chunked simulated-GPU engine — the paper's optimised path.

This engine reproduces the data-management strategy of the companion
study [7] on :class:`~repro.hpc.device.SimulatedGpu`, driving the same
stacked :class:`~repro.core.kernels.PortfolioKernel` every host engine
uses:

- the YET is **streamed through global memory in chunks** sized by the
  :class:`~repro.hpc.chunking.ChunkPlanner` against the device's real
  capacity (E5's chunk-size sweep drives ``max_rows_per_chunk``);
- kernel rows are grouped into **resident batches** sized to the
  global-memory budget; within a batch each YET chunk is uploaded once
  and ONE stacked kernel launch prices every row against it, resolving
  each row's lookup — constant bank, row offset into the uploaded
  ``dense_stack``, or CSR segment bounds — in-kernel.  Rows sharing a
  merged book ship their table once: per batch there is exactly one
  stacked dense upload (plus one CSR pair when sparse rows exist), not
  one buffer per layer;
- which merged lookups live in the **64 KiB-class constant space** is
  chosen by a greedy (hit-frequency × size) packer: tables scoring the
  most referencing-rows × bytes claim constant first, the rest ride the
  stacked global upload.  Stacked tables are trimmed to their effective
  width before shipping, so one wide book does not inflate its
  neighbours' padding onto the bus;
- each kernel block reduces its occurrences into a **shared-memory
  accumulator** when the block's (rows × trial-span) tile fits the
  48 KiB shared space, falling back to global-memory accumulation (the
  analogue of global atomics) otherwise;
- aggregate terms run as one trials-wide kernel per batch over the
  stacked annual matrix, which then downloads in a single D2H copy.

``use_constant`` / ``use_shared`` switches exist purely for the E5
ablation: turning them off yields the "naive GPU" the study improved on.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.kernels import PortfolioKernel
from repro.core.portfolio import Portfolio
from repro.core.tables import YELT_SCHEMA, YeltTable, YetTable, YltTable
from repro.data.columnar import ColumnTable
from repro.hpc.chunking import ChunkPlanner
from repro.hpc.device import SimulatedGpu
from repro.hpc.kernel import Kernel

__all__ = ["DeviceEngine"]

#: Bytes per YET row resident on device: trial (i8) + event_id (i8).
_YET_ROW_BYTES = 16

#: Row lookup modes resolved in-kernel.
_MODE_CONSTANT, _MODE_STACK, _MODE_SPARSE = 0, 1, 2


def _effective_width(table: np.ndarray) -> int:
    """Entries of a (zero-padded) dense table worth shipping.

    Trailing zeros read identically to "unknown event → 0", so a table
    trimmed to its last non-zero entry is functionally the same lookup;
    a floor of one entry keeps downstream indexing trivially safe.
    """
    nz = np.flatnonzero(table)
    return int(nz[-1]) + 1 if nz.size else 1


class DeviceEngine(Engine):
    """Aggregate analysis on the simulated GPU with explicit chunking."""

    name = "device"

    def __init__(
        self,
        gpu: SimulatedGpu | None = None,
        max_rows_per_chunk: int | None = None,
        use_constant: bool = True,
        use_shared: bool = True,
        dense_max_entries: int = 4_000_000,
        global_budget_fraction: float = 0.9,
    ) -> None:
        self.gpu = gpu or SimulatedGpu()
        self.max_rows_per_chunk = max_rows_per_chunk
        self.use_constant = use_constant
        self.use_shared = use_shared
        self.dense_max_entries = dense_max_entries
        self.planner = ChunkPlanner(self.gpu.properties, global_budget_fraction)

    # -- kernels -------------------------------------------------------------

    def _make_batch_kernel(self, *, occ_ret, occ_lim, modes, const_names,
                           stack_pos, seg_bounds, use_shared: bool) -> Kernel:
        n_rows = occ_ret.size

        def body(ctx, trial, event, annual, **stack_bufs):
            s = ctx.rows()
            ev = event[s]
            tr = trial[s]
            acc = None
            if use_shared and tr.size:
                tmin = int(tr[0])
                span = int(tr[-1]) - tmin + 1
                if span * n_rows * 8 <= ctx.shared.free_bytes:
                    # Block-local reduction of the whole row stack in
                    # shared memory, then one coalesced add per row into
                    # the global annual matrix.
                    acc = ctx.shared.alloc("acc", (n_rows, span), np.float64)
            for i in range(n_rows):
                mode = modes[i]
                if mode == _MODE_SPARSE:
                    lo, hi = seg_bounds[i]
                    ids = stack_bufs["sparse_ids"][lo:hi]
                    vals = stack_bufs["sparse_values"][lo:hi]
                    if ids.size:
                        pos = np.minimum(np.searchsorted(ids, ev),
                                         ids.size - 1)
                        losses = np.where(ids[pos] == ev, vals[pos], 0.0)
                    else:
                        losses = np.zeros(ev.size)
                else:
                    table = (ctx.constant[const_names[i]]
                             if mode == _MODE_CONSTANT
                             else stack_bufs["dense_stack"][stack_pos[i]])
                    clipped = np.clip(ev, 0, table.size - 1)
                    losses = np.where(ev < table.size, table[clipped], 0.0)
                retained = np.clip(losses - occ_ret[i], 0.0, occ_lim[i])
                if acc is not None:
                    np.add.at(acc[i], tr - tmin, retained)
                else:
                    # Fallback: per-occurrence accumulation into global
                    # memory (the analogue of global atomics).
                    np.add.at(annual[i], tr, retained)
            if acc is not None:
                annual[:, tmin:tmin + span] += acc

        return Kernel("portfolio_stack", body)

    def _make_agg_kernel(self, agg_ret, agg_lim, share) -> Kernel:
        def body(ctx, annual):
            s = ctx.rows()
            block = annual[:, s]
            np.clip(block - agg_ret[:, None], 0.0, agg_lim[:, None], out=block)
            block *= share[:, None]

        return Kernel("aggregate_terms", body)

    # -- placement -----------------------------------------------------------

    def _store_meta(self, kernel: PortfolioKernel, row: int):
        """``(key, kind, bytes)`` of the stored lookup behind one row."""
        if row < kernel.n_dense:
            store = int(kernel.dense_source[row])
            width = _effective_width(kernel.dense_stack[store])
            return ("dense", store), "dense", width * 8
        seg = int(kernel.sparse_source[row - kernel.n_dense])
        lo = int(kernel.sparse_offsets[seg])
        hi = int(kernel.sparse_offsets[seg + 1])
        return ("sparse", seg), "sparse", (hi - lo) * 16

    # -- run -----------------------------------------------------------------

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        t0 = time.perf_counter()
        gpu = self.gpu
        h2d0, d2h0 = gpu.transfers.h2d_bytes, gpu.transfers.d2h_bytes
        launches0 = len(gpu.launch_log)

        trials = yet.trials
        event_ids = yet.event_ids
        n_rows = yet.n_occurrences
        n_trials = yet.n_trials

        kernel_fn = getattr(portfolio, "kernel", None)
        kernel: PortfolioKernel = (
            kernel_fn(dense_max_entries=self.dense_max_entries)
            if callable(kernel_fn)
            else PortfolioKernel.from_layers(
                list(portfolio), dense_max_entries=self.dense_max_entries
            )
        )

        ylt_by_layer: dict[int, YltTable] = {}
        yelt_by_layer: dict[int, YeltTable] | None = {} if emit_yelt else None
        layer_details = {}

        store_meta = [self._store_meta(kernel, row)
                      for row in range(kernel.n_layers)]

        # Partition kernel rows into resident batches: a batch's
        # worst-case footprint (every distinct stored lookup counted once
        # even if spilled to global, plus one annual row per kernel row)
        # may claim at most half the global budget, leaving the rest for
        # the streamed YET chunk.  Small portfolios form one batch (fully
        # fused); a portfolio too big to co-reside degrades gracefully to
        # one YET pass per batch instead of failing mid-upload.
        resident_cap = max(self.planner.budget_bytes // 2, 1)
        batches: list[list[int]] = [[]]
        batch_bytes = 0
        seen_stores: set = set()
        for row in range(kernel.n_layers):
            key, _, store_bytes = store_meta[row]
            need = (0 if key in seen_stores else store_bytes) + n_trials * 8
            if batches[-1] and batch_bytes + need > resident_cap:
                batches.append([])
                batch_bytes = 0
                seen_stores = set()
            batches[-1].append(row)
            batch_bytes += (0 if key in seen_stores else store_bytes)
            batch_bytes += n_trials * 8
            seen_stores.add(key)

        n_chunks_total = 0
        stack_uploads = 0
        sparse_stack_uploads = 0
        yet_uploads = 0
        for batch in batches:
            gpu.reset()
            n_batch = len(batch)

            # Greedy constant packing over the batch's distinct dense
            # stores: score = referencing rows × effective bytes, highest
            # first — the most-hit bytes earn the broadcast-cached bank.
            refs: dict = {}
            for row in batch:
                key, _, store_bytes = store_meta[row]
                hits, _ = refs.get(key, (0, store_bytes))
                refs[key] = (hits + 1, store_bytes)
            dense_keys = [k for k in refs if k[0] == "dense"]
            constant_stores: set[int] = set()
            if self.use_constant:
                free = gpu.properties.constant_mem_bytes
                for key in sorted(
                        dense_keys,
                        key=lambda k: (-refs[k][0] * refs[k][1], k[1])):
                    if refs[key][1] <= free:
                        constant_stores.add(key[1])
                        free -= refs[key][1]

            # One stacked global upload for the spilled dense stores,
            # trimmed to the widest effective table among them; one CSR
            # pair for the batch's sparse segments.
            stack_stores = sorted(
                k[1] for k in dense_keys if k[1] not in constant_stores
            )
            stack_of = {u: i for i, u in enumerate(stack_stores)}
            sparse_segs = sorted(k[1] for k in refs if k[0] == "sparse")
            global_resident = n_batch * n_trials * 8
            stack_bufs: dict[str, str] = {}
            if stack_stores:
                width = max(
                    _effective_width(kernel.dense_stack[u])
                    for u in stack_stores
                )
                dense_stack = np.zeros((len(stack_stores), width))
                for i, u in enumerate(stack_stores):
                    w = _effective_width(kernel.dense_stack[u])
                    dense_stack[i, :w] = kernel.dense_stack[u, :w]
                gpu.upload("dense_stack", dense_stack)
                stack_bufs["dense_stack"] = "dense_stack"
                stack_uploads += 1
                global_resident += dense_stack.nbytes
            seg_base: dict[int, int] = {}
            if sparse_segs:
                ids_parts, val_parts, at = [], [], 0
                for seg in sparse_segs:
                    lo = int(kernel.sparse_offsets[seg])
                    hi = int(kernel.sparse_offsets[seg + 1])
                    seg_base[seg] = at
                    ids_parts.append(kernel.sparse_ids[lo:hi])
                    val_parts.append(kernel.sparse_values[lo:hi])
                    at += hi - lo
                gpu.upload("sparse_ids", np.concatenate(ids_parts))
                gpu.upload("sparse_values", np.concatenate(val_parts))
                stack_bufs["sparse_ids"] = "sparse_ids"
                stack_bufs["sparse_values"] = "sparse_values"
                sparse_stack_uploads += 1
                global_resident += at * 16

            plan = self.planner.plan(
                n_rows=n_rows,
                row_bytes=_YET_ROW_BYTES,
                lookup_bytes=0,  # placement already decided above
                resident_bytes=global_resident,
                shared_bytes_per_row=8,
                max_rows_per_chunk=self.max_rows_per_chunk,
            )

            # Stage: constant uploads (once per store, however many rows
            # read it) + the stacked annual matrix, then resolve each
            # row's in-kernel lookup coordinates.
            uploaded_const: set[int] = set()
            modes = np.empty(n_batch, dtype=np.int64)
            stack_pos = np.zeros(n_batch, dtype=np.int64)
            const_names: list[str | None] = [None] * n_batch
            seg_bounds: list[tuple[int, int] | None] = [None] * n_batch
            for i, row in enumerate(batch):
                key, kind, _ = store_meta[row]
                if kind == "dense":
                    store = key[1]
                    if store in constant_stores:
                        modes[i] = _MODE_CONSTANT
                        const_names[i] = f"const_table_{store}"
                        if store not in uploaded_const:
                            w = _effective_width(kernel.dense_stack[store])
                            gpu.upload_constant(
                                f"const_table_{store}",
                                kernel.dense_stack[store, :w],
                            )
                            uploaded_const.add(store)
                    else:
                        modes[i] = _MODE_STACK
                        stack_pos[i] = stack_of[store]
                else:
                    seg = key[1]
                    lo = int(kernel.sparse_offsets[seg])
                    hi = int(kernel.sparse_offsets[seg + 1])
                    base = seg_base[seg]
                    modes[i] = _MODE_SPARSE
                    seg_bounds[i] = (base, base + (hi - lo))
            gpu.alloc("annual_stack", (n_batch, n_trials), np.float64)

            rows_idx = np.asarray(batch, dtype=np.int64)
            batch_kernel = self._make_batch_kernel(
                occ_ret=kernel.occ_retention[rows_idx],
                occ_lim=kernel.occ_limit[rows_idx],
                modes=modes,
                const_names=const_names,
                stack_pos=stack_pos,
                seg_bounds=seg_bounds,
                use_shared=self.use_shared,
            )

            # Fused streaming: each YET chunk is uploaded once and ONE
            # stacked launch prices every batch row against it before the
            # next chunk replaces it — H2D traffic is one YET pass and
            # one launch per chunk for the whole batch, instead of one
            # per layer.
            start = 0
            chunk_index = 0
            while start < n_rows:
                stop = min(start + plan.rows_per_chunk, n_rows)
                gpu.upload("trial_chunk", trials[start:stop])
                gpu.upload("event_chunk", event_ids[start:stop])
                yet_uploads += 1
                gpu.launch(
                    batch_kernel,
                    stop - start,
                    rows_per_block=plan.rows_per_block,
                    trial="trial_chunk",
                    event="event_chunk",
                    annual="annual_stack",
                    **stack_bufs,
                )
                gpu.free("trial_chunk")
                gpu.free("event_chunk")
                start = stop
                chunk_index += 1
            n_chunks_total += chunk_index

            agg_kernel = self._make_agg_kernel(
                kernel.agg_retention[rows_idx],
                kernel.agg_limit[rows_idx],
                kernel.participation[rows_idx],
            )
            gpu.launch(agg_kernel, n_trials,
                       rows_per_block=plan.rows_per_block,
                       annual="annual_stack")
            annual = gpu.download("annual_stack")

            for i, row in enumerate(batch):
                lid = kernel.layer_ids[row]
                key, kind, store_bytes = store_meta[row]
                ylt_by_layer[lid] = YltTable(annual[i])
                layer_details[lid] = {
                    "n_chunks": chunk_index,
                    "rows_per_chunk": plan.rows_per_chunk,
                    "rows_per_block": plan.rows_per_block,
                    "lookup_in_constant": bool(
                        kind == "dense" and key[1] in constant_stores
                    ),
                    "lookup_kind": kind,
                    "lookup_bytes": store_bytes,
                }

                if emit_yelt:
                    # The YELT is a host-side artefact; regenerate it with
                    # the same arithmetic (device memory could not hold it
                    # anyway, which is §II's point about YELT-level
                    # analysis).
                    losses = kernel.gather_layer(row, event_ids)
                    retained = kernel.occurrence_row(row, losses)
                    covered = losses > 0.0
                    table = ColumnTable.from_arrays(
                        YELT_SCHEMA, trial=trials[covered],
                        event_id=event_ids[covered],
                        loss=retained[covered],
                    )
                    yelt_by_layer[lid] = YeltTable(table, n_trials)

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            yelt_by_layer=yelt_by_layer,
            seconds=time.perf_counter() - t0,
            details={
                "layers": layer_details,
                "n_batches": len(batches),
                "n_chunks_total": n_chunks_total,
                "stack_uploads": stack_uploads,
                "sparse_stack_uploads": sparse_stack_uploads,
                "yet_uploads": yet_uploads,
                "h2d_bytes": gpu.transfers.h2d_bytes - h2d0,
                "d2h_bytes": gpu.transfers.d2h_bytes - d2h0,
                "launches": len(gpu.launch_log) - launches0,
            },
        )
