"""The chunked simulated-GPU engine — the paper's optimised path.

This engine reproduces the data-management strategy of the companion
study [7] on :class:`~repro.hpc.device.SimulatedGpu`:

- the YET is **streamed through global memory in chunks** sized by the
  :class:`~repro.hpc.chunking.ChunkPlanner` against the device's real
  capacity (E5's chunk-size sweep drives ``max_rows_per_chunk``);
- streaming is **fused across the portfolio**: layers are grouped into
  resident batches sized to the global-memory budget, and within a
  batch each YET chunk is uploaded once and consumed by every layer
  while it is resident — host-to-device traffic is one YET pass per
  batch (one total for portfolios that fit) instead of one per layer
  (the device-side analogue of the fused
  :class:`~repro.core.kernels.PortfolioKernel` sweep);
- each layer's event-loss lookup is placed in **constant memory** while
  it fits (dense, ≤64 KiB cumulatively across layers) and global memory
  otherwise;
- each kernel block reduces its occurrences into a **shared-memory
  accumulator** when the block's trial span fits the 48 KiB shared space,
  falling back to global-memory accumulation (the analogue of global
  atomics) otherwise;
- aggregate terms run as a second, trials-wide kernel per layer.

``use_constant`` / ``use_shared`` switches exist purely for the E5
ablation: turning them off yields the "naive GPU" the study improved on.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.portfolio import Portfolio
from repro.core.tables import YELT_SCHEMA, YeltTable, YetTable, YltTable
from repro.data.columnar import ColumnTable
from repro.hpc.chunking import ChunkPlanner
from repro.hpc.device import SimulatedGpu
from repro.hpc.kernel import Kernel

__all__ = ["DeviceEngine"]

#: Bytes per YET row resident on device: trial (i8) + event_id (i8).
_YET_ROW_BYTES = 16


class DeviceEngine(Engine):
    """Aggregate analysis on the simulated GPU with explicit chunking."""

    name = "device"

    def __init__(
        self,
        gpu: SimulatedGpu | None = None,
        max_rows_per_chunk: int | None = None,
        use_constant: bool = True,
        use_shared: bool = True,
        dense_max_entries: int = 4_000_000,
        global_budget_fraction: float = 0.9,
    ) -> None:
        self.gpu = gpu or SimulatedGpu()
        self.max_rows_per_chunk = max_rows_per_chunk
        self.use_constant = use_constant
        self.use_shared = use_shared
        self.dense_max_entries = dense_max_entries
        self.planner = ChunkPlanner(self.gpu.properties, global_budget_fraction)

    # -- kernels -------------------------------------------------------------

    def _make_layer_kernel(self, terms, lookup_kind: str, use_shared: bool,
                           lookup_in_constant: bool,
                           constant_name: str = "lookup") -> Kernel:
        occ_ret = terms.occ_retention
        occ_lim = terms.occ_limit

        def body(ctx, trial, event, annual, **lookup_bufs):
            s = ctx.rows()
            ev = event[s]
            if lookup_kind == "dense":
                table = ctx.constant[constant_name] if lookup_in_constant else lookup_bufs["lookup"]
                clipped = np.clip(ev, 0, table.size - 1)
                losses = np.where(ev < table.size, table[clipped], 0.0)
            else:
                ids = lookup_bufs["lookup_ids"]
                vals = lookup_bufs["lookup_vals"]
                pos = np.minimum(np.searchsorted(ids, ev), ids.size - 1)
                losses = np.where(ids[pos] == ev, vals[pos], 0.0)
            retained = np.clip(losses - occ_ret, 0.0, occ_lim)
            tr = trial[s]
            if use_shared and tr.size:
                tmin = int(tr[0])
                span = int(tr[-1]) - tmin + 1
                if span * 8 <= ctx.shared.free_bytes:
                    # Block-local reduction in shared memory, then one
                    # coalesced add into the global accumulator.
                    acc = ctx.shared.alloc("acc", span, np.float64)
                    np.add.at(acc, tr - tmin, retained)
                    annual[tmin:tmin + span] += acc
                    return
            # Fallback: per-occurrence accumulation into global memory
            # (the analogue of global atomics).
            np.add.at(annual, tr, retained)

        return Kernel("layer_loss", body)

    def _make_agg_kernel(self, terms) -> Kernel:
        agg_ret = terms.agg_retention
        agg_lim = terms.agg_limit
        share = terms.participation

        def body(ctx, annual):
            s = ctx.rows()
            out = np.clip(annual[s] - agg_ret, 0.0, agg_lim)
            out *= share
            annual[s] = out

        return Kernel("aggregate_terms", body)

    # -- run -----------------------------------------------------------------

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        t0 = time.perf_counter()
        gpu = self.gpu

        trials = yet.trials
        event_ids = yet.event_ids
        n_rows = yet.n_occurrences
        n_trials = yet.n_trials

        ylt_by_layer: dict[int, YltTable] = {}
        yelt_by_layer: dict[int, YeltTable] | None = {} if emit_yelt else None
        layer_details = {}

        # Partition the portfolio into resident batches: a batch's
        # worst-case footprint (all lookups spilled to global + one
        # annual vector per layer) may claim at most half the global
        # budget, leaving the rest for the streamed YET chunk.  Small
        # portfolios form one batch (fully fused); a portfolio too big to
        # co-reside degrades gracefully to one YET pass per batch instead
        # of failing mid-upload.
        resident_cap = max(self.planner.budget_bytes // 2, 1)
        batches: list[list] = [[]]
        batch_bytes = 0
        for layer in portfolio:
            lookup = layer.lookup(dense_max_entries=self.dense_max_entries)
            need = lookup.nbytes + n_trials * 8
            if batches[-1] and batch_bytes + need > resident_cap:
                batches.append([])
                batch_bytes = 0
            batches[-1].append((layer, lookup))
            batch_bytes += need

        n_chunks_total = 0
        for batch in batches:
            gpu.reset()

            # Account the batch's residency before any upload so an
            # impossible batch fails with the planner's capacity
            # diagnostics, not a mid-upload error.  Placement is simulated
            # with the same first-come rule the staging loop applies
            # below, so the global-resident figure is exact.
            constant_free = gpu.properties.constant_mem_bytes
            global_resident = len(batch) * n_trials * 8  # annual vectors
            for _, lookup in batch:
                if (self.use_constant and lookup.kind == "dense"
                        and lookup.nbytes <= constant_free):
                    constant_free -= lookup.nbytes
                else:
                    global_resident += lookup.nbytes
            plan = self.planner.plan(
                n_rows=n_rows,
                row_bytes=_YET_ROW_BYTES,
                lookup_bytes=0,  # placement already decided above
                resident_bytes=global_resident,
                shared_bytes_per_row=8,
                max_rows_per_chunk=self.max_rows_per_chunk,
            )

            # Stage the batch: constant memory fills first-come
            # (cumulatively, as a real 64 KiB constant bank would), the
            # rest spills to global.
            staged = []
            for layer, lookup in batch:
                lid = layer.layer_id
                in_constant = (
                    self.use_constant
                    and lookup.kind == "dense"
                    and gpu.fits_constant(lookup.nbytes)
                )
                lookup_bufs: dict[str, str] = {}
                if lookup.kind == "dense":
                    if in_constant:
                        gpu.upload_constant(f"lookup_{lid}", lookup.table_array)
                    else:
                        gpu.upload(f"lookup_{lid}", lookup.table_array)
                        lookup_bufs["lookup"] = f"lookup_{lid}"
                else:
                    gpu.upload(f"lookup_ids_{lid}", lookup.ids)
                    gpu.upload(f"lookup_vals_{lid}", lookup.values)
                    lookup_bufs["lookup_ids"] = f"lookup_ids_{lid}"
                    lookup_bufs["lookup_vals"] = f"lookup_vals_{lid}"
                gpu.alloc(f"annual_{lid}", n_trials, np.float64)
                kernel = self._make_layer_kernel(
                    layer.terms, lookup.kind, self.use_shared, in_constant,
                    constant_name=f"lookup_{lid}",
                )
                staged.append((layer, lookup, lookup_bufs, in_constant, kernel))

            # Fused streaming: each YET chunk is uploaded once and every
            # layer in the batch consumes it before the next chunk
            # replaces it — H2D traffic is one YET pass per batch instead
            # of one per layer.
            start = 0
            chunk_index = 0
            while start < n_rows:
                stop = min(start + plan.rows_per_chunk, n_rows)
                gpu.upload("trial_chunk", trials[start:stop])
                gpu.upload("event_chunk", event_ids[start:stop])
                for layer, lookup, lookup_bufs, in_constant, kernel in staged:
                    gpu.launch(
                        kernel,
                        stop - start,
                        rows_per_block=plan.rows_per_block,
                        trial="trial_chunk",
                        event="event_chunk",
                        annual=f"annual_{layer.layer_id}",
                        **lookup_bufs,
                    )
                gpu.free("trial_chunk")
                gpu.free("event_chunk")
                start = stop
                chunk_index += 1
            n_chunks_total += chunk_index

            for layer, lookup, lookup_bufs, in_constant, kernel in staged:
                lid = layer.layer_id
                agg_kernel = self._make_agg_kernel(layer.terms)
                gpu.launch(agg_kernel, n_trials,
                           rows_per_block=plan.rows_per_block,
                           annual=f"annual_{lid}")
                ylt_by_layer[lid] = YltTable(gpu.download(f"annual_{lid}"))
                layer_details[lid] = {
                    "n_chunks": chunk_index,
                    "rows_per_chunk": plan.rows_per_chunk,
                    "rows_per_block": plan.rows_per_block,
                    "lookup_in_constant": in_constant,
                    "lookup_kind": lookup.kind,
                    "lookup_bytes": lookup.nbytes,
                }

                if emit_yelt:
                    # The YELT is a host-side artefact; regenerate it with
                    # the same arithmetic (device memory could not hold it
                    # anyway, which is §II's point about YELT-level
                    # analysis).
                    losses = lookup(event_ids)
                    retained = layer.terms.apply_occurrence(losses)
                    covered = losses > 0.0
                    table = ColumnTable.from_arrays(
                        YELT_SCHEMA, trial=trials[covered],
                        event_id=event_ids[covered],
                        loss=retained[covered],
                    )
                    yelt_by_layer[lid] = YeltTable(table, n_trials)

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            yelt_by_layer=yelt_by_layer,
            seconds=time.perf_counter() - t0,
            details={
                "layers": layer_details,
                "n_batches": len(batches),
                "n_chunks_total": n_chunks_total,
                "h2d_bytes": gpu.transfers.h2d_bytes,
                "d2h_bytes": gpu.transfers.d2h_bytes,
                "launches": len(gpu.launch_log),
            },
        )
