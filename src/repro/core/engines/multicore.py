"""Trial-block multiprocess engine.

The YET decomposes perfectly by trial (no occurrence crosses a trial
boundary), so the analysis parallelises as: split the trial range into
contiguous blocks, run the vectorised arithmetic per block, concatenate
the per-block YLT slices.  Aggregate terms are block-local because each
trial lives in exactly one block.  Workers receive only primitive arrays
(picklable); on single-core hosts the pool degrades to serial execution
with identical results.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.lookup import LossLookup
from repro.core.portfolio import Portfolio
from repro.core.tables import YetTable, YltTable
from repro.core.terms import LayerTerms
from repro.errors import EngineError
from repro.hpc.pool import WorkPool

__all__ = ["MulticoreEngine"]


def _run_layer_block(lookup_ids, lookup_vals, dense_max_entries, terms_tuple,
                     trials_block, events_block, n_trials_block) -> np.ndarray:
    """Worker: one layer over one renumbered trial block (picklable)."""
    lookup = LossLookup.from_arrays(
        lookup_ids, lookup_vals, dense_max_entries=dense_max_entries
    )
    terms = LayerTerms(*terms_tuple)
    retained = terms.apply_occurrence(lookup(events_block))
    annual = np.bincount(trials_block, weights=retained, minlength=n_trials_block)
    return terms.apply_aggregate(annual)


class MulticoreEngine(Engine):
    """Process-pool aggregate analysis over contiguous trial blocks."""

    name = "multicore"

    def __init__(self, n_workers: int | None = None,
                 dense_max_entries: int = 4_000_000) -> None:
        self.pool = WorkPool(n_workers)
        self.dense_max_entries = dense_max_entries

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        if emit_yelt:
            raise EngineError(
                "multicore engine does not emit YELTs; use the vectorized "
                "engine for event-granularity output"
            )
        t0 = time.perf_counter()

        n_workers = self.pool.n_workers
        n_trials = yet.n_trials
        n_blocks = min(n_workers, n_trials)
        bounds = np.linspace(0, n_trials, n_blocks + 1).astype(int)
        blocks = [
            yet.slice_trials(int(bounds[i]), int(bounds[i + 1]))
            for i in range(n_blocks)
            if bounds[i + 1] > bounds[i]
        ]

        ylt_by_layer: dict[int, YltTable] = {}
        for layer in portfolio:
            lookup = layer.lookup(dense_max_entries=self.dense_max_entries)
            t = layer.terms
            terms_tuple = (t.occ_retention, t.occ_limit, t.agg_retention,
                           t.agg_limit, t.participation)
            args = [
                (lookup.ids, lookup.values, self.dense_max_entries, terms_tuple,
                 b.trials, b.event_ids, b.n_trials)
                for b in blocks
            ]
            partials = self.pool.starmap(_run_layer_block, args)
            ylt_by_layer[layer.layer_id] = YltTable(np.concatenate(partials))

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            seconds=time.perf_counter() - t0,
            details={"n_workers": n_workers, "n_blocks": len(blocks)},
        )
