"""Trial-block multiprocess engine.

The YET decomposes perfectly by trial (no occurrence crosses a trial
boundary), so the analysis parallelises as: split the trial range into
contiguous blocks, run the **fused portfolio sweep** per block, and
concatenate the per-block ``(L, trials)`` slices.  Aggregate terms are
block-local because each trial lives in exactly one block.

The stacked :class:`~repro.core.kernels.PortfolioKernel` is shipped to
each worker once per run through the pool initializer — not once per
layer per block, as the old per-layer task list did — so the dominant
transfer is the YET slices themselves.  The pool is constructed lazily
on first use; :meth:`MulticoreEngine.close` (or ``with`` support) is the
shutdown path.  On single-core hosts the pool degrades to serial
execution with identical results.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.kernels import PortfolioKernel
from repro.core.portfolio import Portfolio
from repro.core.tables import YetTable, YltTable
from repro.errors import EngineError
from repro.hpc.pool import WorkPool

__all__ = ["MulticoreEngine"]


def _run_portfolio_block(kernel: PortfolioKernel, trials_block, events_block,
                         n_trials_block) -> np.ndarray:
    """Worker: fused sweep over one renumbered trial block (picklable)."""
    annual = kernel.sweep(trials_block, events_block, n_trials_block)
    return kernel.apply_aggregate(annual)


class MulticoreEngine(Engine):
    """Process-pool aggregate analysis over contiguous trial blocks."""

    name = "multicore"

    def __init__(self, n_workers: int | None = None,
                 dense_max_entries: int = 4_000_000) -> None:
        self.n_workers = n_workers
        self.dense_max_entries = dense_max_entries
        self._pool: WorkPool | None = None

    # -- pool lifecycle ----------------------------------------------------

    @property
    def pool(self) -> WorkPool:
        """The work pool, constructed lazily on first access."""
        if self._pool is None:
            self._pool = WorkPool(self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; engine stays usable)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "MulticoreEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- run ---------------------------------------------------------------

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        if emit_yelt:
            raise EngineError(
                "multicore engine does not emit YELTs; use the vectorized "
                "engine for event-granularity output"
            )
        t0 = time.perf_counter()

        kernel = portfolio.kernel(dense_max_entries=self.dense_max_entries)
        n_workers = self.pool.n_workers
        n_trials = yet.n_trials
        n_blocks = min(n_workers, n_trials)
        bounds = np.linspace(0, n_trials, n_blocks + 1).astype(int)
        blocks = [
            yet.slice_trials(int(bounds[i]), int(bounds[i + 1]))
            for i in range(n_blocks)
            if bounds[i + 1] > bounds[i]
        ]

        partials = self.pool.starmap_shared(
            _run_portfolio_block, kernel,
            [(b.trials, b.event_ids, b.n_trials) for b in blocks],
        )
        final = np.concatenate(partials, axis=1)
        ylt_by_layer = {
            lid: YltTable(final[row]) for row, lid in enumerate(kernel.layer_ids)
        }

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            seconds=time.perf_counter() - t0,
            details={"n_workers": n_workers, "n_blocks": len(blocks),
                     "fused_layers": kernel.n_layers},
        )
