"""Trial-block multiprocess engine.

The YET decomposes perfectly by trial (no occurrence crosses a trial
boundary), so the analysis parallelises as: split the trial range into
contiguous blocks, run the **fused portfolio sweep** per block, and
concatenate the per-block ``(L, trials)`` slices.  Aggregate terms are
block-local because each trial lives in exactly one block.

Payload transport is the zero-copy shared-memory data plane
(:mod:`repro.hpc.shm`) wherever the host supports it: the stacked
:class:`~repro.core.kernels.PortfolioKernel` and the YET columns are
placed in shared segments once per (kernel, trial set) and workers
receive ~1 KB of handles through the pool initializer, attaching the
payload as read-only views on first touch.  Tasks then carry only
``(row_start, row_stop, trial_start, trial_stop)`` index tuples.  Repeat
runs with an unchanged kernel and YET ship *nothing* — not even on
executor cycling or broken-pool recovery, which re-send handles alone.
Where shared memory is unavailable (``transport="pickle"``, or hosts
without it) the engine falls back to the original pickle ship — the
kernel through the initializer, renumbered YET slices with each task —
with bit-identical results.  On single-core hosts the pool degrades to
serial execution, also with identical results.

The pool is constructed lazily on first use;
:meth:`MulticoreEngine.close` (or ``with`` support) is the shutdown path
and also frees the engine's shared-memory arena.

Failure semantics: blocks execute under the supervised
:class:`~repro.hpc.pool.WorkPool` contract — lost or timed-out blocks
are resubmitted idempotently (pure functions of their index tuples, so
re-execution cannot change answers) and terminal failures raise a typed
:class:`~repro.errors.ExecutionError`.  Once the pool degrades
(``pool.health.degraded``) the engine sweeps inline and serial with
``details["degraded"] = True`` until :meth:`WorkPool.reset_health`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.kernels import PortfolioKernel
from repro.core.portfolio import Portfolio
from repro.core.tables import YetTable, YltTable
from repro.errors import EngineError
from repro.hpc import shm
from repro.hpc.pool import WorkPool

__all__ = ["MulticoreEngine"]


def _run_portfolio_block(kernel: PortfolioKernel, trials_block, events_block,
                         n_trials_block) -> np.ndarray:
    """Worker: fused sweep over one renumbered trial block (picklable)."""
    annual = kernel.sweep(trials_block, events_block, n_trials_block)
    return kernel.apply_aggregate(annual)


def _run_block_shared(shared, r0: int, r1: int, t0: int, t1: int) -> np.ndarray:
    """Worker: fused sweep over YET rows ``[r0, r1)`` covering trials
    ``[t0, t1)``, read from the shared-memory plane (picklable task)."""
    kernel, yet = shared
    annual = kernel.sweep(yet.trials[r0:r1] - t0, yet.event_ids[r0:r1], t1 - t0)
    return kernel.apply_aggregate(annual)


class _ShmRun(shm.HandleShipment):
    """Handle-backed shipment of one (kernel handles, YET handles) pair;
    workers attach and rebuild both once, on first touch."""

    __slots__ = ()

    def _materialise(self, handles):
        kernel_handles, yet_handles = handles
        return (PortfolioKernel.from_handles(kernel_handles),
                YetTable.from_handles(yet_handles))


class MulticoreEngine(Engine):
    """Process-pool aggregate analysis over contiguous trial blocks.

    Parameters
    ----------
    n_workers:
        Worker processes; ``None`` means the host's parallelism.
    dense_max_entries:
        Dense-lookup threshold forwarded to kernel construction.
    transport:
        ``"auto"`` (shared memory when the host supports it, else
        pickle), ``"shm"`` (require the shared-memory plane), or
        ``"pickle"`` (force the legacy ship — the E15 bench baseline).
    """

    name = "multicore"

    def __init__(self, n_workers: int | None = None,
                 dense_max_entries: int = 4_000_000,
                 transport: str = "auto") -> None:
        shm.validate_transport(transport, EngineError)
        self.n_workers = n_workers
        self.dense_max_entries = dense_max_entries
        self.transport = transport
        self._pool: WorkPool | None = None
        self._arena: shm.SharedArena | None = None
        #: Last staged (kernel, yet fingerprint, shipment): repeat runs
        #: with the same payload reuse it, shipping zero bytes.
        self._staged: tuple | None = None

    # -- pool lifecycle ----------------------------------------------------

    @property
    def pool(self) -> WorkPool:
        """The work pool, constructed lazily on first access."""
        if self._pool is None:
            self._pool = WorkPool(self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool and free shared segments
        (idempotent; engine stays usable)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._staged = None

    def __enter__(self) -> "MulticoreEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the shared-memory staging -----------------------------------------

    def _stage(self, kernel: PortfolioKernel, yet: YetTable) -> _ShmRun:
        """Shared-memory staging of (kernel, yet), reused while unchanged.

        Keyed by kernel identity (the portfolio kernel cache makes that
        stable) and YET content fingerprint, so a re-simulated but equal
        trial set does not force a re-placement — and the pool, seeing
        the same shipment object, re-ships nothing at all.
        """
        fp = yet.fingerprint()
        if self._staged is not None:
            staged_kernel, staged_fp, shipment = self._staged
            if staged_kernel is kernel and staged_fp == fp:
                return shipment
        if self._arena is not None:
            self._arena.close()
        self._arena = shm.SharedArena()
        shipment = _ShmRun(
            (kernel.export_handles(self._arena), yet.to_shared(self._arena)),
            local=(kernel, yet),
        )
        self._staged = (kernel, fp, shipment)
        return shipment

    # -- run ---------------------------------------------------------------

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        if emit_yelt:
            raise EngineError(
                "multicore engine does not emit YELTs; use the vectorized "
                "engine for event-granularity output"
            )
        t0 = time.perf_counter()

        kernel = portfolio.kernel(dense_max_entries=self.dense_max_entries)
        n_workers = self.pool.n_workers
        n_trials = yet.n_trials
        n_blocks = min(n_workers, n_trials)
        bounds = np.linspace(0, n_trials, n_blocks + 1).astype(int)
        spans = [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(n_blocks)
            if bounds[i + 1] > bounds[i]
        ]
        if self.pool.health.degraded:
            # Graceful degradation: the pool has terminally failed too
            # many consecutive times (see WorkPool's failure semantics),
            # so the sweep runs serial on the calling thread — through
            # the SAME trial-block decomposition the workers would have
            # executed (a whole-YET sweep can differ by ulps from the
            # blockwise one), keeping answers bit-identical — instead
            # of betting on dead workers.
            self.pool.health.degraded_calls += 1
            offsets = yet.trial_offsets
            final = np.concatenate(
                [_run_block_shared((kernel, yet), int(offsets[b0]),
                                   int(offsets[b1]), b0, b1)
                 for b0, b1 in spans], axis=1)
            ylt_by_layer = {
                lid: YltTable(final[row])
                for row, lid in enumerate(kernel.layer_ids)
            }
            return EngineResult(
                engine=self.name,
                ylt_by_layer=ylt_by_layer,
                portfolio_ylt=YltTable.sum(list(ylt_by_layer.values())),
                seconds=time.perf_counter() - t0,
                details={"n_workers": 1, "n_blocks": len(spans),
                         "fused_layers": kernel.n_layers,
                         "transport": "inline", "degraded": True},
            )

        use_shm = n_workers > 1 and shm.resolve_transport(self.transport,
                                                          EngineError)
        if use_shm:
            shipment = self._stage(kernel, yet)
            offsets = yet.trial_offsets
            partials = self.pool.starmap_shared(
                _run_block_shared, shipment,
                [(int(offsets[b0]), int(offsets[b1]), b0, b1)
                 for b0, b1 in spans],
            )
        else:
            blocks = [yet.slice_trials(b0, b1) for b0, b1 in spans]
            partials = self.pool.starmap_shared(
                _run_portfolio_block, kernel,
                [(b.trials, b.event_ids, b.n_trials) for b in blocks],
            )
        final = np.concatenate(partials, axis=1)
        ylt_by_layer = {
            lid: YltTable(final[row]) for row, lid in enumerate(kernel.layer_ids)
        }

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            seconds=time.perf_counter() - t0,
            details={"n_workers": n_workers, "n_blocks": len(spans),
                     "fused_layers": kernel.n_layers,
                     "transport": "shm" if use_shm else "pickle",
                     "degraded": False},
        )
