"""The declarative engine registry.

Engines used to be registered as bare ``{name: constructor}`` pairs,
which told callers *how to build* an engine but nothing about what it
could do — whether it parallelises, rides the shared-memory data plane,
can emit YELTs, or what it costs to run.  Every caller that wanted to
*choose* an engine (the session planner, ``engine="auto"``) would have
had to hard-code that knowledge.

:class:`EngineSpec` makes the registry declarative: one frozen record
per engine carrying the constructor **and** its capability surface and
cost-model hooks.  The planner reads the hooks
(:meth:`EngineSpec.stage_spec` builds the
:class:`~repro.hpc.cost_model.StageSpec` the HPC cost model prices),
the session reads the capabilities (``stateful`` engines are cached and
closed with the session; ``supports_emit_yelt`` gates event-granularity
requests), and :func:`get_engine` keeps the classic constructor
behaviour for existing callers.

Unknown names fail *here*, at the registry boundary, with the available
list — not deep inside a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import EngineError
from repro.hpc.cost_model import StageSpec, transfer_stage

__all__ = [
    "EngineSpec",
    "register_engine",
    "engine_spec",
    "auto_candidates",
    "available_engines",
    "get_engine",
]


@dataclass(frozen=True)
class EngineSpec:
    """Capability record for one registered engine.

    Attributes
    ----------
    name:
        Registry name (``"vectorized"``, ``"multicore"``...).
    factory:
        Constructor; ``factory(**kwargs)`` must return an
        :class:`~repro.core.engines.base.Engine`.
    summary:
        One-line description of the execution substrate.
    parallelism:
        Substrate class: ``"serial"``, ``"vector"``, ``"process-pool"``,
        ``"simulated-device"``, ``"simulated-mapreduce"``, or
        ``"simulated-cluster"``.  Only ``"process-pool"`` engines scale
        with real host cores; ``simulated-*`` substrates run at their
        declared ``fixed_procs`` regardless of the host and pay their
        payload transfer on every run.
    stateful:
        The engine holds resources (worker pools, shared-memory arenas)
        and exposes ``close()``; sessions cache stateful engines and
        tear them down exactly once.
    supports_emit_yelt:
        Whether ``run(..., emit_yelt=True)`` is accepted.
    shm_transport:
        The engine can stage payloads through the zero-copy
        shared-memory data plane (:mod:`repro.hpc.shm`).
    auto_candidate:
        The planner may choose this engine for ``engine="auto"``.
    lane_throughput:
        Cost-model seed: layer-occurrence lanes per second per
        processor, before any measured calibration replaces it.
    parallel_fraction / comm_overhead_per_proc_s:
        Amdahl fraction and per-processor coordination cost forwarded to
        the :class:`~repro.hpc.cost_model.StageSpec` the planner prices.
    startup_seconds:
        One-off setup cost (worker spawn, payload staging) the planner
        charges when the engine's substrate is cold.  For ``simulated-*``
        substrates it is charged on *every* run, on top of the payload
        transfer below — there is no warm credit for a bus.
    payload_row_bytes / transfer_bandwidth_bps:
        Per-occurrence payload size and link bandwidth (bytes/s) of the
        shipment a run must pay before compute starts (H2D upload for
        the device, scatter for the cluster).  Zero means no transfer
        term; :meth:`transfer_seconds` prices the pair through the cost
        model's :func:`~repro.hpc.cost_model.transfer_stage`.
    fixed_procs:
        Processor count the substrate *is* (device SMs abstracted as one
        throughput, cluster node count), independent of host cores.
        Zero defers to the ``parallelism``-based rule in
        :meth:`procs_for`.
    """

    name: str
    factory: Callable = field(repr=False)
    summary: str = ""
    parallelism: str = "serial"
    stateful: bool = False
    supports_emit_yelt: bool = False
    shm_transport: bool = False
    auto_candidate: bool = False
    lane_throughput: float = 1e7
    parallel_fraction: float = 1.0
    comm_overhead_per_proc_s: float = 0.0
    startup_seconds: float = 0.0
    payload_row_bytes: float = 0.0
    transfer_bandwidth_bps: float = 0.0
    fixed_procs: int = 0

    def __post_init__(self):
        if not self.name:
            raise EngineError("engine spec needs a non-empty name")
        if not callable(self.factory):
            raise EngineError(f"engine {self.name!r}: factory must be callable")
        if self.lane_throughput <= 0:
            raise EngineError(f"engine {self.name!r}: lane_throughput must be positive")

    # -- cost-model hooks ---------------------------------------------------

    def stage_spec(self, work_items: float,
                   throughput_per_proc: float | None = None) -> StageSpec:
        """The cost-model stage pricing ``work_items`` lanes on this engine.

        ``throughput_per_proc`` overrides the declared seed — the planner
        passes its EWMA-calibrated rate once real runs have been observed.
        """
        return StageSpec(
            name=self.name,
            work_items=float(work_items),
            throughput_per_proc=float(throughput_per_proc
                                      if throughput_per_proc is not None
                                      else self.lane_throughput),
            parallel_fraction=self.parallel_fraction,
            comm_overhead_per_proc_s=self.comm_overhead_per_proc_s,
        )

    def transfer_seconds(self, n_occurrences: float) -> float:
        """Modelled per-run payload shipment time for ``n_occurrences`` rows.

        Zero when the engine declares no transfer term (in-process
        substrates touch host memory directly).
        """
        if self.payload_row_bytes <= 0 or self.transfer_bandwidth_bps <= 0:
            return 0.0
        return transfer_stage(
            f"{self.name}-transfer",
            float(max(n_occurrences, 0.0)) * self.payload_row_bytes,
            self.transfer_bandwidth_bps,
        ).runtime_seconds(1)

    def procs_for(self, n_workers: int) -> int:
        """Processors the cost model should charge on an ``n_workers`` host."""
        if self.fixed_procs:
            return self.fixed_procs
        return max(1, n_workers) if self.parallelism == "process-pool" else 1


_SPECS: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
    """Add a spec to the registry (idempotent only with ``replace``)."""
    if spec.name in _SPECS and not replace:
        raise EngineError(f"engine {spec.name!r} is already registered")
    _SPECS[spec.name] = spec
    return spec


def engine_spec(name: str) -> EngineSpec:
    """The spec registered under ``name``.

    This is the boundary where unknown engine names surface: the error
    carries the available list instead of failing deep inside a run.
    """
    try:
        return _SPECS[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None


def auto_candidates() -> list[EngineSpec]:
    """Specs the planner may resolve ``engine="auto"`` to."""
    return [s for s in _SPECS.values() if s.auto_candidate]


def available_engines() -> list[str]:
    """Names accepted by :func:`get_engine`."""
    return sorted(_SPECS)


def get_engine(name: str, **kwargs):
    """Construct an engine by registry name (the classic entry point)."""
    return engine_spec(name).factory(**kwargs)
