"""Engine interface and result contract."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.portfolio import Portfolio
from repro.core.tables import YeltTable, YetTable, YltTable
from repro.errors import EngineError

__all__ = ["EngineResult", "Engine"]


@dataclass
class EngineResult:
    """Output of one aggregate-analysis run.

    Attributes
    ----------
    engine:
        Name of the engine that produced the result.
    ylt_by_layer:
        One dense YLT per layer id (after all financial terms).
    portfolio_ylt:
        Trial-aligned sum of the per-layer YLTs.
    yelt_by_layer:
        Optional per-layer YELTs (the event-granularity intermediate,
        *after* occurrence terms, *before* aggregate terms); emitted only
        on request because it is ~10³× larger than the YLT (§II).
    seconds:
        Wall-clock of the run's compute phase.
    details:
        Engine-specific diagnostics (chunk counts, transfer bytes,
        communication time, task timings...).
    """

    engine: str
    ylt_by_layer: dict[int, YltTable]
    portfolio_ylt: YltTable
    yelt_by_layer: dict[int, YeltTable] | None = None
    seconds: float = 0.0
    details: dict = field(default_factory=dict)


class Engine(abc.ABC):
    """Abstract aggregate-analysis engine."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        """Execute the analysis; see :class:`EngineResult`."""

    def _validate(self, portfolio: Portfolio, yet: YetTable) -> None:
        if not isinstance(portfolio, Portfolio):
            raise EngineError(f"expected Portfolio, got {type(portfolio).__name__}")
        if not isinstance(yet, YetTable):
            raise EngineError(f"expected YetTable, got {type(yet).__name__}")
