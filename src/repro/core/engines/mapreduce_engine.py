"""Aggregate analysis as a MapReduce job over the simulated DFS.

The paper's second strategy: "relying on MapReduce or Hadoop style
computations on the cloud" over "large distributed file space" (§II).
The YET is written to the DFS as block-aligned record batches; each block
becomes a map task that applies lookup + occurrence terms and emits
per-trial partial sums; a combiner collapses map-local partials; reducers
(partitioned by trial) sum and apply aggregate terms.  Output is the
same YLT every other engine produces — the job's task timings also feed
E7's simulated worker-count scaling.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.portfolio import Portfolio
from repro.core.tables import YetTable, YltTable
from repro.data.dfs import SimDfs
from repro.data.mapreduce import JobResult, MapReduceJob, MapReduceRuntime
from repro.errors import EngineError

__all__ = ["MapReduceEngine"]


class MapReduceEngine(Engine):
    """Hadoop-style aggregate analysis on :class:`SimDfs`."""

    name = "mapreduce"

    def __init__(self, dfs: SimDfs | None = None, n_splits: int = 8,
                 n_reducers: int = 4, dense_max_entries: int = 4_000_000) -> None:
        if n_splits <= 0:
            raise EngineError(f"n_splits must be positive, got {n_splits}")
        self.dfs = dfs or SimDfs(n_datanodes=max(4, n_splits // 2))
        self.n_splits = n_splits
        self.n_reducers = n_reducers
        self.dense_max_entries = dense_max_entries
        #: Per-layer job results from the most recent run (for E7 scaling).
        self.last_jobs: dict[int, JobResult] = {}

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        if emit_yelt:
            raise EngineError(
                "mapreduce engine does not emit YELTs; use the vectorized "
                "engine for event-granularity output"
            )
        t0 = time.perf_counter()

        input_path = f"yet-{id(yet)}-{yet.n_trials}"
        if not self.dfs.exists(input_path):
            rows_per_block = max(1, -(-yet.n_occurrences // self.n_splits))
            self.dfs.write_table(input_path, yet.table, rows_per_block)

        n_trials = yet.n_trials
        runtime = MapReduceRuntime(self.dfs)
        ylt_by_layer: dict[int, YltTable] = {}
        self.last_jobs = {}

        for layer in portfolio:
            lookup = layer.lookup(dense_max_entries=self.dense_max_entries)
            terms = layer.terms

            def mapper(split_index, block, _lookup=lookup, _terms=terms):
                retained = _terms.apply_occurrence(_lookup(block["event_id"]))
                trials = block["trial"]
                uniq = np.unique(trials)
                partial = np.bincount(
                    trials - trials.min() if trials.size else trials,
                    weights=retained,
                    minlength=(int(trials.max() - trials.min()) + 1) if trials.size else 0,
                )
                base = int(trials.min()) if trials.size else 0
                for t in uniq:
                    yield int(t), float(partial[int(t) - base])

            def combiner(key, values):
                yield key, float(sum(values))

            def reducer(key, values, _terms=terms):
                annual = float(sum(values))
                yield key, _terms.aggregate_scalar(annual)

            job = MapReduceJob(
                mapper=mapper,
                reducer=reducer,
                combiner=combiner,
                n_reducers=self.n_reducers,
            )
            result = runtime.run(job, input_path)
            self.last_jobs[layer.layer_id] = result

            losses = np.zeros(n_trials, dtype=np.float64)
            for trial, loss in result.pairs:
                losses[int(trial)] = loss
            ylt_by_layer[layer.layer_id] = YltTable(losses)

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        counters = {
            lid: dict(job.counters) for lid, job in self.last_jobs.items()
        }
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            seconds=time.perf_counter() - t0,
            details={"n_splits": self.n_splits, "counters": counters},
        )
