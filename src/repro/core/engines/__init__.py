"""The aggregate-analysis engine family.

Six engines execute the identical analysis (same YET, same portfolio,
same financial arithmetic) on different execution substrates:

========== ===============================================================
name        substrate
========== ===============================================================
sequential  pure-Python scalar loop — the paper's "sequential counterpart"
            and the numerical oracle every other engine is tested against
vectorized  whole-array NumPy over the fused portfolio kernel — the
            data-parallel, global-memory-only model
device      :class:`~repro.hpc.device.SimulatedGpu` with chunking and
            constant-memory lookup placement — the paper's optimised GPU;
            each YET chunk is uploaded once and consumed by every layer
multicore   trial-block decomposition over a (lazily spawned) process
            pool; the stacked kernel ships to each worker once per run
mapreduce   a MapReduce job over the simulated DFS (large file space path)
distributed trial-scatter / lookup-broadcast / YLT-gather over SimCluster
========== ===============================================================

The portfolio hot path is the shared
:class:`~repro.core.kernels.PortfolioKernel`: per-layer lookups are
stacked once per (portfolio, ``dense_max_entries``) — dense layers as
one ``(D, width)`` matrix, sparse layers as a unified CSR structure,
terms as ``(L,)`` vectors — and the YET is swept in cache-sized
occurrence blocks with one shared trial-boundary scan and an
``np.add.reduceat`` folding all layers into the whole ``(L, n_trials)``
annual matrix (unsorted streams get a block-local stable sort first).
The vectorized, multicore, and
out-of-core engines are thin drivers of that sweep (whole-array,
per-trial-block, and per-stored-chunk respectively); the device engine
mirrors the same fusion on the simulated GPU by streaming each YET chunk
past all layers while it is resident.  The sequential engine
deliberately stays scalar: it is the baseline the paper's speedups are
measured against.

Numerical equivalence across all six is a tested invariant; their
relative wall-clock behaviour is experiments E3-E5, E7, and E13 (the
fused-vs-per-layer sweep).
"""

from repro.core.engines.base import Engine, EngineResult
from repro.core.engines.sequential import SequentialEngine
from repro.core.engines.vectorized import VectorizedEngine
from repro.core.engines.device import DeviceEngine
from repro.core.engines.multicore import MulticoreEngine
from repro.core.engines.mapreduce_engine import MapReduceEngine
from repro.core.engines.distributed import DistributedEngine
from repro.errors import EngineError

__all__ = [
    "Engine",
    "EngineResult",
    "SequentialEngine",
    "VectorizedEngine",
    "DeviceEngine",
    "MulticoreEngine",
    "MapReduceEngine",
    "DistributedEngine",
    "available_engines",
    "get_engine",
]

_REGISTRY = {
    "sequential": SequentialEngine,
    "vectorized": VectorizedEngine,
    "device": DeviceEngine,
    "multicore": MulticoreEngine,
    "mapreduce": MapReduceEngine,
    "distributed": DistributedEngine,
}


def available_engines() -> list[str]:
    """Names accepted by :func:`get_engine`."""
    return sorted(_REGISTRY)


def get_engine(name: str, **kwargs) -> Engine:
    """Construct an engine by registry name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None
    return cls(**kwargs)
