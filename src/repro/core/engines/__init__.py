"""The aggregate-analysis engine family.

Six engines execute the identical analysis (same YET, same portfolio,
same financial arithmetic) on different execution substrates:

========== ===============================================================
name        substrate
========== ===============================================================
sequential  pure-Python scalar loop — the paper's "sequential counterpart"
vectorized  whole-array NumPy — data-parallel, global-memory-only model
device      :class:`~repro.hpc.device.SimulatedGpu` with chunking and
            constant-memory lookup placement — the paper's optimised GPU
multicore   trial-block decomposition over a process pool
mapreduce   a MapReduce job over the simulated DFS (large file space path)
distributed trial-scatter / lookup-broadcast / YLT-gather over SimCluster
========== ===============================================================

Numerical equivalence across all six is a tested invariant; their
relative wall-clock behaviour is experiments E3-E5 and E7.
"""

from repro.core.engines.base import Engine, EngineResult
from repro.core.engines.sequential import SequentialEngine
from repro.core.engines.vectorized import VectorizedEngine
from repro.core.engines.device import DeviceEngine
from repro.core.engines.multicore import MulticoreEngine
from repro.core.engines.mapreduce_engine import MapReduceEngine
from repro.core.engines.distributed import DistributedEngine
from repro.errors import EngineError

__all__ = [
    "Engine",
    "EngineResult",
    "SequentialEngine",
    "VectorizedEngine",
    "DeviceEngine",
    "MulticoreEngine",
    "MapReduceEngine",
    "DistributedEngine",
    "available_engines",
    "get_engine",
]

_REGISTRY = {
    "sequential": SequentialEngine,
    "vectorized": VectorizedEngine,
    "device": DeviceEngine,
    "multicore": MulticoreEngine,
    "mapreduce": MapReduceEngine,
    "distributed": DistributedEngine,
}


def available_engines() -> list[str]:
    """Names accepted by :func:`get_engine`."""
    return sorted(_REGISTRY)


def get_engine(name: str, **kwargs) -> Engine:
    """Construct an engine by registry name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None
    return cls(**kwargs)
