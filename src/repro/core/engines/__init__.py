"""The aggregate-analysis engine family.

Six engines execute the identical analysis (same YET, same portfolio,
same financial arithmetic) on different execution substrates:

========== ===============================================================
name        substrate
========== ===============================================================
sequential  pure-Python scalar loop — the paper's "sequential counterpart"
            and the numerical oracle every other engine is tested against
vectorized  whole-array NumPy over the fused portfolio kernel — the
            data-parallel, global-memory-only model
device      :class:`~repro.hpc.device.SimulatedGpu` with chunking and
            constant-memory lookup placement — the paper's optimised GPU;
            each YET chunk is uploaded once and consumed by every layer
multicore   trial-block decomposition over a (lazily spawned) process
            pool; the stacked kernel ships to each worker once per run
mapreduce   a MapReduce job over the simulated DFS (large file space path)
distributed trial-scatter / lookup-broadcast / YLT-gather over SimCluster
========== ===============================================================

The portfolio hot path is the shared
:class:`~repro.core.kernels.PortfolioKernel`: per-layer lookups are
stacked once per (portfolio, ``dense_max_entries``) — dense layers as
one ``(D, width)`` matrix, sparse layers as a unified CSR structure,
terms as ``(L,)`` vectors — and the YET is swept in cache-sized
occurrence blocks with one shared trial-boundary scan and an
``np.add.reduceat`` folding all layers into the whole ``(L, n_trials)``
annual matrix (unsorted streams get a block-local stable sort first).
Same-book layer groups whose occurrence terms reduce to
``clip(g, lo, hi)`` additionally price **sublinearly in lanes** through
the kernel's sorted-threshold histogram path (see the group-detection
rule and exact-fallback conditions in :mod:`repro.core.kernels`); rows
that don't factor fall back to the exact ``(L, block)`` lane sweep.
The vectorized, multicore, and
out-of-core engines are thin drivers of that sweep (whole-array,
per-trial-block, and per-stored-chunk respectively); the device engine
mirrors the same fusion on the simulated GPU — per resident batch it
ships ONE stacked ``dense_stack`` upload (row offsets resolved
in-kernel) plus one CSR pair, packs the constant bank greedily by
hit-frequency × size, and launches one stacked kernel per YET chunk.
The sequential engine
deliberately stays scalar: it is the baseline the paper's speedups are
measured against.

Numerical equivalence across all six is a tested invariant; their
relative wall-clock behaviour is experiments E3-E5, E7, E13 (the
fused-vs-per-layer sweep), and E18 (the sublinear tail-group path).

``engine="auto"`` resolution: the planner prices the vectorized,
multicore, device, and distributed specs below through the HPC cost
model.  The simulated substrates carry deliberately conservative seed
rates (:mod:`repro.hpc.cost_model` named constants) plus a per-run
payload-transfer charge, so auto only routes real work onto them after
a measured run has calibrated them faster than the host engines.
"""

from repro.core.engines.base import Engine, EngineResult
from repro.core.engines.registry import (
    EngineSpec,
    auto_candidates,
    available_engines,
    engine_spec,
    get_engine,
    register_engine,
)
from repro.core.engines.sequential import SequentialEngine
from repro.core.engines.vectorized import VectorizedEngine
from repro.core.engines.device import DeviceEngine
from repro.core.engines.multicore import MulticoreEngine
from repro.core.engines.mapreduce_engine import MapReduceEngine
from repro.core.engines.distributed import DistributedEngine
from repro.errors import EngineError
from repro.hpc.cost_model import (
    CLUSTER_LINK_BYTES_PER_S,
    DEVICE_H2D_BYTES_PER_S,
    DEVICE_SEED_LANES_PER_S,
    DISTRIBUTED_SEED_LANES_PER_S,
)

__all__ = [
    "Engine",
    "EngineResult",
    "EngineSpec",
    "SequentialEngine",
    "VectorizedEngine",
    "DeviceEngine",
    "MulticoreEngine",
    "MapReduceEngine",
    "DistributedEngine",
    "auto_candidates",
    "available_engines",
    "engine_spec",
    "get_engine",
    "register_engine",
]

# The declarative registry (see :mod:`repro.core.engines.registry`):
# one capability record per engine, read by ``get_engine`` (factory),
# the session (stateful / emit_yelt gates), and the planner (cost-model
# hooks that resolve ``engine="auto"``).  Throughput seeds are
# order-of-magnitude priors; the planner replaces them with measured
# rates after the first observed run.
register_engine(EngineSpec(
    name="sequential", factory=SequentialEngine,
    summary="pure-Python scalar loop — the paper's sequential counterpart "
            "and the numerical oracle",
    parallelism="serial", supports_emit_yelt=True,
    lane_throughput=3e5,
))
register_engine(EngineSpec(
    name="vectorized", factory=VectorizedEngine,
    summary="whole-array NumPy over the fused portfolio kernel",
    parallelism="vector", supports_emit_yelt=True, auto_candidate=True,
    lane_throughput=2.5e7,
))
register_engine(EngineSpec(
    name="device", factory=DeviceEngine,
    summary="simulated GPU: stacked-kernel batches, greedy constant packing",
    parallelism="simulated-device", supports_emit_yelt=True,
    auto_candidate=True,
    # Conservative seed (below the vectorized host rate): auto picks the
    # device only after a measured run calibrates it faster.  Every run
    # pays the YET's H2D shipment — a warm session never waives a bus.
    lane_throughput=DEVICE_SEED_LANES_PER_S,
    startup_seconds=0.02,
    payload_row_bytes=16.0, transfer_bandwidth_bps=DEVICE_H2D_BYTES_PER_S,
))
register_engine(EngineSpec(
    name="multicore", factory=MulticoreEngine,
    summary="trial-block process pool over the zero-copy shm data plane",
    parallelism="process-pool", stateful=True, shm_transport=True,
    auto_candidate=True,
    lane_throughput=2.2e7, parallel_fraction=0.92,
    comm_overhead_per_proc_s=0.01, startup_seconds=0.35,
))
register_engine(EngineSpec(
    name="mapreduce", factory=MapReduceEngine,
    summary="MapReduce job over the simulated DFS",
    parallelism="simulated-mapreduce",
    lane_throughput=2e6,
))
register_engine(EngineSpec(
    name="distributed", factory=DistributedEngine,
    summary="trial-scatter / lookup-broadcast / YLT-gather over SimCluster",
    parallelism="simulated-cluster",
    auto_candidate=True,
    # Priced at the engine's default 8-node cluster; the scatter crosses
    # the interconnect every run, charged like the device's H2D upload.
    lane_throughput=DISTRIBUTED_SEED_LANES_PER_S,
    parallel_fraction=0.9, comm_overhead_per_proc_s=0.02,
    startup_seconds=0.15, fixed_procs=8,
    payload_row_bytes=16.0, transfer_bandwidth_bps=CLUSTER_LINK_BYTES_PER_S,
))
