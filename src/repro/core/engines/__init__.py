"""The aggregate-analysis engine family.

Six engines execute the identical analysis (same YET, same portfolio,
same financial arithmetic) on different execution substrates:

========== ===============================================================
name        substrate
========== ===============================================================
sequential  pure-Python scalar loop — the paper's "sequential counterpart"
            and the numerical oracle every other engine is tested against
vectorized  whole-array NumPy over the fused portfolio kernel — the
            data-parallel, global-memory-only model
device      :class:`~repro.hpc.device.SimulatedGpu` with chunking and
            constant-memory lookup placement — the paper's optimised GPU;
            each YET chunk is uploaded once and consumed by every layer
multicore   trial-block decomposition over a (lazily spawned) process
            pool; the stacked kernel ships to each worker once per run
mapreduce   a MapReduce job over the simulated DFS (large file space path)
distributed trial-scatter / lookup-broadcast / YLT-gather over SimCluster
========== ===============================================================

The portfolio hot path is the shared
:class:`~repro.core.kernels.PortfolioKernel`: per-layer lookups are
stacked once per (portfolio, ``dense_max_entries``) — dense layers as
one ``(D, width)`` matrix, sparse layers as a unified CSR structure,
terms as ``(L,)`` vectors — and the YET is swept in cache-sized
occurrence blocks with one shared trial-boundary scan and an
``np.add.reduceat`` folding all layers into the whole ``(L, n_trials)``
annual matrix (unsorted streams get a block-local stable sort first).
The vectorized, multicore, and
out-of-core engines are thin drivers of that sweep (whole-array,
per-trial-block, and per-stored-chunk respectively); the device engine
mirrors the same fusion on the simulated GPU by streaming each YET chunk
past all layers while it is resident.  The sequential engine
deliberately stays scalar: it is the baseline the paper's speedups are
measured against.

Numerical equivalence across all six is a tested invariant; their
relative wall-clock behaviour is experiments E3-E5, E7, and E13 (the
fused-vs-per-layer sweep).
"""

from repro.core.engines.base import Engine, EngineResult
from repro.core.engines.registry import (
    EngineSpec,
    auto_candidates,
    available_engines,
    engine_spec,
    get_engine,
    register_engine,
)
from repro.core.engines.sequential import SequentialEngine
from repro.core.engines.vectorized import VectorizedEngine
from repro.core.engines.device import DeviceEngine
from repro.core.engines.multicore import MulticoreEngine
from repro.core.engines.mapreduce_engine import MapReduceEngine
from repro.core.engines.distributed import DistributedEngine
from repro.errors import EngineError

__all__ = [
    "Engine",
    "EngineResult",
    "EngineSpec",
    "SequentialEngine",
    "VectorizedEngine",
    "DeviceEngine",
    "MulticoreEngine",
    "MapReduceEngine",
    "DistributedEngine",
    "auto_candidates",
    "available_engines",
    "engine_spec",
    "get_engine",
    "register_engine",
]

# The declarative registry (see :mod:`repro.core.engines.registry`):
# one capability record per engine, read by ``get_engine`` (factory),
# the session (stateful / emit_yelt gates), and the planner (cost-model
# hooks that resolve ``engine="auto"``).  Throughput seeds are
# order-of-magnitude priors; the planner replaces them with measured
# rates after the first observed run.
register_engine(EngineSpec(
    name="sequential", factory=SequentialEngine,
    summary="pure-Python scalar loop — the paper's sequential counterpart "
            "and the numerical oracle",
    parallelism="serial", supports_emit_yelt=True,
    lane_throughput=3e5,
))
register_engine(EngineSpec(
    name="vectorized", factory=VectorizedEngine,
    summary="whole-array NumPy over the fused portfolio kernel",
    parallelism="vector", supports_emit_yelt=True, auto_candidate=True,
    lane_throughput=2.5e7,
))
register_engine(EngineSpec(
    name="device", factory=DeviceEngine,
    summary="simulated GPU with chunking and constant-memory placement",
    parallelism="simulated-device", supports_emit_yelt=True,
    lane_throughput=8e6,
))
register_engine(EngineSpec(
    name="multicore", factory=MulticoreEngine,
    summary="trial-block process pool over the zero-copy shm data plane",
    parallelism="process-pool", stateful=True, shm_transport=True,
    auto_candidate=True,
    lane_throughput=2.2e7, parallel_fraction=0.92,
    comm_overhead_per_proc_s=0.01, startup_seconds=0.35,
))
register_engine(EngineSpec(
    name="mapreduce", factory=MapReduceEngine,
    summary="MapReduce job over the simulated DFS",
    parallelism="simulated-mapreduce",
    lane_throughput=2e6,
))
register_engine(EngineSpec(
    name="distributed", factory=DistributedEngine,
    summary="trial-scatter / lookup-broadcast / YLT-gather over SimCluster",
    parallelism="simulated-cluster",
    lane_throughput=4e6,
))
