"""The sequential scalar engine — the paper's CPU baseline.

The companion study's "15x times faster than the sequential counterpart"
(§II) compares a GPU implementation against a scalar, one-occurrence-at-
a-time loop.  This engine *is* that counterpart, implemented honestly:
Python dict lookups, scalar min/max arithmetic, an explicit loop over
trials and occurrences, no NumPy in the inner loop.  It doubles as the
numerical oracle for every other engine.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.portfolio import Portfolio
from repro.core.tables import YELT_SCHEMA, YeltTable, YetTable, YltTable
from repro.data.columnar import ColumnTable

__all__ = ["SequentialEngine"]


class SequentialEngine(Engine):
    """Scalar reference implementation of aggregate analysis."""

    name = "sequential"

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        t0 = time.perf_counter()

        # Hoist the YET into plain Python structures: the engine under
        # test is the scalar compute loop, and a realistic sequential code
        # would read native rows, not NumPy scalars.
        trials_list = yet.trials.tolist()
        events_list = yet.event_ids.tolist()
        offsets = yet.trial_offsets.tolist()
        n_trials = yet.n_trials

        ylt_by_layer: dict[int, YltTable] = {}
        yelt_by_layer: dict[int, YeltTable] = {} if emit_yelt else None
        occurrences_processed = 0

        for layer in portfolio:
            loss_map = layer.lookup().as_dict()
            terms = layer.terms
            occ_ret = terms.occ_retention
            occ_lim = terms.occ_limit
            annual = [0.0] * n_trials
            yelt_rows: list[tuple[int, int, float]] = [] if emit_yelt else None

            for t in range(n_trials):
                start, stop = offsets[t], offsets[t + 1]
                total = 0.0
                for i in range(start, stop):
                    event_id = events_list[i]
                    loss = loss_map.get(event_id, 0.0)
                    retained = loss - occ_ret
                    if retained < 0.0:
                        retained = 0.0
                    elif retained > occ_lim:
                        retained = occ_lim
                    total += retained
                    if emit_yelt and loss > 0.0:
                        yelt_rows.append((trials_list[i], event_id, retained))
                annual[t] = terms.aggregate_scalar(total)
                occurrences_processed += stop - start

            ylt_by_layer[layer.layer_id] = YltTable(np.array(annual, dtype=np.float64))
            if emit_yelt:
                if yelt_rows:
                    tr, ev, lo = zip(*yelt_rows)
                else:
                    tr, ev, lo = (), (), ()
                table = ColumnTable.from_arrays(
                    YELT_SCHEMA,
                    trial=np.array(tr, dtype=np.int64),
                    event_id=np.array(ev, dtype=np.int64),
                    loss=np.array(lo, dtype=np.float64),
                )
                yelt_by_layer[layer.layer_id] = YeltTable(table, n_trials)

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            yelt_by_layer=yelt_by_layer,
            seconds=time.perf_counter() - t0,
            details={"occurrences_processed": occurrences_processed},
        )
