"""Out-of-core engine: aggregate analysis over a disk-resident YET.

At paper scale the YET does not fit memory; §II's scan-oriented remedy
is to stream it.  This engine reads YET chunks from a
:class:`~repro.data.store.ChunkStore` (one chunk resident at a time) and
runs the fused :class:`~repro.core.kernels.PortfolioKernel` sweep per
chunk — every layer consumes the chunk while it is resident, so the YET
is scanned once total rather than once per layer — accumulating into one
dense ``(L, n_trials)`` annual matrix, which *does* fit memory (the
whole point of the YLT-level representation).  Aggregate terms apply
once at the end.

It is not in the default registry because its input is a stored table
rather than an in-memory :class:`YetTable`; use :meth:`run_from_store`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import EngineResult
from repro.core.portfolio import Portfolio
from repro.core.tables import YltTable
from repro.data.store import ChunkStore
from repro.errors import EngineError

__all__ = ["OutOfCoreEngine"]


class OutOfCoreEngine:
    """Streamed aggregate analysis over a stored YET."""

    name = "outofcore"

    def __init__(self, dense_max_entries: int = 4_000_000) -> None:
        self.dense_max_entries = dense_max_entries

    def run_from_store(
        self,
        portfolio: Portfolio,
        store: ChunkStore,
        table_name: str,
        n_trials: int,
    ) -> EngineResult:
        """Run the analysis reading YET chunks from ``store``.

        The stored table must have the YET schema (``trial``, ``seq``,
        ``event_id``); rows may be split across chunks arbitrarily —
        per-trial accumulation is order-insensitive.
        """
        if n_trials <= 0:
            raise EngineError(f"n_trials must be positive, got {n_trials}")
        t0 = time.perf_counter()

        kernel = portfolio.kernel(dense_max_entries=self.dense_max_entries)
        annual = np.zeros((kernel.n_layers, n_trials), dtype=np.float64)
        chunks_read = 0
        rows_read = 0
        for chunk in store.iter_chunks(table_name):
            if "trial" not in chunk.schema or "event_id" not in chunk.schema:
                raise EngineError(
                    f"stored table {table_name!r} lacks YET columns"
                )
            trials = chunk["trial"]
            events = chunk["event_id"]
            if trials.size and (trials.min() < 0 or trials.max() >= n_trials):
                raise EngineError("stored YET trial indices out of range")
            chunks_read += 1
            rows_read += chunk.n_rows
            kernel.sweep(trials, events, n_trials, out=annual)

        final = kernel.apply_aggregate(annual)
        ylt_by_layer = {
            lid: YltTable(final[row]) for row, lid in enumerate(kernel.layer_ids)
        }
        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            seconds=time.perf_counter() - t0,
            details={"chunks_read": chunks_read, "rows_read": rows_read,
                     "fused_layers": kernel.n_layers},
        )
