"""The vectorised NumPy engine — the data-parallel path.

This is the "GPU with everything in global memory" model of DESIGN.md:
each layer is one fused sweep of whole-array operations — a gather for
the ELT lookup, clipped subtraction for the occurrence terms, a bincount
for the per-trial aggregation, and a second clipped subtraction for the
aggregate terms.  One occurrence is one array lane, exactly as one CUDA
thread handles one occurrence in the companion study.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.portfolio import Portfolio
from repro.core.tables import YELT_SCHEMA, YeltTable, YetTable, YltTable
from repro.data.columnar import ColumnTable

__all__ = ["VectorizedEngine"]


class VectorizedEngine(Engine):
    """Whole-array aggregate analysis."""

    name = "vectorized"

    def __init__(self, dense_max_entries: int = 4_000_000) -> None:
        self.dense_max_entries = dense_max_entries

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        t0 = time.perf_counter()

        trials = yet.trials
        event_ids = yet.event_ids
        n_trials = yet.n_trials

        ylt_by_layer: dict[int, YltTable] = {}
        yelt_by_layer: dict[int, YeltTable] | None = {} if emit_yelt else None

        for layer in portfolio:
            lookup = layer.lookup(dense_max_entries=self.dense_max_entries)
            losses = lookup(event_ids)                      # gather
            retained = layer.terms.apply_occurrence(losses)  # occurrence terms
            annual = np.bincount(trials, weights=retained, minlength=n_trials)
            ylt = YltTable(layer.terms.apply_aggregate(annual))
            ylt_by_layer[layer.layer_id] = ylt
            if emit_yelt:
                # One YELT row per *covered* occurrence (the layer's ELTs
                # price the event), carrying the post-occurrence-terms
                # loss — zero rows are real occurrences below retention.
                covered = losses > 0.0
                table = ColumnTable.from_arrays(
                    YELT_SCHEMA,
                    trial=trials[covered],
                    event_id=event_ids[covered],
                    loss=retained[covered],
                )
                yelt_by_layer[layer.layer_id] = YeltTable(table, n_trials)

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            yelt_by_layer=yelt_by_layer,
            seconds=time.perf_counter() - t0,
            details={"occurrences_processed": event_ids.size * portfolio.n_layers},
        )
