"""The vectorised NumPy engine — the data-parallel path.

This is the "GPU with everything in global memory" model of DESIGN.md,
now executed as **one fused sweep for the whole portfolio**: the shared
:class:`~repro.core.kernels.PortfolioKernel` gathers each occurrence
block once for every layer, broadcasts the occurrence terms over the
``(L, block)`` loss matrix, and reduces all layers through one shared
trial-boundary ``reduceat`` — replacing the former L per-layer passes
over the same YET arrays.  One occurrence is one array lane, exactly as
one CUDA thread handles one occurrence in the companion study.
"""

from __future__ import annotations

import time

from repro.core.engines.base import Engine, EngineResult
from repro.core.portfolio import Portfolio
from repro.core.tables import YELT_SCHEMA, YeltTable, YetTable, YltTable
from repro.data.columnar import ColumnTable

__all__ = ["VectorizedEngine"]


class VectorizedEngine(Engine):
    """Whole-array aggregate analysis over the fused portfolio kernel."""

    name = "vectorized"

    def __init__(self, dense_max_entries: int = 4_000_000,
                 block_occurrences: int | None = None,
                 sublinear_tail: bool = True) -> None:
        self.dense_max_entries = dense_max_entries
        self.block_occurrences = block_occurrences
        # Tail-attaching same-book row groups price through the kernel's
        # sublinear histogram path by default; ``False`` forces the lane
        # path (the A/B knob the e18 bench and parity tests drive).
        self.sublinear_tail = sublinear_tail

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        t0 = time.perf_counter()

        trials = yet.trials
        event_ids = yet.event_ids
        n_trials = yet.n_trials

        kernel = portfolio.kernel(dense_max_entries=self.dense_max_entries)
        final = kernel.run(
            trials, event_ids, n_trials,
            block_occurrences=self.block_occurrences,
            sublinear=self.sublinear_tail,
        )
        ylt_by_layer = {
            lid: YltTable(final[row]) for row, lid in enumerate(kernel.layer_ids)
        }

        yelt_by_layer: dict[int, YeltTable] | None = None
        if emit_yelt:
            yelt_by_layer = {}
            for row, lid in enumerate(kernel.layer_ids):
                # One YELT row per *covered* occurrence (the layer's ELTs
                # price the event), carrying the post-occurrence-terms
                # loss — zero rows are real occurrences below retention.
                losses = kernel.gather_layer(row, event_ids)
                retained = kernel.occurrence_row(row, losses)
                covered = losses > 0.0
                table = ColumnTable.from_arrays(
                    YELT_SCHEMA,
                    trial=trials[covered],
                    event_id=event_ids[covered],
                    loss=retained[covered],
                )
                yelt_by_layer[lid] = YeltTable(table, n_trials)

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            yelt_by_layer=yelt_by_layer,
            seconds=time.perf_counter() - t0,
            details={
                "occurrences_processed": event_ids.size * portfolio.n_layers,
                "fused_layers": kernel.n_layers,
                "block_occurrences": self.block_occurrences
                or kernel.block_occurrences,
                "sublinear_tail": self.sublinear_tail,
                "tail_group_rows": kernel.tail_group_rows,
            },
        )
