"""Distributed-memory engine over the simulated cluster.

The "thousands of processors" path (§II): trial blocks are scattered
across cluster nodes, the layer lookup is broadcast (every node prices
every event), each node computes the YLT slice for its trials, and the
slices are gathered at the root.  Node memory is accounted through each
node's :class:`~repro.hpc.memory.MemorySpace`, and the collectives charge
modelled communication time to the cluster ledger — both appear in the
result's details so E9 can reason about scale.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engines.base import Engine, EngineResult
from repro.core.lookup import LossLookup
from repro.core.portfolio import Portfolio
from repro.core.tables import YetTable, YltTable
from repro.core.terms import LayerTerms
from repro.errors import EngineError
from repro.hpc.cluster import SimCluster
from repro.hpc.collectives import Collectives

__all__ = ["DistributedEngine"]


class DistributedEngine(Engine):
    """Scatter/broadcast/gather aggregate analysis on :class:`SimCluster`."""

    name = "distributed"

    def __init__(self, cluster: SimCluster | None = None, n_nodes: int = 8,
                 dense_max_entries: int = 4_000_000) -> None:
        self.cluster = cluster or SimCluster(n_nodes)
        self.collectives = Collectives(self.cluster)
        self.dense_max_entries = dense_max_entries

    def run(self, portfolio: Portfolio, yet: YetTable, *,
            emit_yelt: bool = False) -> EngineResult:
        self._validate(portfolio, yet)
        if emit_yelt:
            raise EngineError(
                "distributed engine does not emit YELTs; use the vectorized "
                "engine for event-granularity output"
            )
        t0 = time.perf_counter()
        cluster = self.cluster
        co = self.collectives
        n_nodes = cluster.n_nodes
        n_trials = yet.n_trials

        # Static trial-block decomposition (one block per node).
        n_blocks = min(n_nodes, n_trials)
        bounds = np.linspace(0, n_trials, n_blocks + 1).astype(int)
        parts = []
        for rank in range(n_nodes):
            if rank < n_blocks and bounds[rank + 1] > bounds[rank]:
                block = yet.slice_trials(int(bounds[rank]), int(bounds[rank + 1]))
                parts.append({
                    "trials": block.trials,
                    "events": block.event_ids,
                    "n_trials": block.n_trials,
                })
            else:
                parts.append(None)
        co.scatter("yet_block", parts)

        ylt_by_layer: dict[int, YltTable] = {}
        for layer in portfolio:
            lookup = layer.lookup(dense_max_entries=self.dense_max_entries)
            t = layer.terms
            co.bcast("lookup_ids", lookup.ids)
            co.bcast("lookup_vals", lookup.values)
            co.bcast("terms", (t.occ_retention, t.occ_limit, t.agg_retention,
                               t.agg_limit, t.participation))

            def node_work(node, _dense_max=self.dense_max_entries):
                part = node.store["yet_block"]
                if part is None:
                    return None
                # Account the node-resident working set against its memory.
                node.memory.put("yet_trials", part["trials"], copy=False)
                node.memory.put("yet_events", part["events"], copy=False)
                try:
                    local_lookup = LossLookup.from_arrays(
                        node.store["lookup_ids"], node.store["lookup_vals"],
                        dense_max_entries=_dense_max,
                    )
                    terms = LayerTerms(*node.store["terms"])
                    retained = terms.apply_occurrence(local_lookup(part["events"]))
                    annual = np.bincount(
                        part["trials"], weights=retained, minlength=part["n_trials"]
                    )
                    return terms.apply_aggregate(annual)
                finally:
                    node.memory.free("yet_trials")
                    node.memory.free("yet_events")

            results = cluster.run(node_work)
            for rank, res in enumerate(results):
                cluster.node(rank).store["ylt_slice"] = (
                    res if res is not None else np.zeros(0)
                )
            slices = co.gather("ylt_slice")
            ylt_by_layer[layer.layer_id] = YltTable(
                np.concatenate([s for s in slices if s.size])
            )

        portfolio_ylt = YltTable.sum(list(ylt_by_layer.values()))
        return EngineResult(
            engine=self.name,
            ylt_by_layer=ylt_by_layer,
            portfolio_ylt=portfolio_ylt,
            seconds=time.perf_counter() - t0,
            details={
                "n_nodes": n_nodes,
                "comm_seconds_model": cluster.comm_seconds,
                "comm_bytes": cluster.comm_bytes,
            },
        )
