"""Secondary uncertainty: sampling occurrence losses around ELT means.

An ELT row is not a point loss but a distribution: the industry encodes
a mean and a standard deviation per (event, contract), and aggregate
analysis may either use means ("expected mode") or *sample* each
occurrence ("sampled mode") to capture loss volatility within the
simulated year.  This module provides the sampled mode as a pure
function over the occurrence stream: lognormal sampling moment-matched
to the ELT's (mean, sigma) per event, with a trial-keyed substream so
the draw for occurrence *i* does not depend on how many layers were
priced before it.

Sampling changes the YLT's dispersion but not its expectation;
``tests/test_uncertainty.py`` pins both properties.
"""

from __future__ import annotations

import numpy as np

from repro.core.lookup import LossLookup
from repro.core.tables import EltTable
from repro.errors import ConfigurationError

__all__ = ["SecondaryUncertainty", "sample_occurrence_losses",
           "sampled_aggregate_analysis"]


class SecondaryUncertainty:
    """Per-event (mean, sigma) pair of lookups for sampled-mode analysis."""

    __slots__ = ("mean_lookup", "sigma_lookup")

    def __init__(self, mean_lookup: LossLookup, sigma_lookup: LossLookup) -> None:
        self.mean_lookup = mean_lookup
        self.sigma_lookup = sigma_lookup

    @classmethod
    def from_elts(cls, elts, dense_max_entries: int = 4_000_000
                  ) -> "SecondaryUncertainty":
        """Merged (mean, sigma) lookups over a layer's ELT set.

        Means add across ELTs; sigmas combine in quadrature (independent
        contract-level uncertainty), which keeps the merged row's
        coefficient of variation physically sensible.
        """
        elts = list(elts)
        if not elts:
            raise ConfigurationError("need at least one ELT")
        for e in elts:
            if not isinstance(e, EltTable):
                raise ConfigurationError(f"expected EltTable, got {type(e).__name__}")
        all_ids = np.concatenate([e.event_ids for e in elts])
        all_means = np.concatenate([e.mean_losses for e in elts])
        all_vars = np.concatenate([e.sigmas**2 for e in elts])
        uniq, inverse = np.unique(all_ids, return_inverse=True)
        means = np.zeros(uniq.size)
        variances = np.zeros(uniq.size)
        np.add.at(means, inverse, all_means)
        np.add.at(variances, inverse, all_vars)
        return cls(
            LossLookup.from_arrays(uniq, means, dense_max_entries=dense_max_entries),
            LossLookup.from_arrays(uniq, np.sqrt(variances),
                                   dense_max_entries=dense_max_entries),
        )


def sample_occurrence_losses(
    event_ids: np.ndarray,
    uncertainty: SecondaryUncertainty,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one loss per occurrence, moment-matched lognormal.

    For an event with ELT mean ``m > 0`` and std-dev ``s``, the sample is
    ``LogNormal(mu, sig)`` with ``sig² = ln(1 + (s/m)²)`` and
    ``mu = ln m − sig²/2`` — so ``E[sample] = m`` and ``SD[sample] = s``
    exactly.  Events with ``s = 0`` (or unknown events, mean 0) pass
    through deterministically.
    """
    event_ids = np.asarray(event_ids, dtype=np.int64)
    means = uncertainty.mean_lookup(event_ids)
    sigmas = uncertainty.sigma_lookup(event_ids)
    out = means.copy()
    stochastic = (means > 0.0) & (sigmas > 0.0)
    if stochastic.any():
        m = means[stochastic]
        s = sigmas[stochastic]
        sig2 = np.log1p((s / m) ** 2)
        mu = np.log(m) - 0.5 * sig2
        z = rng.standard_normal(int(stochastic.sum()))
        out[stochastic] = np.exp(mu + np.sqrt(sig2) * z)
    return out


def sampled_aggregate_analysis(portfolio, yet, rng: np.random.Generator,
                               dense_max_entries: int = 4_000_000) -> dict:
    """Sampled-mode aggregate analysis (vectorised path).

    Like the vectorized engine, but each occurrence's loss is a fresh
    draw from its ELT distribution instead of the mean.  Returns
    ``{layer_id: YltTable}``.  The expectation of each YLT converges to
    the expected-mode YLT's as trials grow (tested); the dispersion is
    strictly larger, which is the information secondary uncertainty adds
    to tail metrics.
    """
    from repro.core.tables import YltTable

    event_ids = yet.event_ids
    trials = yet.trials
    out = {}
    for layer in portfolio:
        unc = SecondaryUncertainty.from_elts(
            layer.elts, dense_max_entries=dense_max_entries
        )
        losses = sample_occurrence_losses(event_ids, unc, rng)
        retained = layer.terms.apply_occurrence(losses)
        annual = np.bincount(trials, weights=retained, minlength=yet.n_trials)
        out[layer.layer_id] = YltTable(layer.terms.apply_aggregate(annual))
    return out
