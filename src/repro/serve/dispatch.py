"""Batch execution engines for the serving layer.

A dispatcher takes one stacked :class:`~repro.core.kernels.PortfolioKernel`
(the micro-batch) and the shared YET and produces the final
``(L, n_trials)`` YLT matrix — sweep plus aggregate terms.  Two
substrates are provided, mirroring the engine family:

- :class:`InlineDispatcher` — the vectorized path: one fused sweep on
  the calling thread.  Lowest latency; what a single-node service runs.
- :class:`PooledDispatcher` — trial-block decomposition over
  :class:`~repro.hpc.pool.WorkPool` workers, exactly like the multicore
  engine.  The *YET arrays* are the pool's shared object (shipped to
  each worker once, then reused across every batch, because the trial
  set is the stable side of a serving workload); the per-batch kernel
  rides along with each task, which is the small side.

Both close cleanly; :meth:`Dispatcher.warmup` lets the service pay
worker spawn and YET delivery outside any request's SLO window.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.kernels import PortfolioKernel
from repro.core.tables import YetTable
from repro.errors import ConfigurationError
from repro.hpc.pool import WorkPool

__all__ = ["Dispatcher", "InlineDispatcher", "PooledDispatcher",
           "make_dispatcher"]


class Dispatcher(abc.ABC):
    """Executes one batched kernel over the shared YET."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Parallelism the admission controller should model.
    n_procs: int = 1

    @abc.abstractmethod
    def run(self, kernel: PortfolioKernel, yet: YetTable) -> np.ndarray:
        """The final ``(L, n_trials)`` matrix (aggregate terms applied)."""

    def warmup(self, yet: YetTable) -> None:
        """Pay one-off setup costs (worker spawn, YET shipping) now."""

    def close(self) -> None:
        """Release execution resources (idempotent)."""

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InlineDispatcher(Dispatcher):
    """One fused sweep on the calling thread (the vectorized substrate)."""

    name = "inline"

    def __init__(self, block_occurrences: int | None = None) -> None:
        self.block_occurrences = block_occurrences

    def run(self, kernel: PortfolioKernel, yet: YetTable) -> np.ndarray:
        return kernel.run(
            yet.trials, yet.event_ids, yet.n_trials,
            block_occurrences=self.block_occurrences,
        )


def _sweep_rows(shared, kernel: PortfolioKernel, r0: int, r1: int,
                t0: int, t1: int) -> np.ndarray:
    """Worker: fused sweep over YET rows ``[r0, r1)`` covering trials
    ``[t0, t1)``, renumbered block-local (picklable top-level task)."""
    trials, event_ids = shared
    annual = kernel.sweep(trials[r0:r1] - t0, event_ids[r0:r1], t1 - t0)
    return kernel.apply_aggregate(annual)


class PooledDispatcher(Dispatcher):
    """Trial-block decomposition over a persistent worker pool.

    The YET's ``trials``/``event_ids`` arrays are installed as the
    pool's shared object on first use and reused across batches (the
    pool only re-ships when the service swaps the YET), so the steady
    per-batch transfer is one small kernel per task.
    """

    name = "pooled"

    def __init__(self, n_workers: int | None = None) -> None:
        self.pool = WorkPool(n_workers)
        self._shared: tuple[np.ndarray, np.ndarray] | None = None
        self._shared_for: YetTable | None = None

    @property
    def n_procs(self) -> int:  # type: ignore[override]
        return self.pool.n_workers

    def _bundle(self, yet: YetTable) -> tuple[np.ndarray, np.ndarray]:
        """The shared-object bundle, stable per YET instance."""
        if self._shared_for is not yet:
            self._shared = (yet.trials, yet.event_ids)
            self._shared_for = yet
        return self._shared

    def warmup(self, yet: YetTable) -> None:
        self.pool.ensure_started(self._bundle(yet))

    def run(self, kernel: PortfolioKernel, yet: YetTable) -> np.ndarray:
        shared = self._bundle(yet)
        n_trials = yet.n_trials
        offsets = yet.trial_offsets
        n_blocks = min(self.pool.n_workers, n_trials)
        bounds = np.linspace(0, n_trials, n_blocks + 1).astype(int)
        tasks = [
            (kernel, int(offsets[t0]), int(offsets[t1]), t0, t1)
            for t0, t1 in zip(bounds[:-1], bounds[1:])
            if t1 > t0
        ]
        partials = self.pool.starmap_shared(_sweep_rows, shared, tasks)
        return np.concatenate(partials, axis=1)

    def close(self) -> None:
        self.pool.close()
        self._shared = None
        self._shared_for = None


def make_dispatcher(spec) -> Dispatcher:
    """Resolve a dispatcher from a name, engine alias, or instance.

    Accepts ``"inline"``/``"vectorized"`` (inline sweep),
    ``"pooled"``/``"multicore"`` (worker pool), or a ready
    :class:`Dispatcher`.
    """
    if isinstance(spec, Dispatcher):
        return spec
    if spec in ("inline", "vectorized"):
        return InlineDispatcher()
    if spec in ("pooled", "multicore"):
        return PooledDispatcher()
    raise ConfigurationError(
        f"unknown dispatcher {spec!r}; expected 'inline', 'pooled', or a "
        "Dispatcher instance"
    )
