"""Batch execution engines for the serving layer.

A dispatcher takes one stacked :class:`~repro.core.kernels.PortfolioKernel`
(the micro-batch) and the shared YET and produces the final
``(L, n_trials)`` YLT matrix — sweep plus aggregate terms.  Two
substrates are provided, mirroring the engine family:

- :class:`InlineDispatcher` — the vectorized path: one fused sweep on
  the calling thread.  Lowest latency; what a single-node service runs.
- :class:`PooledDispatcher` — trial-block decomposition over
  :class:`~repro.hpc.pool.WorkPool` workers, exactly like the multicore
  engine.  Both sides of its payload ride the zero-copy shared-memory
  data plane (:mod:`repro.hpc.shm`) when the host supports it:

  * the *YET arrays* (the stable side of a serving workload) are placed
    in a shared arena keyed by content fingerprint — workers attach once
    and a re-simulated-but-equal trial set re-ships nothing;
  * the *per-batch kernel* (the churning side) is written into one
    reusable :class:`~repro.hpc.shm.ShmSlab` — steady-state batches cost
    an owner-side ``memcpy`` plus ~1 KB of handles per task, instead of
    pickling the full stacked lookup with every task.

  ``transport="pickle"`` (or a host without shared memory) falls back to
  the original ship — YET through the pool initializer, kernel pickled
  per task — with bit-identical results.

Both close cleanly; :meth:`Dispatcher.warmup` lets the service pay
worker spawn and YET delivery outside any request's SLO window.

Failure semantics
-----------------
Pooled batches run under the supervised :class:`~repro.hpc.pool.WorkPool`
contract (see its module docstring): a worker death or deadline miss
resubmits only the lost trial blocks — idempotent pure functions, so the
final matrix is bit-identical to a fault-free run — and a terminal
failure surfaces as a typed :class:`~repro.errors.ExecutionError`
carrying the whole failure chain.  Callers may pass a per-batch
:class:`~repro.hpc.pool.TaskPolicy` through :meth:`Dispatcher.run` (the
pricing service derives one from its SLO so request deadlines reach the
workers).  Once the pool degrades (``pool.health.degraded``, after
consecutive terminal failures) the pooled dispatcher executes batches
inline on the calling thread — same answers, worse wall time — and
reports ``n_procs == 1`` so admission control and the planner stop
modelling parallelism that no longer exists.  :attr:`Dispatcher.health`
exposes the :class:`~repro.hpc.pool.PoolHealth` record upward.
"""

from __future__ import annotations

import abc
import threading

import numpy as np

from repro.core.kernels import PortfolioKernel
from repro.core.tables import YetTable
from repro.errors import ConfigurationError
from repro.hpc import shm
from repro.hpc.pool import PoolHealth, TaskPolicy, WorkPool
from repro.obs import Telemetry, as_telemetry

__all__ = ["Dispatcher", "InlineDispatcher", "PooledDispatcher",
           "make_dispatcher"]


class Dispatcher(abc.ABC):
    """Executes one batched kernel over the shared YET."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Parallelism the admission controller should model.
    n_procs: int = 1

    @property
    def transport_active(self) -> str:
        """Transport the next batch will ride (diagnostic surface)."""
        return "inline"

    @property
    def health(self) -> PoolHealth | None:
        """The substrate's :class:`~repro.hpc.pool.PoolHealth` (``None``
        for in-process substrates, which have no workers to lose)."""
        return None

    @abc.abstractmethod
    def run(self, kernel: PortfolioKernel, yet: YetTable,
            policy: TaskPolicy | None = None) -> np.ndarray:
        """The final ``(L, n_trials)`` matrix (aggregate terms applied).

        ``policy`` supervises pooled execution (deadline, retries); the
        inline substrate has no workers to supervise and ignores it.
        """

    def warmup(self, yet: YetTable) -> None:
        """Pay one-off setup costs (worker spawn, YET shipping) now."""

    def close(self) -> None:
        """Release execution resources (idempotent)."""

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InlineDispatcher(Dispatcher):
    """One fused sweep on the calling thread (the vectorized substrate)."""

    name = "inline"

    def __init__(self, block_occurrences: int | None = None) -> None:
        self.block_occurrences = block_occurrences

    def run(self, kernel: PortfolioKernel, yet: YetTable,
            policy: TaskPolicy | None = None) -> np.ndarray:
        return kernel.run(
            yet.trials, yet.event_ids, yet.n_trials,
            block_occurrences=self.block_occurrences,
        )


def _sweep_rows(shared, kernel: PortfolioKernel, r0: int, r1: int,
                t0: int, t1: int) -> np.ndarray:
    """Worker: fused sweep over YET rows ``[r0, r1)`` covering trials
    ``[t0, t1)``, renumbered block-local (picklable top-level task)."""
    trials, event_ids = shared
    annual = kernel.sweep(trials[r0:r1] - t0, event_ids[r0:r1], t1 - t0)
    return kernel.apply_aggregate(annual)


def _sweep_rows_handles(shared, kernel_handles, r0: int, r1: int,
                        t0: int, t1: int) -> np.ndarray:
    """Worker: like :func:`_sweep_rows` but the batch kernel arrives as
    slab handles and is attached as zero-copy views (picklable task)."""
    trials, event_ids = shared
    kernel = PortfolioKernel.from_handles(kernel_handles)
    annual = kernel.sweep(trials[r0:r1] - t0, event_ids[r0:r1], t1 - t0)
    return kernel.apply_aggregate(annual)


class _ShmYet(shm.HandleShipment):
    """Handle-backed shipment of the YET's (trials, event_ids) arrays;
    workers attach the columns as read-only views once, on first touch."""

    __slots__ = ()

    def _materialise(self, handles):
        yet = YetTable.from_handles(handles)
        return (yet.trials, yet.event_ids)


class PooledDispatcher(Dispatcher):
    """Trial-block decomposition over a persistent worker pool.

    The YET's ``trials``/``event_ids`` arrays are installed as the
    pool's shared object on first use and reused across batches.  The
    bundle is keyed by :meth:`YetTable.fingerprint`, so only a trial set
    with *different content* forces a re-ship — swapping in an equal
    re-simulated YET costs nothing.  On shared-memory hosts the bundle
    is a handle shipment (workers attach the columns zero-copy) and the
    per-batch kernel travels as slab handles; see the module docstring
    for the transport rules and the pickle fallback.
    """

    name = "pooled"

    def __init__(self, n_workers: int | None = None,
                 transport: str = "auto",
                 telemetry: Telemetry | bool | None = None) -> None:
        shm.validate_transport(transport, ConfigurationError)
        #: The dispatcher's telemetry plane, shared with its pool (a
        #: session passes its own so one scrape covers the stack).
        self.telemetry = as_telemetry(telemetry)
        self.pool = WorkPool(n_workers, telemetry=self.telemetry)
        self.transport = transport
        self._shared = None
        self._shared_fp: str | None = None
        #: Arenas staged for this dispatcher's YETs, newest last.  The
        #: superseded one is *retired*, not closed, when the service
        #: swaps trial sets: a batch formed just before the swap may
        #: still be delivering the old handles to a fresh worker, and
        #: unlinking under it would break the attach.  One retiree is
        #: enough (the service drains before each swap), so older ones
        #: are freed at the next swap and the rest at close().
        self._yet_arenas: list[shm.SharedArena] = []
        self._slab: shm.ShmSlab | None = None
        self._m_slab_generations = self.telemetry.gauge(
            "dispatch.slab.generations")
        #: Guards bundle swaps and the slab: the bundle/arena state is
        #: check-then-mutate, and the slab is single-writer with the
        #: in-flight batch as its readers — concurrent callers (the
        #: batcher executes outside its queue lock) serialise here.
        self._lock = threading.Lock()

    @property
    def n_procs(self) -> int:  # type: ignore[override]
        # A degraded pool executes inline: admission control and the
        # planner must model serial throughput, not phantom workers.
        return 1 if self.pool.health.degraded else self.pool.n_workers

    @property
    def health(self) -> PoolHealth:
        """The shared pool's failure/recovery record."""
        return self.pool.health

    @property
    def transport_active(self) -> str:
        """``"shm"`` when the data plane will carry the next batch;
        ``"inline"`` once the pool has degraded to serial fallback."""
        if self.pool.health.degraded:
            return "inline"
        return "shm" if self._shm_active() else "pickle"

    def _shm_active(self) -> bool:
        if self.pool.n_workers <= 1 or self.pool.health.degraded:
            return False
        return shm.resolve_transport(self.transport, ConfigurationError)

    def _bundle(self, yet: YetTable):
        """The shared-object bundle, keyed by YET content fingerprint."""
        fp = yet.fingerprint()
        with self._lock:
            if self._shared_fp != fp:
                if self._shm_active():
                    while len(self._yet_arenas) > 1:
                        self._yet_arenas.pop(0).close()
                    arena = shm.SharedArena()
                    self._yet_arenas.append(arena)
                    self._shared = _ShmYet(
                        yet.to_shared(arena),
                        local=(yet.trials, yet.event_ids),
                    )
                else:
                    self._shared = (yet.trials, yet.event_ids)
                self._shared_fp = fp
            return self._shared

    def warmup(self, yet: YetTable) -> None:
        shared = self._bundle(yet)   # takes the lock itself
        with self._lock:
            self.pool.ensure_started(shared)

    def _spans(self, yet: YetTable) -> list[tuple[int, int, int, int]]:
        """The batch's trial-block decomposition: ``(r0, r1, t0, t1)``
        row/trial spans, one per worker (capped by trial count)."""
        n_trials = yet.n_trials
        offsets = yet.trial_offsets
        n_blocks = min(self.pool.n_workers, n_trials)
        bounds = np.linspace(0, n_trials, n_blocks + 1).astype(int)
        return [
            (int(offsets[b0]), int(offsets[b1]), int(b0), int(b1))
            for b0, b1 in zip(bounds[:-1], bounds[1:])
            if b1 > b0
        ]

    def run(self, kernel: PortfolioKernel, yet: YetTable,
            policy: TaskPolicy | None = None) -> np.ndarray:
        with self.telemetry.span("dispatch.pooled",
                                 transport=self.transport_active):
            return self._run(kernel, yet, policy)

    def _run(self, kernel: PortfolioKernel, yet: YetTable,
             policy: TaskPolicy | None = None) -> np.ndarray:
        if self.pool.health.degraded:
            # Graceful degradation: the pool has failed terminally too
            # many consecutive times, so the batch runs on the calling
            # thread — but through the SAME trial-block decomposition
            # the workers would have executed (a whole-YET sweep can
            # differ by ulps from the blockwise one), so degraded
            # answers stay bit-identical to pooled ones.  No slab
            # packing, no handle ships, nothing left to break.
            self.pool.health.degraded_calls += 1
            shared = (yet.trials, yet.event_ids)
            return np.concatenate(
                [_sweep_rows(shared, kernel, r0, r1, t0, t1)
                 for r0, r1, t0, t1 in self._spans(yet)], axis=1)
        shared = self._bundle(yet)
        spans = self._spans(yet)
        if self._shm_active() and len(spans) > 1:
            # The batch kernel rides the reusable slab: one memcpy here,
            # ~1 KB of handles per task, no per-task unpickle of the
            # stacked lookup in the workers.
            with self._lock:
                if self._slab is None:
                    self._slab = shm.ShmSlab()
                handles = kernel.export_handles(self._slab)
                self._m_slab_generations.set(self._slab.generations)
                partials = self.pool.starmap_shared(
                    _sweep_rows_handles, shared,
                    [(handles, r0, r1, t0, t1) for r0, r1, t0, t1 in spans],
                    policy=policy,
                )
        else:
            # Same serialisation as the slab branch: a concurrent
            # bundle swap would cycle the pool executor under an
            # in-flight batch's submissions.
            with self._lock:
                partials = self.pool.starmap_shared(
                    _sweep_rows, shared,
                    [(kernel, r0, r1, t0, t1) for r0, r1, t0, t1 in spans],
                    policy=policy,
                )
        return np.concatenate(partials, axis=1)

    def close(self) -> None:
        self.pool.close()
        with self._lock:
            if self._slab is not None:
                self._slab.close()
                self._slab = None
            for arena in self._yet_arenas:
                arena.close()
            self._yet_arenas.clear()
            self._shared = None
            self._shared_fp = None


def make_dispatcher(spec) -> Dispatcher:
    """Resolve a dispatcher from a name, engine alias, or instance.

    Accepts ``"inline"``/``"vectorized"`` (inline sweep),
    ``"pooled"``/``"multicore"`` (worker pool), or a ready
    :class:`Dispatcher`.
    """
    if isinstance(spec, Dispatcher):
        return spec
    if spec in ("inline", "vectorized"):
        return InlineDispatcher()
    if spec in ("pooled", "multicore"):
        return PooledDispatcher()
    raise ConfigurationError(
        f"unknown dispatcher {spec!r}; expected 'inline', 'pooled', or a "
        "Dispatcher instance"
    )
