"""Content-addressed result cache for the serving layer.

Once the YET is pre-simulated and shared, a pricing result is a pure
function of three things: *which trial set* (the YET's content
fingerprint), *which contract* (a digest of the layer's ELT content,
weights, and financial terms), and *which metric* was asked for.  The
cache keys on exactly that triple, so:

- two users submitting the same candidate structure hit the same entry
  even though they built distinct ``Layer`` objects;
- a re-simulated YET changes the first key component, and
  :meth:`ResultCache.invalidate_yet` drops precisely the stale entries;
- quotes, YLT rows, and EP curves for one layer are separate entries —
  a curve is ~``n_trials`` floats, a quote is five.

Eviction is LRU by entry count.  The cache stores latency-free payloads
(metric values, not :class:`~repro.dfa.pricing.PricingQuote` objects);
the service re-stamps per-request latency on every hit so the quote
latency fields stay honest.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.layer import Layer
from repro.errors import ConfigurationError

__all__ = ["CachePolicy", "CacheStats", "ResultCache", "layer_digest",
           "payload_nbytes"]


def payload_nbytes(payload) -> int:
    """Approximate payload footprint (``nbytes`` when exposed — YLTs and
    EP curves — else a small flat charge per entry).  Public so the
    service's telemetry can account cache hit/miss bytes with the same
    sizing rule the cache's byte budget uses."""
    return int(getattr(payload, "nbytes", 64))


def layer_digest(layer: Layer) -> str:
    """Content digest of a layer: ELT arrays, weights, and terms (hex).

    Delegates to :meth:`Layer.content_digest`, which hashes the *inputs*
    of the merged lookup (event ids and mean losses per ELT,
    participation weights) plus the terms — never forcing a lookup build
    — and caches the result on the layer for the lookup-cache lifetime,
    so repeat submissions of a hot layer skip the hash entirely.
    """
    return layer.content_digest()


@dataclass(frozen=True)
class CachePolicy:
    """Sizing policy for a :class:`ResultCache`.

    ``max_entries == 0`` disables caching entirely (every request prices
    fresh) — the configuration benchmarks use to measure raw sweep
    throughput.  ``max_bytes`` bounds the payload footprint: a quote is
    a handful of floats but a cached YLT or EP curve is ``~8·n_trials``
    bytes, so entry count alone would let curve traffic pin gigabytes at
    paper scale.  ``None`` disables the byte bound.
    """

    max_entries: int = 4096
    max_bytes: int | None = 256 * 2**20

    def __post_init__(self):
        if self.max_entries < 0:
            raise ConfigurationError("max_entries must be non-negative")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ConfigurationError("max_bytes must be non-negative (or None)")


@dataclass
class CacheStats:
    """Counters exposed by :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidated: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """LRU cache over ``(yet_fingerprint, layer_digest, metric)`` keys.

    Thread-safe: submitters and the batcher's broker thread hit the
    cache concurrently, so every operation holds one internal lock (the
    critical sections are dict operations, never pricing work).
    """

    def __init__(self, policy: CachePolicy | None = None) -> None:
        self.policy = policy or CachePolicy()
        self._entries: OrderedDict[tuple[str, str, str], object] = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self.stats = CacheStats()

    _payload_nbytes = staticmethod(payload_nbytes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Accounted payload bytes currently held."""
        with self._lock:
            return self._bytes

    def get(self, key: tuple[str, str, str]):
        """The cached payload for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            try:
                payload = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return payload

    def put(self, key: tuple[str, str, str], payload) -> None:
        """Insert (or refresh) an entry, evicting LRU entries over
        either budget (entry count or payload bytes)."""
        max_bytes = self.policy.max_bytes
        size = self._payload_nbytes(payload)
        if self.policy.max_entries == 0:
            return
        if max_bytes is not None and size > max_bytes:
            return  # would evict the whole cache for one entry
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= self._payload_nbytes(old)
            self._entries[key] = payload
            self._bytes += size
            while len(self._entries) > self.policy.max_entries or (
                max_bytes is not None and self._bytes > max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= self._payload_nbytes(evicted)
                self.stats.evictions += 1

    def invalidate_yet(self, yet_fingerprint: str) -> int:
        """Drop every entry priced against the given trial set."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == yet_fingerprint]
            for k in stale:
                self._bytes -= self._payload_nbytes(self._entries.pop(k))
            self.stats.invalidated += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything (counts as invalidation)."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self.stats.invalidated += n
            return n
