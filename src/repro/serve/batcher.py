"""Request broker and micro-batcher: N in-flight requests, one sweep.

The serving layer's central trade: hold each quote request for at most a
short batch window, coalesce everything that arrived in that window into
one stacked :class:`~repro.core.kernels.PortfolioKernel`, and amortise
the YET pass — the dominant cost of a quote — across the whole batch.
The fused-kernel measurements (E13/E14) put a batch of L requests at a
small multiple of one request's cost, so coalescing converts concurrent
load into nearly-free extra kernel rows instead of N full sweeps.

When a flushed batch is the many-quotes-one-book shape (≥16 stacked
rows sharing one merged lookup, occurrence terms reducing to
``clip(g, lo, hi)``), the stacked kernel's sweep routes those rows
through the **sublinear tail-group path** automatically (E18): the batch
prices via per-trial sorted-threshold histograms instead of an
``(L, block)`` lane matrix, so throughput grows sublinearly in batch
size.  Rows that don't factor fall back to exact lanes;
``ServeStats.sublinear_batches``/``sublinear_rows`` count how often
flushes qualified.

:class:`MicroBatcher` is deliberately generic: it queues opaque request
items against futures and hands batches to a ``flush_fn`` supplied by
the service.  It runs in two modes:

- **manual** — callers enqueue with :meth:`submit` and drive execution
  with :meth:`flush`/:meth:`drain`.  Deterministic; what the synchronous
  facade and the benchmarks use.
- **auto-flush** — :meth:`start` spawns a broker thread that flushes a
  batch when the first-queued request's window expires or the batch is
  full, whichever comes first.  What a many-user deployment runs.

Failures in ``flush_fn`` propagate to every future in the failed batch;
the batcher itself stays usable.  Under the serving layer's failure
semantics that means a terminal pooled failure (a typed
:class:`~repro.errors.ExecutionError` after the supervised pool's
retries are exhausted) fails exactly the batch that hit it — later
batches run normally, degraded to inline execution if the pool has
given up (see :mod:`repro.serve.dispatch`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BatchPolicy", "MicroBatcher", "Ticket"]


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy for the micro-batcher.

    Attributes
    ----------
    max_batch:
        Most requests fused into one kernel sweep.  Beyond ~64 rows the
        stacked loss matrix starts spilling cache (see
        ``DEFAULT_BLOCK_OCCURRENCES``), so bigger batches buy little.
    window_seconds:
        How long the broker thread holds the first request of a batch
        waiting for company.  The latency floor of the async mode.
    auto_flush:
        Start the broker thread (async mode) when the service is built.
    """

    max_batch: int = 64
    window_seconds: float = 0.002
    auto_flush: bool = False

    def __post_init__(self):
        if self.max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")
        if self.window_seconds < 0:
            raise ConfigurationError("window_seconds must be non-negative")


class Ticket:
    """Handle for one submitted request (a thin future wrapper)."""

    __slots__ = ("_future", "submitted_at", "cached")

    def __init__(self, future: Future, submitted_at: float,
                 cached: bool = False) -> None:
        self._future = future
        self.submitted_at = submitted_at
        self.cached = cached

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None):
        """Block until the batch containing this request has been priced."""
        return self._future.result(timeout=timeout)


class _Pending:
    __slots__ = ("item", "future", "enqueued_at")

    def __init__(self, item, future: Future, enqueued_at: float) -> None:
        self.item = item
        self.future = future
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Coalesces queued request items into batches for a flush function.

    Parameters
    ----------
    flush_fn:
        ``flush_fn(pendings) -> list[result]`` prices one batch; it
        receives the :class:`_Pending` entries (item + enqueue time) and
        must return one result per entry, in order.
    policy:
        The :class:`BatchPolicy` (window, batch cap, async mode).
    """

    def __init__(self, flush_fn, policy: BatchPolicy | None = None) -> None:
        self._flush_fn = flush_fn
        self.policy = policy or BatchPolicy()
        self._pending: list[_Pending] = []
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._in_flight = 0
        self._stop = False
        self._thread: threading.Thread | None = None

    # -- queueing ----------------------------------------------------------

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def submit(self, item) -> Future:
        """Queue one request; returns the future its result will land on."""
        future: Future = Future()
        entry = _Pending(item, future, time.perf_counter())
        with self._wake:
            if self._stop:
                raise ConfigurationError("batcher is stopped")
            self._pending.append(entry)
            self._wake.notify_all()
        return future

    # -- execution ---------------------------------------------------------

    def _take_batch(self) -> list[_Pending]:
        """Pop up to ``max_batch`` entries (caller must hold the lock)."""
        batch = self._pending[: self.policy.max_batch]
        del self._pending[: len(batch)]
        self._in_flight += len(batch)
        return batch

    def _execute(self, batch: list[_Pending]) -> None:
        """Price one batch outside the lock and resolve its futures."""
        if not batch:
            return
        try:
            results = self._flush_fn(batch)
            if len(results) != len(batch):
                raise ConfigurationError(
                    f"flush_fn returned {len(results)} results for a batch "
                    f"of {len(batch)}"
                )
        except BaseException as exc:
            for entry in batch:
                entry.future.set_exception(exc)
        else:
            for entry, result in zip(batch, results):
                entry.future.set_result(result)
        finally:
            with self._wake:
                self._in_flight -= len(batch)
                self._wake.notify_all()

    def flush(self) -> int:
        """Price one batch of whatever is queued right now (manual mode).

        Returns the batch size (0 when the queue was empty).
        """
        with self._wake:
            batch = self._take_batch()
        self._execute(batch)
        return len(batch)

    def drain(self, timeout: float | None = None) -> None:
        """Block until the queue is empty and no batch is in flight.

        In manual mode this flushes inline (and still waits out batches
        another thread is executing); with the broker thread running it
        waits for the thread to do the work.  Raises
        :class:`TimeoutError` when a deadline is given and missed.  The
        deadline is checked *before* starting each inline batch, never
        after: a batch that finished late still resolved its futures,
        so a drain that finds no work left reports success; a batch
        already executing inline runs to completion (its results are
        kept), so the timeout bounds queue wait, not one sweep.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout

        def remaining() -> float | None:
            if deadline is None:
                return None
            left = deadline - time.perf_counter()
            if left <= 0:
                raise TimeoutError("batcher did not drain in time")
            return left

        while True:
            if self._thread is None:
                while self.n_pending:
                    remaining()  # don't *start* work past the deadline
                    self.flush()
            with self._wake:
                if not self._pending and not self._in_flight:
                    return
                if self._thread is None and self._pending:
                    continue  # a submit raced in; flush it inline
                # Waiting on the broker thread, or on another thread's
                # in-flight batch.
                self._wake.wait(timeout=remaining())

    # -- broker thread (async mode) ----------------------------------------

    def start(self) -> None:
        """Spawn the broker thread (idempotent; reopens after stop)."""
        if self._thread is not None:
            return
        with self._wake:
            self._stop = False
        self._thread = threading.Thread(
            target=self._broker_loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop accepting requests and flush anything still queued.

        Terminal until :meth:`start` is called again: ``_stop`` stays
        set so a submit racing with shutdown raises instead of
        enqueueing a request nothing will ever price.  Works in manual
        mode too (no broker thread) — that is how the service's
        ``close()`` fences late submitters in both modes.
        """
        with self._wake:
            self._stop = True
            self._wake.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None
        # Whatever raced in before the stop flag landed.
        while self.flush():
            pass

    def _broker_loop(self) -> None:
        window = self.policy.window_seconds
        while True:
            with self._wake:
                while not self._pending and not self._stop:
                    self._wake.wait()
                if not self._pending and self._stop:
                    return
                # Hold the batch open until the window of its oldest
                # request expires or the batch fills.
                deadline = self._pending[0].enqueued_at + window
                while (len(self._pending) < self.policy.max_batch
                       and not self._stop):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._wake.wait(timeout=remaining)
                batch = self._take_batch()
            self._execute(batch)
