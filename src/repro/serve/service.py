"""The pricing service facade: quotes and EP curves over a shared YET.

This is the user-facing door of the serving layer.  A
:class:`PricingService` binds one pre-simulated YET ("a consistent lens
through which to view results", §II) and turns concurrent ad-hoc
requests — each a candidate :class:`~repro.core.layer.Layer` — into as
few fused kernel sweeps as possible:

1. :meth:`submit` runs admission control (SLO-aware shedding), consults
   the content-addressed :class:`~repro.serve.cache.ResultCache`, and on
   a miss queues the request with the
   :class:`~repro.serve.batcher.MicroBatcher`;
2. the batcher coalesces every request in flight into one ephemeral
   :meth:`PortfolioKernel.from_layers <repro.core.kernels.PortfolioKernel.from_layers>`
   stack (duplicate layers collapse to one kernel row);
3. a :class:`~repro.serve.dispatch.Dispatcher` executes the batch —
   inline vectorized or over pool workers — and every ticket resolves
   with its own metric and an honest per-request latency.

The synchronous helpers (:meth:`quote`, :meth:`quote_many`,
:meth:`ep_curve`) wrap that flow for library callers;
:class:`~repro.dfa.pricing.RealTimePricer` is a thin veneer over them.
Throughput framing follows the MapReduce companion study (Yao, Varghese
& Rau-Chaplin 2013): once one aggregate run is seconds, the binding
problem is many users per second, not one run's wall time.

Failure semantics
-----------------
A worker death or deadline overrun inside a pooled batch is absorbed by
:class:`~repro.hpc.pool.WorkPool` supervision — the lost trial blocks
re-execute and every ticket in the batch still resolves with results
bit-identical to a fault-free sweep.  The admission SLO is propagated
into pooled dispatch as a per-batch
:class:`~repro.hpc.pool.TaskPolicy` deadline, so a wedged worker cannot
hold a quote past the latency the service promised.  Only a *terminal*
failure (retry budget exhausted, or a genuine task error) reaches the
tickets, and it reaches them typed: every future in the failed batch
resolves with an :class:`~repro.errors.ExecutionError` carrying the
failure chain, never a bare executor traceback.  The batcher and the
service survive a failed batch; once the pool degrades
(:attr:`pool_health` ``.degraded``) batches price inline until an
operator resets the pool's health.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

from repro.analytics.ep_curves import EpCurve
from repro.core.kernels import PortfolioKernel
from repro.core.layer import Layer
from repro.core.tables import YetTable, YltTable
from repro.dfa.quote import PricingQuote, premium_components
from repro.errors import (AdmissionError, AnalysisError, ConfigurationError,
                          ExecutionError, ReproError)
from repro.hpc.pool import TaskPolicy
from repro.obs import Telemetry
from repro.serve.admission import AdmissionController
from repro.serve.batcher import BatchPolicy, MicroBatcher, Ticket
from repro.serve.cache import (CachePolicy, ResultCache, layer_digest,
                               payload_nbytes)
from repro.serve.dispatch import Dispatcher, make_dispatcher

__all__ = ["PricingService", "ServeStats"]

#: Metrics a request may ask for.
_METRICS = ("quote", "ylt", "ep_curve")


class ServeStats:
    """Aggregate counters of one service instance (bounded state only —
    a long-lived service must not grow per-batch history).

    Since the telemetry plane landed this is a *view over the service's*
    :class:`~repro.obs.Telemetry` plane: every attribute reads a
    ``serve.*`` registry metric.  Attribute access is kept for backward
    compatibility but **deprecated** — new code should scrape
    :attr:`PricingService.telemetry` (or :meth:`snapshot`) instead of
    poking fields.  ``sublinear_batches``/``sublinear_rows`` count
    batches whose stacked kernel qualified for the sublinear tail-group
    sweep (same-book rows, terms reducing to ``clip(g, lo, hi)``) and
    the rows that priced through it — the many-quotes-one-book shape
    ``quote_many`` produces.
    """

    #: Attribute → counter metric name (the flat dot-key convention of
    #: :mod:`repro.obs`).
    _COUNTER_FIELDS = {
        "requests": "serve.requests",
        "cache_hits": "serve.cache.hits",
        "shed": "serve.shed",
        "batches": "serve.batches",
        "batched_requests": "serve.batched_requests",
        "kernel_rows": "serve.kernel_rows",
        "sweep_seconds": "serve.sweep_seconds",
        "sublinear_batches": "serve.sublinear.batches",
        "sublinear_rows": "serve.sublinear.rows",
    }

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self._tel = telemetry if telemetry is not None else Telemetry()
        self._counters = {attr: self._tel.counter(name)
                          for attr, name in self._COUNTER_FIELDS.items()}
        self._largest = self._tel.gauge("serve.largest_batch",
                                        track_max=True)

    @property
    def largest_batch(self) -> int:
        """Peak requests coalesced into one batch (a high-water gauge)."""
        return int(self._largest.max_value)

    @property
    def sweeps(self) -> int:
        """Fused YET passes executed (one per batch)."""
        return self.batches

    @property
    def coalescing_factor(self) -> float:
        """Requests answered per YET sweep (the serving layer's win)."""
        return self.batched_requests / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        """JSON-ready flat dict in the ``serve.*`` dot-key convention of
        :mod:`repro.obs` (merges cleanly with a registry snapshot)."""
        out = {name: getattr(self, attr)
               for attr, name in self._COUNTER_FIELDS.items()}
        out["serve.largest_batch"] = self.largest_batch
        out["serve.coalescing_factor"] = self.coalescing_factor
        return out


def _serve_counter_view(attr: str, name: str, cast) -> property:
    """A ``ServeStats`` attribute backed by a registry counter."""

    def fget(self: ServeStats):
        return cast(self._counters[attr].value)

    return property(fget, doc=f"Counter view of {name} (deprecated "
                              "attribute access; scrape telemetry).")


for _attr, _name in ServeStats._COUNTER_FIELDS.items():
    _cast = float if _attr == "sweep_seconds" else int
    setattr(ServeStats, _attr, _serve_counter_view(_attr, _name, _cast))
del _attr, _name, _cast


class _Request:
    """One queued pricing request (the batcher's opaque item).

    Deliberately carries no cache key: the key's YET fingerprint is
    resolved when the batch is *priced*, so a request that straddles a
    :meth:`PricingService.resimulate` is cached under the trial set it
    was actually swept against.
    """

    __slots__ = ("layer", "metric", "digest")

    def __init__(self, layer: Layer, metric: str, digest: str) -> None:
        self.layer = layer
        self.metric = metric
        self.digest = digest


class PricingService:
    """Batched pricing and EP-curve queries against one shared YET.

    Parameters
    ----------
    yet:
        The pre-simulated trial set every quote prices against.
    engine:
        Dispatcher choice: ``"inline"``/``"vectorized"`` (default),
        ``"pooled"``/``"multicore"``, or a
        :class:`~repro.serve.dispatch.Dispatcher` instance.
    volatility_loading / tail_loading:
        Premium loadings, as in :class:`~repro.dfa.pricing.RealTimePricer`.
    batch:
        :class:`~repro.serve.batcher.BatchPolicy` — window, batch cap,
        and whether a broker thread auto-flushes.
    cache:
        :class:`~repro.serve.cache.CachePolicy` (or a ready
        :class:`~repro.serve.cache.ResultCache`) for result reuse.
    slo_seconds / max_pending:
        Admission control: shed requests whose modelled latency exceeds
        the SLO, and cap the queue.  ``None`` SLO = never shed on cost.
    dense_max_entries:
        Dense-lookup threshold forwarded to kernel construction.
    session:
        A :class:`~repro.session.RiskSession` to *share* staged state
        with: the service borrows the session's dispatcher (one worker
        pool, one shared-memory arena across aggregate runs and quote
        batches) and leaves it open on :meth:`close`.  Without one, the
        service owns a private session — the execution substrate always
        belongs to a session, this service's or the caller's.  ``engine``
        may then also be ``"auto"`` to let the session's planner pick
        the dispatch substrate.
    """

    def __init__(
        self,
        yet: YetTable,
        *,
        engine: str | Dispatcher = "inline",
        volatility_loading: float = 0.25,
        tail_loading: float = 0.02,
        batch: BatchPolicy | None = None,
        cache: CachePolicy | ResultCache | None = None,
        slo_seconds: float | None = None,
        max_pending: int = 10_000,
        dense_max_entries: int = 4_000_000,
        session=None,
    ) -> None:
        if not isinstance(yet, YetTable):
            raise ConfigurationError(
                f"expected YetTable, got {type(yet).__name__}"
            )
        if volatility_loading < 0 or tail_loading < 0:
            raise AnalysisError("loadings must be non-negative")
        self.yet = yet
        self.volatility_loading = volatility_loading
        self.tail_loading = tail_loading
        self.dense_max_entries = dense_max_entries
        self._owned_session = None
        if isinstance(engine, Dispatcher):
            if session is not None:
                # Ambiguous ownership: the caller-built dispatcher would
                # be adopted and closed while the session's substrate
                # sits unused — refuse rather than silently not share.
                raise ConfigurationError(
                    "pass either a ready Dispatcher or session=, not both"
                )
            # A caller-built dispatcher keeps the historical contract:
            # the service adopts and closes it.
            self.dispatcher = make_dispatcher(engine)
            self._owns_dispatch = True
            #: The service's telemetry plane — shares the dispatcher's
            #: when it has one (pooled), else a private plane.
            self.telemetry = getattr(self.dispatcher, "telemetry", None)
            if self.telemetry is None:
                self.telemetry = Telemetry()
        else:
            if session is None:
                from repro.session import RiskSession

                session = self._owned_session = RiskSession(
                    yet, dense_max_entries=dense_max_entries,
                )
            elif session.yet is not yet:
                # A shared dispatcher keys its staged bundle by YET
                # fingerprint; two trial sets behind one pool would
                # thrash the arena and void the ship-once invariant.
                raise ConfigurationError(
                    "session is bound to a different YET than this service"
                )
            self.dispatcher = session.dispatcher(engine)
            self._owns_dispatch = False
            # One plane for the whole stack: scraping either the session
            # or the service sees session, planner, pool, and serve
            # metrics together.
            self.telemetry = session.telemetry
        self.cache = (cache if isinstance(cache, ResultCache)
                      else ResultCache(cache))
        self.admission = AdmissionController(
            slo_seconds=slo_seconds, max_pending=max_pending
        )
        # The admission SLO reaches the workers: pooled batches run
        # under a deadline-bearing TaskPolicy, so a wedged worker is
        # cycled and its blocks re-executed instead of quietly holding
        # quotes past the promised latency.  (No SLO = no deadline; the
        # pool's default retry policy still applies.)
        self._dispatch_policy = (
            TaskPolicy(deadline_seconds=slo_seconds)
            if slo_seconds is not None else None
        )
        self.batcher = MicroBatcher(self._price_batch, batch)
        # The cache-key metric component carries the loadings: a shared
        # ResultCache between services configured with different premium
        # loadings must never serve one service's quote to the other.
        # (ylt/ep_curve payloads are loading-free, so the bare name is
        # the whole identity.)
        self._metric_keys = {
            "quote": f"quote/v{volatility_loading!r}/t{tail_loading!r}",
            "ylt": "ylt",
            "ep_curve": "ep_curve",
        }
        self.stats = ServeStats(self.telemetry)
        # Metric handles are grabbed once here so the request path pays
        # one lock + one add per touch point, never a registry lookup.
        tel = self.telemetry
        self._m_requests = tel.counter("serve.requests")
        self._m_cache_hits = tel.counter("serve.cache.hits")
        self._m_cache_hit_bytes = tel.counter("serve.cache.hit_bytes")
        self._m_cache_miss_bytes = tel.counter("serve.cache.miss_bytes")
        self._m_cache_evictions = tel.counter("serve.cache.evictions")
        self._m_shed = tel.counter("serve.shed")
        self._m_batches = tel.counter("serve.batches")
        self._m_batched_requests = tel.counter("serve.batched_requests")
        self._m_kernel_rows = tel.counter("serve.kernel_rows")
        self._m_sweep_seconds = tel.counter("serve.sweep_seconds")
        self._m_sublinear_batches = tel.counter("serve.sublinear.batches")
        self._m_sublinear_rows = tel.counter("serve.sublinear.rows")
        self._m_largest_batch = tel.gauge("serve.largest_batch",
                                          track_max=True)
        self._m_queue_depth = tel.gauge("serve.queue.depth", track_max=True)
        self._m_lanes_per_s = tel.gauge("serve.admission.lanes_per_second")
        self._m_queue_wait = tel.histogram("serve.queue.wait_seconds")
        self._m_request_seconds = tel.histogram("serve.request.seconds")
        self._m_batch_occupancy = tel.histogram(
            "serve.batch.occupancy",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
        )
        #: Eviction watermark for the delta-based ``serve.cache.evictions``
        #: counter (the cache keeps its own plain stats).
        self._evictions_seen = self.cache.stats.evictions
        #: Legacy lock kept for API compatibility; counter updates now
        #: synchronise inside the registry metrics themselves.
        self._stats_lock = threading.Lock()
        self._yet_fp = yet.fingerprint()
        self._closed = False
        if self.batcher.policy.auto_flush:
            self.batcher.start()

    # -- lifecycle ---------------------------------------------------------

    @property
    def pool_health(self):
        """The dispatch substrate's :class:`~repro.hpc.pool.PoolHealth`
        (``None`` for inline dispatch — nothing to supervise)."""
        return self.dispatcher.health

    def warmup(self) -> None:
        """Pre-pay dispatcher setup (worker spawn, YET shipping)."""
        self.dispatcher.warmup(self.yet)

    def close(self) -> None:
        """Flush outstanding work and release resources (idempotent).

        A dispatcher borrowed from a shared session stays open — the
        session owns it; a private session (or an adopted dispatcher
        instance) is torn down here.
        """
        if self._closed:
            return
        self.batcher.stop()
        self.batcher.drain()
        if self._owns_dispatch:
            self.dispatcher.close()
        if self._owned_session is not None:
            self._owned_session.close()
        self._closed = True

    def __enter__(self) -> "PricingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the request path --------------------------------------------------

    def submit(self, layer: Layer, metric: str = "quote") -> Ticket:
        """Queue one request; returns a :class:`Ticket` resolving to the
        metric.  Raises :class:`~repro.errors.AdmissionError` when shed.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        if not isinstance(layer, Layer):
            raise ConfigurationError(
                f"expected Layer, got {type(layer).__name__}"
            )
        if metric not in _METRICS:
            raise ConfigurationError(
                f"unknown metric {metric!r}; expected one of {_METRICS}"
            )
        submitted = time.perf_counter()
        self._m_requests.inc()
        digest = layer_digest(layer)
        payload = self.cache.get(
            (self._yet_fp, digest, self._metric_keys[metric])
        )
        if payload is not None:
            future: Future = Future()
            future.set_result(self._materialise(payload, metric, submitted))
            self._m_cache_hits.inc()
            self._m_cache_hit_bytes.inc(payload_nbytes(payload))
            return Ticket(future, submitted, cached=True)
        decision = self.admission.decide(
            self.batcher.n_pending,
            lanes_per_request=max(self.yet.n_occurrences, 1),
            n_procs=self.dispatcher.n_procs,
            window_seconds=self.batcher.policy.window_seconds,
        )
        if not decision.accepted:
            self._m_shed.inc()
            self.telemetry.event("serve.shed", reason=decision.reason,
                                 queue_depth=self.batcher.n_pending)
            raise AdmissionError(decision.reason)
        request = _Request(layer, metric, digest)
        future = self.batcher.submit(request)
        self._m_queue_depth.set(self.batcher.n_pending)
        return Ticket(future, submitted)

    def flush(self) -> int:
        """Price one batch of queued requests now (manual mode)."""
        return self.batcher.flush()

    def drain(self, timeout: float | None = None) -> None:
        """Block until every queued request has been priced."""
        self.batcher.drain(timeout=timeout)

    # -- synchronous facade ------------------------------------------------

    def _settle(self, tickets: list[Ticket],
                timeout: float | None = None) -> list:
        """Resolve tickets, driving the batcher inline when no broker
        thread is running.  The timeout covers the drain too: it bounds
        queue wait and other threads' in-flight batches (surfacing as
        :class:`TimeoutError`), though a sweep already running inline on
        this thread completes before the deadline is rechecked.
        """
        if not self.batcher.policy.auto_flush:
            self.drain(timeout=timeout)
        return [t.result(timeout=timeout) for t in tickets]

    def quote(self, layer: Layer, timeout: float | None = None) -> PricingQuote:
        """Price one candidate layer (synchronous)."""
        return self._settle([self.submit(layer, "quote")], timeout)[0]

    def quote_many(self, layers, timeout: float | None = None) -> list[PricingQuote]:
        """Price several candidates through one coalesced submission."""
        tickets = [self.submit(layer, "quote") for layer in layers]
        return self._settle(tickets, timeout)

    def ylt(self, layer: Layer, timeout: float | None = None) -> YltTable:
        """The layer's full year-loss table under this YET."""
        return self._settle([self.submit(layer, "ylt")], timeout)[0]

    def ep_curve(self, layer: Layer, timeout: float | None = None) -> EpCurve:
        """The layer's aggregate exceedance-probability curve."""
        return self._settle([self.submit(layer, "ep_curve")], timeout)[0]

    # -- YET lifecycle -----------------------------------------------------

    def resimulate(self, yet: YetTable) -> int:
        """Swap in a re-simulated YET and invalidate the stale entries.

        Outstanding requests are drained against the old trial set first
        (their tickets were admitted under it).  Returns the number of
        cache entries invalidated.
        """
        if not isinstance(yet, YetTable):
            raise ConfigurationError(
                f"expected YetTable, got {type(yet).__name__}"
            )
        self.drain()
        old_fp = self._yet_fp
        self.yet = yet
        self._yet_fp = yet.fingerprint()
        return self.cache.invalidate_yet(old_fp)

    # -- batch pricing (the batcher's flush_fn) ----------------------------

    def _price_batch(self, pendings) -> list:
        """Price one micro-batch: stack, sweep once, settle every request.

        Traced as a ``serve.batch`` span with ``serve.stack`` →
        ``serve.dispatch`` → ``serve.merge`` children, so the request
        path's wall/CPU split is scrapeable per stage.
        """
        with self.telemetry.span("serve.batch", n_requests=len(pendings)):
            return self._price_batch_inner(pendings)

    def _price_batch_inner(self, pendings) -> list:
        batch_start = time.perf_counter()
        for p in pendings:
            self._m_queue_wait.observe(max(batch_start - p.enqueued_at, 0.0))
        self._m_batch_occupancy.observe(len(pendings))
        self._m_queue_depth.set(self.batcher.n_pending)
        requests = [p.item for p in pendings]
        # Snapshot the trial set once: every request in this batch is
        # priced — and cached — against this YET, even if a resimulate
        # swaps the service's YET while the sweep runs.
        yet = self.yet
        yet_fp = yet.fingerprint()
        with self.telemetry.span("serve.stack"):
            # Duplicate submissions inside one window collapse to one
            # kernel row; rows are keyed by first-seen digest order.
            row_ids: dict[str, int] = {}
            unique_layers: list[Layer] = []
            for req in requests:
                if req.digest not in row_ids:
                    row_ids[req.digest] = len(unique_layers)
                    unique_layers.append(req.layer)
            kernel = PortfolioKernel.from_layers(
                unique_layers,
                layer_ids=range(len(unique_layers)),
                dense_max_entries=self.dense_max_entries,
            )
        t0 = time.perf_counter()
        try:
            with self.telemetry.span("serve.dispatch",
                                     rows=kernel.n_layers,
                                     dispatcher=self.dispatcher.name):
                final = self.dispatcher.run(kernel, yet,
                                            policy=self._dispatch_policy)
        except ReproError:
            raise  # already typed (ExecutionError from supervision etc.)
        except Exception as exc:
            # Never hand tickets a bare executor traceback: terminal
            # execution failures surface typed, with their chain.
            raise ExecutionError(
                f"batch of {len(requests)} request(s) failed terminally: "
                f"{type(exc).__name__}: {exc}",
                attempts=1, failures=(exc,),
            ) from exc
        sweep_seconds = time.perf_counter() - t0
        # Simulation throughput of this sweep: the whole trial set passed
        # once for every request in the batch.  Stamped into quote
        # payloads so cached re-quotes report the throughput that
        # *produced* the number, not a dict-lookup fiction.
        sim_tps = yet.n_trials / max(sweep_seconds, 1e-12)
        self.admission.observe(
            lanes=kernel.n_layers * max(yet.n_occurrences, 1),
            seconds=sweep_seconds,
            n_procs=self.dispatcher.n_procs,
        )
        self._m_lanes_per_s.set(self.admission.lanes_per_second or 0.0)
        # Structural property of the stacked batch: rows in same-lookup
        # groups whose terms factor price through the kernel's sublinear
        # histogram path (the routing itself is inside kernel.run).
        tail_rows = kernel.tail_group_rows
        self._m_batches.inc()
        self._m_batched_requests.inc(len(requests))
        self._m_kernel_rows.inc(kernel.n_layers)
        self._m_sweep_seconds.inc(sweep_seconds)
        self._m_largest_batch.set(len(requests))
        if tail_rows:
            self._m_sublinear_batches.inc()
            self._m_sublinear_rows.inc(tail_rows)

        # One payload per (digest, metric) actually requested, cached
        # and fanned back out to every request that asked for it.
        with self.telemetry.span("serve.merge"):
            payloads: dict[tuple[str, str], object] = {}
            results = []
            for p in pendings:
                req = p.item
                pkey = (req.digest, req.metric)
                payload = payloads.get(pkey)
                if payload is None:
                    row = kernel.row_of(row_ids[req.digest])
                    payload = self._build_payload(final[row], req.metric,
                                                  req.layer)
                    if req.metric == "quote":
                        payload = (*payload, sim_tps)
                    payloads[pkey] = payload
                    self._m_cache_miss_bytes.inc(payload_nbytes(payload))
                    self.cache.put(
                        (yet_fp, req.digest, self._metric_keys[req.metric]),
                        payload,
                    )
                results.append(
                    self._materialise(payload, req.metric, p.enqueued_at)
                )
            evictions = self.cache.stats.evictions
            if evictions > self._evictions_seen:
                freed = evictions - self._evictions_seen
                self._evictions_seen = evictions
                self._m_cache_evictions.inc(freed)
                self.telemetry.event("cache.evicted", n_entries=freed)
        return results

    # -- payloads ----------------------------------------------------------

    def _build_payload(self, losses, metric: str, layer: Layer):
        """The cacheable, latency-free value of one (layer, metric)."""
        ylt = YltTable(losses.copy())
        if metric == "ylt":
            return ylt
        if metric == "ep_curve":
            return EpCurve(ylt.losses)
        return premium_components(
            ylt, layer.terms.occ_limit,
            self.volatility_loading, self.tail_loading,
        )

    def _materialise(self, payload, metric: str, submitted_at: float):
        """Stamp a cached payload into a per-request result.

        YLTs are handed out as fresh copies — callers may scale or
        combine their result, and a shared cached array must not be
        corruptible.  EP curves are immutable (a private sorted sample)
        and quotes rebuild from a tuple, so both share safely.
        """
        latency = max(time.perf_counter() - submitted_at, 1e-9)
        self._m_request_seconds.observe(latency)
        if metric == "ylt":
            return YltTable(payload.losses.copy())
        if metric == "ep_curve":
            return payload
        expected, vol_load, tail, premium, rol, sim_tps = payload
        return PricingQuote(
            expected_loss=expected,
            volatility_load=vol_load,
            tail_load=tail,
            premium=premium,
            rate_on_line=rol,
            latency_seconds=latency,
            trials_per_second=sim_tps,
        )
