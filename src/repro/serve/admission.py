"""Admission control and backpressure for the pricing service.

A shared pricing service is only "real-time" while its queue is short:
once requests arrive faster than sweeps retire them, every quote's
latency grows without bound.  Classical serving practice — and the
elasticity analysis of E9 — says the honest response is to *shed* (or
delay) load the moment the backlog provably cannot meet the latency SLO,
rather than time out everyone equally.

The controller reuses :class:`~repro.hpc.cost_model.StageSpec` as its
estimator: the pending batch is a "stage" whose work volume is the
queued layer-sweep lanes (requests × YET occurrences) and whose measured
throughput is continuously re-calibrated from observed batch runtimes
(exponentially-weighted, seeded by the first real batch).  The same
model that sizes processor bursts at paper scale therefore decides, per
request, whether this machine can still answer in time.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hpc.cost_model import StageSpec, ThroughputEstimate

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    Attributes
    ----------
    accepted:
        Whether the request may join the queue.
    estimated_seconds:
        Modelled time to clear the queue including this request (batch
        window wait + sweep time at the dispatcher's parallelism).
    reason:
        Human-readable grounds for the decision.
    retry_after_seconds:
        For rejected requests, a backoff hint: the modelled time for the
        current backlog to clear.  Zero for accepted requests.
    """

    accepted: bool
    estimated_seconds: float
    reason: str
    retry_after_seconds: float = 0.0


class AdmissionController:
    """SLO-driven accept/shed decisions over the serve queue.

    Parameters
    ----------
    slo_seconds:
        Target end-to-end latency for a quote.  ``None`` disables
        cost-based shedding (only the hard queue cap applies).
    max_pending:
        Hard cap on queued requests regardless of the model — the last
        line of defence when calibration is wrong.
    lanes_per_second:
        Initial throughput estimate (layer-occurrence lanes per second
        per processor) used before the first batch is observed.  The
        default is deliberately conservative; one observed batch
        replaces it.
    smoothing:
        EWMA weight of the newest observation in ``(0, 1]``.
    """

    def __init__(self, slo_seconds: float | None = None,
                 max_pending: int = 10_000,
                 lanes_per_second: float = 1e7,
                 smoothing: float = 0.3) -> None:
        if slo_seconds is not None and slo_seconds <= 0:
            raise ConfigurationError("slo_seconds must be positive (or None)")
        if max_pending <= 0:
            raise ConfigurationError("max_pending must be positive")
        if lanes_per_second <= 0:
            raise ConfigurationError("lanes_per_second must be positive")
        if not (0.0 < smoothing <= 1.0):
            raise ConfigurationError("smoothing must lie in (0, 1]")
        self.slo_seconds = slo_seconds
        self.max_pending = max_pending
        self.smoothing = smoothing
        #: The shared EWMA calibrator (the session planner uses the same
        #: class per engine); the first real batch replaces the seed.
        self._estimate = ThroughputEstimate(float(lanes_per_second), smoothing)
        #: The cost-model stage the estimates run through; ``work_items``
        #: is per-decision, throughput is the calibrated rate.
        self._spec = StageSpec(
            "serve backlog", work_items=1.0,
            throughput_per_proc=float(lanes_per_second),
        )
        #: Guards the EWMA read-modify-write in :meth:`observe`;
        #: :meth:`decide` only reads the (atomically swapped, frozen)
        #: spec, and shed/accept accounting lives on the service's
        #: stats surface — one counter, one owner.
        self._lock = threading.Lock()

    # -- calibration -------------------------------------------------------

    @property
    def lanes_per_second(self) -> float:
        """Current throughput estimate (lanes/s/processor)."""
        return self._spec.throughput_per_proc

    def observe(self, lanes: float, seconds: float,
                n_procs: int = 1) -> None:
        """Fold one measured batch (lanes swept, wall seconds, processors
        it ran on) into the throughput estimate.  The wall rate is
        normalised to *per-processor* before storing — the cost model
        multiplies parallelism back in at :meth:`decide` time, and
        double-counting it would make pooled-path estimates ``n_procs``
        times too optimistic.  The first observation replaces the seed.
        """
        if lanes <= 0 or seconds <= 0 or n_procs <= 0:
            return
        with self._lock:
            rate = self._estimate.observe(lanes, seconds, n_procs)
            self._spec = self._spec.with_throughput(rate)

    # -- decisions ---------------------------------------------------------

    def _queue_seconds(self, n_requests: int, lanes_per_request: float,
                       n_procs: int) -> float:
        """Modelled sweep time for ``n_requests`` queued requests."""
        if n_requests <= 0:
            return 0.0
        spec = StageSpec(self._spec.name, n_requests * lanes_per_request,
                         self.lanes_per_second)
        return spec.runtime_seconds(n_procs)

    def decide(self, n_pending: int, lanes_per_request: float,
               n_procs: int = 1,
               window_seconds: float = 0.0) -> AdmissionDecision:
        """Admission check for one new request.

        ``n_pending`` is the queue depth before this request,
        ``lanes_per_request`` the sweep lanes one request adds (the
        YET's occurrence count), ``n_procs`` the dispatcher's
        parallelism, and ``window_seconds`` the batch window the request
        will wait out before any sweep starts.
        """
        backlog_seconds = self._queue_seconds(
            n_pending, lanes_per_request, n_procs
        )
        if n_pending >= self.max_pending:
            return AdmissionDecision(
                accepted=False,
                estimated_seconds=math.inf,
                reason=f"queue full ({n_pending} >= max_pending "
                       f"{self.max_pending})",
                retry_after_seconds=backlog_seconds,
            )
        estimated = window_seconds + self._queue_seconds(
            n_pending + 1, lanes_per_request, n_procs
        )
        if self.slo_seconds is not None and estimated > self.slo_seconds:
            return AdmissionDecision(
                accepted=False,
                estimated_seconds=estimated,
                reason=f"estimated latency {estimated:.3g}s exceeds SLO "
                       f"{self.slo_seconds:.3g}s at queue depth {n_pending}",
                retry_after_seconds=backlog_seconds,
            )
        return AdmissionDecision(
            accepted=True,
            estimated_seconds=estimated,
            reason="within SLO" if self.slo_seconds is not None
                   else "no SLO configured",
        )
