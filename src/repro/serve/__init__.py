"""The serving layer: batched pricing as a many-user service.

The paper's headline workflow is interactive: once a million-trial
aggregate simulation runs in seconds (§II's "25 seconds ... real-time
pricing"), layer pricing stops being an overnight batch and becomes a
*service* — many underwriters, many candidate structures, one shared,
pre-simulated YET.  The MapReduce companion study (Yao, Varghese &
Rau-Chaplin, 2013) makes the same point from the throughput side: the
binding metric is requests per second against a fixed trial set.

This package turns concurrent requests into few fused sweeps:

===========  ============================================================
module       responsibility
===========  ============================================================
batcher      request broker + micro-batcher: coalesce every request in a
             short window into one stacked-kernel sweep
cache        content-addressed results keyed by (YET fingerprint, layer
             digest, metric), LRU-evicted, invalidated on re-simulation
admission    SLO-aware accept/shed decisions driven by the HPC cost
             model, continuously recalibrated from observed batches
dispatch     batch execution substrates: inline vectorized sweep or
             trial-block decomposition over a worker pool fed by the
             zero-copy shared-memory data plane (pickle fallback)
service      the :class:`PricingService` facade — submit/quote/ep_curve,
             YET lifecycle, stats — that RealTimePricer runs on
===========  ============================================================

Quickstart::

    import repro

    wl = repro.bench.companion_study_workload(n_trials=10_000)
    with repro.PricingService(wl.yet) as svc:
        quotes = svc.quote_many(list(wl.portfolio))   # one fused sweep
        print(svc.stats.coalescing_factor)
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.batcher import BatchPolicy, MicroBatcher, Ticket
from repro.serve.cache import CachePolicy, CacheStats, ResultCache, layer_digest
from repro.serve.dispatch import (
    Dispatcher,
    InlineDispatcher,
    PooledDispatcher,
    make_dispatcher,
)
from repro.serve.service import PricingService, ServeStats

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BatchPolicy",
    "MicroBatcher",
    "Ticket",
    "CachePolicy",
    "CacheStats",
    "ResultCache",
    "layer_digest",
    "Dispatcher",
    "InlineDispatcher",
    "PooledDispatcher",
    "make_dispatcher",
    "PricingService",
    "ServeStats",
]
