"""Library-wide configuration defaults.

The values here mirror the hardware constants of the platform the paper's
companion study [7] reports on (an NVIDIA Tesla-class device) and sensible
defaults for the simulated cluster.  They are plain module-level constants
collected into a frozen dataclass so call sites can either use the shared
:data:`DEFAULTS` instance or construct a modified copy for experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ReproConfig:
    """Immutable bundle of library defaults.

    Attributes
    ----------
    default_seed:
        Root seed used when a caller does not provide one.  All randomness
        in the library flows through :class:`repro.util.rng.RngHierarchy`,
        so a fixed root seed makes every artefact reproducible.
    device_global_mem_bytes:
        Global-memory capacity of the simulated GPU (Tesla C2050-era: 3 GB).
    device_shared_mem_bytes:
        Per-block shared-memory capacity (48 KiB on Fermi).
    device_constant_mem_bytes:
        Constant-memory capacity (64 KiB on Fermi).
    device_num_sms:
        Number of streaming multiprocessors of the simulated device.
    device_threads_per_block:
        Default block width used by the chunk planner.
    cluster_default_nodes:
        Node count for the default simulated cluster.
    chunk_rows:
        Default row count per chunk for chunked columnar storage.
    dfs_block_bytes:
        Default DFS block size (64 MiB, the classic HDFS default).
    dfs_replication:
        Default DFS replication factor.
    """

    default_seed: int = 20120612
    device_global_mem_bytes: int = 3 * 1024**3
    device_shared_mem_bytes: int = 48 * 1024
    device_constant_mem_bytes: int = 64 * 1024
    device_num_sms: int = 14
    device_threads_per_block: int = 256
    cluster_default_nodes: int = 16
    chunk_rows: int = 65536
    dfs_block_bytes: int = 64 * 1024**2
    dfs_replication: int = 3

    def with_(self, **kwargs) -> "ReproConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Shared default configuration used across the library.
DEFAULTS = ReproConfig()
