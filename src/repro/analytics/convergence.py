"""Monte-Carlo convergence diagnostics.

"The more data you can analyse and the more simulation trials you can
run the better you can manage your aggregate risk" (§III).  This module
quantifies that: the standard error of the mean and of tail metrics as a
function of trial count, and the trial count needed to hit a target
relative error — the analysis that justifies the paper's push from
thousands to millions of trials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tables import YltTable
from repro.errors import AnalysisError
from repro.util import stats_utils

__all__ = ["ConvergenceDiagnostics"]


@dataclass(frozen=True)
class ConvergencePoint:
    """Diagnostics at one prefix size."""

    n_trials: int
    mean: float
    standard_error: float
    relative_error: float


class ConvergenceDiagnostics:
    """Prefix-based convergence analysis of a YLT."""

    def __init__(self, ylt: YltTable) -> None:
        if ylt.n_trials < 4:
            raise AnalysisError("need at least 4 trials for convergence analysis")
        self.losses = ylt.losses

    def curve(self, n_points: int = 12) -> list[ConvergencePoint]:
        """Diagnostics at geometrically spaced prefix sizes.

        Prefixes of an i.i.d. trial stream are themselves valid samples,
        so the curve shows the 1/√n error decay directly from one run.
        """
        if n_points < 2:
            raise AnalysisError("n_points must be at least 2")
        n = self.losses.size
        sizes = np.unique(np.geomspace(4, n, n_points).astype(int))
        points = []
        for size in sizes:
            prefix = self.losses[:size]
            mean = float(prefix.mean())
            se = stats_utils.standard_error_of_mean(prefix)
            rel = se / mean if mean > 0 else float("inf")
            points.append(ConvergencePoint(int(size), mean, se, rel))
        return points

    def trials_for_relative_error(self, target: float) -> int:
        """Trials needed so that s.e./mean ≤ ``target`` (CLT scaling)."""
        if target <= 0:
            raise AnalysisError("target relative error must be positive")
        mean = float(self.losses.mean())
        if mean <= 0:
            raise AnalysisError("mean loss is zero; relative error undefined")
        std = float(self.losses.std(ddof=1))
        return int(np.ceil((std / (target * mean)) ** 2))

    def tail_stability(self, q: float = 0.99, n_blocks: int = 8) -> float:
        """Coefficient of variation of VaR(q) across disjoint trial blocks.

        A cheap proxy for tail-metric convergence: small means the tail
        is resolved at this trial count.
        """
        if n_blocks < 2:
            raise AnalysisError("need at least 2 blocks")
        blocks = np.array_split(self.losses, n_blocks)
        vars_ = [stats_utils.empirical_quantile(b, q) for b in blocks if b.size]
        arr = np.asarray(vars_)
        m = arr.mean()
        if m <= 0:
            return float("inf")
        return float(arr.std(ddof=1) / m)
