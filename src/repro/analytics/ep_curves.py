"""Exceedance-probability curves (OEP / AEP).

The two standard views of a simulated loss distribution:

- **AEP** (aggregate exceedance probability): distribution of the trial
  year's *total* loss — built from a YLT;
- **OEP** (occurrence exceedance probability): distribution of the trial
  year's *largest single event* loss — built from a YELT.

AEP dominates OEP pointwise (a year's total is at least its maximum),
which is one of the library's property-tested invariants.
"""

from __future__ import annotations

import numpy as np

from repro.core.tables import YeltTable, YltTable
from repro.errors import AnalysisError

__all__ = ["EpCurve", "oep_curve", "aep_curve", "portfolio_ep_curves"]


class EpCurve:
    """An empirical exceedance curve over per-trial values.

    The curve is the complementary CDF of the per-trial statistic:
    ``p(x) = P[value > x]`` estimated over the trial sample.
    """

    __slots__ = ("_sorted",)

    def __init__(self, per_trial_values: np.ndarray) -> None:
        values = np.asarray(per_trial_values, dtype=np.float64).ravel()
        if values.size == 0:
            raise AnalysisError("EP curve needs at least one trial value")
        if not np.isfinite(values).all():
            raise AnalysisError("EP curve values must be finite")
        self._sorted = np.sort(values)

    @property
    def n_trials(self) -> int:
        return self._sorted.size

    @property
    def nbytes(self) -> int:
        """Bytes held by the sorted sample (what a result cache accounts)."""
        return self._sorted.nbytes

    def probability_of_exceeding(self, loss) -> np.ndarray | float:
        """``P[value > loss]`` (vectorised over thresholds)."""
        loss = np.asarray(loss, dtype=np.float64)
        idx = np.searchsorted(self._sorted, loss, side="right")
        out = 1.0 - idx / self._sorted.size
        return float(out) if out.ndim == 0 else out

    def loss_at_probability(self, p_exceed: float) -> float:
        """Smallest loss whose exceedance probability is ≤ ``p_exceed``."""
        if not (0.0 < p_exceed < 1.0):
            raise AnalysisError(f"p_exceed must lie in (0,1), got {p_exceed}")
        return float(np.quantile(self._sorted, 1.0 - p_exceed))

    def loss_at_return_period(self, years: float) -> float:
        """Loss at a mean recurrence interval (the PML read off the curve)."""
        if years <= 1.0:
            raise AnalysisError(f"return period must exceed 1 year, got {years}")
        return self.loss_at_probability(1.0 / years)

    def as_points(self, n_points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """(losses, exceedance probs) sampled for plotting/reporting."""
        if n_points <= 1:
            raise AnalysisError("n_points must be at least 2")
        qs = np.linspace(0.0, 1.0 - 1.0 / self._sorted.size, n_points)
        losses = np.quantile(self._sorted, qs)
        probs = 1.0 - qs
        return losses, probs

    def dominates(self, other: "EpCurve", atol: float = 1e-9) -> bool:
        """True if this curve's loss ≥ other's at every probability level."""
        if self.n_trials != other.n_trials:
            raise AnalysisError("curves must share the trial count to compare")
        return bool(np.all(self._sorted >= other._sorted - atol))


def aep_curve(ylt: YltTable) -> EpCurve:
    """Aggregate EP curve from a year-loss table."""
    return EpCurve(ylt.losses)


def portfolio_ep_curves(
    ylt_by_layer: dict[int, YltTable], portfolio_ylt: YltTable,
) -> tuple[dict[int, EpCurve], EpCurve]:
    """Per-layer AEP curves plus the portfolio curve from one analysis.

    The whole EP surface of a book costs one aggregate run: the staged
    session exposes this as ``session.ep_curves()``.  Because the
    portfolio YLT is the trial-aligned sum of non-negative layer YLTs,
    the returned portfolio curve dominates every per-layer curve — a
    property-tested invariant.
    """
    by_layer = {lid: aep_curve(ylt) for lid, ylt in ylt_by_layer.items()}
    return by_layer, aep_curve(portfolio_ylt)


def oep_curve(yelt: YeltTable) -> EpCurve:
    """Occurrence EP curve: per-trial maximum event loss from a YELT.

    Trials with no (non-zero) events contribute a maximum of zero —
    they are real years in which nothing happened.
    """
    maxima = np.zeros(yelt.n_trials, dtype=np.float64)
    if yelt.table.n_rows:
        np.maximum.at(maxima, yelt.table["trial"], yelt.table["loss"])
    return EpCurve(maxima)
