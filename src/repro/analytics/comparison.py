"""Cross-engine equivalence checking.

Every engine must produce the same YLT for the same inputs — that is the
library's central correctness invariant (the engines differ only in
execution substrate).  These helpers run several engines on one workload
and compare outputs; the test suite and the speedup benches both use
them, so a disagreement can never hide inside a performance number.
"""

from __future__ import annotations

import numpy as np

from repro.core.portfolio import Portfolio
from repro.core.simulation import AggregateAnalysis, AnalysisResult
from repro.core.tables import YetTable
from repro.errors import AnalysisError

__all__ = ["compare_engines", "assert_engines_equivalent"]


def compare_engines(
    portfolio: Portfolio,
    yet: YetTable,
    names: list[str],
    reference: str = "sequential",
) -> dict[str, dict]:
    """Run each engine and report deviation from the reference.

    Returns ``{engine: {result, max_abs_diff, max_rel_diff, seconds}}``.
    """
    if reference not in names:
        names = [reference, *names]
    analysis = AggregateAnalysis(portfolio, yet)
    results: dict[str, AnalysisResult] = {n: analysis.run(n) for n in names}
    ref = results[reference].portfolio_ylt.losses
    report = {}
    for name, res in results.items():
        losses = res.portfolio_ylt.losses
        if losses.shape != ref.shape:
            raise AnalysisError(
                f"engine {name!r} produced {losses.shape} trials, "
                f"reference has {ref.shape}"
            )
        diff = np.abs(losses - ref)
        scale = np.maximum(np.abs(ref), 1.0)
        report[name] = {
            "result": res,
            "max_abs_diff": float(diff.max()) if diff.size else 0.0,
            "max_rel_diff": float((diff / scale).max()) if diff.size else 0.0,
            "seconds": res.seconds,
        }
    return report


def assert_engines_equivalent(
    portfolio: Portfolio,
    yet: YetTable,
    names: list[str],
    rtol: float = 1e-9,
    atol: float = 1e-6,
) -> None:
    """Raise :class:`AnalysisError` if any engine deviates from sequential."""
    report = compare_engines(portfolio, yet, names)
    failures = []
    for name, entry in report.items():
        if entry["max_abs_diff"] > atol and entry["max_rel_diff"] > rtol:
            failures.append(
                f"{name}: max_abs={entry['max_abs_diff']:.3g}, "
                f"max_rel={entry['max_rel_diff']:.3g}"
            )
    if failures:
        raise AnalysisError("engine disagreement: " + "; ".join(failures))
