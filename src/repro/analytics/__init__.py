"""Shared analytics: exceedance curves, convergence, engine comparison."""

from repro.analytics.ep_curves import (
    EpCurve,
    aep_curve,
    oep_curve,
    portfolio_ep_curves,
)
from repro.analytics.convergence import ConvergenceDiagnostics
from repro.analytics.comparison import assert_engines_equivalent, compare_engines
from repro.analytics.sensitivity import term_sensitivities

__all__ = [
    "EpCurve",
    "oep_curve",
    "aep_curve",
    "portfolio_ep_curves",
    "ConvergenceDiagnostics",
    "compare_engines",
    "assert_engines_equivalent",
    "term_sensitivities",
]
