"""Premium sensitivities to layer terms (finite differences).

The underwriting workflow the real-time pricer enables (§II) is not one
quote but a *gradient*: how does the technical premium move if the
attachment rises a million, the limit stretches, the share changes?
This module computes one-sided finite-difference sensitivities of any
layer statistic to each financial term, re-running the engine per bump —
cheap precisely because the engine is fast, which is the paper's point.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

from repro.core.engines import Engine, get_engine
from repro.core.layer import Layer
from repro.core.portfolio import Portfolio
from repro.core.tables import YetTable, YltTable
from repro.errors import AnalysisError

__all__ = ["term_sensitivities", "expected_loss_fn"]

#: Terms a bump can be applied to.
_BUMPABLE = ("occ_retention", "occ_limit", "agg_retention", "agg_limit",
             "participation")


def expected_loss_fn(ylt: YltTable) -> float:
    """Default statistic: the layer's expected annual loss."""
    return ylt.mean()


def term_sensitivities(
    layer: Layer,
    yet: YetTable,
    statistic: Callable[[YltTable], float] = expected_loss_fn,
    bump_fraction: float = 0.05,
    engine: str | Engine = "vectorized",
    terms: tuple[str, ...] = _BUMPABLE,
    *,
    session=None,
) -> dict[str, float]:
    """d(statistic)/d(term) per unit of term, by one-sided differences.

    Each named term is bumped by ``bump_fraction`` of its value (absolute
    bump of the layer's mean retained loss scale when the base value is
    zero or infinite), the engine re-runs, and the slope is reported.

    Returns ``{term: slope}``; a negative slope on ``occ_retention``
    (raising the attachment cheapens the layer) is the sanity check.

    With a :class:`~repro.session.RiskSession` passed as ``session``,
    ``engine`` (a name, or ``"auto"`` for the planner's choice) resolves
    to a *warm, session-owned* engine: the whole bump sweep reuses one
    staged substrate and the session tears it down, not this function.
    """
    if not (0.0 < bump_fraction < 1.0):
        raise AnalysisError("bump_fraction must lie in (0, 1)")
    # An engine built here is also torn down here (worker pools, staged
    # shared memory); caller-provided instances keep their resources —
    # a sweep of many sensitivities should pass one warm engine in (or a
    # session, which owns and reuses its engines across sweeps).
    if session is not None:
        if session.yet is not yet:
            # A session-owned staged engine keys its arena by YET
            # fingerprint; sweeping a foreign trial set through it would
            # silently re-stage per bump and void the ship-once
            # invariant — same guard as the other session veneers.
            raise AnalysisError(
                "session is bound to a different YET than this sweep"
            )
        owned = False
        eng = session.engine(engine)
    else:
        owned = isinstance(engine, str)
        eng = get_engine(engine) if owned else engine

    def run(l: Layer) -> float:
        res = eng.run(Portfolio([l]), yet)
        return statistic(res.ylt_by_layer[l.layer_id])

    try:
        base_value = run(layer)
        base_terms = layer.terms
        # A characteristic money scale for zero/inf bases.
        scale = max(base_terms.occ_retention, 1.0)

        out = {}
        for name in terms:
            if name not in _BUMPABLE:
                raise AnalysisError(
                    f"unknown term {name!r}; bumpable: {_BUMPABLE}"
                )
            current = getattr(base_terms, name)
            if name == "participation":
                bump = -bump_fraction * current  # stay within (0, 1]
            elif math.isinf(current) or current == 0.0:
                bump = bump_fraction * scale
            else:
                bump = bump_fraction * current
            bumped_value = current + bump
            if math.isinf(current):
                # Bumping an unlimited term means *introducing* a cap near
                # the observed losses; skip instead of inventing one.
                out[name] = 0.0
                continue
            bumped_terms = dataclasses.replace(
                base_terms, **{name: bumped_value}
            )
            bumped_layer = Layer(layer.layer_id, layer.elts, bumped_terms,
                                 weights=layer.weights)
            out[name] = (run(bumped_layer) - base_value) / bump
        return out
    finally:
        if owned and hasattr(eng, "close"):
            eng.close()
