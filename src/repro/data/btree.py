"""A B+-tree index — the heart of the "traditional database" baseline.

The paper argues traditional relational engines fit this pipeline poorly
because their access path is index-driven random access (§II).  To measure
that claim rather than assert it, experiment E6 needs a faithful
random-access baseline: this is a textbook in-memory B+-tree with fixed
fan-out, key-ordered leaf chaining for range scans, and node-visit
accounting so benches can report logical I/O alongside wall time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError, StorageError

__all__ = ["BPlusTree"]


@dataclass
class _Node:
    leaf: bool
    keys: list = field(default_factory=list)
    # Internal nodes: children[i] subtends keys < keys[i] (rightmost child
    # subtends the rest).  Leaves: values[i] pairs with keys[i].
    children: list = field(default_factory=list)
    values: list = field(default_factory=list)
    next_leaf: "_Node | None" = None


class BPlusTree:
    """In-memory B+-tree mapping integer keys to arbitrary values.

    Parameters
    ----------
    order:
        Maximum number of keys per node (≥ 3).  Real engines use page-sized
        nodes; the default of 64 models a few hundred bytes per entry on a
        classic 8 KiB page.

    Notes
    -----
    ``node_visits`` counts every node touched by a lookup, insert, or scan;
    it is the logical-I/O measure experiment E6 reports.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise ConfigurationError(f"B+-tree order must be >= 3, got {order}")
        self.order = order
        self._root: _Node = _Node(leaf=True)
        self._size = 0
        self.node_visits = 0
        self._height = 1

    # -- public API ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def insert(self, key: int, value) -> None:
        """Insert or overwrite ``key``."""
        root = self._root
        split = self._insert(root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False, keys=[sep], children=[root, right])
            self._root = new_root
            self._height += 1

    def get(self, key: int):
        """Return the value for ``key``; raise ``StorageError`` if absent."""
        node = self._root
        while True:
            self.node_visits += 1
            if node.leaf:
                i = bisect.bisect_left(node.keys, key)
                if i < len(node.keys) and node.keys[i] == key:
                    return node.values[i]
                raise StorageError(f"key {key!r} not found")
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]

    def contains(self, key: int) -> bool:
        try:
            self.get(key)
            return True
        except StorageError:
            return False

    def range_scan(self, lo: int, hi: int) -> Iterator[tuple[int, object]]:
        """Yield ``(key, value)`` for ``lo <= key <= hi`` in key order."""
        node = self._root
        while not node.leaf:
            self.node_visits += 1
            i = bisect.bisect_right(node.keys, lo)
            node = node.children[i]
        while node is not None:
            self.node_visits += 1
            for i, k in enumerate(node.keys):
                if k > hi:
                    return
                if k >= lo:
                    yield k, node.values[i]
            node = node.next_leaf

    def items(self) -> Iterator[tuple[int, object]]:
        """Full key-ordered iteration."""
        node = self._root
        while not node.leaf:
            self.node_visits += 1
            node = node.children[0]
        while node is not None:
            self.node_visits += 1
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    # -- internals ----------------------------------------------------------

    def _insert(self, node: _Node, key: int, value):
        """Recursive insert; returns ``(separator, new_right)`` on split."""
        self.node_visits += 1
        if node.leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                return None
            node.keys.insert(i, key)
            node.values.insert(i, value)
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(
            leaf=True,
            keys=node.keys[mid:],
            values=node.values[mid:],
            next_leaf=node.next_leaf,
        )
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(
            leaf=False,
            keys=node.keys[mid + 1:],
            children=node.children[mid + 1:],
        )
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right
