"""Scan-oriented streaming over chunked tables.

The paper's stage-2/3 access pattern: *"data needs to be scanned over
rather than randomly access[ed]"* (§II).  A :class:`TableScan` is a pull
pipeline over table chunks with map / filter / reduce stages; every stage
sees one chunk at a time, so peak memory is bounded by the chunk size
regardless of table size.  Access statistics are recorded so experiment E6
can compare the scan path with the row-store's random-access path on equal
footing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.data.chunk import iter_chunks
from repro.data.columnar import ColumnTable
from repro.errors import AnalysisError

__all__ = ["ScanStats", "TableScan"]


@dataclass
class ScanStats:
    """Counters describing the I/O behaviour of a scan."""

    chunks_read: int = 0
    rows_read: int = 0
    bytes_read: int = 0
    rows_emitted: int = 0

    def merge(self, other: "ScanStats") -> None:
        self.chunks_read += other.chunks_read
        self.rows_read += other.rows_read
        self.bytes_read += other.bytes_read
        self.rows_emitted += other.rows_emitted


@dataclass
class TableScan:
    """A composable streaming scan over a :class:`ColumnTable`.

    Stages are applied per chunk, in order.  ``map`` stages receive and
    return a :class:`ColumnTable`; ``filter`` stages receive the chunk and
    return a boolean mask.  Terminal operations (:meth:`sum`,
    :meth:`reduce`, :meth:`collect`) drive the pipeline.
    """

    table: ColumnTable
    rows_per_chunk: int = 65536
    stats: ScanStats = field(default_factory=ScanStats)
    _stages: list[tuple[str, Callable]] = field(default_factory=list)

    def map(self, fn: Callable[[ColumnTable], ColumnTable]) -> "TableScan":
        """Append a chunk-wise transformation stage."""
        self._stages.append(("map", fn))
        return self

    def filter(self, predicate: Callable[[ColumnTable], np.ndarray]) -> "TableScan":
        """Append a chunk-wise row filter stage."""
        self._stages.append(("filter", predicate))
        return self

    def _chunks(self) -> Iterator[ColumnTable]:
        for spec, chunk in iter_chunks(self.table, self.rows_per_chunk):
            self.stats.chunks_read += 1
            self.stats.rows_read += chunk.n_rows
            self.stats.bytes_read += chunk.nbytes
            for kind, fn in self._stages:
                if kind == "map":
                    chunk = fn(chunk)
                else:
                    chunk = chunk.filter(fn(chunk))
                if chunk.n_rows == 0:
                    break
            if chunk.n_rows:
                self.stats.rows_emitted += chunk.n_rows
                yield chunk

    def sum(self, column: str) -> float:
        """Stream-sum one column of the transformed scan."""
        total = 0.0
        for chunk in self._chunks():
            total += float(chunk[column].sum())
        return total

    def reduce(self, fn: Callable[[object, ColumnTable], object], initial):
        """Generic streaming fold over chunks."""
        acc = initial
        for chunk in self._chunks():
            acc = fn(acc, chunk)
        return acc

    def groupby_sum(self, key: str, value: str) -> ColumnTable:
        """Streaming group-by-sum: per-chunk partials merged at the end.

        Equivalent to ``table.groupby_sum`` but with chunk-bounded memory;
        this is how YELT → YLT aggregation runs out-of-core.
        """
        partials: list[ColumnTable] = [
            chunk.groupby_sum(key, value) for chunk in self._chunks()
        ]
        if not partials:
            raise AnalysisError("scan produced no rows to group")
        merged = ColumnTable.concat(partials)
        return merged.groupby_sum(key, value)

    def collect(self) -> ColumnTable:
        """Materialise the transformed scan (for tests and small tables)."""
        chunks = list(self._chunks())
        if not chunks:
            # Derive the output schema by pushing an empty chunk through the
            # stages (map functions must be total on empty tables, which all
            # vectorised transforms are).
            empty = self.table.slice(0, 0)
            for kind, fn in self._stages:
                empty = fn(empty) if kind == "map" else empty.filter(fn(empty))
            return empty
        return ColumnTable.concat(chunks)
