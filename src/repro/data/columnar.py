"""In-memory columnar tables.

The pipeline's tables (ELT, YET, YELT, YLT) are "a small number of very
large tables" (§II) that are written once and scanned many times.  A
:class:`ColumnTable` stores each field as a contiguous NumPy array, which
is exactly the layout the accumulated-large-memory strategy of the paper
wants: streaming a column touches memory sequentially, and whole-column
vector operations map onto the simulated GPU engine without copying.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.data.schema import Schema
from repro.errors import SchemaError

__all__ = ["ColumnTable"]


class ColumnTable:
    """An immutable-schema, append-only column-oriented table.

    Parameters
    ----------
    schema:
        The table's :class:`~repro.data.schema.Schema`.
    columns:
        Optional initial columns; must match the schema exactly.
    """

    __slots__ = ("_schema", "_columns", "_n_rows")

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray] | None = None):
        self._schema = schema
        if columns is None:
            columns = schema.empty_columns(0)
        cols = {name: np.ascontiguousarray(arr) for name, arr in columns.items()}
        self._n_rows = schema.validate_columns(cols)
        self._columns = cols

    # -- construction -----------------------------------------------------

    @classmethod
    def from_arrays(cls, schema: Schema, **arrays) -> "ColumnTable":
        """Build a table from keyword arrays, coercing dtypes per schema."""
        cols = {}
        for f in schema:
            if f.name not in arrays:
                raise SchemaError(f"missing column {f.name!r}")
            cols[f.name] = np.asarray(arrays[f.name], dtype=f.dtype)
        extra = set(arrays) - set(schema.names)
        if extra:
            raise SchemaError(f"unexpected columns: {sorted(extra)}")
        return cls(schema, cols)

    @classmethod
    def concat(cls, tables: Sequence["ColumnTable"]) -> "ColumnTable":
        """Concatenate tables sharing one schema (order preserved)."""
        if not tables:
            raise SchemaError("cannot concat an empty list of tables")
        schema = tables[0].schema
        for t in tables[1:]:
            if t.schema != schema:
                raise SchemaError("cannot concat tables with different schemas")
        cols = {
            name: np.concatenate([t._columns[name] for t in tables])
            for name in schema.names
        }
        return cls(schema, cols)

    # -- basic accessors ---------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    @property
    def nbytes(self) -> int:
        """Actual payload bytes held by the column arrays."""
        return sum(c.nbytes for c in self._columns.values())

    def column(self, name: str) -> np.ndarray:
        """Return the column array (a live view — treat as read-only)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"no column {name!r}; have {self._schema.names}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def row(self, i: int) -> dict[str, object]:
        """Materialise row ``i`` as a dict (slow path, for tests/debug)."""
        if not (-self._n_rows <= i < self._n_rows):
            raise IndexError(f"row {i} out of range for {self._n_rows} rows")
        return {name: col[i].item() for name, col in self._columns.items()}

    # -- relational-ish operations ----------------------------------------

    def select(self, names: Sequence[str]) -> "ColumnTable":
        """Project onto a subset of columns."""
        sub_schema = Schema([self._schema[n] for n in names])
        return ColumnTable(sub_schema, {n: self._columns[n] for n in names})

    def take(self, indices) -> "ColumnTable":
        """Gather rows by integer index array."""
        idx = np.asarray(indices)
        return ColumnTable(
            self._schema, {n: c[idx] for n, c in self._columns.items()}
        )

    def slice(self, start: int, stop: int) -> "ColumnTable":
        """Zero-copy contiguous row range ``[start, stop)``."""
        return ColumnTable(
            self._schema, {n: c[start:stop] for n, c in self._columns.items()}
        )

    def filter(self, mask) -> "ColumnTable":
        """Keep rows where the boolean ``mask`` is true."""
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self._n_rows,):
            raise SchemaError(f"mask shape {m.shape} != ({self._n_rows},)")
        return ColumnTable(self._schema, {n: c[m] for n, c in self._columns.items()})

    def where(self, predicate: Callable[["ColumnTable"], np.ndarray]) -> "ColumnTable":
        """Filter with a predicate over the whole table (vectorised)."""
        return self.filter(predicate(self))

    def sort_by(self, name: str, *more: str) -> "ColumnTable":
        """Stable sort by one or more columns (last key is primary)."""
        keys = [self._columns[k] for k in (name, *more)]
        order = np.lexsort(tuple(keys))
        return self.take(order)

    def append(self, other: "ColumnTable") -> "ColumnTable":
        """Return a new table with ``other``'s rows appended."""
        return ColumnTable.concat([self, other])

    def groupby_sum(self, key: str, value: str) -> "ColumnTable":
        """Group by integer column ``key`` and sum ``value``.

        This is the workhorse of the pipeline's aggregations (YELT → YLT is
        exactly ``groupby_sum("trial", "loss")``).  Implemented with
        ``np.bincount`` when keys are dense non-negative ints, falling back
        to sort-based reduction otherwise.
        """
        keys = self._columns[key]
        values = self._columns[value].astype(np.float64, copy=False)
        if not np.issubdtype(keys.dtype, np.integer):
            raise SchemaError(f"groupby key {key!r} must be an integer column")
        out_schema = Schema([(key, keys.dtype), (value, np.float64)])
        if keys.size == 0:
            return ColumnTable(out_schema)
        kmin = int(keys.min())
        kmax = int(keys.max())
        span = kmax - kmin + 1
        if span <= max(4 * keys.size, 1024):
            sums = np.bincount(keys - kmin, weights=values, minlength=span)
            uniq = np.nonzero(np.bincount(keys - kmin, minlength=span))[0]
            return ColumnTable.from_arrays(
                out_schema, **{key: uniq + kmin, value: sums[uniq]}
            )
        order = np.argsort(keys, kind="stable")
        sk, sv = keys[order], values[order]
        boundaries = np.nonzero(np.diff(sk))[0] + 1
        starts = np.concatenate(([0], boundaries))
        uniq = sk[starts]
        sums = np.add.reduceat(sv, starts)
        return ColumnTable.from_arrays(out_schema, **{key: uniq, value: sums})

    def to_struct_array(self) -> np.ndarray:
        """Materialise as a packed structured array (row-wise layout)."""
        out = np.empty(self._n_rows, dtype=self._schema.to_struct_dtype())
        for name, col in self._columns.items():
            out[name] = col
        return out

    @classmethod
    def from_struct_array(cls, schema: Schema, arr: np.ndarray) -> "ColumnTable":
        """Inverse of :meth:`to_struct_array`."""
        cols = {f.name: np.ascontiguousarray(arr[f.name]) for f in schema}
        return cls(schema, cols)

    def equals(self, other: "ColumnTable", rtol: float = 0.0, atol: float = 0.0) -> bool:
        """Exact (or toleranced, for float columns) row-wise equality."""
        if self._schema != other._schema or self._n_rows != other._n_rows:
            return False
        for f in self._schema:
            a, b = self._columns[f.name], other._columns[f.name]
            if np.issubdtype(f.dtype, np.floating) and (rtol or atol):
                if not np.allclose(a, b, rtol=rtol, atol=atol):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnTable({self._schema!r}, n_rows={self._n_rows})"
