"""A simulated distributed file system (the "large distributed file space").

The paper's second HPC strategy is *"accumulation of large distributed
file space ... relying on MapReduce or Hadoop style computations"* (§II).
:class:`SimDfs` reproduces the architecture of such a system in one
process: a namenode (file → ordered block list), datanodes holding block
replicas, configurable block size and replication factor, node failure,
and re-replication.  Blocks are real byte strings, so MapReduce jobs over
the DFS do real I/O-shaped work; "distribution" is simulated in the sense
that datanodes share one address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DEFAULTS
from repro.data.chunk import plan_chunks
from repro.data.columnar import ColumnTable
from repro.data.serialization import pack_table, unpack_table
from repro.errors import ConfigurationError, StorageError

__all__ = ["BlockInfo", "SimDfs"]


@dataclass(frozen=True)
class BlockInfo:
    """Metadata for one stored block."""

    block_id: int
    length: int


@dataclass
class _DataNode:
    node_id: int
    alive: bool = True
    blocks: dict[int, bytes] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self.blocks.values())


class SimDfs:
    """Single-process simulation of an HDFS-style block store.

    Parameters
    ----------
    n_datanodes:
        Number of simulated datanodes.
    block_bytes:
        Target block size for byte-stream writes.
    replication:
        Number of replicas per block (capped at the node count).
    """

    def __init__(
        self,
        n_datanodes: int = 8,
        block_bytes: int = DEFAULTS.dfs_block_bytes,
        replication: int = DEFAULTS.dfs_replication,
    ) -> None:
        if n_datanodes <= 0:
            raise ConfigurationError(f"need at least one datanode, got {n_datanodes}")
        if block_bytes <= 0:
            raise ConfigurationError(f"block_bytes must be positive, got {block_bytes}")
        if replication <= 0:
            raise ConfigurationError(f"replication must be positive, got {replication}")
        self.block_bytes = block_bytes
        self.replication = min(replication, n_datanodes)
        self._nodes = {i: _DataNode(i) for i in range(n_datanodes)}
        self._files: dict[str, list[int]] = {}
        self._block_info: dict[int, BlockInfo] = {}
        self._block_locations: dict[int, set[int]] = {}
        self._next_block_id = 0
        self._placement_cursor = 0

    # -- write paths ----------------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        """Store ``data`` under ``path``, split at the block size."""
        if path in self._files:
            raise StorageError(f"file exists: {path!r}")
        blocks = [
            data[spec.start:spec.stop]
            for spec in plan_chunks(len(data), self.block_bytes)
        ] or [b""]
        self._files[path] = [self._store_block(b) for b in blocks]

    def write_table(self, path: str, table: ColumnTable, rows_per_block: int) -> None:
        """Store a column table as one self-describing packed batch per block.

        Record batches are block-aligned (as with Hadoop sequence files), so
        each block can be decoded independently by a map task.
        """
        if path in self._files:
            raise StorageError(f"file exists: {path!r}")
        specs = plan_chunks(table.n_rows, rows_per_block)
        if not specs:
            self._files[path] = [self._store_block(pack_table(table))]
            return
        self._files[path] = [
            self._store_block(pack_table(table.slice(s.start, s.stop))) for s in specs
        ]

    def _store_block(self, data: bytes) -> int:
        block_id = self._next_block_id
        self._next_block_id += 1
        self._block_info[block_id] = BlockInfo(block_id, len(data))
        targets = self._pick_nodes(self.replication, exclude=set())
        for node_id in targets:
            self._nodes[node_id].blocks[block_id] = data
        self._block_locations[block_id] = set(targets)
        return block_id

    def _pick_nodes(self, count: int, exclude: set[int]) -> list[int]:
        live = [n for n in self._nodes.values() if n.alive and n.node_id not in exclude]
        if len(live) < count:
            raise StorageError(
                f"cannot place {count} replicas on {len(live)} live datanodes"
            )
        # Round-robin placement balances load like HDFS's default policy
        # does in a homogeneous cluster.
        live.sort(key=lambda n: n.node_id)
        chosen = []
        for i in range(count):
            chosen.append(live[(self._placement_cursor + i) % len(live)].node_id)
        self._placement_cursor = (self._placement_cursor + count) % max(len(live), 1)
        return chosen

    # -- read paths -------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def delete(self, path: str) -> None:
        """Remove a file and free its blocks."""
        block_ids = self._files.pop(path, None)
        if block_ids is None:
            raise StorageError(f"no such file: {path!r}")
        for bid in block_ids:
            for node_id in self._block_locations.pop(bid, set()):
                self._nodes[node_id].blocks.pop(bid, None)
            self._block_info.pop(bid, None)

    def file_blocks(self, path: str) -> list[BlockInfo]:
        """Ordered block metadata for ``path``."""
        try:
            return [self._block_info[b] for b in self._files[path]]
        except KeyError:
            raise StorageError(f"no such file: {path!r}") from None

    def read_block(self, block_id: int) -> bytes:
        """Read one block from any live replica."""
        locations = self._block_locations.get(block_id)
        if not locations:
            raise StorageError(f"unknown block {block_id}")
        for node_id in sorted(locations):
            node = self._nodes[node_id]
            if node.alive and block_id in node.blocks:
                return node.blocks[block_id]
        raise StorageError(f"block {block_id} has no live replica")

    def read(self, path: str) -> bytes:
        """Reassemble a byte-stream file."""
        return b"".join(self.read_block(b) for b in self._files_get(path))

    def read_table_blocks(self, path: str) -> list[ColumnTable]:
        """Decode each block of a table file independently."""
        return [unpack_table(self.read_block(b)) for b in self._files_get(path)]

    def read_table(self, path: str) -> ColumnTable:
        """Reassemble a table file."""
        return ColumnTable.concat(self.read_table_blocks(path))

    def _files_get(self, path: str) -> list[int]:
        try:
            return self._files[path]
        except KeyError:
            raise StorageError(f"no such file: {path!r}") from None

    # -- failure & recovery --------------------------------------------------

    @property
    def n_live_nodes(self) -> int:
        return sum(1 for n in self._nodes.values() if n.alive)

    def kill_node(self, node_id: int) -> None:
        """Simulate a datanode failure (its replicas become unreachable)."""
        try:
            node = self._nodes[node_id]
        except KeyError:
            raise StorageError(f"no such datanode {node_id}") from None
        node.alive = False
        for bid in list(node.blocks):
            self._block_locations[bid].discard(node_id)
        node.blocks.clear()

    def restart_node(self, node_id: int) -> None:
        """Bring a failed node back (empty, as after a disk replacement)."""
        self._nodes[node_id].alive = True

    def re_replicate(self) -> int:
        """Restore the replication factor of under-replicated blocks.

        Returns the number of new replicas created.  Raises
        :class:`StorageError` if some block has lost every replica.
        """
        created = 0
        for bid, locations in self._block_locations.items():
            live = {n for n in locations if self._nodes[n].alive}
            if not live:
                raise StorageError(f"block {bid} lost all replicas")
            missing = self.replication - len(live)
            if missing <= 0:
                continue
            data = self._nodes[next(iter(live))].blocks[bid]
            for node_id in self._pick_nodes(missing, exclude=live):
                self._nodes[node_id].blocks[bid] = data
                locations.add(node_id)
                created += 1
        return created

    # -- introspection --------------------------------------------------------

    def total_stored_bytes(self) -> int:
        """Bytes stored across all datanodes (counts replicas)."""
        return sum(n.used_bytes for n in self._nodes.values())

    def replication_of(self, block_id: int) -> int:
        return sum(
            1 for n in self._block_locations.get(block_id, ())
            if self._nodes[n].alive
        )
