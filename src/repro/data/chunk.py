"""Chunk planning and iteration over large tables.

"The management of large data in memory employs the notion of chunking"
(§II).  A chunk plan divides a row range into contiguous spans that each
fit a byte budget — the same computation the simulated GPU's chunk planner
performs against device memory (:mod:`repro.hpc.chunking`), reused here
for host-side streaming scans and for DFS block sizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.data.columnar import ColumnTable
from repro.errors import ConfigurationError

__all__ = ["ChunkSpec", "plan_chunks", "iter_chunks"]


@dataclass(frozen=True)
class ChunkSpec:
    """A half-open row span ``[start, stop)`` within a table."""

    index: int
    start: int
    stop: int

    @property
    def n_rows(self) -> int:
        return self.stop - self.start


def plan_chunks(n_rows: int, rows_per_chunk: int) -> list[ChunkSpec]:
    """Split ``n_rows`` into consecutive chunks of ``rows_per_chunk``.

    The plan always covers ``[0, n_rows)`` exactly: chunks are disjoint,
    ordered, and the final chunk may be short.  An empty table yields an
    empty plan.
    """
    if rows_per_chunk <= 0:
        raise ConfigurationError(f"rows_per_chunk must be positive, got {rows_per_chunk}")
    if n_rows < 0:
        raise ConfigurationError(f"n_rows must be non-negative, got {n_rows}")
    specs = []
    start = 0
    index = 0
    while start < n_rows:
        stop = min(start + rows_per_chunk, n_rows)
        specs.append(ChunkSpec(index, start, stop))
        start = stop
        index += 1
    return specs


def rows_for_budget(row_bytes: int, budget_bytes: int) -> int:
    """Largest row count whose packed size fits ``budget_bytes`` (≥1)."""
    if row_bytes <= 0:
        raise ConfigurationError(f"row_bytes must be positive, got {row_bytes}")
    if budget_bytes < row_bytes:
        raise ConfigurationError(
            f"budget of {budget_bytes} B cannot hold a single {row_bytes} B row"
        )
    return budget_bytes // row_bytes


def iter_chunks(table: ColumnTable, rows_per_chunk: int) -> Iterator[tuple[ChunkSpec, ColumnTable]]:
    """Yield ``(spec, zero-copy slice)`` pairs covering ``table``."""
    for spec in plan_chunks(table.n_rows, rows_per_chunk):
        yield spec, table.slice(spec.start, spec.stop)
