"""Lightweight columnar compression for chunk storage.

The YET's columns are extremely compressible — the ``trial`` column is
sorted (delta-encodes to almost all zeros) and the ``seq`` column is a
sawtooth — and at paper scale (§II's 5×10¹⁰-row YELTs) the difference
between 20 bytes/row and ~3 bytes/row decides whether the working set
fits "large but not enormous" memory (§III).  Two classic codecs:

- **delta + zigzag + varint** for integer columns (sorted keys compress
  to ~1 byte/row);
- raw little-endian passthrough for floats (loss values are incompressible
  noise; honesty beats a wasted pass).

The codecs are self-describing and exact (lossless round-trip is
property-tested).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.data.columnar import ColumnTable
from repro.data.schema import Schema
from repro.errors import StorageError

__all__ = ["encode_column", "decode_column", "pack_table_compressed",
           "unpack_table_compressed", "compression_ratio"]

_MAGIC = b"RPC1"  # repro packed compressed, version 1


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed deltas to unsigned (0,-1,1,-2 -> 0,1,2,3)."""
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    return ((values >> 1).astype(np.int64)) ^ -(values & 1).astype(np.int64)


def _varint_encode(values: np.ndarray) -> bytes:
    """LEB128 encode an array of uint64."""
    out = bytearray()
    for v in values.tolist():
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _varint_decode(data: bytes, count: int) -> np.ndarray:
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        shift = 0
        acc = 0
        while True:
            if pos >= len(data):
                raise StorageError("truncated varint stream")
            byte = data[pos]
            pos += 1
            acc |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        out[i] = acc
    if pos != len(data):
        raise StorageError("trailing bytes in varint stream")
    return out


def encode_column(values: np.ndarray) -> tuple[str, bytes]:
    """Encode one column; returns ``(codec_name, payload)``."""
    if np.issubdtype(values.dtype, np.integer):
        as64 = values.astype(np.int64)
        deltas = np.diff(as64, prepend=as64[:1] if as64.size else np.int64(0))
        if as64.size:
            deltas[0] = as64[0]
        return "delta-varint", _varint_encode(_zigzag(deltas))
    return "raw", np.ascontiguousarray(values).tobytes()


def decode_column(codec: str, payload: bytes, dtype: np.dtype,
                  count: int) -> np.ndarray:
    """Inverse of :func:`encode_column`."""
    if codec == "delta-varint":
        deltas = _unzigzag(_varint_decode(payload, count))
        return np.cumsum(deltas).astype(dtype) if count else np.zeros(0, dtype)
    if codec == "raw":
        expected = count * dtype.itemsize
        if len(payload) != expected:
            raise StorageError(
                f"raw column payload is {len(payload)} B, expected {expected}"
            )
        return np.frombuffer(payload, dtype=dtype).copy()
    raise StorageError(f"unknown codec {codec!r}")


def pack_table_compressed(table: ColumnTable) -> bytes:
    """Serialise a table with per-column compression (self-describing)."""
    import json

    columns = []
    payloads = []
    for f in table.schema:
        codec, payload = encode_column(table[f.name])
        columns.append([f.name, f.dtype.str, codec, len(payload)])
        payloads.append(payload)
    header = {"columns": columns, "n_rows": table.n_rows}
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    return (_MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes
            + b"".join(payloads))


def unpack_table_compressed(data: bytes) -> ColumnTable:
    """Inverse of :func:`pack_table_compressed`."""
    import json

    if len(data) < 8 or data[:4] != _MAGIC:
        raise StorageError("not a compressed packed table (bad magic)")
    (header_len,) = struct.unpack("<I", data[4:8])
    header_end = 8 + header_len
    try:
        header = json.loads(data[8:header_end].decode())
        n_rows = int(header["n_rows"])
        columns = header["columns"]
    except (ValueError, KeyError) as exc:
        raise StorageError(f"corrupt compressed header: {exc}") from exc
    fields = [(name, np.dtype(dt)) for name, dt, _, _ in columns]
    schema = Schema(fields)
    out = {}
    pos = header_end
    for name, dt, codec, length in columns:
        payload = data[pos:pos + length]
        if len(payload) != length:
            raise StorageError("truncated compressed column payload")
        out[name] = decode_column(codec, payload, np.dtype(dt), n_rows)
        pos += length
    if pos != len(data):
        raise StorageError("trailing bytes after compressed columns")
    return ColumnTable(schema, out)


def compression_ratio(table: ColumnTable) -> float:
    """Uncompressed payload bytes over compressed bytes."""
    compressed = len(pack_table_compressed(table))
    return table.nbytes / compressed if compressed else float("inf")
