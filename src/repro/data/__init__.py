"""Data-management substrate.

The paper's key observation is that *"traditional relational databases are
of limited use for efficiently implementing the risk analytics pipeline"*:
pipeline data must be organised in *"a small number of very large tables
and streamed by independent processes"* (§II), scanned rather than randomly
accessed.  This package provides both sides of that comparison plus the
"large distributed file space" alternative:

- :mod:`repro.data.columnar` / :mod:`repro.data.chunk` /
  :mod:`repro.data.stream` — the scan-oriented columnar path the paper
  advocates;
- :mod:`repro.data.btree` / :mod:`repro.data.rdbms` — a deliberately
  traditional row store with B+-tree indexing, used as the random-access
  baseline (experiment E6);
- :mod:`repro.data.dfs` / :mod:`repro.data.mapreduce` — a simulated
  distributed file system and a MapReduce engine over it (experiment E7);
- :mod:`repro.data.warehouse` — parallel data-warehouse pre-aggregation for
  stage-3 analytics (experiment E10).
"""

from repro.data.schema import Field, Schema
from repro.data.columnar import ColumnTable
from repro.data.chunk import ChunkSpec, iter_chunks, plan_chunks
from repro.data.stream import TableScan
from repro.data.btree import BPlusTree
from repro.data.rdbms import RowStore
from repro.data.dfs import SimDfs
from repro.data.mapreduce import MapReduceJob, MapReduceRuntime
from repro.data.warehouse import LossCube
from repro.data.csv_io import read_csv, write_csv
from repro.data.compression import (
    compression_ratio,
    pack_table_compressed,
    unpack_table_compressed,
)

__all__ = [
    "Field",
    "Schema",
    "ColumnTable",
    "ChunkSpec",
    "iter_chunks",
    "plan_chunks",
    "TableScan",
    "BPlusTree",
    "RowStore",
    "SimDfs",
    "MapReduceJob",
    "MapReduceRuntime",
    "LossCube",
    "read_csv",
    "write_csv",
    "compression_ratio",
    "pack_table_compressed",
    "unpack_table_compressed",
]
