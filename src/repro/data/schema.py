"""Typed schemas for columnar tables.

A :class:`Schema` is an ordered collection of named, NumPy-typed fields.
Tables in the pipeline (ELT, YET, YELT, YLT, exposure) all declare schemas
so that size accounting — central to the paper's data-volume arguments —
is exact: :meth:`Schema.row_bytes` gives the packed width of one record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import SchemaError

__all__ = ["Field", "Schema"]


@dataclass(frozen=True)
class Field:
    """One named, typed column.

    Attributes
    ----------
    name:
        Column name, unique within a schema.
    dtype:
        Any NumPy-coercible dtype specifier (``"f8"``, ``np.int64``...).
    """

    name: str
    dtype: np.dtype

    def __init__(self, name: str, dtype) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"field name must be a non-empty string, got {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "dtype", np.dtype(dtype))

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize


class Schema:
    """Ordered, immutable collection of :class:`Field` objects."""

    __slots__ = ("_fields", "_index")

    def __init__(self, fields: Iterable[Field | tuple[str, object]]) -> None:
        normalised: list[Field] = []
        for f in fields:
            if isinstance(f, Field):
                normalised.append(f)
            else:
                name, dtype = f
                normalised.append(Field(name, dtype))
        names = [f.name for f in normalised]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        if not normalised:
            raise SchemaError("schema must contain at least one field")
        self._fields = tuple(normalised)
        self._index = {f.name: i for i, f in enumerate(self._fields)}

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Field:
        try:
            return self._fields[self._index[name]]
        except KeyError:
            raise SchemaError(f"no field {name!r} in schema {self.names}") from None

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    @property
    def row_bytes(self) -> int:
        """Packed width of one record in bytes (no alignment padding)."""
        return sum(f.itemsize for f in self._fields)

    def table_bytes(self, n_rows: int) -> int:
        """Packed size of ``n_rows`` records."""
        if n_rows < 0:
            raise SchemaError(f"n_rows must be non-negative, got {n_rows}")
        return n_rows * self.row_bytes

    def empty_columns(self, n_rows: int = 0) -> dict[str, np.ndarray]:
        """Allocate a column dict of ``n_rows`` zeros per field."""
        return {f.name: np.zeros(n_rows, dtype=f.dtype) for f in self._fields}

    def validate_columns(self, columns: Mapping[str, np.ndarray]) -> int:
        """Check ``columns`` match this schema; return the row count."""
        if set(columns.keys()) != set(self.names):
            raise SchemaError(
                f"column names {sorted(columns)} do not match schema {sorted(self.names)}"
            )
        n_rows = None
        for f in self._fields:
            col = columns[f.name]
            if not isinstance(col, np.ndarray) or col.ndim != 1:
                raise SchemaError(f"column {f.name!r} must be a 1-D ndarray")
            if col.dtype != f.dtype:
                raise SchemaError(
                    f"column {f.name!r} has dtype {col.dtype}, schema says {f.dtype}"
                )
            if n_rows is None:
                n_rows = col.shape[0]
            elif col.shape[0] != n_rows:
                raise SchemaError("columns have inconsistent lengths")
        assert n_rows is not None
        return n_rows

    def to_struct_dtype(self) -> np.dtype:
        """Packed structured dtype for row-wise serialisation."""
        return np.dtype([(f.name, f.dtype) for f in self._fields])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{f.name}:{f.dtype}" for f in self._fields)
        return f"Schema({inner})"
